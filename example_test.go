package cntfet_test

import (
	"fmt"

	"cntfet"
)

// The basic flow: fit the paper's Model 2 once, then evaluate drain
// currents in closed form.
func ExampleNewModel2() {
	fast, err := cntfet.NewModel2(cntfet.DefaultDevice())
	if err != nil {
		panic(err)
	}
	ids, err := fast.IDS(cntfet.Bias{VG: 0.6, VD: 0.6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("IDS is tens of µA: %v\n", ids > 1e-6 && ids < 1e-4)
	// Output: IDS is tens of µA: true
}

// Comparing the fast model against the full theory with the paper's
// RMS metric.
func ExampleRMSPercent() {
	dev := cntfet.DefaultDevice()
	theory, err := cntfet.NewReference(dev)
	if err != nil {
		panic(err)
	}
	fast, err := cntfet.FitFrom(theory, cntfet.Model2Spec(), cntfet.FitOptions{})
	if err != nil {
		panic(err)
	}
	vds := []float64{0, 0.15, 0.3, 0.45, 0.6}
	ref, err := cntfet.Trace(theory, 0.5, vds)
	if err != nil {
		panic(err)
	}
	approx, err := cntfet.Trace(fast, 0.5, vds)
	if err != nil {
		panic(err)
	}
	rms, err := cntfet.RMSPercent(approx, ref)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within the paper's 2%% band: %v\n", rms < 2)
	// Output: within the paper's 2% band: true
}

// Custom region structures let you trade fit cost for accuracy (the
// paper's "more sections" extension).
func ExampleNewPiecewise() {
	spec := cntfet.Spec{
		Name:     "five regions",
		Breaks:   []float64{-0.35, -0.15, -0.02, 0.12},
		Degrees:  []int{1, 2, 3, 3},
		ZeroTail: true,
	}
	m, err := cntfet.NewPiecewise(cntfet.DefaultDevice(), spec, cntfet.FitOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Spec().Name)
	// Output: five regions
}
