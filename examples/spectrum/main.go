// spectrum visualises where in energy the ballistic drain current
// flows: the Landauer integrand dI/dε behind the paper's eq. 12, whose
// analytic integral is the F0 closed form. The window between the
// drain and source Fermi levels carries the current; raising VDS at
// fixed VG widens the window until the current saturates — the
// physical picture behind the IDS(VDS) curves of figures 6-9.
//
//	go run ./examples/spectrum
package main

import (
	"fmt"
	"log"
	"os"

	"cntfet"
	"cntfet/internal/quad"
	"cntfet/internal/report"
)

func main() {
	dev := cntfet.DefaultDevice()
	theory, err := cntfet.NewReference(dev)
	if err != nil {
		log.Fatal(err)
	}

	plot := report.NewASCIIPlot()
	plot.Height = 18
	plot.XLabel = "energy above band edge [eV]"
	plot.YLabel = "dI/dE [A/eV]"
	glyphs := []byte{'1', '2', '3'}
	biases := []cntfet.Bias{
		{VG: 0.6, VD: 0.1},
		{VG: 0.6, VD: 0.3},
		{VG: 0.6, VD: 0.6},
	}

	tb := report.NewTable("spectrum integral vs closed-form current",
		"bias", "∫ dI/dE dE [A]", "IDS (eq.14) [A]", "rel diff")
	for i, b := range biases {
		eps, s, err := theory.SpectrumSeries(b, 1.2, 400)
		if err != nil {
			log.Fatal(err)
		}
		plot.Add(glyphs[i], eps, s)
		integral := quad.Trapezoid(eps, s)
		ids, err := theory.IDS(b)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(
			fmt.Sprintf("VG=%.1f VDS=%.1f", b.VG, b.VD),
			fmt.Sprintf("%.5g", integral),
			fmt.Sprintf("%.5g", ids),
			fmt.Sprintf("%.2e", abs(integral-ids)/ids),
		)
	}
	fmt.Println("energy-resolved drain current (glyph = VDS: 1=0.1V 2=0.3V 3=0.6V)")
	plot.Render(os.Stdout)
	tb.Render(os.Stdout)

	// The fast model reproduces the same saturation because it solves
	// the same eq. 14 from its closed-form VSC.
	fast, err := cntfet.FitFrom(theory, cntfet.Model2Spec(), cntfet.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsaturation through both models:")
	for _, b := range biases {
		it, _ := theory.IDS(b)
		im, _ := fast.IDS(b)
		fmt.Printf("  VDS=%.1f: theory %.4g A, Model 2 %.4g A\n", b.VD, it, im)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
