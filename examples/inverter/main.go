// inverter simulates a complementary CNT inverter — the paper's
// motivating use case ("simulations of future analog and digital
// systems built with CNT devices") and its stated future work
// ("practical logic circuit structures based on CNT devices") — through
// the SPICE-like netlist frontend, using the fast Model 2 for both
// transistors.
//
// It runs the voltage transfer characteristic and a switching
// transient, prints key logic metrics, and draws both.
//
//	go run ./examples/inverter
package main

import (
	"fmt"
	"log"
	"os"

	"cntfet/internal/circuit"
	"cntfet/internal/netlist"
	"cntfet/internal/report"
)

const deck = `complementary CNT inverter (Model 2 devices)
.model fast cnt level=2 d=1n tox=1.5n kappa=25 ef=-0.32 temp=300 alphag=0.88 alphad=0.035
VDD vdd 0 0.6
VIN in 0 PULSE(0 0.6 0 10p 10p 2n 4n)
MP out in vdd fast p
MN out in 0 fast n
CL out 0 10f
`

func main() {
	d, err := netlist.Parse(deck)
	if err != nil {
		log.Fatal(err)
	}

	// Voltage transfer characteristic.
	vtc, err := d.Circuit.DCSweep("VIN", 0, 0.6, 0.01, circuit.DCOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var vin, vout []float64
	for _, p := range vtc {
		vin = append(vin, p.Value)
		vout = append(vout, p.Solution.Voltage("out"))
	}
	fmt.Println("voltage transfer characteristic:")
	plot := report.NewASCIIPlot()
	plot.XLabel = "VIN [V]"
	plot.YLabel = "VOUT [V]"
	plot.Add('#', vin, vout)
	plot.Render(os.Stdout)

	// Logic metrics from the VTC.
	voh, vol := vout[0], vout[len(vout)-1]
	vm := switchingThreshold(vin, vout)
	gain := peakGain(vin, vout)
	tb := report.NewTable("static metrics", "metric", "value")
	tb.AddRow("VOH", fmt.Sprintf("%.3f V", voh))
	tb.AddRow("VOL", fmt.Sprintf("%.3f V", vol))
	tb.AddRow("switching threshold VM", fmt.Sprintf("%.3f V", vm))
	tb.AddRow("peak small-signal gain", fmt.Sprintf("%.1f", gain))
	tb.Render(os.Stdout)

	// Switching transient.
	sols, err := d.Circuit.Transient(circuit.TranOptions{Step: 10e-12, Stop: 4e-9})
	if err != nil {
		log.Fatal(err)
	}
	var ts, vo, vi []float64
	for _, s := range sols {
		ts = append(ts, s.Time*1e9)
		vo = append(vo, s.Voltage("out"))
		vi = append(vi, s.Voltage("in"))
	}
	fmt.Println("\nswitching transient (i = input, o = output):")
	tplot := report.NewASCIIPlot()
	tplot.XLabel = "time [ns]"
	tplot.YLabel = "V"
	tplot.Add('i', ts, vi)
	tplot.Add('o', ts, vo)
	tplot.Render(os.Stdout)

	fmt.Printf("\npropagation delay (50%% in -> 50%% out, falling): %.1f ps\n",
		fallDelayPS(ts, vi, vo))
}

// switchingThreshold finds VIN where VOUT crosses VDD/2.
func switchingThreshold(vin, vout []float64) float64 {
	mid := 0.3
	for i := 1; i < len(vout); i++ {
		if (vout[i-1]-mid)*(vout[i]-mid) <= 0 {
			// Linear interpolation inside the step.
			f := (mid - vout[i-1]) / (vout[i] - vout[i-1])
			return vin[i-1] + f*(vin[i]-vin[i-1])
		}
	}
	return 0
}

// peakGain returns max |dVOUT/dVIN| along the VTC.
func peakGain(vin, vout []float64) float64 {
	g := 0.0
	for i := 1; i < len(vout); i++ {
		d := (vout[i] - vout[i-1]) / (vin[i] - vin[i-1])
		if d < 0 {
			d = -d
		}
		if d > g {
			g = d
		}
	}
	return g
}

// fallDelayPS measures the first 50%-to-50% delay between the rising
// input and falling output edges. Times are in nanoseconds.
func fallDelayPS(ts, vi, vo []float64) float64 {
	cross := func(v []float64, rising bool) float64 {
		mid := 0.3
		for i := 1; i < len(v); i++ {
			if rising && v[i-1] < mid && v[i] >= mid || !rising && v[i-1] > mid && v[i] <= mid {
				f := (mid - v[i-1]) / (v[i] - v[i-1])
				return ts[i-1] + f*(ts[i]-ts[i-1])
			}
		}
		return -1
	}
	tin := cross(vi, true)
	tout := cross(vo, false)
	if tin < 0 || tout < 0 {
		return -1
	}
	return (tout - tin) * 1e3
}
