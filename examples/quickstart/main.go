// Quickstart: build the paper's device, fit the fast Model 2, and
// compare one operating point against the full theory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cntfet"
)

func main() {
	dev := cntfet.DefaultDevice() // 1 nm tube, ZrO2 gate, EF=-0.32 eV, 300 K

	// The slow path: full ballistic theory (numerical Fermi-Dirac
	// integration + Newton-Raphson), as implemented by FETToy.
	theory, err := cntfet.NewReference(dev)
	if err != nil {
		log.Fatal(err)
	}

	// The fast path: the paper's Model 2. Fitting samples the theory
	// once; afterwards every evaluation is closed-form.
	fast, err := cntfet.NewModel2(dev)
	if err != nil {
		log.Fatal(err)
	}

	bias := cntfet.Bias{VG: 0.6, VD: 0.6}

	t0 := time.Now()
	opTheory, err := theory.Solve(bias)
	if err != nil {
		log.Fatal(err)
	}
	tTheory := time.Since(t0)

	t0 = time.Now()
	opFast, err := fast.Solve(bias)
	if err != nil {
		log.Fatal(err)
	}
	tFast := time.Since(t0)

	fmt.Printf("device: d=%.1fnm tox=%.1fnm kappa=%g EF=%geV T=%gK\n",
		dev.Diameter*1e9, dev.Tox*1e9, dev.Kappa, dev.EF, dev.T)
	fmt.Printf("bias: VG=%gV VDS=%gV\n\n", bias.VG, bias.VD)
	fmt.Printf("%-22s %-14s %-14s\n", "", "theory(FETToy)", "Model 2")
	fmt.Printf("%-22s %-14.4g %-14.4g\n", "IDS [A]", opTheory.IDS, opFast.IDS)
	fmt.Printf("%-22s %-14.4g %-14.4g\n", "VSC [V]", opTheory.VSC, opFast.VSC)
	fmt.Printf("%-22s %-14.4g %-14.4g\n", "QS [C/m]", opTheory.QS, opFast.QS)
	fmt.Printf("%-22s %-14v %-14v\n", "solve time", tTheory, tFast)
	fmt.Printf("\ncurrent deviation: %.2f%%\n",
		100*abs(opFast.IDS-opTheory.IDS)/opTheory.IDS)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
