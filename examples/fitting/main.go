// fitting explores the trade-off the paper's section IV leaves open:
// "It is possible to use more sections for an even higher accuracy but
// at some computational expense. We are currently investigating in
// more detail how the number of sections affects the trade-off between
// accuracy and speed."
//
// This example runs that investigation: it fits piecewise charge
// models with 3 to 6 regions (the paper's Models 1 and 2 plus two
// denser extensions), measures the IDS accuracy of each against the
// theory over the paper's bias grid, and times the closed-form
// evaluation.
//
//	go run ./examples/fitting
package main

import (
	"fmt"
	"log"
	"time"

	"cntfet"
	"cntfet/internal/report"
	"cntfet/internal/sweep"
	"cntfet/internal/units"
)

func main() {
	specs := []cntfet.Spec{
		cntfet.Model1Spec(),
		cntfet.Model2Spec(),
		{
			Name:     "Model 3 (5 regions)",
			Breaks:   []float64{-0.35, -0.15, -0.02, 0.12},
			Degrees:  []int{1, 2, 3, 3},
			ZeroTail: true,
		},
		{
			Name:     "Model 4 (6 regions)",
			Breaks:   []float64{-0.4, -0.22, -0.08, 0.0, 0.12},
			Degrees:  []int{1, 2, 3, 3, 3},
			ZeroTail: true,
		},
	}

	dev := cntfet.DefaultDevice()
	theory, err := cntfet.NewReference(dev)
	if err != nil {
		log.Fatal(err)
	}
	vgs := sweep.TableGates()
	vds := units.Linspace(0, 0.6, 31)
	famTheory, err := cntfet.Family(theory, vgs, vds)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable(
		"regions vs accuracy vs speed (paper section IV open question)",
		"spec", "regions", "fit time", "worst rms", "mean rms", "eval/op")
	for _, spec := range specs {
		t0 := time.Now()
		m, err := cntfet.FitFrom(theory, spec, cntfet.FitOptions{OptimizeBreaks: true})
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		fitTime := time.Since(t0)

		fam, err := cntfet.Family(m, vgs, vds)
		if err != nil {
			log.Fatal(err)
		}
		errs, err := cntfet.CompareFamilies(fam, famTheory)
		if err != nil {
			log.Fatal(err)
		}
		worst, mean := 0.0, 0.0
		for _, e := range errs {
			if e > worst {
				worst = e
			}
			mean += e
		}
		mean /= float64(len(errs))

		// Time the closed-form evaluation.
		const evals = 20000
		b := cntfet.Bias{VG: 0.5, VD: 0.3}
		t0 = time.Now()
		for i := 0; i < evals; i++ {
			if _, err := m.IDS(b); err != nil {
				log.Fatal(err)
			}
		}
		perOp := time.Since(t0) / evals

		tb.AddRow(
			spec.Name,
			fmt.Sprintf("%d", len(spec.Degrees)+1),
			fmt.Sprintf("%v", fitTime.Round(time.Millisecond)),
			fmt.Sprintf("%.2f%%", worst),
			fmt.Sprintf("%.2f%%", mean),
			perOp.String(),
		)
	}
	tb.Render(log.Writer())
	fmt.Println()
	fmt.Println("reading: accuracy improves with region count while the closed-form")
	fmt.Println("evaluation cost stays flat — the fit (done once per device) is the")
	fmt.Println("only place the extra regions cost anything.")
}
