// ivfamily regenerates the data of the paper's figure 7 — the family
// of drain-current characteristics at T=300 K, EF=-0.32 eV for gate
// voltages 0.3..0.6 V — from both the theory and Model 2, prints the
// per-gate RMS error, and draws the family in the terminal.
//
//	go run ./examples/ivfamily
package main

import (
	"fmt"
	"log"
	"os"

	"cntfet"
	"cntfet/internal/report"
	"cntfet/internal/sweep"
	"cntfet/internal/units"
)

func main() {
	dev := cntfet.DefaultDevice()
	theory, err := cntfet.NewReference(dev)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := cntfet.FitFrom(theory, cntfet.Model2Spec(), cntfet.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}

	vgs := sweep.PaperGates()
	vds := units.Linspace(0, 0.6, 31)

	famTheory, err := cntfet.Family(theory, vgs, vds)
	if err != nil {
		log.Fatal(err)
	}
	famFast, err := cntfet.Family(fast, vgs, vds)
	if err != nil {
		log.Fatal(err)
	}
	errs, err := cntfet.CompareFamilies(famFast, famTheory)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("figure 7: IDS(VDS) families, theory (*) vs Model 2 (o)")
	plot := report.NewASCIIPlot()
	plot.Height = 24
	plot.XLabel = "VDS [V]"
	plot.YLabel = "IDS [A]"
	for i := range famTheory {
		plot.Add('*', famTheory[i].VDS, famTheory[i].IDS)
		plot.Add('o', famFast[i].VDS, famFast[i].IDS)
	}
	plot.Render(os.Stdout)

	tb := report.NewTable("per-curve accuracy", "VG [V]", "IDS(0.6V) theory [A]", "Model 2 rms")
	for i, vg := range vgs {
		tb.AddRow(
			fmt.Sprintf("%.2f", vg),
			fmt.Sprintf("%.3g", famTheory[i].IDS[len(vds)-1]),
			fmt.Sprintf("%.2f%%", errs[i]),
		)
	}
	tb.Render(os.Stdout)
}
