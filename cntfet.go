// Package cntfet is a circuit-level modelling library for ballistic
// carbon-nanotube field-effect transistors, reproducing Kazmierski,
// Zhou and Al-Hashimi, "Efficient circuit-level modelling of ballistic
// CNT using piecewise non-linear approximation of mobile charge
// density" (DATE 2008).
//
// Two model families share one interface:
//
//   - the Reference model — the full ballistic transport theory
//     (Rahman et al. 2003, as implemented by the FETToy script): state
//     densities by numerical Fermi–Dirac integration and the
//     self-consistent voltage equation solved by Newton–Raphson; and
//   - the Piecewise models — the paper's contribution: the mobile
//     charge density approximated by C¹ piecewise polynomials of degree
//     ≤ 3 (Model 1: linear/quadratic/zero; Model 2:
//     linear/quadratic/cubic/zero), which makes the self-consistent
//     equation solvable in closed form and accelerates drain-current
//     evaluation by roughly three orders of magnitude at percent-level
//     accuracy.
//
// Quick start:
//
//	dev := cntfet.DefaultDevice()
//	fast, err := cntfet.NewModel2(dev)   // fits the charge curve once
//	if err != nil { ... }
//	ids, err := fast.IDS(cntfet.Bias{VG: 0.6, VD: 0.6})
//
// The internal packages build up the substrates (band structure,
// quadrature, root finding, polynomial fitting, a SPICE-like circuit
// simulator); this package is the supported public surface.
package cntfet

import (
	"context"

	"cntfet/internal/core"
	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/sweep"
)

// Device aliases the transistor parameter set. Voltages are in volts,
// energies in eV, lengths in metres, temperatures in kelvin.
type Device = fettoy.Device

// Bias is one operating point (source-referenced).
type Bias = fettoy.Bias

// OperatingPoint is a solved bias point: self-consistent voltage,
// current and terminal charges.
type OperatingPoint = fettoy.OperatingPoint

// GateGeometry selects the insulator electrostatics.
type GateGeometry = fettoy.GateGeometry

// Gate geometries.
const (
	Coaxial = fettoy.Coaxial
	Planar  = fettoy.Planar
)

// Reference is the full theoretical model (the accuracy and cost
// baseline).
type Reference = fettoy.Model

// ChargeTable tabulates the reference model's state-density integral
// for interpolated reuse; attach one with Reference.EnableTable to
// serve sweep Newton iterations without re-integrating.
type ChargeTable = fettoy.ChargeTable

// TableOptions tunes a ChargeTable (range, accuracy bound, grid caps).
type TableOptions = fettoy.TableOptions

// Piecewise is the paper's fast closed-form model.
type Piecewise = core.Model

// Spec describes a piecewise region structure.
type Spec = core.Spec

// FitOptions tunes the charge-curve fit.
type FitOptions = core.FitOptions

// FitQuality reports charge-fit accuracy.
type FitQuality = core.FitQuality

// Curve is one IDS(VDS) sweep at fixed VG.
type Curve = sweep.Curve

// Transistor is the interface both model families implement: the core
// capability set of internal/device (IDS plus the full operating
// point). Optional capabilities — warm start, batched rows, analytic
// gradients, cancellable pre-build — are part of the same family; see
// internal/device for discovery by type assertion.
type Transistor = device.Device

// Compile-time interface checks.
var (
	_ Transistor = (*Reference)(nil)
	_ Transistor = (*Piecewise)(nil)
)

// DefaultDevice returns the paper's figures-2-to-9 device: FETToy's
// nominal 1 nm tube under a coaxial 1.5 nm ZrO2 gate, EF = -0.32 eV,
// T = 300 K.
func DefaultDevice() Device { return fettoy.Default() }

// JaveyDevice returns the experimental device of section VI
// (d = 1.6 nm, tox = 50 nm back gate, EF = -0.05 eV).
func JaveyDevice() Device { return fettoy.Javey() }

// NewReference builds the theoretical model for a device.
func NewReference(dev Device) (*Reference, error) { return fettoy.New(dev) }

// Model1Spec returns the paper's three-piece region structure.
func Model1Spec() Spec { return core.Model1Spec() }

// Model2Spec returns the paper's four-piece region structure.
func Model2Spec() Spec { return core.Model2Spec() }

// NewModel1 fits the paper's Model 1 (linear/quadratic/zero) to a
// device. The construction samples the slow theory once; evaluation is
// closed-form afterwards.
func NewModel1(dev Device) (*Piecewise, error) {
	ref, err := fettoy.New(dev)
	if err != nil {
		return nil, err
	}
	return core.Model1(ref)
}

// NewModel2 fits the paper's Model 2 (linear/quadratic/cubic/zero).
func NewModel2(dev Device) (*Piecewise, error) {
	ref, err := fettoy.New(dev)
	if err != nil {
		return nil, err
	}
	return core.Model2(ref)
}

// NewPiecewise fits a custom region structure — the knob the paper's
// section IV leaves open ("more sections for an even higher accuracy
// but at some computational expense").
func NewPiecewise(dev Device, spec Spec, opt FitOptions) (*Piecewise, error) {
	ref, err := fettoy.New(dev)
	if err != nil {
		return nil, err
	}
	return core.Fit(ref, spec, opt)
}

// FitFrom fits a piecewise model reusing an existing reference model
// (avoids rebuilding the theory when both are needed, as every
// benchmark does).
func FitFrom(ref *Reference, spec Spec, opt FitOptions) (*Piecewise, error) {
	return core.Fit(ref, spec, opt)
}

// Quality scores a fitted model against its reference.
func Quality(ref *Reference, m *Piecewise, opt FitOptions) FitQuality {
	return core.Quality(ref, m, opt)
}

// Trace sweeps one IDS(VDS) curve at fixed gate voltage vg; vg and
// the vds grid are in volts (V).
func Trace(m Transistor, vg float64, vds []float64) (Curve, error) {
	return sweep.Trace(m, vg, vds)
}

// FamilyContext sweeps one curve per gate voltage on a shared VDS
// grid; both the vgs and vds grids are in volts (V). The context
// cancels the sweep between points.
func FamilyContext(ctx context.Context, m Transistor, vgs, vds []float64) ([]Curve, error) {
	return sweep.Family(ctx, m, vgs, vds)
}

// Family is FamilyContext with a background context; the vgs and vds
// grids are in volts (V). Kept as the convenience entry point for
// non-cancellable callers.
func Family(m Transistor, vgs, vds []float64) ([]Curve, error) {
	return FamilyContext(context.Background(), m, vgs, vds) //lint:allow ctxpropagate documented non-cancellable convenience shim
}

// FamilyParallelContext is FamilyContext with worker goroutines and
// chunked row scheduling — worthwhile for the reference model
// (~100 µs per point on direct quadrature, ~1 µs tabulated); the
// piecewise models are faster serially than the scheduling overhead
// (use FamilyBatch). Workers thread warm-start continuation along
// each VDS row. The vgs and vds grids are in volts (V); workers <= 0
// uses GOMAXPROCS.
func FamilyParallelContext(ctx context.Context, m Transistor, vgs, vds []float64, workers int) ([]Curve, error) {
	return sweep.FamilyParallel(ctx, m, vgs, vds, workers)
}

// FamilyParallel is FamilyParallelContext with a background context;
// the vgs and vds grids are in volts (V).
func FamilyParallel(m Transistor, vgs, vds []float64, workers int) ([]Curve, error) {
	return FamilyParallelContext(context.Background(), m, vgs, vds, workers) //lint:allow ctxpropagate documented non-cancellable convenience shim
}

// FamilyBatchContext is FamilyContext through the models' batched
// evaluation path: each VDS row is one IDSBatch call, which amortises
// per-point call overhead for the piecewise models and threads
// warm-start continuation for the reference model. The vgs and vds
// grids are in volts (V).
func FamilyBatchContext(ctx context.Context, m Transistor, vgs, vds []float64) ([]Curve, error) {
	return sweep.FamilyBatch(ctx, m, vgs, vds)
}

// FamilyBatch is FamilyBatchContext with a background context; the
// vgs and vds grids are in volts (V).
func FamilyBatch(m Transistor, vgs, vds []float64) ([]Curve, error) {
	return FamilyBatchContext(context.Background(), m, vgs, vds) //lint:allow ctxpropagate documented non-cancellable convenience shim
}

// RMSPercent computes the paper's per-curve error metric
// 100·sqrt(mean((I_model − I_ref)²))/mean(I_ref).
func RMSPercent(model, ref Curve) (float64, error) {
	return sweep.RMSPercent(model, ref)
}

// CompareFamilies returns RMSPercent per gate voltage (the body of
// tables II-IV).
func CompareFamilies(model, ref []Curve) ([]float64, error) {
	return sweep.CompareFamilies(model, ref)
}
