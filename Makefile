GO ?= go
# GATE_THRESHOLD is the fractional points/sec regression make benchgate
# tolerates before failing (0.15 = 15%). CI overrides it upward to ride
# out shared-runner noise.
GATE_THRESHOLD ?= 0.15

.PHONY: check lint vet build test race bench benchgate benchsmoke scalebench servesmoke shardsmoke

## check: the tier-1 gate — vet + cntlint, build, plain tests (the
## zero-alloc kernel guards only assert outside -race), race-enabled
## tests, a build-only smoke of the sweep benchmark (tiny grid, no
## timing assertion: timing under a loaded CI machine is noise), the
## sweep-service smoke, and the sharded-fleet smoke.
check: lint build test race benchsmoke servesmoke shardsmoke

## lint: go vet plus the project analyzer suite (cmd/cntlint):
## telemetry key registry, context propagation, float comparisons,
## atomic field discipline, unit documentation, error-wrap chains,
## zero-alloc annotations, sink/goroutine contracts and the error
## taxonomy <-> HTTP status map. Suppress a finding with
## //lint:allow <analyzer> <reason> on or above the line; cntlint
## -fix applies suggested fixes, -json/-github change the output.
lint: vet
	$(GO) run ./cmd/cntlint ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: telemetry overhead + solver benchmarks, then the before/after
## sweep-engine comparison. Writes BENCH_sweep.json at the repo root and
## fails if the batched engine is slower than the legacy scheduler.
bench:
	$(GO) test -bench=IDSTelemetry -benchmem ./internal/core/
	$(GO) run ./cmd/cntbench -sweepbench -assert-faster -out BENCH_sweep.json

## benchgate: the perf-regression gate — re-runs the sweep benchmark
## (with an untimed warm-up pass baked into the tool) and compares
## points/sec of the batched and closed-form serving paths against the
## checked-in BENCH_sweep.json baseline, failing when either regresses
## more than GATE_THRESHOLD. The fresh run lands in BENCH_gate.json
## (gitignored). Refresh the baseline by running make bench on the
## machine that owns it.
benchgate:
	$(GO) run ./cmd/cntbench -sweepbench -gate BENCH_sweep.json -gate-threshold $(GATE_THRESHOLD) -out BENCH_gate.json

## scalebench: the 1->N worker scaling curve for both model families
## (points/sec, efficiency, counter deltas per worker count). Writes
## BENCH_scale.json at the repo root.
scalebench:
	$(GO) run ./cmd/cntbench -scalebench -out BENCH_scale.json

benchsmoke:
	$(GO) run ./cmd/cntbench -sweepbench -points 9 -repeats 1 -out /dev/null

## servesmoke: end-to-end smoke of the sweep service — cntserve binds
## an ephemeral port, POSTs itself one family-sweep, asserts a 200
## with a non-empty family, scrapes /metrics through the Prometheus
## conformance checker, checks /metrics.json and /healthz, verifies
## the job's trace ID correlates the access log, job log and
## /debug/trace spans, re-runs the sweep streamed (incremental NDJSON
## frames bit-identical to the buffered rows, Trace-Id header in the
## log), restarts against the snapshot dir (reference charge table
## loaded from disk, zero rebuilds), and shuts down gracefully.
servesmoke:
	$(GO) run ./cmd/cntserve -selftest

## shardsmoke: end-to-end smoke of the sharded fleet — cntshard boots
## two in-process cntserve replicas behind the rendezvous router and
## asserts the routing contract: N distinct model keys build exactly N
## charge tables fleet-wide (affinity, stable Cntshard-Replica per
## key; re-posts are zero-build local hits), a streamed family sweep
## relays frame-by-frame bit-identical to the buffered rows, killing a
## key's home replica fails the key over to the survivor in hash order
## with a bit-identical answer, the router /healthz converges on the
## kill, and /metrics passes the Prometheus conformance checker with
## the cluster.route.* counters and per-replica health gauges.
shardsmoke:
	$(GO) run ./cmd/cntshard -selftest
