GO ?= go

.PHONY: check lint vet build test race bench benchsmoke servesmoke

## check: the tier-1 gate — vet + cntlint, build, race-enabled tests,
## a build-only smoke of the sweep benchmark (tiny grid, no timing
## assertion: timing under a loaded CI machine is noise), and the
## sweep-service smoke.
check: lint build race benchsmoke servesmoke

## lint: go vet plus the project analyzer suite (cmd/cntlint):
## telemetry key registry, context propagation, float comparisons,
## atomic field discipline, unit documentation. Suppress a finding
## with //lint:allow <analyzer> <reason> on or above the line.
lint: vet
	$(GO) run ./cmd/cntlint ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: telemetry overhead + solver benchmarks, then the before/after
## sweep-engine comparison. Writes BENCH_sweep.json at the repo root and
## fails if the batched engine is slower than the legacy scheduler.
bench:
	$(GO) test -bench=IDSTelemetry -benchmem ./internal/core/
	$(GO) run ./cmd/cntbench -sweepbench -assert-faster -out BENCH_sweep.json

benchsmoke:
	$(GO) run ./cmd/cntbench -sweepbench -points 9 -repeats 1 -out /dev/null

## servesmoke: end-to-end smoke of the sweep service — cntserve binds
## an ephemeral port, POSTs itself one family-sweep, asserts a 200
## with a non-empty family, scrapes /metrics through the Prometheus
## conformance checker, checks /metrics.json and /healthz, verifies
## the job's trace ID correlates the access log, job log and
## /debug/trace spans, and shuts down gracefully.
servesmoke:
	$(GO) run ./cmd/cntserve -selftest
