GO ?= go

.PHONY: check vet build test race bench

## check: the tier-1 gate — vet, build, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: telemetry overhead + solver benchmarks.
bench:
	$(GO) test -bench=IDSTelemetry -benchmem ./internal/core/
