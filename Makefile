GO ?= go

.PHONY: check vet build test race bench benchsmoke

## check: the tier-1 gate — vet, build, race-enabled tests, and a
## build-only smoke of the sweep benchmark (tiny grid, no timing
## assertion: timing under a loaded CI machine is noise).
check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: telemetry overhead + solver benchmarks, then the before/after
## sweep-engine comparison. Writes BENCH_sweep.json at the repo root and
## fails if the batched engine is slower than the legacy scheduler.
bench:
	$(GO) test -bench=IDSTelemetry -benchmem ./internal/core/
	$(GO) run ./cmd/cntbench -sweepbench -assert-faster -out BENCH_sweep.json

benchsmoke:
	$(GO) run ./cmd/cntbench -sweepbench -points 9 -repeats 1 -out /dev/null
