module cntfet

go 1.24
