// Command cntrms reproduces the accuracy tables of the paper:
//
//	cntrms -table 2    table II:  RMS% of Models 1-2 vs theory, EF=-0.32eV
//	cntrms -table 3    table III: same at EF=-0.5eV
//	cntrms -table 4    table IV:  same at EF=0eV
//	cntrms -table 5    table V:   RMS% vs (synthetic) experiment, Javey device
//
// Each of tables II-IV spans T ∈ {150, 300, 450} K and VG 0.1..0.6 V
// with VDS swept 0..0.6 V per cell.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cntfet"
	"cntfet/internal/engine"
	"cntfet/internal/expdata"
	"cntfet/internal/report"
	"cntfet/internal/sweep"
)

func main() {
	table := flag.Int("table", 2, "paper table to regenerate (2-5)")
	optimize := flag.Bool("optimize", false, "re-optimise region boundaries per device for tables 2-4 (the paper's numerical boundary selection)")
	paperBreaks := flag.Bool("paperbreaks", false, "table 5: keep the nominal-device breakpoints instead of re-deriving them for the weak-gate Javey device")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch *table {
	case 2:
		err = accuracyTable(ctx, -0.32, "Table II: average RMS errors in IDS, EF=-0.32eV", *optimize)
	case 3:
		err = accuracyTable(ctx, -0.5, "Table III: average RMS errors in IDS, EF=-0.5eV", *optimize)
	case 4:
		err = accuracyTable(ctx, 0, "Table IV: average RMS errors in IDS, EF=0eV", *optimize)
	case 5:
		// The Javey back-gate device has CΣ ~27x below the nominal
		// device, which amplifies charge-fit error; the paper's
		// breakpoints are a fit *result* for the nominal device, so
		// table V re-derives them per the paper's method by default.
		err = experimentTable(ctx, !*paperBreaks)
	default:
		err = fmt.Errorf("unknown table %d", *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntrms:", err)
		if errors.Is(err, engine.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// accuracyTable builds one of tables II-IV: rows are gate voltages,
// column pairs are (Model 1, Model 2) per temperature.
func accuracyTable(ctx context.Context, ef float64, title string, optimize bool) error {
	temps := []float64{150, 300, 450}
	vgs := sweep.TableGates()
	vds := sweep.Grid()

	cells := make(map[float64][2][]float64) // temp -> [model1, model2] errors per VG
	for _, temp := range temps {
		dev := cntfet.DefaultDevice()
		dev.EF = ef
		dev.T = temp
		ref, err := cntfet.NewReference(dev)
		if err != nil {
			return err
		}
		// The reference family is swept once per temperature and reused
		// as the precomputed RefFamily of both models' compare jobs.
		refJob, err := engine.Run(ctx, engine.Request{
			Kind:     engine.FamilySweep,
			Model:    ref,
			Gates:    vgs,
			Drains:   vds,
			Strategy: engine.Serial,
		})
		if err != nil {
			return err
		}
		var pair [2][]float64
		for mi, spec := range []cntfet.Spec{cntfet.Model1Spec(), cntfet.Model2Spec()} {
			m, err := cntfet.FitFrom(ref, spec, cntfet.FitOptions{OptimizeBreaks: optimize})
			if err != nil {
				return err
			}
			cmp, err := engine.Run(ctx, engine.Request{
				Kind:      engine.RMSCompare,
				Model:     m,
				RefFamily: refJob.Family,
				Gates:     vgs,
				Drains:    vds,
				Strategy:  engine.Serial,
			})
			if err != nil {
				return err
			}
			pair[mi] = cmp.RMSPercent
		}
		cells[temp] = pair
	}

	tb := report.NewTable(title,
		"VG[V]",
		"150K M1", "150K M2",
		"300K M1", "300K M2",
		"450K M1", "450K M2")
	for gi, vg := range vgs {
		row := []string{fmt.Sprintf("%.1f", vg)}
		for _, temp := range temps {
			pair := cells[temp]
			row = append(row,
				fmt.Sprintf("%.1f%%", pair[0][gi]),
				fmt.Sprintf("%.1f%%", pair[1][gi]))
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	return nil
}

// experimentTable builds table V: RMS of FETToy theory and both
// piecewise models against the synthetic experimental dataset.
func experimentTable(ctx context.Context, optimize bool) error {
	vgs := expdata.TableGates()
	vds := expdata.PaperVDS(41)
	ds, err := expdata.Generate(vgs, vds)
	if err != nil {
		return err
	}
	ref, err := cntfet.NewReference(cntfet.JaveyDevice())
	if err != nil {
		return err
	}
	m1, err := cntfet.FitFrom(ref, cntfet.Model1Spec(), cntfet.FitOptions{OptimizeBreaks: optimize})
	if err != nil {
		return err
	}
	m2, err := cntfet.FitFrom(ref, cntfet.Model2Spec(), cntfet.FitOptions{OptimizeBreaks: optimize})
	if err != nil {
		return err
	}

	// The experimental dataset is the fixed RefFamily every model is
	// compared against: one compare job per model column.
	expFam := make([]sweep.Curve, len(vgs))
	for i, vg := range vgs {
		exp, err := ds.Curve(vg)
		if err != nil {
			return err
		}
		expFam[i] = sweep.Curve{VG: vg, VDS: vds, IDS: exp}
	}
	models := []cntfet.Transistor{ref, m1, m2}
	errsByModel := make([][]float64, len(models))
	for mi, m := range models {
		cmp, err := engine.Run(ctx, engine.Request{
			Kind:      engine.RMSCompare,
			Model:     m,
			RefFamily: expFam,
			Gates:     vgs,
			Drains:    vds,
			Strategy:  engine.Serial,
		})
		if err != nil {
			return err
		}
		errsByModel[mi] = cmp.RMSPercent
	}

	tb := report.NewTable(
		"Table V: average RMS errors vs experiment, d=1.6nm tox=50nm T=300K EF=-0.05eV",
		"VG[V]", "FETToy", "Model 1", "Model 2")
	for gi, vg := range vgs {
		row := []string{fmt.Sprintf("%.1f", vg)}
		for mi := range models {
			row = append(row, fmt.Sprintf("%.1f%%", errsByModel[mi][gi]))
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println("\nexperiment = deterministic synthetic stand-in (see internal/expdata); paper band: 7-11%")
	return nil
}
