package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestAccuracyTableStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is not short")
	}
	out := capture(t, func() error {
		return accuracyTable(context.Background(), -0.32, "Table II: test run", false)
	})
	if !strings.Contains(out, "Table II") {
		t.Fatalf("title missing:\n%s", out)
	}
	for _, col := range []string{"150K M1", "300K M2", "450K M2"} {
		if !strings.Contains(out, col) {
			t.Fatalf("column %q missing:\n%s", col, out)
		}
	}
	// Six gate-voltage rows.
	if rows := strings.Count(out, "%"); rows < 36 {
		t.Fatalf("only %d percent cells:\n%s", rows, out)
	}
}

func TestExperimentTableStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is not short")
	}
	out := capture(t, func() error { return experimentTable(context.Background(), true) })
	if !strings.Contains(out, "Table V") || !strings.Contains(out, "FETToy") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "synthetic stand-in") {
		t.Fatal("substitution note missing")
	}
}
