// Command cntshard is the fleet front-end: a consistent-hash router
// that spreads cntserve replicas' work by model identity. Every job
// names a model (family + device preset + T/EF overrides); cntshard
// rendezvous-hashes that canonical key — the same key the backends
// cache on — over a static replica set, so all jobs for one model land
// on one replica and its charge table or piecewise fit is built once
// fleet-wide instead of once per replica.
//
//	cntshard -replicas host1:8080,host2:8080          route on :8090
//	cntshard -addr :9000 -replicas ...                route elsewhere
//	cntshard -retries 2 -backoff 100ms -replicas ...  tighter failover
//	cntshard -selftest                                one-shot smoke: boot
//	                                                  two in-process
//	                                                  replicas, verify
//	                                                  affinity, streaming,
//	                                                  failover and the
//	                                                  operational
//	                                                  endpoints, exit
//
// Endpoints:
//
//	POST /v1/jobs       route one job to its home replica (failover on
//	                    down/5xx/429 along the key's hash order)
//	GET  /healthz       the router's replica view (per-replica health)
//	GET  /metrics       Prometheus text exposition (cluster.route.*
//	                    counters, per-replica health gauges)
//	GET  /metrics.json  the JSON telemetry snapshot
//
// Responses — buffered JSON and streamed NDJSON alike — are relayed
// verbatim with per-frame flushing, plus a Cntshard-Replica header
// naming the replica that served. Replicas are health-checked with
// jittered active probes, so one that restarts re-enters rotation
// without touching the router.
//
// SIGINT/SIGTERM trigger a graceful shutdown: probes stop, the
// listener closes, in-flight relays drain (bounded by -drain).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cntfet/internal/cluster"
	"cntfet/internal/server"
	"cntfet/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated cntserve base URLs (required unless -selftest)")
	retries := flag.Int("retries", 0, "max replicas one job may try, first attempt included (0 = all)")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "delay before the second attempt, doubling per retry (capped at 10x)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "active health-check period (jittered ±25%)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "deadline for one replica /healthz probe")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes (bodies are buffered for retry replay)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight relays")
	selftest := flag.Bool("selftest", false, "boot a two-replica in-process fleet, exercise routing end to end, exit")
	flag.Parse()

	telemetry.Enable()

	if *selftest {
		if err := runSelftest(*drain); err != nil {
			fmt.Fprintln(os.Stderr, "cntshard: selftest:", err)
			os.Exit(1)
		}
		fmt.Println("cntshard: selftest ok")
		return
	}

	if *replicas == "" {
		fmt.Fprintln(os.Stderr, "cntshard: -replicas is required (comma-separated cntserve base URLs)")
		os.Exit(2)
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:      strings.Split(*replicas, ","),
		Retries:       *retries,
		Backoff:       *backoff,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		MaxBody:       *maxBody,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntshard:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stopProbes := rt.StartProbes(ctx)
	defer stopProbes()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	//lint:allow goroutine errc is buffered (cap 1) and ListenAndServe returns exactly once, so the send never blocks
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cntshard: routing %s across %s\n", *addr, *replicas)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cntshard:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cntshard: shutting down, draining in-flight relays")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cntshard: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cntshard:", err)
		os.Exit(1)
	}
}

// replicaProc is one in-process cntserve replica the selftest can
// address and kill.
type replicaProc struct {
	srv  *server.Server
	base string
	errc chan error
}

func startReplica() (*replicaProc, error) {
	srv := server.New(server.Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &replicaProc{srv: srv, base: fmt.Sprintf("http://%s", l.Addr()), errc: make(chan error, 1)}
	//lint:allow goroutine errc is buffered (cap 1) and Serve returns exactly once, so the send never blocks
	go func() { p.errc <- srv.Serve(l) }()
	return p, nil
}

func (p *replicaProc) kill(drainBudget time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	if err := p.srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-p.errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runSelftest is the `make shardsmoke` body: a two-replica in-process
// fleet behind one router, asserting the whole routing contract.
//
//	(a) affinity   — N distinct model keys each build their charge
//	                 table on exactly one replica: the fleet-wide
//	                 fettoy.table.builds delta is exactly N, re-posting
//	                 every key moves it by zero, and each key's
//	                 Cntshard-Replica header is stable.
//	(b) streaming  — a family sweep streamed through the router
//	                 delivers the buffered rows bit-for-bit, frame by
//	                 frame.
//	(c) failover   — killing a key's home replica reroutes the key to
//	                 the survivor in hash order, the answer is
//	                 bit-identical, and the failover counter moves.
//	(d) health     — the router's /healthz reports the dead replica
//	                 out of rotation and the survivor in.
//	(e) metrics    — /metrics is valid Prometheus exposition carrying
//	                 the cluster.route.* counters and per-replica
//	                 health gauges.
//
// The replicas live in one process, so all telemetry lands in one
// registry: counter deltas below are fleet-wide sums, which is exactly
// the quantity the sharding is supposed to minimise.
func runSelftest(drainBudget time.Duration) error {
	r0, err := startReplica()
	if err != nil {
		return err
	}
	r1, err := startReplica()
	if err != nil {
		return err
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:      []string{r0.base, r1.base},
		Backoff:       5 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopProbes := rt.StartProbes(ctx)
	defer stopProbes()

	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	front := &http.Server{Handler: rt.Handler()}
	fErrc := make(chan error, 1)
	//lint:allow goroutine fErrc is buffered (cap 1) and Serve returns exactly once, so the send never blocks
	go func() { fErrc <- front.Serve(fl) }()
	base := fmt.Sprintf("http://%s", fl.Addr())
	client := &http.Client{Timeout: 30 * time.Second}
	reg := telemetry.Default()

	// (a) One charge-table build per model key, fleet-wide. Reference
	// models at distinct temperatures are distinct keys, each owning a
	// full tabulation — the expensive object the routing shards.
	keys := []string{
		`{"kind": "iv-point", "model": {"family": "reference", "t": 250}, "vg": 0.5, "vd": 0.4}`,
		`{"kind": "iv-point", "model": {"family": "reference", "t": 300}, "vg": 0.5, "vd": 0.4}`,
		`{"kind": "iv-point", "model": {"family": "reference", "t": 350}, "vg": 0.5, "vd": 0.4}`,
	}
	buildsBefore := reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	homes := make([]string, len(keys))
	ids := make([]float64, len(keys))
	for i, body := range keys {
		ids[i], homes[i], err = postJob(client, base, body)
		if err != nil {
			return fmt.Errorf("key %d (cold): %w", i, err)
		}
		if homes[i] == "" {
			return fmt.Errorf("key %d: response missing %s header", i, cluster.ReplicaHeader)
		}
	}
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != int64(len(keys)) {
		return fmt.Errorf("fleet built %d charge tables for %d distinct keys, want exactly one each", d, len(keys))
	}
	localBefore := reg.Counter(telemetry.KeyClusterRouteLocalHit).Value()
	for i, body := range keys {
		again, rep, err := postJob(client, base, body)
		if err != nil {
			return fmt.Errorf("key %d (repeat): %w", i, err)
		}
		if rep != homes[i] {
			return fmt.Errorf("key %d moved from %s to %s between posts: affinity broken", i, homes[i], rep)
		}
		if again != ids[i] { //lint:allow floatcmp a cached table must answer bit-identically
			return fmt.Errorf("key %d repeat IDS %g differs from first answer %g", i, again, ids[i])
		}
	}
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != int64(len(keys)) {
		return fmt.Errorf("re-posting cached keys built %d extra tables, want 0",
			d-int64(len(keys)))
	}
	if d := reg.Counter(telemetry.KeyClusterRouteLocalHit).Value() - localBefore; d != int64(len(keys)) {
		return fmt.Errorf("local_hit moved by %d across %d home-served repeats", d, len(keys))
	}

	// (b) Streaming through the router: buffered and streamed answers
	// for the same sweep must agree frame by frame, bit for bit.
	if err := checkStreamedSweep(client, base); err != nil {
		return err
	}

	// (c) Failover: kill key 0's home and re-post. The survivor must
	// answer — building its own table (builds +1, the cost of losing a
	// replica) — with a bit-identical result, counted as a failover.
	victim, survivor := r0, r1
	if homes[0] == r1.base {
		victim, survivor = r1, r0
	}
	if err := victim.kill(drainBudget); err != nil {
		return fmt.Errorf("killing home replica: %w", err)
	}
	failoverBefore := reg.Counter(telemetry.KeyClusterRouteFailover).Value()
	buildsBefore = reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	failedOver, rep, err := postJob(client, base, keys[0])
	if err != nil {
		return fmt.Errorf("key 0 after killing its home: %w", err)
	}
	if rep != survivor.base {
		return fmt.Errorf("failover served by %s, want survivor %s", rep, survivor.base)
	}
	if failedOver != ids[0] { //lint:allow floatcmp failover must answer bit-identically to the lost home
		return fmt.Errorf("failover IDS %g differs from home answer %g", failedOver, ids[0])
	}
	if d := reg.Counter(telemetry.KeyClusterRouteFailover).Value() - failoverBefore; d != 1 {
		return fmt.Errorf("failover counter moved by %d, want 1", d)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != 1 {
		return fmt.Errorf("survivor built %d tables for the failed-over key, want 1", d)
	}

	// (d) The router's health view converges on the kill: the victim
	// out of rotation, the survivor in, overall status still ok.
	if err := waitForHealthView(client, base, victim.base, survivor.base); err != nil {
		return err
	}

	// (e) The scrape a real Prometheus would do, carrying the routing
	// counters and the per-replica gauges.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		return fmt.Errorf("/metrics content type %q, want %q", ct, telemetry.PromContentType)
	}
	if err := telemetry.ValidatePrometheus(strings.NewReader(string(prom))); err != nil {
		return fmt.Errorf("/metrics is not valid Prometheus exposition: %w", err)
	}
	for _, want := range []string{
		"cntfet_cluster_route_local_hit_total",
		"cntfet_cluster_route_failover_total",
		"cntfet_cluster_replica_0_healthy",
		"cntfet_cluster_replica_1_healthy",
	} {
		if !strings.Contains(string(prom), want) {
			return fmt.Errorf("/metrics missing %s:\n%s", want, prom)
		}
	}

	if err := survivor.kill(drainBudget); err != nil {
		return fmt.Errorf("stopping survivor: %w", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), drainBudget)
	defer shutCancel()
	if err := front.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("stopping router: %w", err)
	}
	if err := <-fErrc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// postJob posts one job body through the router and returns the
// response IDS plus the replica that served it.
func postJob(client *http.Client, base, body string) (float64, string, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var jr server.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		return 0, "", err
	}
	return jr.IDS, resp.Header.Get(cluster.ReplicaHeader), nil
}

// checkStreamedSweep runs one family sweep buffered and once streamed,
// both through the router, and asserts the streamed frames carry the
// buffered rows bit-for-bit.
func checkStreamedSweep(client *http.Client, base string) error {
	body := `{
		"kind": "family-sweep",
		"model": {"family": "model2"},
		"gates": [0.3, 0.45, 0.6],
		"drains": [0, 0.2, 0.4, 0.6]
	}`
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("buffered sweep via router: status %d: %s", resp.StatusCode, raw)
	}
	var buffered server.JobResponse
	if err := json.Unmarshal(raw, &buffered); err != nil {
		return err
	}
	if len(buffered.Family) != 3 {
		return fmt.Errorf("degenerate family via router: %s", raw)
	}

	streamBody := strings.Replace(body, `"kind"`, `"stream": true, "kind"`, 1)
	resp, err = client.Post(base+"/v1/jobs", "application/json", strings.NewReader(streamBody))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("streamed sweep via router: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("streamed sweep content type %q, want application/x-ndjson", ct)
	}
	if resp.Header.Get(cluster.ReplicaHeader) == "" {
		return fmt.Errorf("streamed sweep missing %s header", cluster.ReplicaHeader)
	}

	var rows int
	var done bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var frame server.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			return fmt.Errorf("bad stream frame %q: %w", sc.Text(), err)
		}
		switch {
		case frame.Row != nil:
			if frame.Row.Index != rows {
				return fmt.Errorf("row %d arrived with index %d", rows, frame.Row.Index)
			}
			want := buffered.Family[rows]
			for j := range want.IDS {
				if frame.Row.IDS[j] != want.IDS[j] { //lint:allow floatcmp streamed rows must match buffered bit-for-bit
					return fmt.Errorf("streamed row %d point %d: %g, buffered %g",
						rows, j, frame.Row.IDS[j], want.IDS[j])
				}
			}
			rows++
		case frame.Done != nil:
			done = true
		case frame.Error != nil:
			return fmt.Errorf("streamed sweep failed mid-stream: %s", frame.Error.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows != len(buffered.Family) || !done {
		return fmt.Errorf("stream delivered %d of %d rows (done=%v)", rows, len(buffered.Family), done)
	}
	return nil
}

// waitForHealthView polls the router's /healthz until it reports the
// victim out of rotation and the survivor in (the probe loop needs a
// cycle or two to converge after a kill).
func waitForHealthView(client *http.Client, base, victimBase, survivorBase string) error {
	deadline := time.Now().Add(5 * time.Second)
	var last []byte
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return err
		}
		last, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var h cluster.Health
		if err := json.Unmarshal(last, &h); err != nil {
			return fmt.Errorf("router /healthz not JSON: %w: %s", err, last)
		}
		view := map[string]bool{}
		for _, rep := range h.Replicas {
			view[rep.Base] = rep.Healthy
		}
		if h.Status == "ok" && len(h.Replicas) == 2 && !view[victimBase] && view[survivorBase] {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("router health never converged on the kill: %s", last)
}
