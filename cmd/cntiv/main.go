// Command cntiv regenerates the drain-current figures of the paper:
// families of IDS(VDS) characteristics from the reference (FETToy)
// theory and the piecewise models.
//
//	cntiv -fig 6       figure 6: T=300K, EF=-0.32eV, theory vs Model 1
//	cntiv -fig 7       figure 7: same bias grid, theory vs Model 2
//	cntiv -fig 8       figure 8: T=150K, EF=0eV, theory vs Model 2
//	cntiv -fig 9       figure 9: T=450K, EF=-0.5eV, theory vs Model 2
//	cntiv -fig 10      figure 10: Javey device, experiment vs theory vs Model 1
//	cntiv -fig 11      figure 11: experiment vs theory vs Model 2
//
// Custom sweeps: -t, -ef, -vg, -model override the figure presets.
// Output is CSV (one VDS column, one current column per curve and
// model); -plot adds an ASCII rendering. -metrics appends solver work
// counters as "# "-prefixed comment lines; -trace writes the reference
// model's solver event log (JSON lines) to a file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"cntfet"
	"cntfet/internal/engine"
	"cntfet/internal/expdata"
	"cntfet/internal/report"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
	"cntfet/internal/units"
)

// traceSink, when non-nil (-trace flag), is attached to the reference
// model built for the figure so its charge solves are logged.
var traceSink *telemetry.Trace

func main() {
	fig := flag.Int("fig", 6, "paper figure to regenerate (6-11); 0 for a custom sweep")
	temp := flag.Float64("t", 300, "temperature [K] for custom sweeps")
	ef := flag.Float64("ef", -0.32, "Fermi level [eV] for custom sweeps")
	vgList := flag.String("vg", "0.3,0.35,0.4,0.45,0.5,0.55,0.6", "comma-separated gate voltages [V]")
	modelNo := flag.Int("model", 2, "piecewise model for custom sweeps (1 or 2)")
	points := flag.Int("points", 61, "VDS points")
	plot := flag.Bool("plot", false, "append an ASCII plot")
	metrics := flag.Bool("metrics", false, "append solver work counters as # comment lines")
	traceFile := flag.String("trace", "", "write reference-solve event log (JSON lines) to this file")
	flag.Parse()

	if *metrics {
		telemetry.Enable()
	}
	if *traceFile != "" {
		telemetry.Enable()
		traceSink = telemetry.NewTrace(1 << 16)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *fig, *temp, *ef, *vgList, *modelNo, *points, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "cntiv:", err)
		if errors.Is(err, engine.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if traceSink != nil {
		f, err := os.Create(*traceFile)
		if err == nil {
			err = traceSink.WriteJSON(f)
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cntiv: trace export:", err)
			os.Exit(1)
		}
	}
	if *metrics {
		fmt.Println("# solver metrics:")
		if err := telemetry.Default().WriteText(os.Stdout, "# "); err != nil {
			fmt.Fprintln(os.Stderr, "cntiv:", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, fig int, temp, ef float64, vgList string, modelNo, points int, plot bool) error {
	switch fig {
	case 0:
		vgs, err := parseGates(vgList)
		if err != nil {
			return err
		}
		dev := cntfet.DefaultDevice()
		dev.T = temp
		dev.EF = ef
		return family(ctx, dev, vgs, units.Linspace(0, 0.6, points), modelNo, plot,
			fmt.Sprintf("custom sweep T=%gK EF=%geV", temp, ef))
	case 6:
		return family(ctx, cntfet.DefaultDevice(), sweep.PaperGates(), units.Linspace(0, 0.6, points), 1, plot,
			"figure 6: T=300K EF=-0.32eV, FETToy theory vs Model 1")
	case 7:
		return family(ctx, cntfet.DefaultDevice(), sweep.PaperGates(), units.Linspace(0, 0.6, points), 2, plot,
			"figure 7: T=300K EF=-0.32eV, FETToy theory vs Model 2")
	case 8:
		dev := cntfet.DefaultDevice()
		dev.T = 150
		dev.EF = 0
		return family(ctx, dev, units.Linspace(0.1, 0.6, 6), units.Linspace(0, 0.6, points), 2, plot,
			"figure 8: T=150K EF=0eV, FETToy theory vs Model 2")
	case 9:
		dev := cntfet.DefaultDevice()
		dev.T = 450
		dev.EF = -0.5
		return family(ctx, dev, units.Linspace(0.4, 0.6, 5), units.Linspace(0, 0.6, points), 2, plot,
			"figure 9: T=450K EF=-0.5eV, FETToy theory vs Model 2")
	case 10:
		return experimental(ctx, 1, points, plot)
	case 11:
		return experimental(ctx, 2, points, plot)
	default:
		return fmt.Errorf("unknown figure %d", fig)
	}
}

func parseGates(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad gate voltage %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func buildModels(dev cntfet.Device, modelNo int, optimize bool) (*cntfet.Reference, *cntfet.Piecewise, error) {
	ref, err := cntfet.NewReference(dev)
	if err != nil {
		return nil, nil, err
	}
	if traceSink != nil {
		ref.SetTrace(traceSink)
	}
	spec := cntfet.Model2Spec()
	if modelNo == 1 {
		spec = cntfet.Model1Spec()
	}
	fast, err := cntfet.FitFrom(ref, spec, cntfet.FitOptions{OptimizeBreaks: optimize})
	if err != nil {
		return nil, nil, err
	}
	return ref, fast, nil
}

func family(ctx context.Context, dev cntfet.Device, vgs, vds []float64, modelNo int, plot bool, title string) error {
	ref, fast, err := buildModels(dev, modelNo, false)
	if err != nil {
		return err
	}
	// One RMS-compare job sweeps both models on the shared grid and
	// scores the disagreement; Serial keeps the historical row-by-row
	// evaluation order.
	res, err := engine.Run(ctx, engine.Request{
		Kind:     engine.RMSCompare,
		Model:    fast,
		Ref:      ref,
		Gates:    vgs,
		Drains:   vds,
		Strategy: engine.Serial,
	})
	if err != nil {
		return err
	}
	famRef, famFast := res.RefFamily, res.Family
	fmt.Println(title)
	headers := []string{"vds"}
	cols := [][]float64{vds}
	for i, vg := range vgs {
		headers = append(headers,
			fmt.Sprintf("theory_vg%.2f", vg),
			fmt.Sprintf("model%d_vg%.2f", modelNo, vg))
		cols = append(cols, famRef[i].IDS, famFast[i].IDS)
	}
	if err := report.WriteCSV(os.Stdout, headers, cols...); err != nil {
		return err
	}
	for i, vg := range vgs {
		fmt.Printf("# VG=%.2f rms error %.2f%%\n", vg, res.RMSPercent[i])
	}
	if plot {
		drawFamilies(famRef, famFast)
	}
	return nil
}

func experimental(ctx context.Context, modelNo, points int, plot bool) error {
	ds, err := expdata.Generate(expdata.PaperGates(), expdata.PaperVDS(points))
	if err != nil {
		return err
	}
	// Breakpoints are re-derived for the weak-gate Javey device (the
	// paper's numerical boundary selection); the quoted ±0.08/±0.28 V
	// values are a fit result for the nominal device.
	ref, fast, err := buildModels(cntfet.JaveyDevice(), modelNo, true)
	if err != nil {
		return err
	}
	// Theory and piecewise model swept on the experimental grid; one
	// RMS-compare job produces both families.
	res, err := engine.Run(ctx, engine.Request{
		Kind:     engine.RMSCompare,
		Model:    fast,
		Ref:      ref,
		Gates:    ds.VG,
		Drains:   ds.VDS,
		Strategy: engine.Serial,
	})
	if err != nil {
		return err
	}
	famRef, famFast := res.RefFamily, res.Family
	fmt.Printf("figure %d: Javey device, experiment vs FETToy theory vs Model %d\n", 9+modelNo, modelNo)
	headers := []string{"vds"}
	cols := [][]float64{ds.VDS}
	for i, vg := range ds.VG {
		headers = append(headers,
			fmt.Sprintf("exp_vg%.1f", vg),
			fmt.Sprintf("theory_vg%.1f", vg),
			fmt.Sprintf("model%d_vg%.1f", modelNo, vg))
		cols = append(cols, ds.IDS[i], famRef[i].IDS, famFast[i].IDS)
	}
	if err := report.WriteCSV(os.Stdout, headers, cols...); err != nil {
		return err
	}
	if plot {
		drawFamilies(famRef, famFast)
	}
	return nil
}

func drawFamilies(ref, fast []sweep.Curve) {
	p := report.NewASCIIPlot()
	p.XLabel = "VDS [V]"
	p.YLabel = "IDS [A]"
	for i := range ref {
		p.Add('*', ref[i].VDS, ref[i].IDS)
		p.Add('o', fast[i].VDS, fast[i].IDS)
	}
	p.Render(os.Stdout)
	fmt.Println("legend: * theory   o piecewise model")
}
