package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestRunFigure7(t *testing.T) {
	out := capture(t, func() error { return run(context.Background(), 7, 300, -0.32, "", 2, 13, false) })
	if !strings.Contains(out, "figure 7") || !strings.Contains(out, "rms error") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "theory_vg0.60") {
		t.Fatalf("CSV headers missing:\n%s", out)
	}
}

func TestRunCustomSweep(t *testing.T) {
	out := capture(t, func() error { return run(context.Background(), 0, 300, -0.32, "0.4,0.6", 1, 7, true) })
	if !strings.Contains(out, "custom sweep") || !strings.Contains(out, "legend") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(context.Background(), 99, 300, -0.32, "", 2, 13, false); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run(context.Background(), 0, 300, -0.32, "abc", 2, 13, false); err == nil {
		t.Fatal("bad gate list accepted")
	}
}
