package main

import "testing"

// TestRepoLintsClean asserts the module itself satisfies the whole
// suite — the gate make lint enforces on every change.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	diags, err := Lint("", "cntfet/...")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestUnknownAnalyzer keeps the -run flag's error path honest.
func TestUnknownAnalyzer(t *testing.T) {
	if _, err := Lint("nosuch"); err == nil {
		t.Fatal("Lint(nosuch) succeeded, want error")
	}
}
