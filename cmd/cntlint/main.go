// Command cntlint is the project's multichecker: it runs the
// internal/analysis suite — telemetrykeys, ctxpropagate, floatcmp,
// atomicfield, unitsdoc — over the given package patterns and prints
// one line per finding. Exit status 2 means findings (the go vet
// convention), 1 means the tool itself failed, 0 means clean.
//
// Usage:
//
//	cntlint [-run name,name] [packages ...]
//
// With no patterns it checks ./... . Findings can be suppressed per
// line with //lint:allow <analyzer> (see internal/analysis); make lint
// runs this binary over the whole module.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cntfet/internal/analysis"
	"cntfet/internal/analysis/atomicfield"
	"cntfet/internal/analysis/ctxpropagate"
	"cntfet/internal/analysis/floatcmp"
	"cntfet/internal/analysis/telemetrykeys"
	"cntfet/internal/analysis/unitsdoc"
)

// suite is the full analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	atomicfield.Analyzer,
	ctxpropagate.Analyzer,
	floatcmp.Analyzer,
	telemetrykeys.Analyzer,
	unitsdoc.Analyzer,
}

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cntlint [-run name,name] [packages ...]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Println(a.Name)
		}
		return
	}
	diags, err := Lint(*run, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntlint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cntlint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}

// Lint loads the patterns (default ./...) and applies the selected
// analyzers (empty: the whole suite). Shared with the smoke test,
// which asserts the repo itself lints clean.
func Lint(runNames string, patterns ...string) ([]analysis.Diagnostic, error) {
	analyzers := suite
	if runNames != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader("").Load(patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(analyzers, pkgs)
}
