// Command cntlint is the project's multichecker: it runs the
// internal/analysis suite — atomicfield, ctxpropagate, errwrap,
// floatcmp, httpstatus, sinkcontract, telemetrykeys, unitsdoc,
// zeroalloc — over the given package patterns and prints one line per
// finding. Exit status 2 means findings (the go vet convention), 1
// means the tool itself failed, 0 means clean.
//
// Usage:
//
//	cntlint [-run name,name] [-json|-github] [-fix] [packages ...]
//
// With no patterns it checks ./... . Output modes:
//
//   - default: one human-readable line per finding
//   - -json: a JSON array of findings, for tooling
//   - -github: GitHub Actions workflow commands (::error ...), so CI
//     findings surface as inline annotations on the PR diff
//   - -fix: apply the suggested fixes some analyzers attach (errwrap's
//     %v→%w rewrite, sinkcontract's allow-annotation scaffold), write
//     the files, and report what remains; exit 2 only if findings
//     survive the rewrite
//
// Findings can be suppressed per line with //lint:allow <analyzer>
// (see internal/analysis); make lint runs this binary over the whole
// module.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cntfet/internal/analysis"
	"cntfet/internal/analysis/atomicfield"
	"cntfet/internal/analysis/ctxpropagate"
	"cntfet/internal/analysis/errwrap"
	"cntfet/internal/analysis/floatcmp"
	"cntfet/internal/analysis/httpstatus"
	"cntfet/internal/analysis/sinkcontract"
	"cntfet/internal/analysis/telemetrykeys"
	"cntfet/internal/analysis/unitsdoc"
	"cntfet/internal/analysis/zeroalloc"
)

// suite is the full analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	atomicfield.Analyzer,
	ctxpropagate.Analyzer,
	errwrap.Analyzer,
	floatcmp.Analyzer,
	httpstatus.Analyzer,
	sinkcontract.Analyzer,
	telemetrykeys.Analyzer,
	unitsdoc.Analyzer,
	zeroalloc.Analyzer,
}

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array")
	github := flag.Bool("github", false, "print findings as GitHub Actions ::error annotations")
	fix := flag.Bool("fix", false, "apply suggested fixes in place, report what remains")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cntlint [-run name,name] [-json|-github] [-fix] [packages ...]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range suite {
			fmt.Println(a.Name)
		}
		return
	}
	diags, err := Lint(*run, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntlint:", err)
		os.Exit(1)
	}
	if *fix {
		var applied int
		diags, applied, err = applyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cntlint:", err)
			os.Exit(1)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "cntlint: applied %d fix(es)\n", applied)
		}
	}
	switch {
	case *jsonOut:
		printJSON(diags)
	case *github:
		printGitHub(diags)
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cntlint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}

// Lint loads the patterns (default ./...) and applies the selected
// analyzers (empty: the whole suite). Shared with the smoke test,
// which asserts the repo itself lints clean.
func Lint(runNames string, patterns ...string) ([]analysis.Diagnostic, error) {
	analyzers := suite
	if runNames != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader("").Load(patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(analyzers, pkgs)
}

// applyFixes writes every suggested fix to disk and returns the
// findings that had none — the ones still demanding a human.
func applyFixes(diags []analysis.Diagnostic) (remaining []analysis.Diagnostic, applied int, err error) {
	var fixable []analysis.Diagnostic
	for _, d := range diags {
		if len(d.Fix) > 0 {
			fixable = append(fixable, d)
		} else {
			remaining = append(remaining, d)
		}
	}
	if len(fixable) == 0 {
		return remaining, 0, nil
	}
	files, err := analysis.ApplyFixes(fixable)
	if err != nil {
		return nil, 0, fmt.Errorf("apply fixes: %w", err)
	}
	for file, content := range files {
		info, err := os.Stat(file)
		if err != nil {
			return nil, 0, err
		}
		if err := os.WriteFile(file, content, info.Mode().Perm()); err != nil {
			return nil, 0, err
		}
	}
	return remaining, len(fixable), nil
}

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

func printJSON(diags []analysis.Diagnostic) {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
			Fixable:  len(d.Fix) > 0,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(findings)
}

// printGitHub emits one workflow command per finding. The runner
// parses these from stdout and renders them as inline annotations on
// the changed files.
func printGitHub(diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=cntlint/%s::%s\n",
			escapeProperty(relPath(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
			escapeProperty(d.Analyzer), escapeData(d.Message))
	}
}

// relPath relativizes an absolute diagnostic path against the working
// directory: annotations must use repo-relative paths to attach to
// the diff.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// escapeData escapes a workflow-command message per the Actions
// toolkit rules.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProperty escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func escapeProperty(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
