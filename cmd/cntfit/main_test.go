package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestRunModel1Regions(t *testing.T) {
	out := capture(t, func() error { return run(1, false, false, 300, -0.32, 0.2, 11) })
	for _, want := range []string{"Model 1", "linear on", "quadratic on", "zero on", "fit quality", "vsc,qs_model"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunModel2Compare(t *testing.T) {
	out := capture(t, func() error { return run(2, true, false, 300, -0.32, 0.2, 11) })
	if !strings.Contains(out, "qd_theory") || !strings.Contains(out, "3rd order") {
		t.Fatalf("compare columns missing:\n%s", out)
	}
}
