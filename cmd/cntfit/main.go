// Command cntfit fits the paper's piecewise charge models and prints
// the region structure, polynomial coefficients and charge curves —
// the data behind figures 2-5.
//
//	cntfit -model 1              figure 2 (three-piece QS regions)
//	cntfit -model 2              figure 3 (four-piece QS regions)
//	cntfit -model 1 -compare     figure 4 (QS, QD theory vs approx)
//	cntfit -model 2 -compare     figure 5
//	cntfit -model 2 -optimize    re-derive boundaries numerically
package main

import (
	"flag"
	"fmt"
	"os"

	"cntfet"
	"cntfet/internal/report"
	"cntfet/internal/units"
)

func main() {
	modelNo := flag.Int("model", 1, "piecewise model (1 or 2)")
	compare := flag.Bool("compare", false, "print theory vs approximation for QS and QD (figures 4/5)")
	optimize := flag.Bool("optimize", false, "re-optimise the region boundaries numerically")
	temp := flag.Float64("t", 300, "temperature [K]")
	ef := flag.Float64("ef", -0.32, "Fermi level [eV]")
	vds := flag.Float64("vds", 0.2, "drain bias for the QD curve in -compare mode [V]")
	points := flag.Int("points", 41, "output samples across the VSC window")
	flag.Parse()

	if err := run(*modelNo, *compare, *optimize, *temp, *ef, *vds, *points); err != nil {
		fmt.Fprintln(os.Stderr, "cntfit:", err)
		os.Exit(1)
	}
}

func run(modelNo int, compare, optimize bool, temp, ef, vds float64, points int) error {
	dev := cntfet.DefaultDevice()
	dev.T = temp
	dev.EF = ef
	ref, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	spec := cntfet.Model1Spec()
	if modelNo == 2 {
		spec = cntfet.Model2Spec()
	}
	m, err := cntfet.FitFrom(ref, spec, cntfet.FitOptions{OptimizeBreaks: optimize})
	if err != nil {
		return err
	}

	fmt.Printf("%s  (T=%gK, EF=%geV, d=%gnm)\n", spec.Name, temp, ef, dev.Diameter*1e9)
	fmt.Println("regions (u = VSC - EF/q):")
	for _, r := range m.Spec().Regions() {
		fmt.Println("  " + r)
	}
	fmt.Printf("fitted breaks (u-space): %v\n", m.BreaksU())
	pw := m.PiecewiseU()
	for i, p := range pw.Pieces {
		fmt.Printf("piece %d: Q(u) = %s  [C/m]\n", i, p)
	}
	q := cntfet.Quality(ref, m, cntfet.FitOptions{})
	fmt.Printf("fit quality: rms %.3g C/m (%.2f%% of mean |Q|), continuity c0=%.2g c1=%.2g\n",
		q.RMS, 100*q.RMSRel, q.C0, q.C1)

	// Charge curve table (figure 2/3 series; with -compare also the
	// theory and drain curves of figures 4/5).
	lo := m.BreaksU()[0] - 0.25
	hi := m.BreaksU()[len(m.BreaksU())-1] + 0.1
	us := units.Linspace(lo, hi, points)
	vscs := make([]float64, len(us))
	qsFit := make([]float64, len(us))
	for i, u := range us {
		vscs[i] = u + dev.EF
		qsFit[i] = m.QS(vscs[i])
	}
	headers := []string{"vsc", "qs_model"}
	cols := [][]float64{vscs, qsFit}
	if compare {
		qsTheory := make([]float64, len(us))
		qdTheory := make([]float64, len(us))
		qdFit := make([]float64, len(us))
		for i, v := range vscs {
			qsTheory[i] = ref.QS(v)
			qdTheory[i] = ref.QD(v, vds)
			qdFit[i] = m.QD(v, vds)
		}
		headers = append(headers, "qs_theory", "qd_model", "qd_theory")
		cols = append(cols, qsTheory, qdFit, qdTheory)
	}
	return report.WriteCSV(os.Stdout, headers, cols...)
}
