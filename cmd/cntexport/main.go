// Command cntexport fits a piecewise CNT model and writes it as a
// portable artifact:
//
//	cntexport -model 2 -format json       machine-readable coefficients
//	cntexport -model 2 -format vhdl-ams   VHDL-AMS entity (the paper's
//	                                      reference-[14] deliverable)
//
// Device parameters are flags; the JSON artifact round-trips through
// the library (cntfet.FromData) without refitting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cntfet"
	"cntfet/internal/fettoy"
)

func main() {
	modelNo := flag.Int("model", 2, "piecewise model (1 or 2)")
	format := flag.String("format", "json", "output format: json or vhdl-ams")
	entity := flag.String("entity", "cntfet_piecewise", "VHDL entity name")
	d := flag.Float64("d", 1e-9, "tube diameter [m]")
	tox := flag.Float64("tox", 1.5e-9, "oxide thickness [m]")
	kappa := flag.Float64("kappa", 25, "oxide relative permittivity")
	ef := flag.Float64("ef", -0.32, "Fermi level [eV]")
	temp := flag.Float64("t", 300, "temperature [K]")
	planar := flag.Bool("planar", false, "planar (back-gate) geometry instead of coaxial")
	optimize := flag.Bool("optimize", false, "re-optimise region boundaries for this device")
	flag.Parse()

	if err := run(*modelNo, *format, *entity, *d, *tox, *kappa, *ef, *temp, *planar, *optimize); err != nil {
		fmt.Fprintln(os.Stderr, "cntexport:", err)
		os.Exit(1)
	}
}

func run(modelNo int, format, entity string, d, tox, kappa, ef, temp float64, planar, optimize bool) error {
	dev := cntfet.DefaultDevice()
	dev.Diameter = d
	dev.Tox = tox
	dev.Kappa = kappa
	dev.EF = ef
	dev.T = temp
	if planar {
		dev.Geometry = fettoy.Planar
	}
	spec := cntfet.Model2Spec()
	if modelNo == 1 {
		spec = cntfet.Model1Spec()
	}
	m, err := cntfet.NewPiecewise(dev, spec, cntfet.FitOptions{OptimizeBreaks: optimize})
	if err != nil {
		return err
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m.Export())
	case "vhdl-ams":
		return m.WriteVHDLAMS(os.Stdout, entity)
	default:
		return fmt.Errorf("unknown format %q (want json or vhdl-ams)", format)
	}
}
