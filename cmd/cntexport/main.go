// Command cntexport fits a piecewise CNT model and writes it as a
// portable artifact:
//
//	cntexport -model 2 -format json       machine-readable coefficients
//	cntexport -model 2 -format vhdl-ams   VHDL-AMS entity (the paper's
//	                                      reference-[14] deliverable)
//
// Device parameters are flags; the JSON artifact round-trips through
// the library (cntfet.FromData) without refitting.
//
// It also dumps and inspects reference charge-table snapshots — the
// binary warm-start artifact cntserve -snapshot-dir consumes:
//
//	cntexport -snapshot table.snap        tabulate the reference charge
//	                                      table for the flag-selected
//	                                      device and write its snapshot
//	cntexport -snapshot-info table.snap   verify a snapshot's checksum
//	                                      and print its identity (device,
//	                                      table options, grid size) as
//	                                      JSON
//
// A snapshot dumped here with default table options is byte-loadable
// by a server whose cache key names the same device: name the file
// "reference_<preset>_T=<T>_EF=<EF>.snap" inside the server's
// -snapshot-dir to pre-seed a fleet before first traffic.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cntfet"
	"cntfet/internal/fettoy"
)

func main() {
	modelNo := flag.Int("model", 2, "piecewise model (1 or 2)")
	format := flag.String("format", "json", "output format: json or vhdl-ams")
	entity := flag.String("entity", "cntfet_piecewise", "VHDL entity name")
	d := flag.Float64("d", 1e-9, "tube diameter [m]")
	tox := flag.Float64("tox", 1.5e-9, "oxide thickness [m]")
	kappa := flag.Float64("kappa", 25, "oxide relative permittivity")
	ef := flag.Float64("ef", -0.32, "Fermi level [eV]")
	temp := flag.Float64("t", 300, "temperature [K]")
	planar := flag.Bool("planar", false, "planar (back-gate) geometry instead of coaxial")
	optimize := flag.Bool("optimize", false, "re-optimise region boundaries for this device")
	snapshot := flag.String("snapshot", "", "build the reference charge table and write its snapshot to this file")
	snapshotInfo := flag.String("snapshot-info", "", "verify a charge-table snapshot and print its identity as JSON")
	flag.Parse()

	var err error
	switch {
	case *snapshotInfo != "":
		err = runSnapshotInfo(*snapshotInfo)
	case *snapshot != "":
		err = runSnapshot(*snapshot, *d, *tox, *kappa, *ef, *temp, *planar)
	default:
		err = run(*modelNo, *format, *entity, *d, *tox, *kappa, *ef, *temp, *planar, *optimize)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntexport:", err)
		os.Exit(1)
	}
}

// device assembles the flag-selected device.
func device(d, tox, kappa, ef, temp float64, planar bool) fettoy.Device {
	dev := cntfet.DefaultDevice()
	dev.Diameter = d
	dev.Tox = tox
	dev.Kappa = kappa
	dev.EF = ef
	dev.T = temp
	if planar {
		dev.Geometry = fettoy.Planar
	}
	return dev
}

// runSnapshot tabulates the reference charge table (default table
// options, the ones cntserve's cache uses) and snapshots it to path.
func runSnapshot(path string, d, tox, kappa, ef, temp float64, planar bool) error {
	m, err := fettoy.New(device(d, tox, kappa, ef, temp, planar))
	if err != nil {
		return err
	}
	tab := m.EnableTable(fettoy.TableOptions{})
	if err := tab.BuildContext(context.Background()); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tab.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cntexport: wrote %d-node charge table snapshot to %s\n", tab.Nodes(), path)
	return nil
}

// runSnapshotInfo checks a snapshot file end to end (magic, header,
// checksum) and prints its identity.
func runSnapshotInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := fettoy.ReadSnapshotInfo(f)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

func run(modelNo int, format, entity string, d, tox, kappa, ef, temp float64, planar, optimize bool) error {
	dev := device(d, tox, kappa, ef, temp, planar)
	spec := cntfet.Model2Spec()
	if modelNo == 1 {
		spec = cntfet.Model1Spec()
	}
	m, err := cntfet.NewPiecewise(dev, spec, cntfet.FitOptions{OptimizeBreaks: optimize})
	if err != nil {
		return err
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(m.Export())
	case "vhdl-ams":
		return m.WriteVHDLAMS(os.Stdout, entity)
	default:
		return fmt.Errorf("unknown format %q (want json or vhdl-ams)", format)
	}
}
