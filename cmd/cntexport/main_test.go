package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cntfet/internal/core"
	"cntfet/internal/fettoy"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestJSONExportRoundTrips(t *testing.T) {
	out := capture(t, func() error {
		return run(2, "json", "", 1e-9, 1.5e-9, 25, -0.32, 300, false, false)
	})
	var d core.ModelData
	if err := json.Unmarshal([]byte(out), &d); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	m, err := core.FromData(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().Name != "Model 2" {
		t.Fatalf("spec %q", m.Spec().Name)
	}
}

func TestVHDLExport(t *testing.T) {
	out := capture(t, func() error {
		return run(1, "vhdl-ams", "my_cnt", 1e-9, 1.5e-9, 25, -0.32, 300, false, false)
	})
	if !strings.Contains(out, "entity my_cnt is") || !strings.Contains(out, "Model 1") {
		t.Fatalf("VHDL output:\n%s", out)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	if err := run(2, "yaml", "", 1e-9, 1.5e-9, 25, -0.32, 300, false, false); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestSnapshotDumpRoundTrips is the snapshot-subcommand golden test:
// a dumped charge-table snapshot verifies and reports the right
// identity through -snapshot-info, and loads into a fresh table that
// answers lookups bit-identically to a direct build.
func TestSnapshotDumpRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.snap")
	if err := runSnapshot(path, 1e-9, 1.5e-9, 25, -0.32, 300, false); err != nil {
		t.Fatal(err)
	}

	out := capture(t, func() error { return runSnapshotInfo(path) })
	var info fettoy.SnapshotInfo
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatalf("snapshot-info not JSON: %v\n%s", err, out)
	}
	if info.Device.T != 300 || info.Device.EF != -0.32 || info.Nodes < 2 { //lint:allow floatcmp the snapshot must carry the flag values bit-exactly
		t.Fatalf("snapshot identity drifted: %+v", info)
	}

	// Load the file into a fresh table and compare against a direct
	// build of the same device: the adaptive tabulation is
	// deterministic, so every lookup must agree bit-for-bit.
	dev := device(1e-9, 1.5e-9, 25, -0.32, 300, false)
	mLoad, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	loaded := mLoad.EnableTable(fettoy.TableOptions{})
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := loaded.ReadSnapshot(f); err != nil {
		t.Fatal(err)
	}
	mBuild, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	built := mBuild.EnableTable(fettoy.TableOptions{})
	built.Build()
	if loaded.Nodes() != built.Nodes() {
		t.Fatalf("loaded %d nodes, direct build %d", loaded.Nodes(), built.Nodes())
	}
	for _, u := range []float64{-0.8, -0.32, 0, 0.17, 0.6} {
		ln, lnp := loaded.At(u)
		bn, bnp := built.At(u)
		if ln != bn || lnp != bnp { //lint:allow floatcmp a loaded snapshot must reproduce the built table bit-exactly
			t.Fatalf("lookup at u=%g differs: (%g,%g) vs (%g,%g)", u, ln, lnp, bn, bnp)
		}
	}
}

// TestSnapshotInfoRejectsGarbage checks the verification side: a
// non-snapshot file must fail, not print nonsense.
func TestSnapshotInfoRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.snap")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSnapshotInfo(path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestPlanarGeometryFlag(t *testing.T) {
	out := capture(t, func() error {
		return run(2, "json", "", 1.6e-9, 50e-9, 3.9, -0.05, 300, true, true)
	})
	if !strings.Contains(out, `"Geometry": 1`) {
		t.Fatalf("planar geometry not exported:\n%s", out)
	}
}
