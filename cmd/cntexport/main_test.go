package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"cntfet/internal/core"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return out
}

func TestJSONExportRoundTrips(t *testing.T) {
	out := capture(t, func() error {
		return run(2, "json", "", 1e-9, 1.5e-9, 25, -0.32, 300, false, false)
	})
	var d core.ModelData
	if err := json.Unmarshal([]byte(out), &d); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	m, err := core.FromData(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().Name != "Model 2" {
		t.Fatalf("spec %q", m.Spec().Name)
	}
}

func TestVHDLExport(t *testing.T) {
	out := capture(t, func() error {
		return run(1, "vhdl-ams", "my_cnt", 1e-9, 1.5e-9, 25, -0.32, 300, false, false)
	})
	if !strings.Contains(out, "entity my_cnt is") || !strings.Contains(out, "Model 1") {
		t.Fatalf("VHDL output:\n%s", out)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	if err := run(2, "yaml", "", 1e-9, 1.5e-9, 25, -0.32, 300, false, false); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestPlanarGeometryFlag(t *testing.T) {
	out := capture(t, func() error {
		return run(2, "json", "", 1.6e-9, 50e-9, 3.9, -0.05, 300, true, true)
	})
	if !strings.Contains(out, `"Geometry": 1`) {
		t.Fatalf("planar geometry not exported:\n%s", out)
	}
}
