package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunSmallStudy(t *testing.T) {
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run(200, 0.02, 0, 0.5, 0.4, 1, 8)
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IDS [A] (200 samples)", "mean", "p5 / p50 / p95", "linearised check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadCounts(t *testing.T) {
	if err := run(0, 0.02, 0, 0.5, 0.4, 1, 8); err == nil {
		t.Fatal("zero samples accepted")
	}
}
