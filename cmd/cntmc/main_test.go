package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"cntfet/internal/engine"
)

func TestRunSmallStudy(t *testing.T) {
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run(context.Background(), 200, 0.02, 0, 0.5, 0.4, 1, 8)
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IDS [A] (200 samples)", "mean", "p5 / p50 / p95", "linearised check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadCounts(t *testing.T) {
	err := run(context.Background(), 0, 0.02, 0, 0.5, 0.4, 1, 8)
	if err == nil {
		t.Fatal("zero samples accepted")
	}
	if !errors.Is(err, engine.ErrInvalidRequest) {
		t.Fatalf("want ErrInvalidRequest, got %v", err)
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, 200, 0.02, 0, 0.5, 0.4, 1, 8)
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}
