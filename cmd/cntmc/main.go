// Command cntmc runs process-variability Monte Carlo over a CNT
// transistor population and prints the drain-current distribution —
// the circuit-design workload the paper's >1000x model speedup exists
// for (a 10,000-sample doping study finishes in well under a second;
// through the FETToy-style theory it would take tens of minutes).
//
//	cntmc -n 10000 -efsigma 0.02               doping spread only (refit-free)
//	cntmc -n 200 -dsigma 0.04 -efsigma 0.02    adds diameter dispersion
//
// -debug-addr starts an HTTP server exposing net/http/pprof profiles
// and the solver telemetry snapshot at /debug/vars (expvar key
// "cntfet"); -metrics prints the counters to stderr after the run.
// Both enable the telemetry gate, so expect a few percent overhead on
// the per-sample time.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cntfet"
	"cntfet/internal/engine"
	"cntfet/internal/report"
	"cntfet/internal/telemetry"
	"cntfet/internal/variation"
)

func main() {
	n := flag.Int("n", 5000, "number of Monte Carlo samples")
	efSigma := flag.Float64("efsigma", 0.02, "Fermi-level sigma [eV]")
	dSigma := flag.Float64("dsigma", 0, "relative diameter sigma (enables per-sample refits)")
	vg := flag.Float64("vg", 0.5, "gate bias [V]")
	vd := flag.Float64("vd", 0.4, "drain bias [V]")
	seed := flag.Int64("seed", 1, "random seed")
	bins := flag.Int("bins", 15, "histogram bins")
	metrics := flag.Bool("metrics", false, "print solver work counters to stderr after the run")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar telemetry on this address (e.g. localhost:6060)")
	flag.Parse()

	if *metrics {
		telemetry.Enable()
	}
	if *debugAddr != "" {
		telemetry.Enable()
		expvar.Publish("cntfet", expvar.Func(func() any {
			return telemetry.Default().Snapshot()
		}))
		go func() {
			// DefaultServeMux already carries the pprof and expvar
			// handlers via their package imports.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cntmc: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cntmc: debug server on http://%s/debug/pprof/ and /debug/vars\n", *debugAddr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *n, *efSigma, *dSigma, *vg, *vd, *seed, *bins); err != nil {
		fmt.Fprintln(os.Stderr, "cntmc:", err)
		if errors.Is(err, engine.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "solver metrics:")
		if err := telemetry.Default().WriteText(os.Stderr, "  "); err != nil {
			fmt.Fprintln(os.Stderr, "cntmc:", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, n int, efSigma, dSigma, vg, vd float64, seed int64, bins int) error {
	dev := cntfet.DefaultDevice()
	bias := cntfet.Bias{VG: vg, VD: vd}
	spread := variation.Spread{EF: efSigma, DiameterRel: dSigma}

	job, err := engine.Run(ctx, engine.Request{
		Kind:    engine.MonteCarlo,
		Device:  dev,
		Spread:  spread,
		Bias:    bias,
		Samples: n,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	res := *job.MC
	elapsed := job.Elapsed

	fmt.Printf("device: d=%.2gnm EF=%geV T=%gK; bias VG=%gV VDS=%gV\n",
		dev.Diameter*1e9, dev.EF, dev.T, vg, vd)
	fmt.Printf("spread: sigma(EF)=%geV sigma(d)/d=%g\n\n", efSigma, dSigma)
	report.Histogram(os.Stdout, res.Samples, bins, "IDS [A]")
	tb := report.NewTable("", "statistic", "value")
	tb.AddRow("samples", fmt.Sprintf("%d", n))
	tb.AddRow("mean", fmt.Sprintf("%.4g A", res.Mean))
	tb.AddRow("std", fmt.Sprintf("%.4g A (%.1f%%)", res.Std, 100*res.Std/res.Mean))
	tb.AddRow("p5 / p50 / p95", fmt.Sprintf("%.4g / %.4g / %.4g A", res.P5, res.P50, res.P95))
	tb.AddRow("wall time", elapsed.String())
	tb.AddRow("per sample", (elapsed / time.Duration(n)).String())
	fmt.Println()
	tb.Render(os.Stdout)

	sens, err := variation.Sensitivity(dev, bias, 1e-3)
	if err != nil {
		return err
	}
	fmt.Printf("\nlinearised check: |dIDS/dEF|*sigma = %.4g A\n", sens*efSigma)
	return nil
}
