// Command cntbench reproduces Table I of the paper: average CPU time
// to compute the standard family of drain-current characteristics
// (seven gate voltages, VDS swept 0..0.6 V) with the FETToy-style
// reference model versus the piecewise Models 1 and 2, invoked in
// loops of 5, 10, 50 and 100 repetitions.
//
// Absolute times are hardware-dependent (the paper used MATLAB on a
// Pentium IV); the reproducible quantities are the *ratios* — the
// paper reports Model 1 ≈ 3400× and Model 2 ≈ 1100× faster — and the
// linear scaling of time with loop count.
//
// With -metrics the output becomes one JSON document with a "table"
// array and a "counters" block (quadrature evaluations, Newton
// iterations, piecewise region-dispatch counts, ...), so benchmark
// trajectories can correlate speedups with solver-work reduction.
// -trace writes the reference model's Newton residual trajectories as
// JSON lines, followed by the completed span records (charge-table
// builds and other instrumented stages) from the span tracer.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cntfet"
	"cntfet/internal/engine"
	"cntfet/internal/report"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
)

type options struct {
	metrics   bool
	traceFile string
}

func main() {
	loops := flag.String("loops", "5,10,50,100", "comma-separated loop counts")
	points := flag.Int("points", 61, "VDS points per curve")
	metrics := flag.Bool("metrics", false, "emit JSON with timing table and solver-work counters")
	traceFile := flag.String("trace", "", "write reference-solve event log (JSON lines) to this file")
	sweepBench := flag.Bool("sweepbench", false, "run the legacy/batched/closed-form sweep engine comparison instead of Table I")
	out := flag.String("out", "BENCH_sweep.json", "sweepbench/scalebench: output file (- for stdout)")
	repeats := flag.Int("repeats", 5, "sweepbench/scalebench: timed repetitions per path")
	workers := flag.Int("workers", 0, "sweepbench: sweep workers (0 = GOMAXPROCS)")
	assertFaster := flag.Bool("assert-faster", false, "sweepbench: exit non-zero if the batched path is slower")
	gate := flag.String("gate", "", "sweepbench: baseline BENCH_sweep.json to gate points/sec against (empty = no gate)")
	gateThreshold := flag.Float64("gate-threshold", 0.15, "sweepbench: allowed fractional points/sec regression vs the -gate baseline")
	scaleBench := flag.Bool("scalebench", false, "run the 1->N worker scaling curve for both families instead of Table I")
	scaleWorkers := flag.String("scale-workers", "", "scalebench: comma-separated worker counts (empty = 1..2*GOMAXPROCS powers of two)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sweepBench {
		if err := runSweepBench(*points, *repeats, *workers, *out, *assertFaster, *gate, *gateThreshold); err != nil {
			fmt.Fprintln(os.Stderr, "cntbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaleBench {
		outPath := *out
		if outPath == "BENCH_sweep.json" {
			outPath = "BENCH_scale.json" // scalebench's own default artifact
		}
		if err := runScaleBench(*points, *repeats, *scaleWorkers, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "cntbench:", err)
			os.Exit(1)
		}
		return
	}
	counts, err := parseInts(*loops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntbench:", err)
		os.Exit(1)
	}
	if err := run(ctx, counts, *points, options{metrics: *metrics, traceFile: *traceFile}); err != nil {
		fmt.Fprintln(os.Stderr, "cntbench:", err)
		if errors.Is(err, engine.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	var v int
	for len(s) > 0 {
		n, err := fmt.Sscanf(s, "%d", &v)
		if n != 1 || err != nil {
			return nil, fmt.Errorf("bad loop list %q", s)
		}
		out = append(out, v)
		for len(s) > 0 && s[0] != ',' {
			s = s[1:]
		}
		if len(s) > 0 {
			s = s[1:]
		}
	}
	return out, nil
}

// row is one loop-count measurement, JSON-ready for -metrics output.
type row struct {
	Loops      int     `json:"loops"`
	RefSeconds float64 `json:"ref_seconds"`
	M1Seconds  float64 `json:"m1_seconds"`
	M2Seconds  float64 `json:"m2_seconds"`
	SpeedupM1  float64 `json:"speedup_m1"`
	SpeedupM2  float64 `json:"speedup_m2"`
}

func run(ctx context.Context, counts []int, points int, opt options) error {
	if opt.metrics {
		telemetry.Enable()
	}
	dev := cntfet.DefaultDevice()
	ref, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	var tr *telemetry.Trace
	if opt.traceFile != "" {
		telemetry.Enable()
		tr = telemetry.NewTrace(1 << 16)
		ref.SetTrace(tr)
		// Spans ride along in the same file: the charge-table build and
		// any other instrumented stage land as span records after the
		// solver events.
		telemetry.DefaultTracer().SetEnabled(true)
	}
	m1, err := cntfet.FitFrom(ref, cntfet.Model1Spec(), cntfet.FitOptions{})
	if err != nil {
		return err
	}
	m2, err := cntfet.FitFrom(ref, cntfet.Model2Spec(), cntfet.FitOptions{})
	if err != nil {
		return err
	}
	vgs := sweep.PaperGates()
	vds := make([]float64, points)
	for i := range vds {
		vds[i] = 0.6 * float64(i) / float64(points-1)
	}

	// One engine job per (model, loop count): Repeat re-runs the family
	// inside the job, Strategy Serial preserves the paper's Table I
	// protocol (plain row-by-row evaluation, no batching or workers),
	// and Result.Elapsed is the measured wall time.
	timeLoops := func(m cntfet.Transistor, n int) (time.Duration, error) {
		res, err := engine.Run(ctx, engine.Request{
			Kind:     engine.FamilySweep,
			Model:    m,
			Gates:    vgs,
			Drains:   vds,
			Strategy: engine.Serial,
			Repeat:   n,
		})
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}

	var rows []row
	for _, n := range counts {
		tRef, err := timeLoops(ref, n)
		if err != nil {
			return err
		}
		t1, err := timeLoops(m1, n)
		if err != nil {
			return err
		}
		t2, err := timeLoops(m2, n)
		if err != nil {
			return err
		}
		rows = append(rows, row{
			Loops:      n,
			RefSeconds: tRef.Seconds(),
			M1Seconds:  t1.Seconds(),
			M2Seconds:  t2.Seconds(),
			SpeedupM1:  tRef.Seconds() / t1.Seconds(),
			SpeedupM2:  tRef.Seconds() / t2.Seconds(),
		})
	}

	if tr != nil {
		f, err := os.Create(opt.traceFile)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		if err := telemetry.DefaultTracer().WriteJSON(f); err != nil {
			return fmt.Errorf("span export: %w", err)
		}
	}

	if opt.metrics {
		snap := telemetry.Default().Snapshot()
		doc := struct {
			Table []row `json:"table"`
			telemetry.Snapshot
		}{Table: rows, Snapshot: snap}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	tb := report.NewTable(
		"Table I: average CPU time, family of IDS characteristics (7 gates x 61 VDS points)",
		"Loops", "FETToy(ref)", "Model 1", "Model 2", "speedup M1", "speedup M2")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%d", r.Loops),
			fmt.Sprintf("%.4gs", r.RefSeconds),
			fmt.Sprintf("%.4gs", r.M1Seconds),
			fmt.Sprintf("%.4gs", r.M2Seconds),
			fmt.Sprintf("%.0fx", r.SpeedupM1),
			fmt.Sprintf("%.0fx", r.SpeedupM2),
		)
	}
	tb.Render(os.Stdout)
	fmt.Println("\npaper reference: FETToy 64.4s..1287s; Model 1 ~3400x faster; Model 2 ~1100x faster")
	return nil
}
