// Command cntbench reproduces Table I of the paper: average CPU time
// to compute the standard family of drain-current characteristics
// (seven gate voltages, VDS swept 0..0.6 V) with the FETToy-style
// reference model versus the piecewise Models 1 and 2, invoked in
// loops of 5, 10, 50 and 100 repetitions.
//
// Absolute times are hardware-dependent (the paper used MATLAB on a
// Pentium IV); the reproducible quantities are the *ratios* — the
// paper reports Model 1 ≈ 3400× and Model 2 ≈ 1100× faster — and the
// linear scaling of time with loop count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cntfet"
	"cntfet/internal/report"
	"cntfet/internal/sweep"
)

func main() {
	loops := flag.String("loops", "5,10,50,100", "comma-separated loop counts")
	points := flag.Int("points", 61, "VDS points per curve")
	flag.Parse()

	counts, err := parseInts(*loops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntbench:", err)
		os.Exit(1)
	}
	if err := run(counts, *points); err != nil {
		fmt.Fprintln(os.Stderr, "cntbench:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	var v int
	for len(s) > 0 {
		n, err := fmt.Sscanf(s, "%d", &v)
		if n != 1 || err != nil {
			return nil, fmt.Errorf("bad loop list %q", s)
		}
		out = append(out, v)
		for len(s) > 0 && s[0] != ',' {
			s = s[1:]
		}
		if len(s) > 0 {
			s = s[1:]
		}
	}
	return out, nil
}

func run(counts []int, points int) error {
	dev := cntfet.DefaultDevice()
	ref, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	m1, err := cntfet.FitFrom(ref, cntfet.Model1Spec(), cntfet.FitOptions{})
	if err != nil {
		return err
	}
	m2, err := cntfet.FitFrom(ref, cntfet.Model2Spec(), cntfet.FitOptions{})
	if err != nil {
		return err
	}
	vgs := sweep.PaperGates()
	vds := make([]float64, points)
	for i := range vds {
		vds[i] = 0.6 * float64(i) / float64(points-1)
	}

	family := func(m cntfet.Transistor) error {
		_, err := cntfet.Family(m, vgs, vds)
		return err
	}
	timeLoops := func(m cntfet.Transistor, n int) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := family(m); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	tb := report.NewTable(
		"Table I: average CPU time, family of IDS characteristics (7 gates x 61 VDS points)",
		"Loops", "FETToy(ref)", "Model 1", "Model 2", "speedup M1", "speedup M2")
	for _, n := range counts {
		tRef, err := timeLoops(ref, n)
		if err != nil {
			return err
		}
		t1, err := timeLoops(m1, n)
		if err != nil {
			return err
		}
		t2, err := timeLoops(m2, n)
		if err != nil {
			return err
		}
		tb.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4gs", tRef.Seconds()),
			fmt.Sprintf("%.4gs", t1.Seconds()),
			fmt.Sprintf("%.4gs", t2.Seconds()),
			fmt.Sprintf("%.0fx", tRef.Seconds()/t1.Seconds()),
			fmt.Sprintf("%.0fx", tRef.Seconds()/t2.Seconds()),
		)
	}
	tb.Render(os.Stdout)
	fmt.Println("\npaper reference: FETToy 64.4s..1287s; Model 1 ~3400x faster; Model 2 ~1100x faster")
	return nil
}
