package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cntfet"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
)

// The worker-scaling benchmark behind cntbench -scalebench: the paper
// grid swept through the chunked parallel scheduler at a ladder of
// worker counts, once per model family (the table-backed reference and
// the closed-form Model 1), producing BENCH_scale.json. Efficiency is
// normalised against the same family's single-worker throughput, so
// the curve reads as "what does the Nth worker buy" — on a
// GOMAXPROCS=1 machine the ladder still includes oversubscribed
// counts, which measure scheduling overhead rather than speedup, and
// the recorded gomaxprocs disambiguates that.

// scalePoint is one (family, workers) measurement.
type scalePoint struct {
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
	// PerWorkerPointsPerSec is PointsPerSec / Workers.
	PerWorkerPointsPerSec float64 `json:"per_worker_points_per_sec"`
	// Efficiency is PointsPerSec / (Workers * single-worker
	// PointsPerSec) for the same family: 1.0 is perfect linear scaling.
	Efficiency float64          `json:"efficiency"`
	Counters   map[string]int64 `json:"counters"`
}

// scaleFamilyCurve is one model family's scaling curve.
type scaleFamilyCurve struct {
	Family string       `json:"family"`
	Points []scalePoint `json:"points"`
}

// scaleBenchDoc is the BENCH_scale.json schema.
type scaleBenchDoc struct {
	Gates   int `json:"gates"`
	Points  int `json:"points"`
	Repeats int `json:"repeats"`
	// GOMAXPROCS is the scheduler width of the measuring machine;
	// worker counts above it are oversubscribed on purpose.
	GOMAXPROCS   int                `json:"gomaxprocs"`
	WorkerCounts []int              `json:"worker_counts"`
	Families     []scaleFamilyCurve `json:"families"`
}

// defaultScaleWorkers is the ladder when -scale-workers is empty:
// powers of two from 1 through the first count at or above
// 2*GOMAXPROCS, so the curve always shows at least one oversubscribed
// point (on a 1-core machine: 1, 2).
func defaultScaleWorkers() []int {
	limit := 2 * runtime.GOMAXPROCS(0)
	var out []int
	for w := 1; ; w *= 2 {
		out = append(out, w)
		if w >= limit {
			return out
		}
	}
}

// runScaleBench measures the scaling curves and writes the JSON
// document to outPath ("-" for stdout).
func runScaleBench(points, repeats int, workerList, outPath string) error {
	if points < 2 {
		return fmt.Errorf("scalebench: need at least 2 VDS points, got %d", points)
	}
	if repeats < 1 {
		repeats = 1
	}
	counts := defaultScaleWorkers()
	if workerList != "" {
		var err error
		if counts, err = parseInts(workerList); err != nil {
			return fmt.Errorf("scalebench: %w", err)
		}
		for _, w := range counts {
			if w < 1 {
				return fmt.Errorf("scalebench: worker count %d < 1", w)
			}
		}
	}
	telemetry.Enable()
	defer telemetry.Disable()
	reg := telemetry.Default()

	dev := cntfet.DefaultDevice()
	ref, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	tbl := ref.EnableTable(cntfet.TableOptions{})
	m1, err := cntfet.FitFrom(ref, cntfet.Model1Spec(), cntfet.FitOptions{})
	if err != nil {
		return err
	}
	tbl.Build() // one-time tabulation outside every timed window

	vgs := sweep.PaperGates()
	vds := make([]float64, points)
	for i := range vds {
		vds[i] = 0.6 * float64(i) / float64(points-1)
	}
	grid := repeats * len(vgs) * len(vds)

	measure := func(m cntfet.Transistor, workers int) (scalePoint, error) {
		// Untimed warm-up settles one-time lazy state and the scheduler.
		if _, err := sweep.FamilyParallel(context.Background(), m, vgs, vds, workers); err != nil {
			return scalePoint{}, err
		}
		before := reg.Snapshot().Counters
		start := time.Now()
		for i := 0; i < repeats; i++ {
			if _, err := sweep.FamilyParallel(context.Background(), m, vgs, vds, workers); err != nil {
				return scalePoint{}, err
			}
		}
		secs := time.Since(start).Seconds()
		after := reg.Snapshot().Counters
		pt := scalePoint{
			Workers:  workers,
			Seconds:  secs,
			Counters: counterDelta(before, after),
		}
		if secs > 0 {
			pt.PointsPerSec = float64(grid) / secs
			pt.PerWorkerPointsPerSec = pt.PointsPerSec / float64(workers)
		}
		return pt, nil
	}

	doc := scaleBenchDoc{
		Gates:        len(vgs),
		Points:       len(vds),
		Repeats:      repeats,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		WorkerCounts: counts,
	}
	for _, fam := range []struct {
		name  string
		model cntfet.Transistor
	}{
		{"reference", ref},
		{"model1", m1},
	} {
		curve := scaleFamilyCurve{Family: fam.name}
		var base float64
		for _, w := range counts {
			pt, err := measure(fam.model, w)
			if err != nil {
				return fmt.Errorf("scalebench: %s at %d workers: %w", fam.name, w, err)
			}
			if w == 1 {
				base = pt.PointsPerSec
			}
			if base > 0 {
				pt.Efficiency = pt.PointsPerSec / (float64(w) * base)
			}
			curve.Points = append(curve.Points, pt)
		}
		doc.Families = append(doc.Families, curve)
	}

	var w io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return fmt.Errorf("scalebench: %w", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if outPath != "-" {
		fmt.Printf("scalebench: %d gates x %d points x %d repeats, GOMAXPROCS %d\n",
			doc.Gates, doc.Points, doc.Repeats, doc.GOMAXPROCS)
		for _, curve := range doc.Families {
			fmt.Printf("  %s:\n", curve.Family)
			for _, pt := range curve.Points {
				fmt.Printf("    %2d workers: %.3g points/s (%.0f%% efficiency)\n",
					pt.Workers, pt.PointsPerSec, pt.Efficiency*100)
			}
		}
	}
	return nil
}
