package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"cntfet/internal/telemetry"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("5,10,50")
	if err != nil || len(got) != 3 || got[2] != 50 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRunSingleLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run(context.Background(), []int{1}, 13, options{})
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "speedup") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestRunSweepBenchJSON checks the before/after sweep benchmark: the
// document must carry both paths' timings and counter deltas, the
// batched path must do dramatically less quadrature work, and the two
// engines must agree on IDS.
func TestRunSweepBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	defer telemetry.Disable()
	out := t.TempDir() + "/BENCH_sweep.json"
	if err := runSweepBench(13, 1, 2, out, false, "", 0.15); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc sweepBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not one JSON document: %v\n%s", err, raw)
	}
	if doc.Gates != 7 || doc.Points != 13 || doc.Repeats != 1 {
		t.Fatalf("grid metadata: %+v", doc)
	}
	wantPoints := int64(doc.Gates * doc.Points)
	for _, st := range []sweepPathStat{doc.Legacy, doc.Batched} {
		if st.Seconds <= 0 || st.PointsPerSec <= 0 {
			t.Fatalf("degenerate timing: %+v", st)
		}
		if st.Counters["sweep.points"] != wantPoints {
			t.Fatalf("sweep.points = %d, want %d", st.Counters["sweep.points"], wantPoints)
		}
	}
	if doc.Legacy.Counters["fettoy.integral_evals"] == 0 {
		t.Fatal("legacy path did no quadrature")
	}
	// The batched path serves the timed window from the table: at
	// least 10x fewer integrals (the acceptance bar) and table hits.
	if doc.IntegralEvalReduction < 10 {
		t.Fatalf("integral eval reduction %.1fx, want >= 10x", doc.IntegralEvalReduction)
	}
	if doc.Batched.Counters["fettoy.table.hits"] == 0 {
		t.Fatal("no table hits recorded")
	}
	if doc.TableNodes <= 0 || doc.TableBuildSeconds <= 0 {
		t.Fatalf("table build not reported: %+v", doc)
	}
	// Accuracy cross-check: the two engines agree to well under 0.1%.
	if doc.MaxRMSPercent >= 0.1 {
		t.Fatalf("paths disagree: max RMS %g%%", doc.MaxRMSPercent)
	}

	// The closed-form serving path: real timing, the full grid, zero
	// reference-model work (no Newton iterations, no quadrature), and
	// accuracy inside the paper's few-percent envelope.
	cf := doc.ClosedForm
	if cf.Seconds <= 0 || cf.PointsPerSec <= 0 || cf.Workers != 2 {
		t.Fatalf("degenerate closed-form timing: %+v", cf)
	}
	if cf.Counters["sweep.points"] != wantPoints {
		t.Fatalf("closed-form sweep.points = %d, want %d", cf.Counters["sweep.points"], wantPoints)
	}
	if cf.Counters["fettoy.newton_iters"] != 0 || cf.Counters["fettoy.integral_evals"] != 0 {
		t.Fatalf("closed-form path did reference work: %v", cf.Counters)
	}
	if cf.Counters["core.solves"] != wantPoints {
		t.Fatalf("core.solves = %d, want %d", cf.Counters["core.solves"], wantPoints)
	}
	// Worst-gate bound matching the repo's Model 1 envelope (10% per
	// gate — the subthreshold curves dominate; on-state gates sit at a
	// few percent, see core_test.go).
	if doc.ClosedFormMaxRMSPercent <= 0 || doc.ClosedFormMaxRMSPercent >= 10 {
		t.Fatalf("closed-form accuracy out of envelope: %g%%", doc.ClosedFormMaxRMSPercent)
	}
	if doc.GOMAXPROCS <= 0 || doc.Batched.PerWorkerPointsPerSec <= 0 {
		t.Fatalf("parallelism metadata missing: %+v", doc)
	}

	// Gating against the run's own output must pass; a baseline with an
	// unreachable throughput floor must fail.
	if err := runSweepBench(13, 1, 2, t.TempDir()+"/gate.json", false, out, 0.60); err != nil {
		t.Fatalf("self-gate failed: %v", err)
	}
	inflated := doc
	inflated.Batched.PointsPerSec *= 1e6
	hot, err := os.CreateTemp(t.TempDir(), "hot*.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(hot).Encode(inflated); err != nil {
		t.Fatal(err)
	}
	hot.Close()
	if err := runSweepBench(13, 1, 2, t.TempDir()+"/gate2.json", false, hot.Name(), 0.15); err == nil {
		t.Fatal("gate passed against an impossible baseline")
	}
}

// TestRunMetricsJSON checks the acceptance shape of `cntbench -metrics`:
// one JSON document with a timing table and a counters block covering
// quadrature work, Newton iterations and piecewise region dispatch.
func TestRunMetricsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	defer telemetry.Disable()
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run(context.Background(), []int{1}, 13, options{metrics: true})
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Table    []row            `json:"table"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not one JSON document: %v\n%s", err, out)
	}
	if len(doc.Table) != 1 || doc.Table[0].Loops != 1 {
		t.Fatalf("table = %+v", doc.Table)
	}
	for _, key := range []string{
		"fettoy.quad_points", "fettoy.newton_iters", "core.solves",
	} {
		if doc.Counters[key] <= 0 {
			t.Fatalf("counter %s = %d, want > 0 (counters: %v)", key, doc.Counters[key], doc.Counters)
		}
	}
	dispatch := int64(0)
	for k, v := range doc.Counters {
		if strings.HasPrefix(k, "core.dispatch.") {
			dispatch += v
		}
	}
	if dispatch <= 0 {
		t.Fatalf("no region-dispatch counts in %v", doc.Counters)
	}
}

// TestRunScaleBenchJSON checks the BENCH_scale.json schema: one curve
// per family over the requested worker ladder, sane efficiency
// normalisation, and the expected per-family work fingerprints.
func TestRunScaleBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	defer telemetry.Disable()
	out := t.TempDir() + "/BENCH_scale.json"
	if err := runScaleBench(13, 1, "1,2", out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc scaleBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not one JSON document: %v\n%s", err, raw)
	}
	if doc.Gates != 7 || doc.Points != 13 || doc.GOMAXPROCS <= 0 {
		t.Fatalf("grid metadata: %+v", doc)
	}
	if len(doc.WorkerCounts) != 2 || doc.WorkerCounts[0] != 1 || doc.WorkerCounts[1] != 2 {
		t.Fatalf("worker ladder: %v", doc.WorkerCounts)
	}
	if len(doc.Families) != 2 || doc.Families[0].Family != "reference" || doc.Families[1].Family != "model1" {
		t.Fatalf("families: %+v", doc.Families)
	}
	wantPoints := int64(doc.Gates * doc.Points)
	for _, curve := range doc.Families {
		if len(curve.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", curve.Family, len(curve.Points))
		}
		for i, pt := range curve.Points {
			if pt.Seconds <= 0 || pt.PointsPerSec <= 0 {
				t.Fatalf("%s[%d]: degenerate timing: %+v", curve.Family, i, pt)
			}
			if pt.Counters["sweep.points"] != wantPoints {
				t.Fatalf("%s[%d]: sweep.points = %d, want %d",
					curve.Family, i, pt.Counters["sweep.points"], wantPoints)
			}
			if pt.Efficiency <= 0 {
				t.Fatalf("%s[%d]: efficiency not normalised: %+v", curve.Family, i, pt)
			}
		}
		if e := curve.Points[0].Efficiency; e != 1 {
			t.Fatalf("%s: single-worker efficiency = %g, want 1", curve.Family, e)
		}
	}
	// Family fingerprints: the reference serves from its table, the
	// closed-form family does no reference work at all.
	refPt := doc.Families[0].Points[0]
	if refPt.Counters["fettoy.table.hits"] == 0 {
		t.Fatalf("reference family not table-backed: %v", refPt.Counters)
	}
	m1Pt := doc.Families[1].Points[0]
	if m1Pt.Counters["fettoy.newton_iters"] != 0 || m1Pt.Counters["fettoy.integral_evals"] != 0 {
		t.Fatalf("model1 family did reference work: %v", m1Pt.Counters)
	}
	if m1Pt.Counters["core.solves"] != wantPoints {
		t.Fatalf("model1 core.solves = %d, want %d", m1Pt.Counters["core.solves"], wantPoints)
	}
}
