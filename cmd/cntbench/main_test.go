package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("5,10,50")
	if err != nil || len(got) != 3 || got[2] != 50 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRunSingleLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run([]int{1}, 13)
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "speedup") {
		t.Fatalf("output:\n%s", out)
	}
}
