package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"cntfet/internal/telemetry"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("5,10,50")
	if err != nil || len(got) != 3 || got[2] != 50 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("x"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRunSingleLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run(context.Background(), []int{1}, 13, options{})
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "speedup") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestRunSweepBenchJSON checks the before/after sweep benchmark: the
// document must carry both paths' timings and counter deltas, the
// batched path must do dramatically less quadrature work, and the two
// engines must agree on IDS.
func TestRunSweepBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	defer telemetry.Disable()
	out := t.TempDir() + "/BENCH_sweep.json"
	if err := runSweepBench(13, 1, 2, out, false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc sweepBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not one JSON document: %v\n%s", err, raw)
	}
	if doc.Gates != 7 || doc.Points != 13 || doc.Repeats != 1 {
		t.Fatalf("grid metadata: %+v", doc)
	}
	wantPoints := int64(doc.Gates * doc.Points)
	for _, st := range []sweepPathStat{doc.Legacy, doc.Batched} {
		if st.Seconds <= 0 || st.PointsPerSec <= 0 {
			t.Fatalf("degenerate timing: %+v", st)
		}
		if st.Counters["sweep.points"] != wantPoints {
			t.Fatalf("sweep.points = %d, want %d", st.Counters["sweep.points"], wantPoints)
		}
	}
	if doc.Legacy.Counters["fettoy.integral_evals"] == 0 {
		t.Fatal("legacy path did no quadrature")
	}
	// The batched path serves the timed window from the table: at
	// least 10x fewer integrals (the acceptance bar) and table hits.
	if doc.IntegralEvalReduction < 10 {
		t.Fatalf("integral eval reduction %.1fx, want >= 10x", doc.IntegralEvalReduction)
	}
	if doc.Batched.Counters["fettoy.table.hits"] == 0 {
		t.Fatal("no table hits recorded")
	}
	if doc.TableNodes <= 0 || doc.TableBuildSeconds <= 0 {
		t.Fatalf("table build not reported: %+v", doc)
	}
	// Accuracy cross-check: the two engines agree to well under 0.1%.
	if doc.MaxRMSPercent >= 0.1 {
		t.Fatalf("paths disagree: max RMS %g%%", doc.MaxRMSPercent)
	}
}

// TestRunMetricsJSON checks the acceptance shape of `cntbench -metrics`:
// one JSON document with a timing table and a counters block covering
// quadrature work, Newton iterations and piecewise region dispatch.
func TestRunMetricsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	defer telemetry.Disable()
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	err := run(context.Background(), []int{1}, 13, options{metrics: true})
	w.Close()
	os.Stdout = old
	out := <-done
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Table    []row            `json:"table"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not one JSON document: %v\n%s", err, out)
	}
	if len(doc.Table) != 1 || doc.Table[0].Loops != 1 {
		t.Fatalf("table = %+v", doc.Table)
	}
	for _, key := range []string{
		"fettoy.quad_points", "fettoy.newton_iters", "core.solves",
	} {
		if doc.Counters[key] <= 0 {
			t.Fatalf("counter %s = %d, want > 0 (counters: %v)", key, doc.Counters[key], doc.Counters)
		}
	}
	dispatch := int64(0)
	for k, v := range doc.Counters {
		if strings.HasPrefix(k, "core.dispatch.") {
			dispatch += v
		}
	}
	if dispatch <= 0 {
		t.Fatalf("no region-dispatch counts in %v", doc.Counters)
	}
}
