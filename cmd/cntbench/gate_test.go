package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func docWith(batched, closed float64) sweepBenchDoc {
	var d sweepBenchDoc
	d.Batched.PointsPerSec = batched
	d.ClosedForm.PointsPerSec = closed
	return d
}

// TestCheckGate pins the regression-gate arithmetic: a serving path
// may lose up to the threshold fraction of points/sec before the gate
// fails, paths missing from the baseline are skipped BY NAME (never
// silently), and the legacy path is never gated.
func TestCheckGate(t *testing.T) {
	base := docWith(1000, 5000)
	cases := []struct {
		name     string
		cur      sweepBenchDoc
		wantFail string // substring of the error, "" = pass
	}{
		{"identical", docWith(1000, 5000), ""},
		{"faster", docWith(2000, 9000), ""},
		{"within threshold", docWith(860, 4300), ""},
		{"batched regressed", docWith(840, 5000), "batched"},
		{"closed-form regressed", docWith(1000, 4200), "closed_form"},
	}
	for _, c := range cases {
		skipped, err := checkGate(c.cur, base, 0.15)
		if len(skipped) != 0 {
			t.Errorf("%s: full baseline reported skips: %v", c.name, skipped)
		}
		if c.wantFail == "" {
			if err != nil {
				t.Errorf("%s: unexpected gate failure: %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantFail) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantFail)
		}
	}

	// A baseline predating the closed-form path (zero points/sec there)
	// must not fail a current run that has one — but the skip must be
	// reported by name so it can land in BENCH_gate.json.
	old := docWith(1000, 0)
	skipped, err := checkGate(docWith(1000, 4000), old, 0.15)
	if err != nil {
		t.Errorf("schema-growth baseline failed the gate: %v", err)
	}
	if len(skipped) != 1 || skipped[0] != "closed_form" {
		t.Errorf("skipped paths = %v, want [closed_form]", skipped)
	}

	// An empty baseline skips every gated path.
	skipped, err = checkGate(docWith(1000, 4000), sweepBenchDoc{}, 0.15)
	if err != nil {
		t.Errorf("empty baseline failed the gate: %v", err)
	}
	if len(skipped) != 2 {
		t.Errorf("empty baseline skipped %v, want both paths", skipped)
	}

	// A non-positive threshold falls back to the 15% default.
	if _, err := checkGate(docWith(840, 5000), base, 0); err == nil {
		t.Error("default threshold did not catch a 16% regression")
	}
	if _, err := checkGate(docWith(860, 5000), base, 0); err != nil {
		t.Errorf("default threshold rejected a within-15%% run: %v", err)
	}
}

// TestLoadBenchDocErrors pins the two baseline failure modes to
// distinct, actionable messages: "not found" tells you to create the
// baseline, "unparseable" tells you the file rotted and must be
// refreshed — the gate never runs against garbage.
func TestLoadBenchDocErrors(t *testing.T) {
	dir := t.TempDir()

	missing := filepath.Join(dir, "BENCH_sweep.json")
	_, err := loadBenchDoc(missing)
	if err == nil {
		t.Fatal("loadBenchDoc(missing) succeeded")
	}
	if !strings.Contains(err.Error(), "not found") || !strings.Contains(err.Error(), "make bench") {
		t.Errorf("missing-baseline error %q lacks the not-found guidance", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing-baseline error %q does not wrap os.ErrNotExist", err)
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"batched": {`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = loadBenchDoc(corrupt)
	if err == nil {
		t.Fatal("loadBenchDoc(corrupt) succeeded")
	}
	if !strings.Contains(err.Error(), "unparseable") || !strings.Contains(err.Error(), "make bench") {
		t.Errorf("corrupt-baseline error %q lacks the refresh guidance", err)
	}
	if strings.Contains(err.Error(), "not found") {
		t.Errorf("corrupt-baseline error %q reads like a missing file", err)
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchDoc(good); err != nil {
		t.Errorf("loadBenchDoc(good) = %v, want nil", err)
	}
}
