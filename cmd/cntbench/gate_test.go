package main

import (
	"strings"
	"testing"
)

func docWith(batched, closed float64) sweepBenchDoc {
	var d sweepBenchDoc
	d.Batched.PointsPerSec = batched
	d.ClosedForm.PointsPerSec = closed
	return d
}

// TestCheckGate pins the regression-gate arithmetic: a serving path
// may lose up to the threshold fraction of points/sec before the gate
// fails, paths missing from the baseline are skipped, and the legacy
// path is never gated.
func TestCheckGate(t *testing.T) {
	base := docWith(1000, 5000)
	cases := []struct {
		name     string
		cur      sweepBenchDoc
		wantFail string // substring of the error, "" = pass
	}{
		{"identical", docWith(1000, 5000), ""},
		{"faster", docWith(2000, 9000), ""},
		{"within threshold", docWith(860, 4300), ""},
		{"batched regressed", docWith(840, 5000), "batched"},
		{"closed-form regressed", docWith(1000, 4200), "closed_form"},
	}
	for _, c := range cases {
		err := checkGate(c.cur, base, 0.15)
		if c.wantFail == "" {
			if err != nil {
				t.Errorf("%s: unexpected gate failure: %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantFail) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantFail)
		}
	}

	// A baseline predating the closed-form path (zero points/sec there)
	// must not fail a current run that has one.
	old := docWith(1000, 0)
	if err := checkGate(docWith(1000, 4000), old, 0.15); err != nil {
		t.Errorf("schema-growth baseline failed the gate: %v", err)
	}

	// A non-positive threshold falls back to the 15% default.
	if err := checkGate(docWith(840, 5000), base, 0); err == nil {
		t.Error("default threshold did not catch a 16% regression")
	}
	if err := checkGate(docWith(860, 5000), base, 0); err != nil {
		t.Errorf("default threshold rejected a within-15%% run: %v", err)
	}
}
