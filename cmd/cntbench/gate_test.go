package main

import (
	"strings"
	"testing"
)

func docWith(batched, closed float64) sweepBenchDoc {
	var d sweepBenchDoc
	d.Batched.PointsPerSec = batched
	d.ClosedForm.PointsPerSec = closed
	return d
}

// TestCheckGate pins the regression-gate arithmetic: a serving path
// may lose up to the threshold fraction of points/sec before the gate
// fails, paths missing from the baseline are skipped BY NAME (never
// silently), and the legacy path is never gated.
func TestCheckGate(t *testing.T) {
	base := docWith(1000, 5000)
	cases := []struct {
		name     string
		cur      sweepBenchDoc
		wantFail string // substring of the error, "" = pass
	}{
		{"identical", docWith(1000, 5000), ""},
		{"faster", docWith(2000, 9000), ""},
		{"within threshold", docWith(860, 4300), ""},
		{"batched regressed", docWith(840, 5000), "batched"},
		{"closed-form regressed", docWith(1000, 4200), "closed_form"},
	}
	for _, c := range cases {
		skipped, err := checkGate(c.cur, base, 0.15)
		if len(skipped) != 0 {
			t.Errorf("%s: full baseline reported skips: %v", c.name, skipped)
		}
		if c.wantFail == "" {
			if err != nil {
				t.Errorf("%s: unexpected gate failure: %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantFail) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantFail)
		}
	}

	// A baseline predating the closed-form path (zero points/sec there)
	// must not fail a current run that has one — but the skip must be
	// reported by name so it can land in BENCH_gate.json.
	old := docWith(1000, 0)
	skipped, err := checkGate(docWith(1000, 4000), old, 0.15)
	if err != nil {
		t.Errorf("schema-growth baseline failed the gate: %v", err)
	}
	if len(skipped) != 1 || skipped[0] != "closed_form" {
		t.Errorf("skipped paths = %v, want [closed_form]", skipped)
	}

	// An empty baseline skips every gated path.
	skipped, err = checkGate(docWith(1000, 4000), sweepBenchDoc{}, 0.15)
	if err != nil {
		t.Errorf("empty baseline failed the gate: %v", err)
	}
	if len(skipped) != 2 {
		t.Errorf("empty baseline skipped %v, want both paths", skipped)
	}

	// A non-positive threshold falls back to the 15% default.
	if _, err := checkGate(docWith(840, 5000), base, 0); err == nil {
		t.Error("default threshold did not catch a 16% regression")
	}
	if _, err := checkGate(docWith(860, 5000), base, 0); err != nil {
		t.Errorf("default threshold rejected a within-15%% run: %v", err)
	}
}
