package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cntfet"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
)

// The serving-path sweep benchmark: the same family grid driven
// through the legacy scheduler (point-per-task, cold solves, direct
// quadrature), the batched reference engine (chunked row scheduling,
// tabulated state density, warm-start continuation), and the
// closed-form piecewise serving path (Model 1 through the same chunked
// scheduler, zero-alloc row kernels, no Newton iterations at all) —
// with the telemetry counter deltas that explain each step. Output is
// one machine-readable JSON document (BENCH_sweep.json by default)
// that doubles as the perf-regression baseline for make benchgate.

// sweepPathStat is one timed serving path. Workers and
// PerWorkerPointsPerSec pin down the parallelism the numbers were
// measured at, so checked-in snapshots are unambiguous.
type sweepPathStat struct {
	Seconds      float64 `json:"seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
	// Workers is the scheduler's worker count for this path (the legacy
	// and chunked schedulers both honour it).
	Workers int `json:"workers"`
	// PerWorkerPointsPerSec is PointsPerSec / Workers — the per-core
	// figure to compare across machines with different widths.
	PerWorkerPointsPerSec float64          `json:"per_worker_points_per_sec"`
	Counters              map[string]int64 `json:"counters"`
}

// sweepBenchDoc is the BENCH_sweep.json schema.
type sweepBenchDoc struct {
	Gates   int `json:"gates"`
	Points  int `json:"points"`
	Repeats int `json:"repeats"`
	Workers int `json:"workers"`
	// GOMAXPROCS records the Go scheduler width of the measuring
	// machine; points/sec numbers are meaningless without it.
	GOMAXPROCS int `json:"gomaxprocs"`

	Legacy  sweepPathStat `json:"legacy"`
	Batched sweepPathStat `json:"batched"`
	// ClosedForm is the piecewise Model 1 through the same chunked
	// parallel scheduler — the default serving path.
	ClosedForm sweepPathStat `json:"closed_form"`

	// Speedup is legacy seconds over batched seconds for the same grid;
	// ClosedFormSpeedup is legacy seconds over closed-form seconds.
	Speedup           float64 `json:"speedup"`
	ClosedFormSpeedup float64 `json:"closed_form_speedup"`
	// IntegralEvalReduction is the legacy/batched ratio of
	// fettoy.integral_evals in the timed window.
	IntegralEvalReduction float64 `json:"integral_eval_reduction"`
	// MaxRMSPercent is the worst per-gate RMS disagreement between the
	// legacy and batched reference families (the engine cross-check);
	// ClosedFormMaxRMSPercent is the worst disagreement between Model 1
	// and the reference family (the paper's accuracy envelope).
	MaxRMSPercent           float64 `json:"max_rms_percent"`
	ClosedFormMaxRMSPercent float64 `json:"closed_form_max_rms_percent"`

	// TableBuildSeconds is the one-time tabulation cost, kept outside
	// the timed windows; TableNodes is the adaptive grid size.
	TableBuildSeconds float64 `json:"table_build_seconds"`
	TableNodes        int64   `json:"table_nodes"`

	// GateSkippedPaths and GateSkippedCount record serving paths the
	// regression gate could not check because the baseline predates
	// them (no-silent-caps: a gate that skipped something must say so
	// in its artifact). Empty/zero on ungated runs and on baselines
	// covering every path.
	GateSkippedPaths []string `json:"gate_skipped_paths,omitempty"`
	GateSkippedCount int      `json:"gate_skipped_count,omitempty"`
}

// sweepCounterKeys are the registry deltas quoted per path: the
// reference model's work counters plus the closed-form dispatch
// counters, so the closed-form path's zero Newton/quadrature work is
// visible in the same document.
var sweepCounterKeys = []string{
	telemetry.KeyFettoyIntegralEvals,
	telemetry.KeyFettoyQuadPoints,
	telemetry.KeyFettoyNewtonIters,
	telemetry.KeyFettoySolves,
	telemetry.KeyFettoyTableHits,
	telemetry.KeyFettoyTableMisses,
	telemetry.KeyCoreSolves,
	telemetry.KeyCoreDispatchLinear,
	telemetry.KeyCoreDispatchQuadratic,
	telemetry.KeyCoreDispatchCardano,
	telemetry.KeyCoreDispatchTrig,
	telemetry.KeyCoreFallbackGeneric,
	telemetry.KeySweepPoints,
	telemetry.KeySweepErrors,
}

func counterDelta(before, after map[string]int64) map[string]int64 {
	d := make(map[string]int64, len(sweepCounterKeys))
	for _, k := range sweepCounterKeys {
		d[k] = after[k] - before[k]
	}
	return d
}

// runSweepBench executes the comparison and writes the JSON document to
// outPath ("-" for stdout). assertFaster turns a batched-path
// regression into a non-zero exit, for make bench. A non-empty
// gatePath additionally compares the fresh numbers against the
// baseline document at that path and fails on a points/sec regression
// beyond gateThreshold (see checkGate); the baseline is read before
// outPath is created, so gating against the file being rewritten works.
func runSweepBench(points, repeats, workers int, outPath string, assertFaster bool, gatePath string, gateThreshold float64) error {
	if points < 2 {
		return fmt.Errorf("sweepbench: need at least 2 VDS points, got %d", points)
	}
	if repeats < 1 {
		repeats = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var baseline *sweepBenchDoc
	if gatePath != "" {
		b, err := loadBenchDoc(gatePath)
		if err != nil {
			return fmt.Errorf("sweepbench: gate baseline: %w", err)
		}
		baseline = b
	}
	telemetry.Enable()
	defer telemetry.Disable()
	reg := telemetry.Default()

	dev := cntfet.DefaultDevice()
	refLegacy, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	refBatched, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	tbl := refBatched.EnableTable(cntfet.TableOptions{})
	m1, err := cntfet.FitFrom(refBatched, cntfet.Model1Spec(), cntfet.FitOptions{})
	if err != nil {
		return err
	}

	vgs := sweep.PaperGates()
	vds := make([]float64, points)
	for i := range vds {
		vds[i] = 0.6 * float64(i) / float64(points-1)
	}

	// One-time table build, kept out of the timed window and reported
	// separately: steady-state throughput is the quantity of interest,
	// and the build amortises over every later sweep of the device.
	buildStart := time.Now()
	tbl.Build()
	buildSeconds := time.Since(buildStart).Seconds()

	// Untimed warm-up of all paths; the results double as the accuracy
	// cross-checks (engine-vs-engine and model-vs-reference).
	famLegacy, err := sweep.FamilyParallelLegacy(refLegacy, vgs, vds, workers)
	if err != nil {
		return err
	}
	famBatched, err := sweep.FamilyParallel(context.Background(), refBatched, vgs, vds, workers)
	if err != nil {
		return err
	}
	famClosed, err := sweep.FamilyParallel(context.Background(), m1, vgs, vds, workers)
	if err != nil {
		return err
	}
	maxRMS, err := maxFamilyRMS(famBatched, famLegacy)
	if err != nil {
		return err
	}
	closedRMS, err := maxFamilyRMS(famClosed, famBatched)
	if err != nil {
		return err
	}

	timePath := func(run func() error) (sweepPathStat, error) {
		before := reg.Snapshot().Counters
		start := time.Now()
		for i := 0; i < repeats; i++ {
			if err := run(); err != nil {
				return sweepPathStat{}, err
			}
		}
		secs := time.Since(start).Seconds()
		after := reg.Snapshot().Counters
		st := sweepPathStat{
			Seconds:  secs,
			Workers:  workers,
			Counters: counterDelta(before, after),
		}
		if secs > 0 {
			st.PointsPerSec = float64(repeats*len(vgs)*len(vds)) / secs
			st.PerWorkerPointsPerSec = st.PointsPerSec / float64(workers)
		}
		return st, nil
	}

	doc := sweepBenchDoc{
		Gates:                   len(vgs),
		Points:                  len(vds),
		Repeats:                 repeats,
		Workers:                 workers,
		GOMAXPROCS:              runtime.GOMAXPROCS(0),
		MaxRMSPercent:           maxRMS,
		ClosedFormMaxRMSPercent: closedRMS,
		TableBuildSeconds:       buildSeconds,
		TableNodes:              int64(tbl.Nodes()),
	}
	doc.Legacy, err = timePath(func() error {
		_, err := sweep.FamilyParallelLegacy(refLegacy, vgs, vds, workers)
		return err
	})
	if err != nil {
		return err
	}
	doc.Batched, err = timePath(func() error {
		_, err := sweep.FamilyParallel(context.Background(), refBatched, vgs, vds, workers)
		return err
	})
	if err != nil {
		return err
	}
	doc.ClosedForm, err = timePath(func() error {
		_, err := sweep.FamilyParallel(context.Background(), m1, vgs, vds, workers)
		return err
	})
	if err != nil {
		return err
	}
	if doc.Batched.Seconds > 0 {
		doc.Speedup = doc.Legacy.Seconds / doc.Batched.Seconds
	}
	if doc.ClosedForm.Seconds > 0 {
		doc.ClosedFormSpeedup = doc.Legacy.Seconds / doc.ClosedForm.Seconds
	}
	legacyEvals := doc.Legacy.Counters[telemetry.KeyFettoyIntegralEvals]
	batchedEvals := doc.Batched.Counters[telemetry.KeyFettoyIntegralEvals]
	if batchedEvals < 1 {
		batchedEvals = 1
	}
	doc.IntegralEvalReduction = float64(legacyEvals) / float64(batchedEvals)

	// Gate before writing the document, so the skipped-path record (and
	// a failing run's numbers) land in BENCH_gate.json either way.
	var gateErr error
	if baseline != nil {
		doc.GateSkippedPaths, gateErr = checkGate(doc, *baseline, gateThreshold)
		doc.GateSkippedCount = len(doc.GateSkippedPaths)
		for _, name := range doc.GateSkippedPaths {
			fmt.Printf("benchgate: %s path absent from baseline, not gated\n", name)
		}
	}

	var w io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return fmt.Errorf("sweepbench: %w", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if outPath != "-" {
		fmt.Printf("sweepbench: %d gates x %d points x %d repeats, %d workers (GOMAXPROCS %d)\n",
			doc.Gates, doc.Points, doc.Repeats, doc.Workers, doc.GOMAXPROCS)
		fmt.Printf("  legacy       %.4gs (%.3g points/s)\n", doc.Legacy.Seconds, doc.Legacy.PointsPerSec)
		fmt.Printf("  batched      %.4gs (%.3g points/s), table: %d nodes in %.4gs\n",
			doc.Batched.Seconds, doc.Batched.PointsPerSec, doc.TableNodes, doc.TableBuildSeconds)
		fmt.Printf("  closed-form  %.4gs (%.3g points/s), newton iters %d, integral evals %d\n",
			doc.ClosedForm.Seconds, doc.ClosedForm.PointsPerSec,
			doc.ClosedForm.Counters[telemetry.KeyFettoyNewtonIters],
			doc.ClosedForm.Counters[telemetry.KeyFettoyIntegralEvals])
		fmt.Printf("  speedup %.1fx batched / %.1fx closed-form, integral evals %d -> %d (%.0fx fewer)\n",
			doc.Speedup, doc.ClosedFormSpeedup,
			legacyEvals, doc.Batched.Counters[telemetry.KeyFettoyIntegralEvals],
			doc.IntegralEvalReduction)
		fmt.Printf("  max RMS %.4g%% (engines), %.4g%% (model1 vs reference)\n",
			doc.MaxRMSPercent, doc.ClosedFormMaxRMSPercent)
	}
	if assertFaster && doc.Speedup < 1 {
		return fmt.Errorf("sweepbench: batched path slower than legacy (%.2fx)", doc.Speedup)
	}
	if baseline != nil {
		if gateErr != nil {
			return gateErr
		}
		fmt.Printf("benchgate: within %.0f%% of baseline (batched %.3g vs %.3g, closed-form %.3g vs %.3g points/s, %d paths skipped)\n",
			gateThreshold*100, doc.Batched.PointsPerSec, baseline.Batched.PointsPerSec,
			doc.ClosedForm.PointsPerSec, baseline.ClosedForm.PointsPerSec, doc.GateSkippedCount)
	}
	return nil
}

// maxFamilyRMS returns the worst per-gate RMS disagreement between two
// families, in percent.
func maxFamilyRMS(got, want []sweep.Curve) (float64, error) {
	errsRMS, err := sweep.CompareFamilies(got, want)
	if err != nil {
		return 0, err
	}
	max := 0.0
	for _, e := range errsRMS {
		if e > max {
			max = e
		}
	}
	return max, nil
}

// loadBenchDoc reads a checked-in BENCH_sweep.json baseline. The two
// failure modes get distinct messages because they demand different
// fixes: a missing baseline means nobody has run the benchmark yet
// (create it), while an unparseable one means the file rotted — a bad
// merge, a truncated artifact download — and gating silently against
// garbage would be worse than failing (refresh it).
func loadBenchDoc(path string) (*sweepBenchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("baseline %s not found — run `make bench` to create it: %w", path, err)
		}
		return nil, err
	}
	var doc sweepBenchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("baseline %s exists but is unparseable — refresh it with `make bench` (or restore it from a good artifact): %w", path, err)
	}
	return &doc, nil
}

// checkGate fails when a serving path's throughput regresses more than
// threshold (a fraction, e.g. 0.15 for 15%) below the baseline's.
// Paths absent from the baseline (zero points/sec — e.g. a baseline
// from before the closed-form path existed) are skipped rather than
// failed, so the gate stays usable across schema growth — but never
// silently: every skipped path is returned by name, and the caller
// logs them and records the list in BENCH_gate.json. The legacy path
// is deliberately not gated: it exists as the "before" yardstick, not
// as a serving path.
func checkGate(cur, base sweepBenchDoc, threshold float64) (skipped []string, err error) {
	if threshold <= 0 {
		threshold = 0.15
	}
	type gated struct {
		name      string
		cur, base float64
	}
	for _, g := range []gated{
		{"batched", cur.Batched.PointsPerSec, base.Batched.PointsPerSec},
		{"closed_form", cur.ClosedForm.PointsPerSec, base.ClosedForm.PointsPerSec},
	} {
		if g.base <= 0 {
			skipped = append(skipped, g.name)
			continue
		}
		floor := g.base * (1 - threshold)
		if g.cur < floor {
			return skipped, fmt.Errorf("benchgate: %s path regressed: %.4g points/s vs baseline %.4g (floor %.4g at %.0f%% threshold)",
				g.name, g.cur, g.base, floor, threshold*100)
		}
	}
	return skipped, nil
}
