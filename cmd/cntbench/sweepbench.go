package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cntfet"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
)

// The before/after sweep benchmark: the same reference-model family
// grid driven through the legacy scheduler (point-per-task, cold
// solves, direct quadrature) and through the batched engine (chunked
// row scheduling, tabulated state density, warm-start continuation),
// with the telemetry counter deltas that explain the speedup. Output
// is one machine-readable JSON document (BENCH_sweep.json by default).

// sweepPathStat is one side of the before/after comparison.
type sweepPathStat struct {
	Seconds      float64          `json:"seconds"`
	PointsPerSec float64          `json:"points_per_sec"`
	Counters     map[string]int64 `json:"counters"`
}

// sweepBenchDoc is the BENCH_sweep.json schema.
type sweepBenchDoc struct {
	Gates   int `json:"gates"`
	Points  int `json:"points"`
	Repeats int `json:"repeats"`
	Workers int `json:"workers"`

	Legacy  sweepPathStat `json:"legacy"`
	Batched sweepPathStat `json:"batched"`

	// Speedup is legacy seconds over batched seconds for the same grid.
	Speedup float64 `json:"speedup"`
	// IntegralEvalReduction is the legacy/batched ratio of
	// fettoy.integral_evals in the timed window.
	IntegralEvalReduction float64 `json:"integral_eval_reduction"`
	// MaxRMSPercent is the worst per-gate RMS disagreement between the
	// two paths' IDS families (the accuracy cross-check).
	MaxRMSPercent float64 `json:"max_rms_percent"`

	// TableBuildSeconds is the one-time tabulation cost, kept outside
	// the timed windows; TableNodes is the adaptive grid size.
	TableBuildSeconds float64 `json:"table_build_seconds"`
	TableNodes        int64   `json:"table_nodes"`
}

// sweepCounterKeys are the registry deltas quoted per path.
var sweepCounterKeys = []string{
	telemetry.KeyFettoyIntegralEvals,
	telemetry.KeyFettoyQuadPoints,
	telemetry.KeyFettoyNewtonIters,
	telemetry.KeyFettoySolves,
	telemetry.KeyFettoyTableHits,
	telemetry.KeyFettoyTableMisses,
	telemetry.KeySweepPoints,
	telemetry.KeySweepErrors,
}

func counterDelta(before, after map[string]int64) map[string]int64 {
	d := make(map[string]int64, len(sweepCounterKeys))
	for _, k := range sweepCounterKeys {
		d[k] = after[k] - before[k]
	}
	return d
}

// runSweepBench executes the comparison and writes the JSON document to
// outPath ("-" for stdout). assertFaster turns a batched-path
// regression into a non-zero exit, for make bench.
func runSweepBench(points, repeats, workers int, outPath string, assertFaster bool) error {
	if points < 2 {
		return fmt.Errorf("sweepbench: need at least 2 VDS points, got %d", points)
	}
	if repeats < 1 {
		repeats = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	telemetry.Enable()
	defer telemetry.Disable()
	reg := telemetry.Default()

	dev := cntfet.DefaultDevice()
	refLegacy, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	refBatched, err := cntfet.NewReference(dev)
	if err != nil {
		return err
	}
	tbl := refBatched.EnableTable(cntfet.TableOptions{})

	vgs := sweep.PaperGates()
	vds := make([]float64, points)
	for i := range vds {
		vds[i] = 0.6 * float64(i) / float64(points-1)
	}

	// One-time table build, kept out of the timed window and reported
	// separately: steady-state throughput is the quantity of interest,
	// and the build amortises over every later sweep of the device.
	buildStart := time.Now()
	tbl.Build()
	buildSeconds := time.Since(buildStart).Seconds()

	// Untimed warm-up of both paths; the results double as the accuracy
	// cross-check between the two engines.
	famLegacy, err := sweep.FamilyParallelLegacy(refLegacy, vgs, vds, workers)
	if err != nil {
		return err
	}
	famBatched, err := sweep.FamilyParallel(context.Background(), refBatched, vgs, vds, workers)
	if err != nil {
		return err
	}
	errsRMS, err := sweep.CompareFamilies(famBatched, famLegacy)
	if err != nil {
		return err
	}
	maxRMS := 0.0
	for _, e := range errsRMS {
		if e > maxRMS {
			maxRMS = e
		}
	}

	timePath := func(run func() error) (sweepPathStat, error) {
		before := reg.Snapshot().Counters
		start := time.Now()
		for i := 0; i < repeats; i++ {
			if err := run(); err != nil {
				return sweepPathStat{}, err
			}
		}
		secs := time.Since(start).Seconds()
		after := reg.Snapshot().Counters
		st := sweepPathStat{
			Seconds:  secs,
			Counters: counterDelta(before, after),
		}
		if secs > 0 {
			st.PointsPerSec = float64(repeats*len(vgs)*len(vds)) / secs
		}
		return st, nil
	}

	doc := sweepBenchDoc{
		Gates:             len(vgs),
		Points:            len(vds),
		Repeats:           repeats,
		Workers:           workers,
		MaxRMSPercent:     maxRMS,
		TableBuildSeconds: buildSeconds,
		TableNodes:        int64(tbl.Nodes()),
	}
	doc.Legacy, err = timePath(func() error {
		_, err := sweep.FamilyParallelLegacy(refLegacy, vgs, vds, workers)
		return err
	})
	if err != nil {
		return err
	}
	doc.Batched, err = timePath(func() error {
		_, err := sweep.FamilyParallel(context.Background(), refBatched, vgs, vds, workers)
		return err
	})
	if err != nil {
		return err
	}
	if doc.Batched.Seconds > 0 {
		doc.Speedup = doc.Legacy.Seconds / doc.Batched.Seconds
	}
	legacyEvals := doc.Legacy.Counters[telemetry.KeyFettoyIntegralEvals]
	batchedEvals := doc.Batched.Counters[telemetry.KeyFettoyIntegralEvals]
	if batchedEvals < 1 {
		batchedEvals = 1
	}
	doc.IntegralEvalReduction = float64(legacyEvals) / float64(batchedEvals)

	var w io.Writer = os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return fmt.Errorf("sweepbench: %w", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if outPath != "-" {
		fmt.Printf("sweepbench: %d gates x %d points x %d repeats, %d workers\n",
			doc.Gates, doc.Points, doc.Repeats, doc.Workers)
		fmt.Printf("  legacy   %.4gs (%.3g points/s)\n", doc.Legacy.Seconds, doc.Legacy.PointsPerSec)
		fmt.Printf("  batched  %.4gs (%.3g points/s), table: %d nodes in %.4gs\n",
			doc.Batched.Seconds, doc.Batched.PointsPerSec, doc.TableNodes, doc.TableBuildSeconds)
		fmt.Printf("  speedup %.1fx, integral evals %d -> %d (%.0fx fewer), max RMS %.4g%%\n",
			doc.Speedup, legacyEvals, doc.Batched.Counters[telemetry.KeyFettoyIntegralEvals],
			doc.IntegralEvalReduction, doc.MaxRMSPercent)
	}
	if assertFaster && doc.Speedup < 1 {
		return fmt.Errorf("sweepbench: batched path slower than legacy (%.2fx)", doc.Speedup)
	}
	return nil
}
