// Command cntspice runs a SPICE-flavoured netlist through the MNA
// circuit simulator with CNT transistor devices.
//
//	cntspice deck.cir        run all analyses in the deck
//	cntspice -               read the deck from stdin
//
// See internal/netlist for the supported dialect; examples/inverter
// contains a ready-made complementary CNT inverter deck.
package main

import (
	"fmt"
	"io"
	"os"

	"cntfet/internal/netlist"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: cntspice <deck.cir|->")
		os.Exit(2)
	}
	var src []byte
	var err error
	if os.Args[1] == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntspice:", err)
		os.Exit(1)
	}
	deck, err := netlist.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cntspice:", err)
		os.Exit(1)
	}
	if deck.Title != "" {
		fmt.Println("*", deck.Title)
	}
	if err := deck.Run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cntspice:", err)
		os.Exit(1)
	}
}
