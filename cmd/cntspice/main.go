// Command cntspice runs a SPICE-flavoured netlist through the MNA
// circuit simulator with CNT transistor devices.
//
//	cntspice deck.cir               run all analyses in the deck
//	cntspice -                      read the deck from stdin
//	cntspice -trace ev.jsonl deck   also write a per-step solver event
//	                                log (JSON lines) to ev.jsonl
//	cntspice -metrics deck          print solver work counters to
//	                                stderr after the run
//
// See internal/netlist for the supported dialect (including the
// ".options trace metrics" deck directive); examples/inverter contains
// a ready-made complementary CNT inverter deck.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"cntfet/internal/engine"
	"cntfet/internal/netlist"
	"cntfet/internal/telemetry"
)

func main() {
	traceFile := flag.String("trace", "", "write solver event log (JSON lines) to this file")
	metrics := flag.Bool("metrics", false, "print solver work counters to stderr after the run")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cntspice [-trace file] [-metrics] <deck.cir|->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, flag.Arg(0), *traceFile, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "cntspice:", err)
		if errors.Is(err, engine.ErrCanceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, deckArg, traceFile string, metrics bool) error {
	var src []byte
	var err error
	if deckArg == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(deckArg)
	}
	if err != nil {
		return err
	}
	deck, err := netlist.Parse(string(src))
	if err != nil {
		return err
	}
	var tr *telemetry.Trace
	if traceFile != "" {
		telemetry.Enable()
		tr = telemetry.NewTrace(1 << 16)
		deck.Circuit.SetTrace(tr)
	}
	if metrics {
		telemetry.Enable()
	}
	if deck.Title != "" {
		fmt.Println("*", deck.Title)
	}
	if _, err := engine.Run(ctx, engine.Request{
		Kind:   engine.Netlist,
		Deck:   deck,
		Output: os.Stdout,
	}); err != nil {
		return err
	}
	if tr != nil {
		f, err := os.Create(traceFile)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		if n := tr.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "cntspice: trace ring dropped %d oldest events\n", n)
		}
	}
	if metrics {
		fmt.Fprintln(os.Stderr, "solver metrics:")
		if err := telemetry.Default().WriteText(os.Stderr, "  "); err != nil {
			return err
		}
	}
	return nil
}
