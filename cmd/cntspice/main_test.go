package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// The cntspice binary is a thin shell around netlist.Parse + Run, so
// the test exercises it end to end as a subprocess against a shipped
// deck.
func TestCLIAgainstShippedDeck(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	if runtime.GOOS == "windows" {
		t.Skip("posix-only test harness")
	}
	bin := filepath.Join(t.TempDir(), "cntspice")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	deck := filepath.Join("..", "..", "decks", "commonsource.cir")
	if _, err := os.Stat(deck); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, deck).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "Operating point") || !strings.Contains(s, "DC sweep of VIN") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestCLIStdinAndErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	if runtime.GOOS == "windows" {
		t.Skip("posix-only test harness")
	}
	bin := filepath.Join(t.TempDir(), "cntspice")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("divider\nV1 a 0 2\nR1 a b 1k\nR2 b 0 1k\n.op\n.print v(b)\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("stdin run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1") {
		t.Fatalf("divider output:\n%s", out)
	}
	// Bad deck: nonzero exit.
	cmd = exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("t\nR1 x\n.op\n")
	if err := cmd.Run(); err == nil {
		t.Fatal("bad deck exited zero")
	}
	// Missing file: nonzero exit.
	if err := exec.Command(bin, "/definitely/not/here.cir").Run(); err == nil {
		t.Fatal("missing file exited zero")
	}
}
