// Command cntserve is the long-running sweep service: an HTTP
// front-end that accepts JSON job requests — the same iv-point,
// family-sweep, rms-compare and monte-carlo jobs the CLIs run — and
// serves them through engine.Run at circuit-simulator rates. Models
// are named over the wire (family + device preset + T/EF) and built
// once into a keyed cache, so a client sweeping the same device pays
// the charge-table tabulation or piecewise fit exactly once.
//
//	cntserve                              serve on :8080
//	cntserve -addr localhost:9090         serve elsewhere
//	cntserve -inflight 4 -timeout 30s     tighter admission control
//	cntserve -selftest                    one-shot smoke: serve on an
//	                                      ephemeral port, POST one
//	                                      family-sweep, verify, exit
//
// Endpoints:
//
//	POST /v1/jobs    run one job (see internal/server's wire schema)
//	GET  /healthz    liveness probe
//	GET  /metrics    telemetry snapshot (JSON), including server.* keys
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight jobs drain (bounded by -drain), and the process exits 0.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cntfet/internal/server"
	"cntfet/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request job deadline (negative disables)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes")
	inflight := flag.Int("inflight", 0, "max concurrently running jobs (0 = GOMAXPROCS); excess gets 429")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight jobs")
	selftest := flag.Bool("selftest", false, "start on an ephemeral port, run one family-sweep against it, exit")
	flag.Parse()

	// A server wants its work observable: enable the registry so
	// /metrics reports solver counters, not just the server.* keys.
	telemetry.Enable()

	srv := server.New(server.Config{
		Addr:        *addr,
		Timeout:     *timeout,
		MaxBody:     *maxBody,
		MaxInFlight: *inflight,
	})

	if *selftest {
		if err := runSelftest(srv, *drain); err != nil {
			fmt.Fprintln(os.Stderr, "cntserve: selftest:", err)
			os.Exit(1)
		}
		fmt.Println("cntserve: selftest ok")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cntserve: serving on %s\n", *addr)

	select {
	case err := <-errc:
		// The listener failed before any signal (port in use, ...).
		fmt.Fprintln(os.Stderr, "cntserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cntserve: shutting down, draining in-flight jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cntserve: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cntserve:", err)
		os.Exit(1)
	}
}

// runSelftest is the `make servesmoke` body: bind an ephemeral port,
// serve, POST one family-sweep over the paper's nominal device, and
// assert a 200 with a non-empty family.
func runSelftest(srv *server.Server, drain time.Duration) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	body := `{
		"kind": "family-sweep",
		"model": {"family": "model2"},
		"gates": [0.3, 0.45, 0.6],
		"drains": [0, 0.2, 0.4, 0.6]
	}`
	url := fmt.Sprintf("http://%s/v1/jobs", l.Addr())
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, raw)
	}
	var jr server.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if len(jr.Family) != 3 || len(jr.Family[0].IDS) != 4 {
		return fmt.Errorf("degenerate family in response: %s", raw)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
