// Command cntserve is the long-running sweep service: an HTTP
// front-end that accepts JSON job requests — the same iv-point,
// family-sweep, rms-compare and monte-carlo jobs the CLIs run — and
// serves them through engine.Run at circuit-simulator rates. Models
// are named over the wire (family + device preset + T/EF) and built
// once into a keyed cache, so a client sweeping the same device pays
// the charge-table tabulation or piecewise fit exactly once.
//
//	cntserve                              serve on :8080
//	cntserve -addr localhost:9090         serve elsewhere
//	cntserve -inflight 4 -timeout 30s     tighter admission control
//	cntserve -trace -log access.ndjson    request tracing + NDJSON logs
//	cntserve -debug-addr localhost:6060   pprof profiles + expvar
//	cntserve -selftest                    one-shot smoke: serve on an
//	                                      ephemeral port, POST one
//	                                      family-sweep, scrape the
//	                                      operational endpoints, exit
//
// Endpoints:
//
//	POST /v1/jobs       run one job (see internal/server's wire schema)
//	GET  /healthz       liveness + build info, uptime, in-flight jobs
//	GET  /metrics       Prometheus text exposition (counters, latency
//	                    and job-duration histograms)
//	GET  /metrics.json  the JSON snapshot the CLIs consume
//	GET  /debug/trace   completed spans as NDJSON (with -trace)
//
// -log writes the structured NDJSON access/job log ("-" for stderr);
// every record of one request carries the same trace ID. -trace turns
// on span recording, which adds the span tree to the log stream and
// populates /debug/trace. -debug-addr starts a side HTTP server with
// net/http/pprof profiles and the telemetry snapshot at /debug/vars
// (expvar key "cntfet"), matching cntmc.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight jobs drain (bounded by -drain), and the process exits 0.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cntfet/internal/server"
	"cntfet/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request job deadline (negative disables)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes")
	inflight := flag.Int("inflight", 0, "max concurrently running jobs (0 = GOMAXPROCS); excess gets 429")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight jobs")
	logPath := flag.String("log", "", "write the NDJSON access/job log to this file (\"-\" = stderr)")
	trace := flag.Bool("trace", false, "record request spans: populates /debug/trace and adds span records to -log")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar telemetry on this address (e.g. localhost:6060)")
	selftest := flag.Bool("selftest", false, "start on an ephemeral port, exercise the job and operational endpoints, exit")
	flag.Parse()

	// A server wants its work observable: enable the registry so
	// /metrics reports solver counters, not just the server.* keys.
	telemetry.Enable()
	if *trace {
		telemetry.DefaultTracer().SetEnabled(true)
	}
	if *debugAddr != "" {
		expvar.Publish("cntfet", expvar.Func(func() any {
			return telemetry.Default().Snapshot()
		}))
		go func() {
			// DefaultServeMux already carries the pprof and expvar
			// handlers via their package imports.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cntserve: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cntserve: debug server on http://%s/debug/pprof/ and /debug/vars\n", *debugAddr)
	}

	var accessLog io.Writer
	switch *logPath {
	case "":
	case "-":
		accessLog = os.Stderr
	default:
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cntserve: opening log:", err)
			os.Exit(1)
		}
		defer f.Close()
		accessLog = f
	}

	if *selftest {
		// The selftest verifies the observability contract too, so it
		// runs with tracing on and the log captured in memory.
		telemetry.DefaultTracer().SetEnabled(true)
		var logBuf syncBuffer
		srv := server.New(server.Config{
			Timeout:     *timeout,
			MaxBody:     *maxBody,
			MaxInFlight: *inflight,
			AccessLog:   &logBuf,
		})
		if err := runSelftest(srv, &logBuf, *drain); err != nil {
			fmt.Fprintln(os.Stderr, "cntserve: selftest:", err)
			os.Exit(1)
		}
		fmt.Println("cntserve: selftest ok")
		return
	}

	srv := server.New(server.Config{
		Addr:        *addr,
		Timeout:     *timeout,
		MaxBody:     *maxBody,
		MaxInFlight: *inflight,
		AccessLog:   accessLog,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cntserve: serving on %s\n", *addr)

	select {
	case err := <-errc:
		// The listener failed before any signal (port in use, ...).
		fmt.Fprintln(os.Stderr, "cntserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cntserve: shutting down, draining in-flight jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cntserve: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cntserve:", err)
		os.Exit(1)
	}
}

// runSelftest is the `make servesmoke` body: bind an ephemeral port,
// serve, POST one family-sweep over the paper's nominal device, and
// assert (a) a 200 with a non-empty family, (b) /metrics is valid
// Prometheus text exposition carrying the server counters and latency
// histogram, (c) /metrics.json still serves the JSON snapshot,
// (d) /healthz reports identity, and (e) the job's trace ID correlates
// the access log, the job log and the /debug/trace span ring.
// syncBuffer is an in-memory log sink safe to read while the server's
// logger is still writing (the selftest polls it mid-flight).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func runSelftest(srv *server.Server, logBuf *syncBuffer, drain time.Duration) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	body := `{
		"kind": "family-sweep",
		"model": {"family": "model2"},
		"gates": [0.3, 0.45, 0.6],
		"drains": [0, 0.2, 0.4, 0.6]
	}`
	base := fmt.Sprintf("http://%s", l.Addr())
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/jobs: status %d: %s", resp.StatusCode, raw)
	}
	var jr server.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if len(jr.Family) != 3 || len(jr.Family[0].IDS) != 4 {
		return fmt.Errorf("degenerate family in response: %s", raw)
	}

	get := func(path string) ([]byte, string, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, raw)
		}
		return raw, resp.Header.Get("Content-Type"), nil
	}

	// (b) Prometheus conformance — the scrape a real Prometheus would do.
	prom, ct, err := get("/metrics")
	if err != nil {
		return err
	}
	if ct != telemetry.PromContentType {
		return fmt.Errorf("/metrics content type %q, want %q", ct, telemetry.PromContentType)
	}
	if err := telemetry.ValidatePrometheus(bytes.NewReader(prom)); err != nil {
		return fmt.Errorf("/metrics is not valid Prometheus exposition: %w", err)
	}
	for _, want := range []string{"cntfet_server_requests_total", "cntfet_server_request_seconds_bucket"} {
		if !bytes.Contains(prom, []byte(want)) {
			return fmt.Errorf("/metrics missing %s:\n%s", want, prom)
		}
	}

	// (c) The JSON snapshot moved, not vanished.
	rawSnap, _, err := get("/metrics.json")
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(rawSnap, &snap); err != nil {
		return fmt.Errorf("/metrics.json not a snapshot: %w", err)
	}
	if snap.Counters[telemetry.KeyServerRequests] < 1 {
		return fmt.Errorf("/metrics.json missing server.requests: %v", snap.Counters)
	}

	// (d) Identity in the health probe.
	rawHz, _, err := get("/healthz")
	if err != nil {
		return err
	}
	var hz server.Health
	if err := json.Unmarshal(rawHz, &hz); err != nil {
		return fmt.Errorf("/healthz not JSON: %w", err)
	}
	if hz.Status != "ok" || hz.GoVersion == "" || hz.MaxInFlight < 1 {
		return fmt.Errorf("/healthz fields wrong: %s", rawHz)
	}

	// (e) One trace ID across access log, job log and the span ring.
	// The access record is written after the response, so briefly poll.
	trace, err := waitForTrace(logBuf)
	if err != nil {
		return err
	}
	rawSpans, _, err := get("/debug/trace")
	if err != nil {
		return err
	}
	kinds := map[string]bool{}
	for _, line := range bytes.Split(bytes.TrimSpace(rawSpans), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var span map[string]any
		if err := json.Unmarshal(line, &span); err != nil {
			return fmt.Errorf("/debug/trace bad line %q: %w", line, err)
		}
		if span[telemetry.FieldTrace] == trace {
			kind, _ := span[telemetry.FieldKind].(string)
			kinds[kind] = true
		}
	}
	for _, want := range []string{telemetry.SpanServerRequest, telemetry.SpanEngineJob} {
		if !kinds[want] {
			return fmt.Errorf("trace %s missing %q span in /debug/trace; got %v", trace, want, kinds)
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// waitForTrace scans the NDJSON log for the job's access and job
// records and returns their shared trace ID. The access record lands
// just after the response is sent, so the scan retries briefly.
func waitForTrace(logBuf *syncBuffer) (string, error) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		var access, job string
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if line == "" {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return "", fmt.Errorf("bad log line %q: %w", line, err)
			}
			trace, _ := rec[telemetry.FieldTrace].(string)
			switch rec["event"] {
			case telemetry.LogEventAccess:
				if rec[telemetry.AttrPath] == "/v1/jobs" {
					access = trace
				}
			case telemetry.LogEventJob:
				job = trace
			}
		}
		if access != "" && access == job {
			return access, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no correlated access+job log records (access=%q job=%q):\n%s",
				access, job, logBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
