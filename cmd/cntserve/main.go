// Command cntserve is the long-running sweep service: an HTTP
// front-end that accepts JSON job requests — the same iv-point,
// family-sweep, rms-compare and monte-carlo jobs the CLIs run — and
// serves them through engine.Run at circuit-simulator rates. Models
// are named over the wire (family + device preset + T/EF) and built
// once into a keyed cache, so a client sweeping the same device pays
// the charge-table tabulation or piecewise fit exactly once.
//
//	cntserve                              serve on :8080
//	cntserve -addr localhost:9090         serve elsewhere
//	cntserve -inflight 4 -timeout 30s     tighter admission control
//	cntserve -trace -log access.ndjson    request tracing + NDJSON logs
//	cntserve -debug-addr localhost:6060   pprof profiles + expvar
//	cntserve -snapshot-dir /var/cnt/snap  charge-table snapshot warm-start
//	cntserve -selftest                    one-shot smoke: serve on an
//	                                      ephemeral port, POST buffered
//	                                      and streamed family-sweeps,
//	                                      scrape the operational
//	                                      endpoints, restart against the
//	                                      snapshot dir, exit
//
// Endpoints:
//
//	POST /v1/jobs       run one job (see internal/server's wire schema)
//	GET  /healthz       liveness + build info, uptime, in-flight jobs
//	GET  /metrics       Prometheus text exposition (counters, latency
//	                    and job-duration histograms)
//	GET  /metrics.json  the JSON snapshot the CLIs consume
//	GET  /debug/trace   completed spans as NDJSON (with -trace)
//
// Streaming: a job posted with "stream": true (or with "Accept:
// application/x-ndjson") answers as chunked NDJSON, one frame per
// result row, flushed as computed — `curl --no-buffer` shows rows
// arriving while the sweep runs. -snapshot-dir points the model cache
// at a directory of charge-table snapshots: reference tables found
// there are loaded instead of rebuilt, and tables built here are
// saved back, so a restarted replica's first reference job skips the
// tabulation entirely.
//
// -log writes the structured NDJSON access/job log ("-" for stderr);
// every record of one request carries the same trace ID. -trace turns
// on span recording, which adds the span tree to the log stream and
// populates /debug/trace. -debug-addr starts a side HTTP server with
// net/http/pprof profiles and the telemetry snapshot at /debug/vars
// (expvar key "cntfet"), matching cntmc.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight jobs drain (bounded by -drain), and the process exits 0.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"cntfet/internal/server"
	"cntfet/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request job deadline (negative disables)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes")
	inflight := flag.Int("inflight", 0, "max concurrently running jobs (0 = GOMAXPROCS); excess gets 429")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight jobs")
	logPath := flag.String("log", "", "write the NDJSON access/job log to this file (\"-\" = stderr)")
	trace := flag.Bool("trace", false, "record request spans: populates /debug/trace and adds span records to -log")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar telemetry on this address (e.g. localhost:6060)")
	snapshotDir := flag.String("snapshot-dir", "", "warm-start reference charge tables from (and save them to) *.snap files in this directory")
	selftest := flag.Bool("selftest", false, "start on an ephemeral port, exercise the job and operational endpoints, exit")
	flag.Parse()

	// A server wants its work observable: enable the registry so
	// /metrics reports solver counters, not just the server.* keys.
	telemetry.Enable()
	if *trace {
		telemetry.DefaultTracer().SetEnabled(true)
	}
	if *debugAddr != "" {
		expvar.Publish("cntfet", expvar.Func(func() any {
			return telemetry.Default().Snapshot()
		}))
		go func() {
			// DefaultServeMux already carries the pprof and expvar
			// handlers via their package imports.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cntserve: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "cntserve: debug server on http://%s/debug/pprof/ and /debug/vars\n", *debugAddr)
	}

	var accessLog io.Writer
	switch *logPath {
	case "":
	case "-":
		accessLog = os.Stderr
	default:
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cntserve: opening log:", err)
			os.Exit(1)
		}
		defer f.Close()
		accessLog = f
	}

	if *selftest {
		// The selftest verifies the observability contract too, so it
		// runs with tracing on and the log captured in memory. The
		// snapshot phase needs a real directory; default to a temporary
		// one when the flag is unset.
		telemetry.DefaultTracer().SetEnabled(true)
		var logBuf syncBuffer
		snapDir := *snapshotDir
		if snapDir == "" {
			dir, err := os.MkdirTemp("", "cntserve-selftest-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "cntserve: selftest:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
			snapDir = dir
		}
		cfg := server.Config{
			Timeout:     *timeout,
			MaxBody:     *maxBody,
			MaxInFlight: *inflight,
			AccessLog:   &logBuf,
			SnapshotDir: snapDir,
		}
		if err := runSelftest(cfg, &logBuf, *drain); err != nil {
			fmt.Fprintln(os.Stderr, "cntserve: selftest:", err)
			os.Exit(1)
		}
		fmt.Println("cntserve: selftest ok")
		return
	}

	srv := server.New(server.Config{
		Addr:        *addr,
		Timeout:     *timeout,
		MaxBody:     *maxBody,
		MaxInFlight: *inflight,
		AccessLog:   accessLog,
		SnapshotDir: *snapshotDir,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//lint:allow goroutine errc is buffered (cap 1) and Serve returns exactly once, so the send never blocks
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cntserve: serving on %s\n", *addr)

	select {
	case err := <-errc:
		// The listener failed before any signal (port in use, ...).
		fmt.Fprintln(os.Stderr, "cntserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "cntserve: shutting down, draining in-flight jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "cntserve: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cntserve:", err)
		os.Exit(1)
	}
}

// syncBuffer is an in-memory log sink safe to read while the server's
// logger is still writing (the selftest polls it mid-flight).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runSelftest is the `make servesmoke` body: bind an ephemeral port,
// serve, POST one family-sweep over the paper's nominal device, and
// assert (a) a 200 with a non-empty family, (b) /metrics is valid
// Prometheus text exposition carrying the server counters and latency
// histogram, (c) /metrics.json still serves the JSON snapshot,
// (d) /healthz reports identity, (e) the job's trace ID correlates
// the access log, the job log and the /debug/trace span ring, (f) the
// same sweep streamed as NDJSON delivers the buffered rows bit-for-bit
// frame by frame under a correlatable Trace-Id header, and (g) a
// reference job persists its charge-table snapshot, which a restarted
// server loads instead of rebuilding.
func runSelftest(cfg server.Config, logBuf *syncBuffer, drain time.Duration) error {
	srv := server.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	//lint:allow goroutine errc is buffered (cap 1) and Serve returns exactly once, so the send never blocks
	go func() { errc <- srv.Serve(l) }()

	body := `{
		"kind": "family-sweep",
		"model": {"family": "model2"},
		"gates": [0.3, 0.45, 0.6],
		"drains": [0, 0.2, 0.4, 0.6]
	}`
	base := fmt.Sprintf("http://%s", l.Addr())
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/jobs: status %d: %s", resp.StatusCode, raw)
	}
	var jr server.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if len(jr.Family) != 3 || len(jr.Family[0].IDS) != 4 {
		return fmt.Errorf("degenerate family in response: %s", raw)
	}

	get := func(path string) ([]byte, string, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, raw)
		}
		return raw, resp.Header.Get("Content-Type"), nil
	}

	// (b) Prometheus conformance — the scrape a real Prometheus would do.
	prom, ct, err := get("/metrics")
	if err != nil {
		return err
	}
	if ct != telemetry.PromContentType {
		return fmt.Errorf("/metrics content type %q, want %q", ct, telemetry.PromContentType)
	}
	if err := telemetry.ValidatePrometheus(bytes.NewReader(prom)); err != nil {
		return fmt.Errorf("/metrics is not valid Prometheus exposition: %w", err)
	}
	for _, want := range []string{"cntfet_server_requests_total", "cntfet_server_request_seconds_bucket"} {
		if !bytes.Contains(prom, []byte(want)) {
			return fmt.Errorf("/metrics missing %s:\n%s", want, prom)
		}
	}

	// (c) The JSON snapshot moved, not vanished.
	rawSnap, _, err := get("/metrics.json")
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(rawSnap, &snap); err != nil {
		return fmt.Errorf("/metrics.json not a snapshot: %w", err)
	}
	if snap.Counters[telemetry.KeyServerRequests] < 1 {
		return fmt.Errorf("/metrics.json missing server.requests: %v", snap.Counters)
	}

	// (d) Identity in the health probe.
	rawHz, _, err := get("/healthz")
	if err != nil {
		return err
	}
	var hz server.Health
	if err := json.Unmarshal(rawHz, &hz); err != nil {
		return fmt.Errorf("/healthz not JSON: %w", err)
	}
	if hz.Status != "ok" || hz.GoVersion == "" || hz.MaxInFlight < 1 {
		return fmt.Errorf("/healthz fields wrong: %s", rawHz)
	}

	// (e) One trace ID across access log, job log and the span ring.
	// The access record is written after the response, so briefly poll.
	trace, err := waitForTrace(logBuf)
	if err != nil {
		return err
	}
	rawSpans, _, err := get("/debug/trace")
	if err != nil {
		return err
	}
	kinds := map[string]bool{}
	for _, line := range bytes.Split(bytes.TrimSpace(rawSpans), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var span map[string]any
		if err := json.Unmarshal(line, &span); err != nil {
			return fmt.Errorf("/debug/trace bad line %q: %w", line, err)
		}
		if span[telemetry.FieldTrace] == trace {
			kind, _ := span[telemetry.FieldKind].(string)
			kinds[kind] = true
		}
	}
	for _, want := range []string{telemetry.SpanServerRequest, telemetry.SpanEngineJob} {
		if !kinds[want] {
			return fmt.Errorf("trace %s missing %q span in /debug/trace; got %v", trace, want, kinds)
		}
	}

	// (f) The same sweep streamed: each row a flushed NDJSON frame,
	// bit-identical to the buffered family, done frame last, trace ID
	// in the response header for log correlation.
	if err := checkStreamedSweep(client, base, body, jr, logBuf); err != nil {
		return err
	}

	// (g) Snapshot warm-start across a restart: a reference job on this
	// server builds its charge table once and persists it...
	refBody := `{"kind": "iv-point", "model": {"family": "reference"}, "vg": 0.5, "vd": 0.4}`
	reg := telemetry.Default()
	buildsBefore := reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	coldIDS, err := postJob(client, base, refBody)
	if err != nil {
		return fmt.Errorf("reference job (cold): %w", err)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != 1 {
		return fmt.Errorf("cold reference job built %d charge tables, want 1", d)
	}
	snaps, err := filepath.Glob(filepath.Join(cfg.SnapshotDir, "*.snap"))
	if err != nil || len(snaps) == 0 {
		return fmt.Errorf("no *.snap persisted in %s (%v)", cfg.SnapshotDir, err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	// ...and a fresh server over the same directory — a restart, with
	// its own empty model cache — serves the first reference job from
	// the snapshot: fettoy.table.builds stays flat, snapshot_loads
	// moves, and the answer is bit-identical.
	srv2 := server.New(cfg)
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errc2 := make(chan error, 1)
	//lint:allow goroutine errc2 is buffered (cap 1) and Serve returns exactly once, so the send never blocks
	go func() { errc2 <- srv2.Serve(l2) }()
	base2 := fmt.Sprintf("http://%s", l2.Addr())
	buildsBefore = reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	loadsBefore := reg.Counter(telemetry.KeyFettoyTableSnapshotLoads).Value()
	warmIDS, err := postJob(client, base2, refBody)
	if err != nil {
		return fmt.Errorf("reference job (warm): %w", err)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != 0 {
		return fmt.Errorf("warm-started server built %d charge tables, want 0", d)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableSnapshotLoads).Value() - loadsBefore; d != 1 {
		return fmt.Errorf("warm-started server loaded %d snapshots, want 1", d)
	}
	if warmIDS != coldIDS { //lint:allow floatcmp a warm-started table must answer bit-identically
		return fmt.Errorf("warm-started IDS %g differs from cold %g", warmIDS, coldIDS)
	}

	drainCtx2, cancel2 := context.WithTimeout(context.Background(), drain)
	defer cancel2()
	if err := srv2.Shutdown(drainCtx2); err != nil {
		return fmt.Errorf("shutdown (restarted server): %w", err)
	}
	if err := <-errc2; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// postJob posts one job body and returns the response's IDS.
func postJob(client *http.Client, base, body string) (float64, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var jr server.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		return 0, err
	}
	return jr.IDS, nil
}

// checkStreamedSweep re-runs a family sweep with "stream": true and
// asserts the NDJSON contract: one row frame per gate bias carrying
// exactly the buffered rows, a trailing done frame without the family,
// and a Trace-Id header whose ID appears in the job log.
func checkStreamedSweep(client *http.Client, base, body string, buffered server.JobResponse, logBuf *syncBuffer) error {
	streamBody := strings.Replace(body, `"kind"`, `"stream": true, "kind"`, 1)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(streamBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("streamed job: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("streamed job content type %q, want application/x-ndjson", ct)
	}
	trace := resp.Header.Get("Trace-Id")
	if trace == "" {
		return fmt.Errorf("streamed job missing Trace-Id header")
	}

	var rows int
	var done bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var frame server.StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			return fmt.Errorf("bad stream frame %q: %w", sc.Text(), err)
		}
		switch {
		case frame.Row != nil:
			if done {
				return fmt.Errorf("row frame after done frame")
			}
			if frame.Row.Index != rows {
				return fmt.Errorf("row %d arrived with index %d", rows, frame.Row.Index)
			}
			want := buffered.Family[rows]
			for j := range want.IDS {
				if frame.Row.IDS[j] != want.IDS[j] { //lint:allow floatcmp streamed rows must match buffered bit-for-bit
					return fmt.Errorf("streamed row %d point %d: %g, buffered %g",
						rows, j, frame.Row.IDS[j], want.IDS[j])
				}
			}
			rows++
		case frame.Done != nil:
			if len(frame.Done.Family) != 0 {
				return fmt.Errorf("done frame re-buffers the family")
			}
			done = true
		case frame.Error != nil:
			return fmt.Errorf("streamed job failed mid-stream: %s", frame.Error.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows != len(buffered.Family) || !done {
		return fmt.Errorf("stream delivered %d of %d rows (done=%v)", rows, len(buffered.Family), done)
	}

	// The header's trace ID must land in the job log — that is the
	// correlation a streaming client relies on.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if strings.Contains(logBuf.String(), trace) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("trace %s from Trace-Id header absent from the log", trace)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitForTrace scans the NDJSON log for the job's access and job
// records and returns their shared trace ID. The access record lands
// just after the response is sent, so the scan retries briefly.
func waitForTrace(logBuf *syncBuffer) (string, error) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		var access, job string
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if line == "" {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return "", fmt.Errorf("bad log line %q: %w", line, err)
			}
			trace, _ := rec[telemetry.FieldTrace].(string)
			switch rec["event"] {
			case telemetry.LogEventAccess:
				if rec[telemetry.AttrPath] == "/v1/jobs" {
					access = trace
				}
			case telemetry.LogEventJob:
				job = trace
			}
		}
		if access != "" && access == job {
			return access, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no correlated access+job log records (access=%q job=%q):\n%s",
				access, job, logBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
