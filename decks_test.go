package cntfet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cntfet/internal/netlist"
)

// TestShippedDecksRun parses and executes every netlist under decks/
// end to end — the same path cmd/cntspice takes — and sanity-checks
// each circuit's headline behaviour.
func TestShippedDecksRun(t *testing.T) {
	if testing.Short() {
		t.Skip("deck simulations are not short")
	}
	checks := map[string]func(t *testing.T, out string){
		"inverter.cir":     checkInverterDeck,
		"nand.cir":         checkSwingDeck("v(out)"),
		"commonsource.cir": checkCommonSourceDeck,
		"ringosc.cir":      checkSwingDeck("v(a)"),
		"acstage.cir":      checkACStageDeck,
	}
	entries, err := os.ReadDir("decks")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no decks shipped")
	}
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("decks", name))
			if err != nil {
				t.Fatal(err)
			}
			deck, err := netlist.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var b strings.Builder
			if err := deck.Run(&b); err != nil {
				t.Fatalf("run: %v", err)
			}
			check, ok := checks[name]
			if !ok {
				t.Fatalf("no behaviour check registered for %s", name)
			}
			check(t, b.String())
		})
	}
}

// csvColumn extracts a named column from the first CSV block in the
// output that contains it.
func csvColumn(t *testing.T, out, header string) []float64 {
	t.Helper()
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		cols := strings.Split(strings.TrimSpace(ln), ",")
		idx := -1
		for j, c := range cols {
			if c == header {
				idx = j
			}
		}
		if idx < 0 {
			continue
		}
		var vals []float64
		for _, row := range lines[i+1:] {
			f := strings.Split(strings.TrimSpace(row), ",")
			if len(f) != len(cols) {
				break
			}
			v, err := netlist.ParseValue(f[idx])
			if err != nil {
				break
			}
			vals = append(vals, v)
		}
		if len(vals) > 0 {
			return vals
		}
	}
	t.Fatalf("column %q not found in output:\n%s", header, out)
	return nil
}

func checkInverterDeck(t *testing.T, out string) {
	vout := csvColumn(t, out, "v(out)")
	// DC sweep block comes first: rails at both ends.
	if vout[0] < 0.55 || vout[len(vout)-1] > 0.05 {
		t.Fatalf("inverter VTC rails: %g .. %g", vout[0], vout[len(vout)-1])
	}
}

func checkSwingDeck(col string) func(t *testing.T, out string) {
	return func(t *testing.T, out string) {
		v := csvColumn(t, out, col)
		mn, mx := v[0], v[0]
		for _, x := range v {
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		if mx-mn < 0.4 {
			t.Fatalf("%s swing only %g V", col, mx-mn)
		}
	}
}

func checkACStageDeck(t *testing.T, out string) {
	mags := csvColumn(t, out, "mag_out")
	// An amplifying stage: passband gain above 1, then rolloff through
	// the load pole by at least 20x across the sweep.
	if mags[0] < 1 {
		t.Fatalf("passband gain %g, want > 1", mags[0])
	}
	if mags[len(mags)-1] > mags[0]/20 {
		t.Fatalf("no rolloff: %g -> %g", mags[0], mags[len(mags)-1])
	}
}

func checkCommonSourceDeck(t *testing.T, out string) {
	// The reference-model stage and the fast-model stage must agree.
	d1 := csvColumn(t, out, "v(d1)")
	d2 := csvColumn(t, out, "v(d2)")
	for i := range d1 {
		diff := d1[i] - d2[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.03 {
			t.Fatalf("row %d: reference stage %g vs fast stage %g", i, d1[i], d2[i])
		}
	}
}
