package cntfet

import (
	"context"
	"io"

	"cntfet/internal/circuit"
	"cntfet/internal/logic"
	"cntfet/internal/netlist"
	"cntfet/internal/variation"
)

// This file is the public surface of the circuit-level layer: the MNA
// simulator, the netlist frontend, the CNT logic-gate library and the
// variability tooling. Everything is exposed through type aliases so
// downstream users get the full functionality without reaching into
// internal packages.

// Circuit is a netlist of elements solvable for DC operating points,
// DC sweeps, transients and AC small-signal responses.
type Circuit = circuit.Circuit

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return circuit.New() }

// Ground is the reference node name.
const Ground = circuit.Ground

// Circuit element types.
type (
	// Resistor is a linear resistor.
	Resistor = circuit.Resistor
	// CapacitorElem is a linear capacitor (named to avoid clashing
	// with device capacitance accessors).
	CapacitorElem = circuit.Capacitor
	// InductorElem is a linear inductor.
	InductorElem = circuit.Inductor
	// VSource is an independent voltage source.
	VSource = circuit.VSource
	// ISource is an independent current source.
	ISource = circuit.ISource
	// DiodeElem is a Shockley diode.
	DiodeElem = circuit.Diode
	// CNTFETElem is the three-terminal CNT transistor element; back it
	// with a Reference or Piecewise model.
	CNTFETElem = circuit.CNTFET
	// VCCS is a voltage-controlled current source.
	VCCS = circuit.VCCS
	// VCVS is a voltage-controlled voltage source.
	VCVS = circuit.VCVS
)

// Waveforms for independent sources.
type (
	// DCWave is a constant source value.
	DCWave = circuit.DC
	// PulseWave is the SPICE PULSE stimulus.
	PulseWave = circuit.Pulse
	// SinWave is the SPICE SIN stimulus.
	SinWave = circuit.Sin
)

// Device polarities for CNTFETElem.
const (
	NType = circuit.NType
	PType = circuit.PType
)

// Analysis options and results.
type (
	// DCOptions tunes Newton operating-point solves.
	DCOptions = circuit.DCOptions
	// TranOptions configures fixed-step transient analysis.
	TranOptions = circuit.TranOptions
	// CircuitSolution is one solved bias/time point.
	CircuitSolution = circuit.Solution
	// ACPoint is one small-signal frequency point.
	ACPoint = circuit.ACPoint
)

// DecadeFrequencies builds the standard logarithmic AC grid.
func DecadeFrequencies(fstart, fstop float64, pointsPerDecade int) ([]float64, error) {
	return circuit.DecadeFrequencies(fstart, fstop, pointsPerDecade)
}

// Deck is a parsed SPICE-flavoured netlist (see internal/netlist for
// the dialect).
type Deck = netlist.Deck

// ParseDeck parses netlist source text.
func ParseDeck(src string) (*Deck, error) { return netlist.Parse(src) }

// RunDeck parses a netlist and executes its analyses, writing tabular
// results to w — the programmatic equivalent of cmd/cntspice.
func RunDeck(src string, w io.Writer) error {
	d, err := netlist.Parse(src)
	if err != nil {
		return err
	}
	return d.Run(w)
}

// LogicLibrary builds complementary CNT gates (inverter, NAND2, NOR2,
// chains, ring oscillators) and ships the VTC/delay/frequency
// metrology in the logic package.
type LogicLibrary = logic.Library

// VTCMetrics are static inverter figures of merit.
type VTCMetrics = logic.VTCMetrics

// MeasureVTC sweeps an input source from 0 to the supply voltage vdd
// in volts (V), in increments of step (V), and extracts VTC metrics.
func MeasureVTC(c *Circuit, inSource, outNode string, vdd, step float64) (VTCMetrics, error) {
	return logic.MeasureVTC(c, inSource, outNode, vdd, step)
}

// PropagationDelay measures 50%-to-50% delays from a transient run;
// vdd is the supply voltage in volts (V) defining the 50% threshold.
func PropagationDelay(sols []*CircuitSolution, inNode, outNode string, vdd float64) (tpHL, tpLH float64) {
	return logic.PropagationDelay(sols, inNode, outNode, vdd)
}

// OscillationFrequency estimates a ring oscillator's frequency from a
// transient run; vdd is the supply voltage in volts (V), settle the
// start-up interval (s) excluded from the measurement.
func OscillationFrequency(sols []*CircuitSolution, node string, vdd, settle float64) (float64, error) {
	return logic.OscillationFrequency(sols, node, vdd, settle)
}

// SwitchingEnergy integrates the supply energy drawn over a transient
// run (the dynamic-power figure of merit); vdd is the supply voltage
// in volts (V).
func SwitchingEnergy(sols []*CircuitSolution, vddSource string, vdd float64) float64 {
	return logic.SwitchingEnergy(sols, vddSource, vdd)
}

// Variability analysis.
type (
	// VariationSpread is the per-device parameter dispersion.
	VariationSpread = variation.Spread
	// VariationResult summarises a Monte Carlo run.
	VariationResult = variation.Result
)

// MonteCarloIDSContext draws n device variants and returns the
// drain-current distribution at the bias, evaluated with the fast
// Model 2. The context cancels the run between draws.
func MonteCarloIDSContext(ctx context.Context, dev Device, spread VariationSpread, bias Bias, n int, seed int64) (VariationResult, error) {
	return variation.MonteCarloIDS(ctx, dev, spread, bias, n, seed)
}

// MonteCarloIDS is MonteCarloIDSContext with a background context,
// kept as the convenience entry point for non-cancellable callers.
func MonteCarloIDS(dev Device, spread VariationSpread, bias Bias, n int, seed int64) (VariationResult, error) {
	return MonteCarloIDSContext(context.Background(), dev, spread, bias, n, seed) //lint:allow ctxpropagate documented non-cancellable convenience shim
}

// EFSensitivity estimates d(IDS)/d(EF) via the refit-free Fermi-level
// shift; dEF is the shift applied to the Fermi level, in
// electronvolts (eV).
func EFSensitivity(dev Device, bias Bias, dEF float64) (float64, error) {
	return variation.Sensitivity(dev, bias, dEF)
}
