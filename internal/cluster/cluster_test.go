package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cntfet/internal/telemetry"
)

// fakeReplica is a minimal cntserve stand-in: counts jobs, answers
// /healthz, and tags its job responses so tests can see who served.
type fakeReplica struct {
	name    string
	jobs    atomic.Int64
	healthy atomic.Bool
	ts      *httptest.Server
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.jobs.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"kind": "iv-point", "ids": 1, "served_by": %q}`, f.name)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !f.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status": "ok"}`)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

const jobBody = `{"kind": "iv-point", "model": {"family": "model2"}, "vg": 0.5, "vd": 0.4}`

func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// postRouter sends one job through the router handler and returns the
// response plus the replica that served it.
func postRouter(t *testing.T, rt *Router, body string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w, w.Header().Get(ReplicaHeader)
}

// TestRankDeterministic pins the rendezvous contract: the order is a
// permutation of the replica set, stable across calls and across
// router instances, keyed by the key bytes — and over many keys every
// replica gets to be home (no degenerate hash).
func TestRankDeterministic(t *testing.T) {
	cfg := Config{Replicas: []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}}
	a := newRouter(t, cfg)
	b := newRouter(t, cfg)

	homes := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("model1/default/T=%d/EF=-0.32", 200+i)
		oa, ob := a.rank(key), b.rank(key)
		if len(oa) != 3 {
			t.Fatalf("rank returned %d replicas, want 3", len(oa))
		}
		seen := map[string]bool{}
		for j := range oa {
			if oa[j].base != ob[j].base {
				t.Fatalf("routers disagree on order for %s: %s vs %s", key, oa[j].base, ob[j].base)
			}
			seen[oa[j].base] = true
		}
		if len(seen) != 3 {
			t.Fatalf("rank is not a permutation: %v", seen)
		}
		homes[oa[0].base]++
	}
	for base, n := range homes {
		if n == 0 {
			t.Fatalf("replica %s never home across 200 keys: %v", base, homes)
		}
	}
	if len(homes) != 3 {
		t.Fatalf("only %d of 3 replicas ever home: %v", len(homes), homes)
	}
}

// TestAffinityRoutesToOneHome checks the economic core: repeated jobs
// for one model key all land on the same replica (counted as local
// hits), and the other replica sees nothing.
func TestAffinityRoutesToOneHome(t *testing.T) {
	r0, r1 := newFakeReplica(t, "r0"), newFakeReplica(t, "r1")
	rt := newRouter(t, Config{Replicas: []string{r0.ts.URL, r1.ts.URL}})
	reg := telemetry.Default()
	localBefore := reg.Counter(telemetry.KeyClusterRouteLocalHit).Value()

	var served string
	for i := 0; i < 5; i++ {
		w, rep := postRouter(t, rt, jobBody)
		if w.Code != http.StatusOK {
			t.Fatalf("routed job %d: status %d: %s", i, w.Code, w.Body)
		}
		if i == 0 {
			served = rep
		} else if rep != served {
			t.Fatalf("job %d served by %s, earlier by %s: affinity broken", i, rep, served)
		}
	}
	if got := r0.jobs.Load() + r1.jobs.Load(); got != 5 {
		t.Fatalf("replicas saw %d jobs, want 5", got)
	}
	if r0.jobs.Load() != 0 && r1.jobs.Load() != 0 {
		t.Fatalf("both replicas served one key: %d/%d", r0.jobs.Load(), r1.jobs.Load())
	}
	if d := reg.Counter(telemetry.KeyClusterRouteLocalHit).Value() - localBefore; d != 5 {
		t.Fatalf("local_hit delta = %d, want 5", d)
	}
}

// TestFailoverToNextInHashOrder kills the home replica and checks the
// job is retried on the fallback, counted as a failover, with the dead
// replica marked out of rotation.
func TestFailoverToNextInHashOrder(t *testing.T) {
	r0, r1 := newFakeReplica(t, "r0"), newFakeReplica(t, "r1")
	rt := newRouter(t, Config{Replicas: []string{r0.ts.URL, r1.ts.URL}, Backoff: time.Millisecond})
	reg := telemetry.Default()

	_, home := postRouter(t, rt, jobBody)
	victim, survivor := r0, r1
	if home == strings.TrimRight(r1.ts.URL, "/") {
		victim, survivor = r1, r0
	}
	victim.ts.Close()

	failoverBefore := reg.Counter(telemetry.KeyClusterRouteFailover).Value()
	retriesBefore := reg.Counter(telemetry.KeyClusterRouteRetries).Value()
	w, rep := postRouter(t, rt, jobBody)
	if w.Code != http.StatusOK {
		t.Fatalf("failover job: status %d: %s", w.Code, w.Body)
	}
	if rep != strings.TrimRight(survivor.ts.URL, "/") {
		t.Fatalf("failover served by %s, want survivor %s", rep, survivor.ts.URL)
	}
	if !strings.Contains(w.Body.String(), `"served_by": "`+survivor.name+`"`) {
		t.Fatalf("failover body not from survivor: %s", w.Body)
	}
	if d := reg.Counter(telemetry.KeyClusterRouteFailover).Value() - failoverBefore; d != 1 {
		t.Fatalf("failover delta = %d, want 1", d)
	}
	if d := reg.Counter(telemetry.KeyClusterRouteRetries).Value() - retriesBefore; d != 1 {
		t.Fatalf("retries delta = %d, want 1", d)
	}

	// The dead replica is now out of rotation: the next job goes
	// straight to the survivor, no retry needed.
	retriesBefore = reg.Counter(telemetry.KeyClusterRouteRetries).Value()
	if w, _ := postRouter(t, rt, jobBody); w.Code != http.StatusOK {
		t.Fatalf("post-failover job: status %d", w.Code)
	}
	if d := reg.Counter(telemetry.KeyClusterRouteRetries).Value() - retriesBefore; d != 0 {
		t.Fatalf("healthy-first routing still retried %d times", d)
	}
}

// TestRetryOn5xxAnd429 checks the retry statuses: a replica answering
// 503 or 429 is skipped for the fallback, while a 400 is a real answer
// and is relayed as-is.
func TestRetryOn5xxAnd429(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
	}{
		{"5xx", http.StatusServiceUnavailable},
		{"429", http.StatusTooManyRequests},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var flakyJobs atomic.Int64
			flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				flakyJobs.Add(1)
				w.WriteHeader(tc.status)
			}))
			defer flaky.Close()
			good := newFakeReplica(t, "good")
			rt := newRouter(t, Config{Replicas: []string{flaky.URL, good.ts.URL}, Backoff: time.Millisecond})

			// Post for enough distinct keys that at least one homes on the
			// flaky replica; every job must still answer 200 from the good
			// one.
			for i := 0; i < 8; i++ {
				body := fmt.Sprintf(`{"kind": "iv-point", "model": {"family": "model2", "t": %d}, "vg": 0.5, "vd": 0.4}`, 250+i)
				w, rep := postRouter(t, rt, body)
				if w.Code != http.StatusOK {
					t.Fatalf("job %d: status %d: %s", i, w.Code, w.Body)
				}
				if rep != strings.TrimRight(good.ts.URL, "/") {
					t.Fatalf("job %d served by %s, want the good replica", i, rep)
				}
			}
			if flakyJobs.Load() == 0 {
				t.Skip("no key homed on the flaky replica (unlucky hash); nothing exercised")
			}
		})
	}

	t.Run("400 is an answer, not a retry", func(t *testing.T) {
		bad := newFakeReplica(t, "bad400")
		good := newFakeReplica(t, "good")
		rt := newRouter(t, Config{Replicas: []string{bad.ts.URL, good.ts.URL}})
		w, rep := postRouter(t, rt, `{"kind": "no-such-kind", "model": {}}`)
		// Both fakes answer 200 for any body; the point is single
		// delivery: exactly one replica sees the job.
		if w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
		if rep == "" || bad.jobs.Load()+good.jobs.Load() != 1 {
			t.Fatalf("job delivered %d times, want exactly 1", bad.jobs.Load()+good.jobs.Load())
		}
	})
}

// TestAllReplicasDown checks the terminal case: every attempt failing
// yields one 502 with a structured body and a route-errors count.
func TestAllReplicasDown(t *testing.T) {
	r0, r1 := newFakeReplica(t, "r0"), newFakeReplica(t, "r1")
	rt := newRouter(t, Config{Replicas: []string{r0.ts.URL, r1.ts.URL}, Backoff: time.Millisecond})
	r0.ts.Close()
	r1.ts.Close()

	reg := telemetry.Default()
	errsBefore := reg.Counter(telemetry.KeyClusterRouteErrors).Value()
	w, _ := postRouter(t, rt, jobBody)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("all-down job: status %d, want 502: %s", w.Code, w.Body)
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Class != "unavailable" {
		t.Fatalf("502 body not classified: %s", w.Body)
	}
	if d := reg.Counter(telemetry.KeyClusterRouteErrors).Value() - errsBefore; d != 1 {
		t.Fatalf("route errors delta = %d, want 1", d)
	}
}

// TestSpellingsShareOneHome is the router half of the canonical-key
// contract: two bodies spelling the same model differently must hash
// to the same home replica.
func TestSpellingsShareOneHome(t *testing.T) {
	r0, r1 := newFakeReplica(t, "r0"), newFakeReplica(t, "r1")
	rt := newRouter(t, Config{Replicas: []string{r0.ts.URL, r1.ts.URL}})
	_, a := postRouter(t, rt, `{"kind": "iv-point", "model": {}, "vg": 0.5, "vd": 0.4}`)
	_, b := postRouter(t, rt, `{"kind": "iv-point", "model": {"family": "model1", "device": "default"}, "vg": 0.5, "vd": 0.4}`)
	if a == "" || a != b {
		t.Fatalf("equivalent spellings routed to %q and %q", a, b)
	}
}

// TestStreamedProxyFlushes drives an NDJSON stream through the router
// over real connections and asserts frames arrive one by one — each
// line readable before the backend has sent the next — proving the
// per-read flush, not post-hoc buffering.
func TestStreamedProxyFlushes(t *testing.T) {
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" {
			fmt.Fprint(w, `{"status": "ok"}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		rc := http.NewResponseController(w)
		fmt.Fprintln(w, `{"row": {"index": 0}}`)
		rc.Flush()
		<-release // hold the stream open until the client has row 0
		fmt.Fprintln(w, `{"done": {"kind": "family-sweep", "elapsed_ns": 1}}`)
		rc.Flush()
	}))
	defer backend.Close()

	rt := newRouter(t, Config{Replicas: []string{backend.URL}})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(jobBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get(ReplicaHeader) == "" {
		t.Fatal("streamed response missing replica header")
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first frame: %v", sc.Err())
	}
	if !strings.Contains(sc.Text(), `"index": 0`) {
		t.Fatalf("first frame wrong: %q", sc.Text())
	}
	// Row 0 arrived while the backend still holds the stream open: the
	// router flushed it through. Now let the backend finish.
	close(release)
	if !sc.Scan() || !strings.Contains(sc.Text(), `"done"`) {
		t.Fatalf("no done frame: %q %v", sc.Text(), sc.Err())
	}
}

// TestProbesRecoverReplica checks the active half of health: a replica
// that goes unhealthy is probed out of rotation, and — the part
// passive marking cannot do — probed back in when it recovers.
func TestProbesRecoverReplica(t *testing.T) {
	rep := newFakeReplica(t, "flappy")
	rt := newRouter(t, Config{
		Replicas:      []string{rep.ts.URL, "http://127.0.0.1:1"},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		Backoff:       time.Millisecond,
	})
	stop := rt.StartProbes(t.Context())
	defer stop()

	waitHealth := func(idx int, want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for rt.replicas[idx].healthy() != want && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if rt.replicas[idx].healthy() != want {
			t.Fatalf("replica %d health never became %v", idx, want)
		}
	}

	// The dead address is probed out; the live replica stays in.
	waitHealth(1, false)
	waitHealth(0, true)

	// The live replica starts failing health checks: probed out...
	rep.healthy.Store(false)
	waitHealth(0, false)
	// ...and its gauge mirrors the flip.
	g := telemetry.Default().Gauge(fmt.Sprintf(telemetry.KeyClusterReplicaHealthyFmt, 0))
	if g.Value() != 0 {
		t.Fatalf("replica 0 gauge = %d after going down, want 0", g.Value())
	}

	// Recovery: health checks pass again and the replica re-enters
	// rotation with no router restart.
	rep.healthy.Store(true)
	waitHealth(0, true)
	if g.Value() != 1 {
		t.Fatalf("replica 0 gauge = %d after recovery, want 1", g.Value())
	}
	w, _ := postRouter(t, rt, jobBody)
	if w.Code != http.StatusOK {
		t.Fatalf("job after recovery: status %d", w.Code)
	}

	// Router health reflects the view.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("router healthz not JSON: %v: %s", err, rec.Body)
	}
	if h.Status != "ok" || len(h.Replicas) != 2 || !h.Replicas[0].Healthy || h.Replicas[1].Healthy {
		t.Fatalf("router health view wrong: %+v", h)
	}
}

// TestOversizedBodyRejected pins the router's own body cap: a request
// the router will not buffer answers 413 without touching a replica.
func TestOversizedBodyRejected(t *testing.T) {
	rep := newFakeReplica(t, "r0")
	rt := newRouter(t, Config{Replicas: []string{rep.ts.URL}, MaxBody: 64})
	w, _ := postRouter(t, rt, `{"kind": "iv-point", "model": {}, "gates": [`+strings.Repeat("0.1,", 100)+`0.1]}`)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}
	if rep.jobs.Load() != 0 {
		t.Fatalf("oversized body reached a replica")
	}
}
