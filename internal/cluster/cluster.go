// Package cluster is the routing front-end of a cntserve fleet: a
// stdlib-only reverse proxy that sends every job to the replica that
// owns its model. The paper's economics make the per-(family, device,
// T, EF) charge representation the expensive object — everything
// downstream of a built table or piecewise fit is cheap — so at fleet
// scale the goal is one build per model key fleet-wide, not one per
// replica. Random load balancing gives O(replicas) builds per key;
// key-affinity routing gives O(1).
//
// The affinity is rendezvous (highest-random-weight) hashing over the
// canonical model key the server itself caches on (server.RouteKey —
// router and backend share the function, so they can never disagree
// about identity). Each replica scores fnv64a(replica + NUL + key);
// descending score order is the key's preference list: the top replica
// is its home, the rest a deterministic failover chain. Rendezvous
// needs no ring state, no coordination, and minimal key movement when
// the replica set changes — with R replicas, removing one reassigns
// only that replica's keys.
//
// The router proxies both buffered JSON and streamed NDJSON responses
// (flushing frame by frame), propagates client disconnects upstream
// through the request context, retries down/5xx/429 replicas along the
// hash order with capped backoff, health-checks replicas actively with
// jittered probes so a recovered replica re-enters rotation without a
// restart, and exposes its own /healthz and Prometheus /metrics
// (cluster.route.* counters and per-replica health gauges).
package cluster

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cntfet/internal/telemetry"
)

// Config tunes a Router. Replicas is the only required field.
type Config struct {
	// Replicas are the backend base URLs ("http://host:port"), one per
	// cntserve process. Order is cosmetic — routing depends only on the
	// URL strings — but indices into this slice name the replicas in
	// metrics and health output.
	Replicas []string
	// Client performs the upstream requests. Nil means a client with no
	// overall timeout (streamed responses are open-ended; per-request
	// deadlines belong to the backend).
	Client *http.Client
	// MaxBody caps the request body the router will buffer for routing
	// and replay. Zero means 1 MiB, matching the backend default.
	MaxBody int64
	// Retries caps how many replicas one job may try (first attempt
	// included). Zero means all of them; 1 disables failover.
	Retries int
	// Backoff is the delay before the second attempt, doubling per
	// further attempt and capped at 10x. Zero means 50ms.
	Backoff time.Duration
	// ProbeInterval is the active health-check period; each cycle is
	// jittered ±25% so a fleet of routers does not probe in lockstep.
	// Zero means 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe. Zero means 1s.
	ProbeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Retries <= 0 {
		c.Retries = len(c.Replicas)
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	return c
}

// replica is one backend and the router's view of its health. Health
// flips passively (a transport error during a proxy marks it down) and
// actively (the probe loop marks it down or back up), mirrored into a
// per-replica gauge for /metrics.
type replica struct {
	index int
	base  string
	down  atomic.Bool
	gauge *telemetry.Gauge
}

func (r *replica) healthy() bool { return !r.down.Load() }

func (r *replica) setHealthy(up bool) {
	r.down.Store(!up)
	v := int64(0)
	if up {
		v = 1
	}
	r.gauge.Set(v)
}

// Router routes jobs across a static replica set. Create one with
// New; serve its Handler; start active health checking with
// StartProbes.
type Router struct {
	cfg      Config
	replicas []*replica
	mux      *http.ServeMux
	start    time.Time
}

// New builds a Router over the replica set.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, start: time.Now()}
	reg := telemetry.Default()
	seen := map[string]bool{}
	for i, base := range cfg.Replicas {
		base = strings.TrimRight(base, "/")
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			base = "http://" + base
		}
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate replica %s", base)
		}
		seen[base] = true
		rep := &replica{
			index: i,
			base:  base,
			gauge: reg.Gauge(fmt.Sprintf(telemetry.KeyClusterReplicaHealthyFmt, i)),
		}
		// Optimistic start: every replica is in rotation until a probe or
		// a failed proxy says otherwise, so the router serves immediately.
		rep.setHealthy(true)
		rt.replicas = append(rt.replicas, rep)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/jobs", rt.handleJob)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		if err := telemetry.Default().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	rt.mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := telemetry.Default().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return rt, nil
}

// Handler is the router's route table: POST /v1/jobs proxies to the
// fleet, GET /healthz reports the router's replica view, GET /metrics
// and /metrics.json serve the process telemetry registry.
func (rt *Router) Handler() http.Handler { return rt.mux }

// rank returns the replicas in the key's rendezvous preference order:
// descending fnv64a(base + NUL + key), index ascending on the
// (practically impossible) tie. rank(key)[0] is the key's home
// replica; the rest are its deterministic failover chain. The order
// depends only on the replica URL strings and the key bytes, so every
// router over the same replica set computes the same homes.
func (rt *Router) rank(key string) []*replica {
	type scored struct {
		rep   *replica
		score uint64
	}
	order := make([]scored, len(rt.replicas))
	for i, rep := range rt.replicas {
		h := fnv.New64a()
		h.Write([]byte(rep.base))
		h.Write([]byte{0})
		h.Write([]byte(key))
		order[i] = scored{rep: rep, score: h.Sum64()}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].rep.index < order[j].rep.index
	})
	out := make([]*replica, len(order))
	for i, s := range order {
		out[i] = s.rep
	}
	return out
}

// Health is the router's GET /healthz body: overall status plus the
// per-replica view active probing maintains.
type Health struct {
	// Status is "ok" while at least one replica is in rotation,
	// "degraded" otherwise (the router still fails open and tries).
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_s"`
	Replicas      []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one replica's row in the router health report.
type ReplicaHealth struct {
	Index   int    `json:"index"`
	Base    string `json:"base"`
	Healthy bool   `json:"healthy"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{Status: "degraded", UptimeSeconds: time.Since(rt.start).Seconds()}
	for _, rep := range rt.replicas {
		up := rep.healthy()
		if up {
			h.Status = "ok"
		}
		h.Replicas = append(h.Replicas, ReplicaHealth{Index: rep.index, Base: rep.base, Healthy: up})
	}
	writeJSON(w, http.StatusOK, h)
}
