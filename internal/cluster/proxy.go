// proxy.go is the data plane: one job in, one replica chain tried,
// one response relayed. The router buffers the (bounded) request body
// so it can replay it on retry, decodes just enough of it to compute
// the canonical model key, and walks the key's rendezvous order —
// healthy replicas first, then (failing open) the ones probing marked
// down. A replica answering, even with a job error like 400 or 422, is
// the answer: those statuses are deterministic properties of the
// request, not of the replica. Only transport failures, 5xx and 429
// move on to the next replica, with capped exponential backoff between
// attempts. Every job is a pure computation, so retrying is safe by
// construction.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cntfet/internal/server"
	"cntfet/internal/telemetry"
)

// ReplicaHeader names the response header carrying the base URL of
// the replica that served a routed job — the observable half of the
// affinity contract, and what the selftest asserts on.
const ReplicaHeader = "Cntshard-Replica"

// errorResponse mirrors the backend's error body shape so router-made
// errors (413, 502) read the same as replica-made ones.
type errorResponse struct {
	Error string `json:"error"`
	Class string `json:"class"`
}

// handleJob is POST /v1/jobs: buffer, key, rank, try replicas in
// order, relay the first real answer.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	reg := telemetry.Default()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBody))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{
			Error: fmt.Sprintf("cluster: reading request body: %v", err),
			Class: "invalid-request",
		})
		return
	}

	// Routing needs only the model identity; schema enforcement stays
	// the backend's job. A body that does not even decode still routes
	// deterministically (by the zero request's key) and comes back as
	// the backend's 400.
	var jr server.JobRequest
	_ = json.Unmarshal(body, &jr)
	key := server.RouteKey(jr)

	order := rt.rank(key)
	home := order[0]
	attempts := 0
	for _, rep := range healthyFirst(order) {
		if attempts >= rt.cfg.Retries {
			break
		}
		if attempts > 0 {
			reg.Counter(telemetry.KeyClusterRouteRetries).Inc()
			if !rt.backoff(r.Context(), attempts) {
				break // client gone mid-backoff; nothing left to answer
			}
		}
		attempts++
		done, retryable := rt.proxy(w, r, rep, body)
		if done {
			if rep == home {
				reg.Counter(telemetry.KeyClusterRouteLocalHit).Inc()
			} else {
				reg.Counter(telemetry.KeyClusterRouteFailover).Inc()
			}
			return
		}
		if !retryable {
			return
		}
	}
	reg.Counter(telemetry.KeyClusterRouteErrors).Inc()
	writeJSON(w, http.StatusBadGateway, errorResponse{
		Error: fmt.Sprintf("cluster: no replica answered for key %s (%d tried)", key, attempts),
		Class: "unavailable",
	})
}

// healthyFirst reorders a rendezvous ranking so in-rotation replicas
// come first, preserving rank within each half. The unhealthy tail
// keeps the router failing open: when probing has everything marked
// down (a mass restart, a partition healing), jobs still try the
// chain instead of 502ing on a stale view.
func healthyFirst(order []*replica) []*replica {
	out := make([]*replica, 0, len(order))
	for _, rep := range order {
		if rep.healthy() {
			out = append(out, rep)
		}
	}
	for _, rep := range order {
		if !rep.healthy() {
			out = append(out, rep)
		}
	}
	return out
}

// backoff sleeps the capped exponential delay before retry n (n >= 1),
// reporting false if the client's context ended first.
func (rt *Router) backoff(ctx context.Context, n int) bool {
	d := rt.cfg.Backoff << (n - 1)
	if max := 10 * rt.cfg.Backoff; d > max {
		d = max
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// proxy tries one replica. done means a response was relayed to the
// client (success or a deterministic job error — either way the job is
// answered); retryable means nothing was written and the next replica
// in hash order may be tried. A transport failure marks the replica
// out of rotation immediately; the probe loop readmits it.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, rep *replica, body []byte) (done, retryable bool) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, rep.base+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false, true
	}
	copyHeaders(req.Header, r.Header)
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		// The request context ending is the client hanging up, not the
		// replica failing: stop routing, change nothing about health.
		if r.Context().Err() != nil {
			return false, false
		}
		rep.setHealthy(false)
		return false, true
	}
	if resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests {
		// A saturated or failing replica: drain for connection reuse and
		// move down the chain. 429 is load, not death — health untouched.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			rep.setHealthy(false)
		}
		return false, true
	}
	defer resp.Body.Close()

	copyHeaders(w.Header(), resp.Header)
	w.Header().Set(ReplicaHeader, rep.base)
	w.WriteHeader(resp.StatusCode)
	// Relay with a flush per read so streamed NDJSON frames reach the
	// client as the backend emits them; for buffered JSON the extra
	// flushes are harmless. A mid-stream error is past the point of
	// retry — the client sees the truncation, exactly as if it had been
	// connected to the replica directly.
	flushCopy(w, resp.Body)
	return true, false
}

// flushCopy copies upstream bytes to the client, flushing after every
// chunk.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			// Flush errors only mean the writer cannot flush; the copy
			// itself decides when the relay ends.
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// hopByHop are the connection-scoped headers a proxy must not
// forward (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		dst[k] = vs
	}
	for _, k := range hopByHop {
		dst.Del(k)
	}
	// The router re-frames the body itself.
	dst.Del("Content-Length")
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}
