// health.go is the control plane: a probe loop that keeps the
// router's replica view live in both directions. Passive marking
// (proxy.go) only ever takes replicas out of rotation; this loop is
// what brings a recovered replica back without a router restart. Each
// cycle GETs every replica's /healthz under a short deadline and flips
// the replica's health bit — and its cluster.replica.N.healthy gauge —
// to match. The cycle period is jittered ±25% so a fleet of routers
// sharing a replica set does not synchronise into probe bursts.
package cluster

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"cntfet/internal/telemetry"
)

// StartProbes runs the active health-check loop until ctx ends,
// returning a stop function that cancels the loop and waits for it to
// exit. The first probe cycle runs immediately, so a router started
// against a half-up fleet converges before the first interval ticks.
func (rt *Router) StartProbes(ctx context.Context) (stop func()) {
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:allow goroutine the loop owns no channel sends and exits with ctx; stop() joins it via the WaitGroup
	go func() {
		defer wg.Done()
		src := rand.New(rand.NewSource(time.Now().UnixNano()))
		rt.probeAll(ctx)
		for {
			t := time.NewTimer(jitter(src, rt.cfg.ProbeInterval))
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
				rt.probeAll(ctx)
			}
		}
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}

// jitter spreads an interval to [0.75, 1.25) of its nominal value.
func jitter(src *rand.Rand, d time.Duration) time.Duration {
	return time.Duration((0.75 + 0.5*src.Float64()) * float64(d))
}

// probeAll checks every replica once, in order. Sequential on purpose:
// the fleet is small and a replica-count burst of concurrent probes is
// exactly the lockstep load the jitter exists to avoid.
func (rt *Router) probeAll(ctx context.Context) {
	for _, rep := range rt.replicas {
		if ctx.Err() != nil {
			return
		}
		rep.setHealthy(rt.probe(ctx, rep))
	}
}

// probe is one liveness check: a 200 from the replica's /healthz
// within the probe timeout.
func (rt *Router) probe(ctx context.Context, rep *replica) bool {
	telemetry.Default().Counter(telemetry.KeyClusterProbes).Inc()
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
