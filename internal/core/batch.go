package core

import (
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// IDSFrom implements the sweep package's warm-start interface. The
// closed-form solve has no iteration state to warm, so the guess is
// ignored; the solved VSC is still returned so chunked sweeps can
// drive reference and piecewise models through one code path.
func (m *Model) IDSFrom(b fettoy.Bias, _ float64) (ids, vsc float64, err error) {
	vsc, err = m.SolveVSC(b)
	if err != nil {
		return 0, 0, err
	}
	return m.CurrentAtVSC(vsc, b), vsc, nil
}

// IDSBatch evaluates one current per bias into out (which must be at
// least as long as bias), implementing the sweep package's batch
// interface. The loop drives the stack-allocated fast solver directly,
// so the per-point cost is the closed-form arithmetic itself — no
// interface dispatch or per-point error wrapping. The telemetry gate
// is hoisted out of the loop; region-dispatch counts are preserved.
func (m *Model) IDSBatch(bias []fettoy.Bias, out []float64) error {
	on := telemetry.On()
	for i, b := range bias {
		v, branch, ok := m.solveVSCFast(m.ulEff(b), b.VD-b.VS)
		if on {
			countDispatch(branch, ok)
		}
		if !ok {
			var err error
			if v, err = m.solveVSCGeneric(b); err != nil {
				return err
			}
		}
		out[i] = m.CurrentAtVSC(v, b)
	}
	return nil
}
