package core

import (
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// IDSFrom implements the sweep package's warm-start interface. The
// closed-form solve has no iteration state to warm, so the guess is
// ignored; the solved VSC is still returned so chunked sweeps can
// drive reference and piecewise models through one code path.
func (m *Model) IDSFrom(b fettoy.Bias, _ float64) (ids, vsc float64, err error) {
	vsc, err = m.SolveVSC(b)
	if err != nil {
		return 0, 0, err
	}
	return m.CurrentAtVSC(vsc, b), vsc, nil
}

// batchBlock is the stride of the row kernel: points are processed in
// blocks of this many, with the solved VSC values parked in a stack
// buffer between the solve loop and the current loop. 64 keeps the
// buffer (512 B) comfortably on the stack while the two tight loops
// each run long enough to amortise their setup.
const batchBlock = 64

// IDSBatch evaluates one current per bias into out (which must be at
// least as long as bias), implementing the sweep package's batch
// interface. It is the closed-form serving kernel and allocates
// nothing (testing.AllocsPerRun == 0, telemetry on or off):
//
//   - Region dispatch is hoisted out of the inner loop: the scan
//     cursor that locates the root's piecewise segment is carried from
//     point to point, so runs of neighbouring points that share a
//     segment pay two residual sign checks instead of a full
//     breakpoint scan (see solveVSCRow).
//   - Each block runs two tight loops over contiguous slices: one
//     evaluating the segment polynomials' closed-form roots into a
//     stack buffer, one turning the solved voltages into currents.
//   - Telemetry is accumulated in local counters and flushed with one
//     atomic add per touched instrument after the batch; the inner
//     loop carries no shared-counter traffic at all.
//
// Counter totals (core.solves, core.dispatch.*, core.fallback_generic)
// are identical to the per-point path's.
//
//perf:zeroalloc
func (m *Model) IDSBatch(bias []fettoy.Bias, out []float64) error {
	var counts [dispatchCount]int64
	var solves, fallbacks int64
	var vscBuf [batchBlock]float64
	cursor := -1 // no segment hint yet: first point pays the cold scan
	for base := 0; base < len(bias); base += batchBlock {
		end := base + batchBlock
		if end > len(bias) {
			end = len(bias)
		}
		blk := bias[base:end]
		// Solve loop: closed-form roots only, currents deferred.
		for i, b := range blk {
			//lint:allow zeroalloc solveVSCRow's closures never escape (stack-allocated; the alloc test covers this path)
			v, branch, ok := m.solveVSCRow(m.ulEff(b), b.VD-b.VS, &cursor)
			solves++
			counts[branch]++
			if !ok {
				fallbacks++
				var err error
				//lint:allow zeroalloc cold fallback for points the fast path rejects; its fmt.Errorf is the failure exit
				if v, err = m.solveVSCGeneric(b); err != nil {
					if telemetry.On() {
						flushDispatch(&counts, solves, fallbacks)
					}
					return err
				}
			}
			vscBuf[i] = v
		}
		// Current loop: the Fermi-integral evaluation over the solved
		// slice, contiguous reads from the stack buffer.
		for i, b := range blk {
			out[base+i] = m.CurrentAtVSC(vscBuf[i], b)
		}
	}
	if telemetry.On() {
		flushDispatch(&counts, solves, fallbacks)
	}
	return nil
}
