//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions only hold without instrumentation.
const raceEnabled = false
