package core

import (
	"fmt"
	"math"

	"cntfet/internal/fettoy"
	"cntfet/internal/optimize"
	"cntfet/internal/poly"
	"cntfet/internal/units"
)

// FitOptions tunes the charge-curve fitting.
type FitOptions struct {
	// URange is the sampling window in u = VSC − EF/q (volts). The
	// zero value derives a window from the device and spec (see
	// OperationalURange): it must cover the u values the bias sweeps
	// actually reach — since IDS error scales with the *absolute*
	// charge error, fitting far outside the reachable window wastes
	// the few degrees of freedom the C¹-constrained models have on
	// curve regions no bias visits.
	URange [2]float64
	// Samples is the number of theory evaluations across URange
	// (default 240). The theory curve is sampled once per fit; this is
	// the only place the slow reference model is consulted.
	Samples int
	// OptimizeBreaks re-derives the region boundaries numerically by
	// Nelder–Mead RMS minimisation (the paper's "purely numerical"
	// boundary choice) instead of trusting Spec.Breaks.
	OptimizeBreaks bool
	// VGMax is the largest gate bias the fit should stay accurate for
	// when deriving the default window (default 0.6 V, the paper's
	// sweep limit).
	VGMax float64
	// WeightFloor controls relative-error weighting: each sample gets
	// weight 1/(|Q| + WeightFloor·max|Q|)², so the knee region (small
	// charge, exponentially sensitive subthreshold current) is fitted
	// to relative rather than absolute accuracy. The zero value means
	// 0.05; a negative value selects uniform (absolute) weighting.
	WeightFloor float64
	// TrainTemps, when non-empty, stacks theory samples from the same
	// device at each listed temperature into one fit — the paper's
	// "over the temperature range 150K ≤ T ≤ 450K" training. The
	// resulting charge curve is a compromise across the range; leaving
	// this empty fits at the device's own temperature (tighter at that
	// temperature, the library default). The ablation benchmark
	// quantifies the difference.
	TrainTemps []float64
}

func (o *FitOptions) fill(dev fettoy.Device, spec Spec) {
	if o.VGMax == 0 { //lint:allow floatcmp zero VGMax selects the default
		o.VGMax = 0.6
	}
	if o.URange == [2]float64{} {
		o.URange = OperationalURange(dev, spec, o.VGMax)
	}
	if o.Samples == 0 {
		o.Samples = 240
	}
	if o.WeightFloor == 0 { //lint:allow floatcmp zero WeightFloor selects the default
		o.WeightFloor = 0.05
	}
}

// sampleWeights builds the relative-error weights for the charge
// samples; nil means uniform.
func (o FitOptions) sampleWeights(ys []float64) []float64 {
	if o.WeightFloor < 0 {
		return nil
	}
	ymax := 0.0
	for _, y := range ys {
		if a := math.Abs(y); a > ymax {
			ymax = a
		}
	}
	if ymax == 0 { //lint:allow floatcmp exact-zero normalisation guard
		return nil
	}
	w := make([]float64, len(ys))
	for i, y := range ys {
		d := math.Abs(y) + o.WeightFloor*ymax
		w[i] = 1 / (d * d)
	}
	return w
}

// OperationalURange returns the window of u = VSC − EF/q a device
// actually visits for gate biases up to vgMax, padded so every region
// of the spec (including the deep linear region) receives samples. The
// most negative reachable VSC is about −(αG+αD)·vgMax (the zero-charge
// limit; charge feedback only pulls VSC upward), so
// u_min ≈ −(αG+αD)·vgMax − EF; the high side only needs to reach past
// the zero-region boundary.
func OperationalURange(dev fettoy.Device, spec Spec, vgMax float64) [2]float64 {
	uMin := -(dev.AlphaG+dev.AlphaD)*vgMax - dev.EF
	if len(spec.Breaks) > 0 && spec.Breaks[0] < uMin {
		uMin = spec.Breaks[0] // keep the first region non-degenerate
	}
	uMin -= 0.1
	uMax := 0.35
	if last := spec.Breaks[len(spec.Breaks)-1]; last+0.1 > uMax {
		uMax = last + 0.1
	}
	return [2]float64{uMin, uMax}
}

// Fit samples the theoretical mobile charge QS(VSC) from the reference
// model and fits the spec's piecewise polynomial with C¹ continuity,
// returning a fast Model. The fit lives in u-space so the breakpoints
// are the paper's EF-relative values; the returned model stores the
// curve shifted back to absolute VSC.
func Fit(ref *fettoy.Model, spec Spec, opt FitOptions) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dev := ref.Device()
	opt.fill(dev, spec)
	if opt.URange[1] <= opt.URange[0] {
		return nil, fmt.Errorf("core: bad URange %v", opt.URange)
	}

	// Sample the theory once. The fitted quantity is q·NS(VSC) =
	// QS + q·N0/2 rather than QS itself: q·NS is positive and truly
	// tends to zero above EF/q, so the models' fixed zero tail is
	// exact in the limit, while the equilibrium constant -q·N0/2 is
	// carried analytically. For the paper's EF = -0.32 eV the two are
	// indistinguishable (N0 ~ 1e-6 of the curve scale), but at EF = 0
	// the constant is what keeps the closed-form solve accurate in the
	// zero region.
	qn0Half := 0.5 * units.Q * ref.N0()
	base := units.Linspace(opt.URange[0], opt.URange[1], opt.Samples)
	var us, ys []float64
	if len(opt.TrainTemps) == 0 {
		us = base
		ys = make([]float64, len(us))
		for i, u := range us {
			ys[i] = ref.QS(u+dev.EF) + qn0Half
		}
	} else {
		// Stack samples from every training temperature (paper: one
		// model trained over 150-450 K). Each temperature contributes
		// its own q·NS curve; the device's own equilibrium constant is
		// still what the solver uses.
		for _, temp := range opt.TrainTemps {
			devT := dev
			devT.T = temp
			refT, err := fettoy.New(devT)
			if err != nil {
				return nil, fmt.Errorf("core: training temperature %g K: %w", temp, err)
			}
			offT := 0.5 * units.Q * refT.N0()
			for _, u := range base {
				us = append(us, u)
				ys = append(ys, refT.QS(u+devT.EF)+offT)
			}
		}
	}

	weights := opt.sampleWeights(ys)
	breaks := append([]float64(nil), spec.Breaks...)
	if opt.OptimizeBreaks {
		// Multi-start: the paper's boundaries were derived for 300 K;
		// the knee width scales with kT, so a temperature-scaled
		// variant of the starting point lets the optimiser find the
		// sharper knee at low T instead of a nearby local minimum.
		starts := [][]float64{breaks}
		if scale := units.KT(dev.T) / units.KT(units.Room); scale != 1 { //lint:allow floatcmp scale exactly 1 means T == Room, no extra start
			scaled := make([]float64, len(breaks))
			for i, b := range breaks {
				scaled[i] = b * scale
			}
			starts = append(starts, scaled)
		}
		breaks = optimizeBreaksMulti(spec, us, ys, weights, starts)
	}

	pw, err := fitU(spec, breaks, us, ys, weights)
	if err != nil {
		return nil, err
	}
	return newModel(dev, spec, breaks, pw, ref.N0())
}

// fitU runs the constrained least squares in u-space.
func fitU(spec Spec, breaks, us, ys, weights []float64) (poly.Piecewise, error) {
	return poly.FitPiecewiseWeighted(breaks, spec.pieceSpecs(), us, ys, weights, spec.continuityOrders())
}

// optimizeBreaksMulti runs the breakpoint optimisation from several
// starting points and keeps the best result.
func optimizeBreaksMulti(spec Spec, us, ys, weights []float64, starts [][]float64) []float64 {
	best := starts[0]
	bestScore := math.Inf(1)
	for _, start := range starts {
		b := optimizeBreaks(spec, us, ys, weights, start)
		if s := breakObjective(spec, us, ys, weights, b); s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// breakObjective scores one breakpoint candidate (weighted fit RMS;
// +Inf for infeasible candidates).
func breakObjective(spec Spec, us, ys, weights, b []float64) float64 {
	for i, v := range b {
		if v <= us[0] || v >= us[len(us)-1] {
			return math.Inf(1)
		}
		if i > 0 && v <= b[i-1]+0.01 {
			return math.Inf(1)
		}
	}
	pw, err := fitU(spec, b, us, ys, weights)
	if err != nil {
		return math.Inf(1)
	}
	if weights == nil {
		return poly.RMS(pw.At, us, ys)
	}
	s := 0.0
	for i, u := range us {
		d := pw.At(u) - ys[i]
		s += weights[i] * d * d
	}
	return math.Sqrt(s / float64(len(us)))
}

// optimizeBreaks minimises the weighted fit RMS over the interior
// breakpoints with Nelder–Mead, keeping them ordered and inside the
// sample window.
func optimizeBreaks(spec Spec, us, ys, weights, start []float64) []float64 {
	objective := func(b []float64) float64 {
		return breakObjective(spec, us, ys, weights, b)
	}
	best, _, err := optimize.NelderMead(objective, start, optimize.NelderMeadOptions{
		InitialStep: uniformSteps(len(start), 0.02),
		MaxIter:     800,
	})
	if err != nil && err != optimize.ErrMaxIter {
		return start
	}
	if objective(best) <= objective(start) {
		return best
	}
	return start
}

func uniformSteps(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// FitQuality reports how well a fitted model tracks the theory curve it
// was trained on.
type FitQuality struct {
	// RMS is the absolute charge RMS deviation in C/m.
	RMS float64
	// RMSRel is RMS normalised by the mean absolute theory charge.
	RMSRel float64
	// C0, C1 are the worst value/slope jumps across breakpoints.
	C0, C1 float64
}

// Quality re-samples the reference model and scores the fit.
func Quality(ref *fettoy.Model, m *Model, opt FitOptions) FitQuality {
	dev := ref.Device()
	opt.fill(dev, m.Spec())
	us := units.Linspace(opt.URange[0], opt.URange[1], opt.Samples)
	var q FitQuality
	sum, mean := 0.0, 0.0
	for _, u := range us {
		vsc := u + dev.EF
		d := m.QS(vsc) - ref.QS(vsc)
		sum += d * d
		mean += math.Abs(ref.QS(vsc))
	}
	n := float64(len(us))
	q.RMS = math.Sqrt(sum / n)
	mean /= n
	if mean > 0 {
		q.RMSRel = q.RMS / mean
	}
	q.C0, q.C1 = m.qsU.ContinuityError()
	return q
}
