package core

import (
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

func fitTestModel(tb testing.TB, spec Spec) *Model {
	tb.Helper()
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		tb.Fatal(err)
	}
	m, err := Fit(ref, spec, FitOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestDispatchCounters checks that enabled telemetry attributes every
// closed-form solve to exactly one region-dispatch branch.
func TestDispatchCounters(t *testing.T) {
	m := fitTestModel(t, Model2Spec())
	telemetry.Enable()
	defer telemetry.Disable()
	reg := telemetry.Default()
	base := reg.Snapshot().Counters

	solves := 0
	for _, vg := range []float64{0.0, 0.2, 0.4, 0.6} {
		for _, vd := range []float64{0.0, 0.3, 0.6} {
			if _, err := m.SolveVSC(fettoy.Bias{VG: vg, VD: vd}); err != nil {
				t.Fatalf("VG=%g VD=%g: %v", vg, vd, err)
			}
			solves++
		}
	}

	s := reg.Snapshot().Counters
	if got := s["core.solves"] - base["core.solves"]; got != int64(solves) {
		t.Fatalf("core.solves = %d, want %d", got, solves)
	}
	branches := s["core.dispatch.linear"] - base["core.dispatch.linear"] +
		s["core.dispatch.quadratic"] - base["core.dispatch.quadratic"] +
		s["core.dispatch.cardano"] - base["core.dispatch.cardano"] +
		s["core.dispatch.trig"] - base["core.dispatch.trig"] +
		s["core.dispatch.none"] - base["core.dispatch.none"]
	if branches != int64(solves) {
		t.Fatalf("dispatch branches sum to %d, want %d", branches, solves)
	}
	if got := s["core.fallback_generic"] - base["core.fallback_generic"]; got != 0 {
		t.Fatalf("unexpected generic fallbacks: %d", got)
	}
}

// TestDisabledTelemetryCountsNothing pins the no-op fast path: with the
// gate off, solver work must leave the registry untouched.
func TestDisabledTelemetryCountsNothing(t *testing.T) {
	m := fitTestModel(t, Model1Spec())
	telemetry.Disable()
	base := telemetry.Default().Snapshot().Counters["core.solves"]
	for i := 0; i < 10; i++ {
		if _, err := m.IDS(fettoy.Bias{VG: 0.5, VD: 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if got := telemetry.Default().Snapshot().Counters["core.solves"]; got != base {
		t.Fatalf("disabled telemetry still counted: %d -> %d", base, got)
	}
}

// benchIDS is the shared body of the telemetry-overhead benchmarks.
// The satellite requirement is that the disabled path costs <2% on
// Piecewise.IDS; compare BenchmarkIDSTelemetryOff against
// BenchmarkIDSTelemetryOn (and against historical BENCH numbers) to
// read the gate and instrument costs respectively.
func benchIDS(b *testing.B, enabled bool) {
	m := fitTestModel(b, Model2Spec())
	was := telemetry.On()
	telemetry.Default().SetEnabled(enabled)
	defer telemetry.Default().SetEnabled(was)
	bias := fettoy.Bias{VG: 0.5, VD: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.IDS(bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIDSTelemetryOff(b *testing.B) { benchIDS(b, false) }
func BenchmarkIDSTelemetryOn(b *testing.B)  { benchIDS(b, true) }
