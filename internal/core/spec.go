// Package core implements the paper's contribution: piecewise
// non-linear approximation of the non-equilibrium mobile charge density
// of a ballistic CNT transistor, enabling a closed-form solution of the
// self-consistent voltage equation and drain-current evaluation three
// orders of magnitude faster than the theoretical (FETToy-style) model.
//
// The charge curve QS(VSC) is approximated by polynomials of degree at
// most 3 over regions of the normalised variable u = VSC − EF/q:
//
//	Model 1 (paper §IV, fig. 2): linear | quadratic | zero
//	                             with breaks at u = −0.08 V and +0.08 V.
//	Model 2 (paper §IV, fig. 3): linear | quadratic | cubic | zero
//	                             with breaks at −0.28, −0.03, +0.12 V.
//
// Region boundaries are the paper's (obtained numerically by RMS
// minimisation); coefficients are fitted per device with continuity of
// value and first derivative. Because every region is degree ≤ 3, the
// self-consistent equation restricted to a region is a cubic with a
// closed-form root — no Newton–Raphson, no Fermi–Dirac quadrature.
package core

import (
	"fmt"

	"cntfet/internal/poly"
)

// Spec describes the region structure of a piecewise charge model in
// the normalised variable u = VSC − EF/q (volts).
type Spec struct {
	// Name labels the spec in reports ("Model 1", "Model 2").
	Name string
	// Breaks are the interior region boundaries in u, ascending.
	Breaks []float64
	// Degrees lists the polynomial degree of each non-tail region;
	// len(Degrees) = len(Breaks) when ZeroTail is true (the final
	// region is the fixed zero polynomial), len(Breaks)+1 otherwise.
	Degrees []int
	// ZeroTail pins the last region to Q = 0 (both models do).
	ZeroTail bool
	// TailC1 additionally forces a zero first derivative where the
	// curve enters the zero region. Off by default: the true charge
	// decays exponentially there, and burning a derivative constraint
	// on the boundary costs Model 1 nearly all of its freedom (it
	// would collapse to a single fitted parameter). The ablation bench
	// quantifies the difference.
	TailC1 bool
}

// continuityOrders returns the per-break derivative-continuity orders:
// C1 at joins between free polynomials, C0 (or C1 with TailC1) at the
// boundary of the fixed zero tail.
func (s Spec) continuityOrders() []int {
	orders := make([]int, len(s.Breaks))
	for i := range orders {
		orders[i] = 1
	}
	if s.ZeroTail && !s.TailC1 {
		orders[len(orders)-1] = 0
	}
	return orders
}

// Model1Spec returns the paper's three-piece model: linear for
// u ≤ −0.08 V, quadratic for −0.08 < u < 0.08, zero above.
func Model1Spec() Spec {
	return Spec{
		Name:     "Model 1",
		Breaks:   []float64{-0.08, 0.08},
		Degrees:  []int{1, 2},
		ZeroTail: true,
	}
}

// Model2Spec returns the paper's four-piece model: linear for
// u ≤ −0.28 V, quadratic to −0.03 V, cubic to +0.12 V, zero above.
func Model2Spec() Spec {
	return Spec{
		Name:     "Model 2",
		Breaks:   []float64{-0.28, -0.03, 0.12},
		Degrees:  []int{1, 2, 3},
		ZeroTail: true,
	}
}

// Validate reports the first structural problem with the spec, or nil.
func (s Spec) Validate() error {
	want := len(s.Breaks) + 1
	if s.ZeroTail {
		want = len(s.Breaks)
	}
	if len(s.Degrees) != want {
		return fmt.Errorf("core: spec %q has %d degrees, want %d", s.Name, len(s.Degrees), want)
	}
	for i := 1; i < len(s.Breaks); i++ {
		if !(s.Breaks[i] > s.Breaks[i-1]) {
			return fmt.Errorf("core: spec %q breaks not ascending", s.Name)
		}
	}
	for i, d := range s.Degrees {
		if d < 0 || d > 3 {
			return fmt.Errorf("core: spec %q region %d degree %d outside [0,3] — closed-form solve impossible", s.Name, i, d)
		}
	}
	if len(s.Breaks) == 0 {
		return fmt.Errorf("core: spec %q needs at least one break", s.Name)
	}
	return nil
}

// pieceSpecs converts the spec to the fitting layer's form.
func (s Spec) pieceSpecs() []poly.PieceSpec {
	out := make([]poly.PieceSpec, 0, len(s.Breaks)+1)
	for _, d := range s.Degrees {
		out = append(out, poly.PieceSpec{Degree: d})
	}
	if s.ZeroTail {
		zero := poly.Poly{}
		out = append(out, poly.PieceSpec{Fixed: &zero})
	}
	return out
}

// Regions returns a human-readable description of each region, used by
// the figure-2/3 regenerators.
func (s Spec) Regions() []string {
	names := map[int]string{0: "constant", 1: "linear", 2: "quadratic", 3: "3rd order"}
	var out []string
	for i, d := range s.Degrees {
		lo, hi := "-inf", fmt.Sprintf("%+.2f", s.Breaks[i])
		if i > 0 {
			lo = fmt.Sprintf("%+.2f", s.Breaks[i-1])
		}
		if i == len(s.Degrees)-1 && !s.ZeroTail {
			hi = "+inf"
		}
		out = append(out, fmt.Sprintf("%s on (%s, %s]", names[d], lo, hi))
	}
	if s.ZeroTail {
		out = append(out, fmt.Sprintf("zero on (%+.2f, +inf)", s.Breaks[len(s.Breaks)-1]))
	}
	return out
}
