package core

import (
	"math"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// Region-dispatch branches of the closed-form solve, used as indices
// into the dispatch counter array. The split mirrors solveMonotoneCubic:
// which closed-form root formula the bracketed region required.
const (
	dispatchNone      = iota // no root in region / break-buffer overflow
	dispatchLinear           // degree-1 region
	dispatchQuadratic        // degree-2 region
	dispatchCardano          // cubic, one real root (Cardano)
	dispatchTrig             // cubic, three real roots (trigonometric)
	dispatchCount
)

// metrics holds the pre-resolved telemetry handles of the piecewise
// solver. Unlike the reference model, this path runs in ~0.2 µs, so
// every call site gates on telemetry.On() — with the gate off the only
// cost is one atomic bool load per solve.
var metrics = struct {
	solves          *telemetry.Counter
	dispatch        [dispatchCount]*telemetry.Counter
	fallbackGeneric *telemetry.Counter
}{
	solves: telemetry.Default().Counter(telemetry.KeyCoreSolves),
	dispatch: [dispatchCount]*telemetry.Counter{
		telemetry.Default().Counter(telemetry.KeyCoreDispatchNone),
		telemetry.Default().Counter(telemetry.KeyCoreDispatchLinear),
		telemetry.Default().Counter(telemetry.KeyCoreDispatchQuadratic),
		telemetry.Default().Counter(telemetry.KeyCoreDispatchCardano),
		telemetry.Default().Counter(telemetry.KeyCoreDispatchTrig),
	},
	fallbackGeneric: telemetry.Default().Counter(telemetry.KeyCoreFallbackGeneric),
}

// The hot path of the paper: solving the self-consistent voltage
// equation in closed form. The generic piecewise machinery in
// internal/poly allocates (Taylor shifts, break merging); at one call
// per bias point in a circuit simulator that overhead would swamp the
// polynomial arithmetic itself, so this file re-implements the solve on
// stack-allocated degree-3 coefficient arrays. A test cross-checks it
// against the generic path.

// cubic is a polynomial of degree <= 3, coef[i]·x^i.
type cubic [4]float64

func (c cubic) at(x float64) float64 {
	return c[0] + x*(c[1]+x*(c[2]+x*c[3]))
}

func (c cubic) deriv(x float64) float64 {
	return c[1] + x*(2*c[2]+x*3*c[3])
}

// shifted returns the coefficients of q(x) = c(x + h).
func (c cubic) shifted(h float64) cubic {
	return cubic{
		c[0] + h*(c[1]+h*(c[2]+h*c[3])),
		c[1] + h*(2*c[2]+3*h*c[3]),
		c[2] + 3*h*c[3],
		c[3],
	}
}

// solveVSCFast solves F(V) = V + ul - (QS(V) + QS(V+vds))/CΣ = 0 using
// the model's piecewise cubic charge curve, without allocation beyond
// two small stack arrays. F is strictly increasing (CΣ plus a positive
// quantum-capacitance term), so the sign of F at the merged breakpoints
// brackets the root into exactly one region, where the closed-form
// root of the region's polynomial applies (paper section V). It is the
// cold-cursor case of the row kernel below.
func (m *Model) solveVSCFast(ul, vds float64) (float64, int, bool) {
	cursor := -1
	return m.solveVSCRow(ul, vds, &cursor)
}

// mergeBreaks writes the ascending merge of the model's breakpoints
// b_i (where QS(V) changes pieces) and b_i - vds (where QS(V+vds)
// does) into cand. Both inputs are already sorted, so a two-pointer
// merge does it in one pass; the candidate multiset — and therefore
// every decision downstream — is identical to sorting the interleaved
// pairs.
func (m *Model) mergeBreaks(vds float64, cand *[16]float64) int {
	breaks := m.fastBreaks
	i, j, k := 0, 0, 0
	for i < len(breaks) && j < len(breaks) {
		if a, b := breaks[i], breaks[j]-vds; a <= b {
			cand[k] = a
			i++
		} else {
			cand[k] = b
			j++
		}
		k++
	}
	for ; i < len(breaks); i++ {
		cand[k] = breaks[i]
		k++
	}
	for ; j < len(breaks); j++ {
		cand[k] = breaks[j] - vds
		k++
	}
	return k
}

// solveVSCRow is the region-dispatch-hoisted solve the batch kernel
// runs per point: *cursor carries the index of the previous point's
// bracketing breakpoint, so a run of neighbouring bias points whose
// roots share a piecewise segment verifies the cached bracket with two
// residual sign checks instead of re-scanning the merged breakpoint
// list from the bottom. A cursor of -1 (or a stale hint) degrades to
// exactly the cold scan. The (lo, hi] bracket, the assembled residual
// polynomial and hence the returned root are bit-identical to the
// cold-scan path's: only the order of sign evaluations changes, and F
// is monotone across the scanned breakpoints.
func (m *Model) solveVSCRow(ul, vds float64, cursor *int) (float64, int, bool) {
	// The paper's models have <= 3 breaks; custom specs up to 8 breaks
	// still fit the stack buffer, beyond that the caller falls back to
	// the generic path.
	var cand [16]float64
	if 2*len(m.fastBreaks) > len(cand) {
		return 0, dispatchNone, false
	}
	n := m.mergeBreaks(vds, &cand)
	inv := 1 / m.csigma

	// F at a candidate, by point evaluations of QS — the same
	// expression (and bits) the cold scan uses. Candidates within
	// 1e-15 of their left neighbour are coincident breaks: the scan
	// skips them, so the bracket below never collapses to zero width.
	fAt := func(i int) float64 {
		b := cand[i]
		return b + ul - inv*(m.qsFast(b)+m.qsFast(b+vds))
	}
	skip := func(i int) bool { return i > 0 && cand[i]-cand[i-1] < 1e-15 }
	// prevScanned returns the largest non-coincident index < i, or -1.
	prevScanned := func(i int) int {
		for j := i - 1; j >= 0; j-- {
			if !skip(j) {
				return j
			}
		}
		return -1
	}

	// Locate h, the first scanned candidate with F >= 0 (h == n means
	// the root lies beyond every break). With a cursor hint the common
	// case is confirming F(h) >= 0 > F(prev); without one — or when
	// the hint misses — scan like the cold path.
	h := *cursor
	if h >= 0 {
		if h > n {
			h = n
		}
		for h < n && skip(h) {
			h++
		}
		if h < n && fAt(h) < 0 {
			// Root moved up: resume the upward scan past the hint.
			next := n
			for i := h + 1; i < n; i++ {
				if skip(i) {
					continue
				}
				if fAt(i) >= 0 {
					next = i
					break
				}
			}
			h = next
		} else {
			// F(h) >= 0 (or h == n): walk down while the predecessor
			// also clears zero, so h ends on the first crossing.
			for {
				p := prevScanned(h)
				if p < 0 || fAt(p) < 0 {
					break
				}
				h = p
			}
		}
	} else {
		h = n
		for i := 0; i < n; i++ {
			if skip(i) {
				continue
			}
			if fAt(i) >= 0 {
				h = i
				break
			}
		}
	}
	*cursor = h

	lo, hi := math.Inf(-1), math.Inf(1)
	if h < n {
		hi = cand[h]
	}
	if p := prevScanned(h); p >= 0 {
		lo = cand[p]
	}

	f := m.fTotal(pick(lo, hi), ul, vds)
	return solveMonotoneCubic(f, lo, hi)
}

// countDispatch records one fast-path solve outcome; the caller gates
// on telemetry.On() so the disabled path stays branch-only.
func countDispatch(branch int, ok bool) {
	metrics.solves.Inc()
	metrics.dispatch[branch].Inc()
	if !ok {
		metrics.fallbackGeneric.Inc()
	}
}

// flushDispatch records a whole batch's fast-path outcomes with one
// atomic add per touched instrument. The row kernel accumulates into a
// local array so its inner loop carries no shared-counter traffic;
// totals match per-point countDispatch exactly.
func flushDispatch(counts *[dispatchCount]int64, solves, fallbacks int64) {
	metrics.solves.Add(solves)
	for br, c := range counts {
		if c != 0 {
			metrics.dispatch[br].Add(c)
		}
	}
	if fallbacks != 0 {
		metrics.fallbackGeneric.Add(fallbacks)
	}
}

// pick returns a representative point inside (lo, hi].
func pick(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi - 1e-9
	case math.IsInf(hi, 1):
		return lo + 1
	default:
		return 0.5 * (lo + hi)
	}
}

// fTotal assembles the residual polynomial valid around point x:
// F(V) = V + ul - (QS(V) + QS(V+vds))/CΣ.
func (m *Model) fTotal(x, ul, vds float64) cubic {
	p := m.pieceAt(x)
	q := m.pieceAt(x + vds).shifted(vds)
	inv := -1 / m.csigma
	return cubic{
		ul + inv*(p[0]+q[0]),
		1 + inv*(p[1]+q[1]),
		inv * (p[2] + q[2]),
		inv * (p[3] + q[3]),
	}
}

// pieceAt returns the charge-curve coefficients covering VSC = x.
// Convention matches poly.Piecewise: piece i covers (b_{i-1}, b_i].
func (m *Model) pieceAt(x float64) cubic {
	for i, b := range m.fastBreaks {
		if x <= b {
			return m.fastCoef[i]
		}
	}
	return m.fastCoef[len(m.fastCoef)-1]
}

// qsFast evaluates the fitted charge at VSC = x without constructing a
// cubic value copy chain beyond the piece lookup.
func (m *Model) qsFast(x float64) float64 {
	for i, b := range m.fastBreaks {
		if x <= b {
			c := &m.fastCoef[i]
			return c[0] + x*(c[1]+x*(c[2]+x*c[3]))
		}
	}
	c := &m.fastCoef[len(m.fastCoef)-1]
	return c[0] + x*(c[1]+x*(c[2]+x*c[3]))
}

// solveMonotoneCubic finds the root of an increasing polynomial of
// degree <= 3 inside (lo, hi], in closed form, with a final Newton
// polish. ok is false when no root lies in the interval (which for a
// monotone residual means the bracketing logic failed upstream). The
// middle return reports which dispatch branch produced the root, for
// the region-dispatch histogram.
func solveMonotoneCubic(c cubic, lo, hi float64) (float64, int, bool) {
	const tol = 1e-12
	try := func(r float64) (float64, bool) {
		if (math.IsInf(lo, -1) || r >= lo-tol) && (math.IsInf(hi, 1) || r <= hi+tol) {
			// One Newton polish step tightens the closed-form root.
			if d := c.deriv(r); d != 0 { //lint:allow floatcmp exact-zero derivative guard before dividing
				step := c.at(r) / d
				if math.Abs(step) < 1e-3*(1+math.Abs(r)) {
					r -= step
				}
			}
			return r, true
		}
		return 0, false
	}

	switch {
	case c[3] != 0: //lint:allow floatcmp exact degree dispatch on the stored coefficient
		// Depressed cubic via Cardano / trigonometric form.
		a, b, d := c[2]/c[3], c[1]/c[3], c[0]/c[3]
		p := b - a*a/3
		q := 2*a*a*a/27 - a*b/3 + d
		shift := -a / 3
		disc := q*q/4 + p*p*p/27
		if disc > 0 {
			sq := math.Sqrt(disc)
			r := math.Cbrt(-q/2+sq) + math.Cbrt(-q/2-sq) + shift
			v, ok := try(r)
			return v, dispatchCardano, ok
		}
		if p == 0 { //lint:allow floatcmp exact depressed-cubic degenerate branch
			v, ok := try(shift)
			return v, dispatchCardano, ok
		}
		mmod := 2 * math.Sqrt(-p/3)
		arg := 3 * q / (p * mmod)
		if arg > 1 {
			arg = 1
		} else if arg < -1 {
			arg = -1
		}
		theta := math.Acos(arg) / 3
		for k := 0; k < 3; k++ {
			r := mmod*math.Cos(theta-2*math.Pi*float64(k)/3) + shift
			if v, ok := try(r); ok {
				return v, dispatchTrig, true
			}
		}
		return 0, dispatchNone, false
	case c[2] != 0: //lint:allow floatcmp exact degree dispatch on the stored coefficient
		disc := c[1]*c[1] - 4*c[2]*c[0]
		if disc < 0 {
			return 0, dispatchNone, false
		}
		sq := math.Sqrt(disc)
		var qq float64
		if c[1] >= 0 {
			qq = -0.5 * (c[1] + sq)
		} else {
			qq = -0.5 * (c[1] - sq)
		}
		if v, ok := try(qq / c[2]); ok {
			return v, dispatchQuadratic, true
		}
		if qq != 0 { //lint:allow floatcmp exact-zero divisor guard
			v, ok := try(c[0] / qq)
			return v, dispatchQuadratic, ok
		}
		return 0, dispatchNone, false
	case c[1] != 0: //lint:allow floatcmp exact degree dispatch on the stored coefficient
		v, ok := try(-c[0] / c[1])
		return v, dispatchLinear, ok
	default:
		return 0, dispatchNone, false
	}
}

// initFast caches the stack-friendly representation of the fitted
// charge curve; called once at construction.
func (m *Model) initFast() {
	m.fastBreaks = append([]float64(nil), m.qs.Breaks...)
	m.fastCoef = make([]cubic, len(m.qs.Pieces))
	for i, p := range m.qs.Pieces {
		var c cubic
		for j, v := range p.Coef {
			if j > 3 {
				break
			}
			c[j] = v
		}
		m.fastCoef[i] = c
	}
}

// SolveVSCGeneric is the allocation-heavy reference implementation of
// the closed-form solve, kept for cross-checking the fast path (and as
// executable documentation of the algorithm in terms of the poly
// package).
func (m *Model) SolveVSCGeneric(b fettoy.Bias) (float64, error) {
	return m.solveVSCGeneric(b)
}
