package core

import (
	"encoding/json"
	"strings"
	"testing"

	"cntfet/internal/fettoy"
)

func TestExportRoundTripExact(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	for _, build := range []func(*fettoy.Model) (*Model, error){Model1, Model2} {
		orig, err := build(ref)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalData(raw)
		if err != nil {
			t.Fatal(err)
		}
		// The reconstructed model must evaluate bit-identically: same
		// charge curve, same closed-form solve.
		for vg := 0.0; vg <= 0.6; vg += 0.1 {
			for vd := 0.0; vd <= 0.6; vd += 0.15 {
				b := fettoy.Bias{VG: vg, VD: vd}
				i1, err1 := orig.IDS(b)
				i2, err2 := back.IDS(b)
				if err1 != nil || err2 != nil {
					t.Fatalf("%+v: %v / %v", b, err1, err2)
				}
				if i1 != i2 {
					t.Fatalf("%+v: %g != %g after round trip", b, i1, i2)
				}
			}
		}
		if got := back.Spec().Name; got != orig.Spec().Name {
			t.Fatalf("spec name %q after round trip", got)
		}
	}
}

func TestFromDataValidation(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	good := m.Export()

	mutations := []func(*ModelData){
		func(d *ModelData) { d.Device.Diameter = -1 },
		func(d *ModelData) { d.Spec.Degrees = nil },
		func(d *ModelData) { d.Pieces = d.Pieces[1:] },
		func(d *ModelData) { d.BreaksU = []float64{0.3, 0.1, 0.2} },
		func(d *ModelData) { d.N0 = -5 },
		func(d *ModelData) { d.Pieces[0] = []float64{1, 2, 3, 4, 5} }, // degree 4
		func(d *ModelData) { d.Pieces[1][0] *= 3 },                    // breaks C0 continuity
	}
	for i, mut := range mutations {
		d := cloneData(good)
		mut(&d)
		if _, err := FromData(d); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := UnmarshalData([]byte("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func cloneData(d ModelData) ModelData {
	out := d
	out.BreaksU = append([]float64(nil), d.BreaksU...)
	out.Pieces = make([][]float64, len(d.Pieces))
	for i, p := range d.Pieces {
		out.Pieces[i] = append([]float64(nil), p...)
	}
	out.Spec.Breaks = append([]float64(nil), d.Spec.Breaks...)
	out.Spec.Degrees = append([]int(nil), d.Spec.Degrees...)
	return out
}

func TestWriteVHDLAMSStructure(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.WriteVHDLAMS(&b, "cnt_m2"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"entity cnt_m2 is",
		"architecture piecewise of cnt_m2 is",
		"terminal drain, gate, source : electrical",
		"quantity vsc : voltage",
		"function qns",
		"log(1.0 + exp((EF - vsc - ",
		"ALPHAG*vgs",
		"end architecture;",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VHDL output missing %q:\n%s", want, out)
		}
	}
	// One conditional branch per fitted break.
	if got := strings.Count(out, "u <="); got != len(m.BreaksU()) {
		t.Fatalf("%d conditional branches for %d breaks", got, len(m.BreaksU()))
	}
}

func TestWriteVHDLAMSEntityNameValidation(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model1(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"1abc", "has space", "semi;colon", "_lead"} {
		if err := m.WriteVHDLAMS(&strings.Builder{}, bad); err == nil {
			t.Errorf("entity name %q accepted", bad)
		}
	}
	// Empty name falls back to the default.
	var b strings.Builder
	if err := m.WriteVHDLAMS(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "entity cntfet_piecewise is") {
		t.Fatal("default entity name missing")
	}
}

func TestVHDLPolyHornerForm(t *testing.T) {
	got := vhdlPoly([]float64{1, -2, 3})
	// Horner: 1 + u*(-2 + u*(3))
	if !strings.Contains(got, "u*(") || !strings.HasPrefix(got, "1.0000000000e+00") {
		t.Fatalf("vhdlPoly = %q", got)
	}
	if vhdlPoly(nil) != "0.0" {
		t.Fatal("empty polynomial should render 0.0")
	}
	// The rendered expression must evaluate like the polynomial: spot
	// check by simple substitution semantics (count of u occurrences
	// equals degree).
	if strings.Count(got, "u*") != 2 {
		t.Fatalf("expected 2 Horner steps: %q", got)
	}
}
