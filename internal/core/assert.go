package core

import "cntfet/internal/device"

// The piecewise closed-form model provides every capability except
// ContextBuilder — it has no deferred construction (the charge-curve
// fit happens eagerly in Fit, before the model exists).
var (
	_ device.Device         = (*Model)(nil)
	_ device.WarmStarter    = (*Model)(nil)
	_ device.BatchSolver    = (*Model)(nil)
	_ device.GradientSolver = (*Model)(nil)
)
