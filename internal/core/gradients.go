package core

import (
	"cntfet/internal/fermi"
	"cntfet/internal/fettoy"
)

// Conductances solves the operating point in closed form and returns
// the drain current with its analytic small-signal parameters
// gm = ∂IDS/∂VG and gds = ∂IDS/∂VD (source fixed). The implicit
// derivative of the piecewise self-consistent equation only needs the
// polynomial slopes of the fitted charge curve, so the whole
// computation stays allocation-free — this is what makes the model
// cheap inside a circuit simulator's Jacobian assembly, not just in
// plain IV sweeps.
func (m *Model) Conductances(b fettoy.Bias) (ids, gm, gds float64, err error) {
	vsc, err := m.SolveVSC(b)
	if err != nil {
		return 0, 0, 0, err
	}
	vds := b.VD - b.VS

	// F(V) = V + ulEff - (P(V) + P(V+vds))/CΣ with P the fitted qNS.
	// ∂F/∂V = 1 - (P'(V) + P'(V+vds))/CΣ; P is decreasing so both
	// slope terms add positively.
	dpS := m.qsSlope(vsc)
	dpD := m.qsSlope(vsc + vds)
	d := 1 - (dpS+dpD)/m.csigma
	dVdVG := -m.dev.AlphaG / d
	// ∂F/∂VD = αD - P'(V+vds)/CΣ (vds carries the VD dependence).
	dVdVD := -(m.dev.AlphaD - dpD/m.csigma) / d

	ids = m.CurrentAtVSC(vsc, b)
	usf := m.dev.EF - vsc
	udf := usf - vds
	var dIdV, dIdVD float64
	for _, band := range m.bands {
		deg := float64(band.Degeneracy) / 2
		occS := fermi.DF0((usf - band.EMin) / m.kT)
		occD := fermi.DF0((udf - band.EMin) / m.kT)
		dIdV += deg * (-occS + occD)
		dIdVD += deg * occD
	}
	dIdV *= m.i0 / m.kT
	dIdVD *= m.i0 / m.kT

	gm = dIdV * dVdVG
	gds = dIdV*dVdVD + dIdVD
	return ids, gm, gds, nil
}

// qsSlope evaluates the derivative of the fitted charge curve at
// VSC = x from the cached cubic coefficients.
func (m *Model) qsSlope(x float64) float64 {
	for i, b := range m.fastBreaks {
		if x <= b {
			c := &m.fastCoef[i]
			return c[1] + x*(2*c[2]+x*3*c[3])
		}
	}
	c := &m.fastCoef[len(m.fastCoef)-1]
	return c[1] + x*(2*c[2]+x*3*c[3])
}
