package core

import (
	"fmt"
	"math"

	"cntfet/internal/bandstruct"
	"cntfet/internal/fermi"
	"cntfet/internal/fettoy"
	"cntfet/internal/poly"
	"cntfet/internal/telemetry"
	"cntfet/internal/units"
)

// Model is the fast piecewise CNT transistor model. Construction costs
// one sampling pass over the slow theory (see Fit); every evaluation
// afterwards is pure closed-form polynomial arithmetic. A Model is safe
// for concurrent use.
type Model struct {
	dev    fettoy.Device
	spec   Spec
	breaks []float64 // final u-space breaks (post-optimisation)

	// qsU is the fitted q·NS curve in u-space (QS plus the equilibrium
	// constant, see Fit); qs is the same curve on the absolute VSC
	// axis (u = VSC - EF ⇒ shift by +EF). The physical mobile charge
	// is QS = qs - qn0Half.
	qsU poly.Piecewise
	qs  poly.Piecewise

	n0      float64 // equilibrium density, states/m
	qn0Half float64 // q·N0/2, C/m
	csigma  float64 // F/m
	kT      float64 // eV
	i0      float64 // current prefactor 2qkT/(πħ), A

	// bands caches the subband ladder (minima relative to the first
	// edge) so current evaluation does not rebuild it per call.
	bands []bandstruct.Subband

	// fastBreaks/fastCoef cache the VSC-space curve as fixed-size
	// cubic coefficient arrays for the allocation-free solver.
	fastBreaks []float64
	fastCoef   []cubic
}

func newModel(dev fettoy.Device, spec Spec, breaks []float64, qsU poly.Piecewise, n0 float64) (*Model, error) {
	// The KKT fit enforces the requested continuity exactly up to
	// round-off; anything beyond that indicates a degenerate fit.
	// Value continuity holds at every break; slope continuity only at
	// the breaks the spec constrains (the zero-tail boundary is C0
	// unless TailC1 is set). Normalise the slope jump by the region
	// width so both tolerances live on the charge scale.
	scale := math.Abs(qsU.At(qsU.Breaks[0])) + 1e-30
	width := qsU.Breaks[len(qsU.Breaks)-1] - qsU.Breaks[0]
	if width <= 0 {
		width = 1
	}
	deriv := qsU.Deriv()
	for i, b := range qsU.Breaks {
		if c0 := math.Abs(qsU.Pieces[i+1].At(b) - qsU.Pieces[i].At(b)); c0 > 1e-6*scale {
			return nil, fmt.Errorf("core: fitted curve discontinuous at break %d (jump %g)", i, c0)
		}
		if spec.continuityOrders()[i] >= 1 {
			if c1 := math.Abs(deriv.Pieces[i+1].At(b) - deriv.Pieces[i].At(b)); c1*width > 1e-4*scale {
				return nil, fmt.Errorf("core: fitted curve slope jump %g at break %d", c1, i)
			}
		}
	}
	m := &Model{
		dev:     dev,
		spec:    spec,
		breaks:  breaks,
		qsU:     qsU,
		qs:      qsU.Shift(-dev.EF), // qs(V) = qsU(V - EF)
		n0:      n0,
		qn0Half: 0.5 * units.Q * n0,
		csigma:  dev.CSigma(),
		kT:      dev.KT(),
		i0:      2 * units.Q * units.KB * dev.T / (math.Pi * units.HBar) * dev.TransmissionOrBallistic(),
		bands:   dev.Bands(),
	}
	m.initFast()
	return m, nil
}

// Model1 fits the paper's three-piece model to the reference device.
func Model1(ref *fettoy.Model) (*Model, error) {
	return Fit(ref, Model1Spec(), FitOptions{})
}

// Model2 fits the paper's four-piece model to the reference device.
func Model2(ref *fettoy.Model) (*Model, error) {
	return Fit(ref, Model2Spec(), FitOptions{})
}

// Device returns the device parameters the model was fitted for.
func (m *Model) Device() fettoy.Device { return m.dev }

// Spec returns the region structure.
func (m *Model) Spec() Spec { return m.spec }

// BreaksU returns the fitted region boundaries in u = VSC - EF/q.
func (m *Model) BreaksU() []float64 { return append([]float64(nil), m.breaks...) }

// PiecewiseU returns the fitted QS(u) curve (C/m against volts).
func (m *Model) PiecewiseU() poly.Piecewise { return m.qsU }

// QS evaluates the approximated source mobile charge q(NS - N0/2) in
// C/m at the given self-consistent voltage vsc in volts (V) (paper
// eq. 10). Beyond the
// last region boundary it equals exactly -q·N0/2 (the fitted filled-
// state term is identically zero there).
func (m *Model) QS(vsc float64) float64 { return m.qs.At(vsc) - m.qn0Half }

// QD evaluates the approximated drain mobile charge: the same fitted
// curve shifted by the drain bias, QD(VSC) = QS(VSC + VDS) (paper
// eq. 11 with eq. 6). vsc and vds are in volts (V).
func (m *Model) QD(vsc, vds float64) float64 { return m.qs.At(vsc+vds) - m.qn0Half }

// SolveVSC solves the self-consistent voltage equation in closed form.
// On every region of the combined source+drain charge curve the
// residual
//
//	F(V) = V + αG·VG + αD·VD + αS·VS − (QS(V) + QS(V+VDS))/CΣ
//
// is a polynomial of degree ≤ 3; the solver locates the sign-changing
// region (F is strictly increasing) and applies the closed-form root —
// no iteration, no integration. This is the paper's core speed claim.
func (m *Model) SolveVSC(b fettoy.Bias) (float64, error) {
	v, branch, ok := m.solveVSCFast(m.ulEff(b), b.VD-b.VS)
	if telemetry.On() {
		countDispatch(branch, ok)
	}
	if ok {
		return v, nil
	}
	// The fast path only fails on pathological fits; fall back to the
	// generic piecewise machinery, which reports a useful error.
	return m.solveVSCGeneric(b)
}

// ulEff folds the terminal-voltage term and the equilibrium-charge
// constant into one effective offset, so the residual reads
// F(V) = V + ulEff - (qNS(V) + qNS(V+VDS))/CΣ with qNS the fitted
// curve: the -q·N0 of the paper's eq. 7 (corrected signs) is exactly
// +q·N0/CΣ here.
func (m *Model) ulEff(b fettoy.Bias) float64 {
	alphaS := 1 - m.dev.AlphaG - m.dev.AlphaD
	ul := m.dev.AlphaG*b.VG + m.dev.AlphaD*b.VD + alphaS*b.VS
	return ul + 2*m.qn0Half/m.csigma
}

// solveVSCGeneric solves the same equation through the generic
// piecewise-polynomial machinery. It allocates; SolveVSC prefers the
// specialised path and uses this as fallback and cross-check.
func (m *Model) solveVSCGeneric(b fettoy.Bias) (float64, error) {
	vds := b.VD - b.VS

	// Combined filled-state charge as a function of V, scaled to the
	// residual form: F(V) = V + ulEff + combined(V) with
	// combined = -(qNS(V) + qNS(V+VDS))/CΣ.
	qd := m.qs.Shift(vds)
	combined := poly.AddPiecewise(m.qs, qd).Scale(-1 / m.csigma)
	v, err := combined.SolveMonotone(1, m.ulEff(b))
	if err != nil {
		return 0, fmt.Errorf("core: closed-form VSC solve failed at %+v: %w", b, err)
	}
	return v, nil
}

// CurrentAtVSC evaluates the drain current from a known VSC via the
// closed-form Fermi–Dirac integral of order 0 (paper eq. 14). vsc is
// in volts (V).
func (m *Model) CurrentAtVSC(vsc float64, b fettoy.Bias) float64 {
	vds := b.VD - b.VS
	usf := m.dev.EF - vsc
	udf := usf - vds
	// The paper's fast path is single-subband (eq. 14); honour the
	// device's ladder the same way the reference does so comparisons
	// are apples-to-apples.
	sum := 0.0
	for _, band := range m.bands {
		d := float64(band.Degeneracy) / 2
		sum += d * (fermi.F0((usf-band.EMin)/m.kT) - fermi.F0((udf-band.EMin)/m.kT))
	}
	return m.i0 * sum
}

// IDS computes the drain-source current in amperes at the given bias.
func (m *Model) IDS(b fettoy.Bias) (float64, error) {
	vsc, err := m.SolveVSC(b)
	if err != nil {
		return 0, err
	}
	return m.CurrentAtVSC(vsc, b), nil
}

// Solve returns the full operating point (mirrors fettoy.Solve so the
// two models are interchangeable behind the cntfet.Transistor
// interface).
func (m *Model) Solve(b fettoy.Bias) (fettoy.OperatingPoint, error) {
	vsc, err := m.SolveVSC(b)
	if err != nil {
		return fettoy.OperatingPoint{}, err
	}
	vds := b.VD - b.VS
	return fettoy.OperatingPoint{
		Bias: b,
		VSC:  vsc,
		IDS:  m.CurrentAtVSC(vsc, b),
		QS:   m.QS(vsc),
		QD:   m.QD(vsc, vds),
	}, nil
}

// CQS returns the source-side nonlinear capacitance dQS/dVSC in F/m
// at self-consistent voltage vsc in volts (V) — the element the
// paper's figure-1 equivalent circuit connects between the inner node
// Σ and the source. It is piecewise-polynomial (degree
// ≤ 2) and negative-valued in the charging region because QS decreases
// with VSC.
func (m *Model) CQS(vsc float64) float64 { return m.qsSlope(vsc) }

// CQD returns the drain-side nonlinear capacitance dQD/dVSC in F/m at
// the given drain bias; vsc and vds are in volts (V).
func (m *Model) CQD(vsc, vds float64) float64 { return m.qsSlope(vsc + vds) }

// WithEF returns a model for the same physical tube at a different
// doping level (Fermi level efNew, eV). No refit happens: the paper's
// normalised variable u = VSC - EF/q makes the fitted charge curve
// EF-invariant (the Fermi level only slides it along the VSC axis),
// and the equilibrium constant q·N0/2 is the fitted curve's own value
// at u = -EF (since NS(VSC=0) = N0/2). This is what makes large doping
// Monte Carlo sweeps cheap: one theory fit serves every sample.
func (m *Model) WithEF(efNew float64) (*Model, error) {
	dev := m.dev
	dev.EF = efNew
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	n0 := 2 * m.qsU.At(-efNew) / units.Q
	if n0 < 0 {
		n0 = 0 // tiny negative fit ripple in the zero region
	}
	return newModel(dev, m.spec, append([]float64(nil), m.breaks...), m.qsU, n0)
}
