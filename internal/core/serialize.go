package core

import (
	"encoding/json"
	"fmt"

	"cntfet/internal/fettoy"
	"cntfet/internal/poly"
)

// ModelData is the portable form of a fitted piecewise model: enough
// to reconstruct evaluation exactly without refitting (and without the
// slow reference model). It serialises cleanly to JSON, and is what
// the VHDL-AMS exporter reads — the paper published its Model 2 as a
// VHDL-AMS entity through the Southampton validation suite, and this
// is the equivalent hand-off artifact.
type ModelData struct {
	// Spec is the region structure (breaks here are the nominal
	// spec values; BreaksU carries the fitted ones).
	Spec Spec `json:"spec"`
	// Device is the parameter set the model was fitted for.
	Device fettoy.Device `json:"device"`
	// BreaksU are the fitted region boundaries in u = VSC - EF/q.
	BreaksU []float64 `json:"breaks_u"`
	// Pieces are the fitted q·NS polynomial coefficients per region
	// in u-space, constant term first.
	Pieces [][]float64 `json:"pieces"`
	// N0 is the equilibrium electron density in states/m.
	N0 float64 `json:"n0"`
}

// Export captures the fitted model.
func (m *Model) Export() ModelData {
	pieces := make([][]float64, len(m.qsU.Pieces))
	for i, p := range m.qsU.Pieces {
		pieces[i] = append([]float64(nil), p.Coef...)
	}
	return ModelData{
		Spec:    m.spec,
		Device:  m.dev,
		BreaksU: append([]float64(nil), m.breaks...),
		Pieces:  pieces,
		N0:      m.n0,
	}
}

// MarshalJSON lets a *Model be embedded directly in JSON documents.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Export())
}

// FromData reconstructs an evaluable model from exported data. The
// same validation as fitting applies (C¹ at constrained breaks, device
// sanity), so a corrupted artifact is rejected rather than silently
// producing garbage currents.
func FromData(d ModelData) (*Model, error) {
	if err := d.Device.Validate(); err != nil {
		return nil, err
	}
	if err := d.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(d.Pieces) != len(d.BreaksU)+1 {
		return nil, fmt.Errorf("core: %d pieces need %d breaks, got %d",
			len(d.Pieces), len(d.Pieces)-1, len(d.BreaksU))
	}
	pieces := make([]poly.Poly, len(d.Pieces))
	for i, c := range d.Pieces {
		pieces[i] = poly.New(c...)
		if pieces[i].Degree() > 3 {
			return nil, fmt.Errorf("core: piece %d has degree %d > 3", i, pieces[i].Degree())
		}
	}
	pw, err := poly.NewPiecewise(d.BreaksU, pieces)
	if err != nil {
		return nil, err
	}
	if d.N0 < 0 {
		return nil, fmt.Errorf("core: negative equilibrium density %g", d.N0)
	}
	return newModel(d.Device, d.Spec, append([]float64(nil), d.BreaksU...), pw, d.N0)
}

// UnmarshalData parses a JSON artifact produced by Export/MarshalJSON
// and reconstructs the model.
func UnmarshalData(raw []byte) (*Model, error) {
	var d ModelData
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("core: parsing model data: %w", err)
	}
	return FromData(d)
}
