package core

import (
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// TestIDSBatchZeroAlloc pins the serving kernel's allocation budget:
// one full VDS row through IDSBatch must not allocate, for both paper
// models, with telemetry off and on (local counter accumulation plus
// one atomic flush — no per-point instrument traffic). Skipped under
// -race, whose instrumentation allocates.
func TestIDSBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	ref := refModel(t, fettoy.Default())
	for name, build := range map[string]func(*fettoy.Model) (*Model, error){
		"model1": Model1,
		"model2": Model2,
	} {
		m, err := build(ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// A full paper row plus a partial trailing block, so both the
		// whole-block and remainder paths run.
		bias := make([]fettoy.Bias, 100)
		out := make([]float64, len(bias))
		for i := range bias {
			bias[i] = fettoy.Bias{VG: 0.5, VD: 0.6 * float64(i) / float64(len(bias)-1)}
		}
		for _, gate := range []bool{false, true} {
			if gate {
				telemetry.Enable()
			} else {
				telemetry.Disable()
			}
			if avg := testing.AllocsPerRun(100, func() {
				if err := m.IDSBatch(bias, out); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("%s (telemetry=%v): IDSBatch allocates %.1f objects per row", name, gate, avg)
			}
		}
		telemetry.Disable()
	}
}
