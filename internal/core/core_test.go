package core

import (
	"math"
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/units"
)

func refModel(t *testing.T, dev fettoy.Device) *fettoy.Model {
	t.Helper()
	m, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpecValidation(t *testing.T) {
	if err := Model1Spec().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Model2Spec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Name: "no breaks", Degrees: []int{1}, ZeroTail: false},
		{Name: "degree 4", Breaks: []float64{0}, Degrees: []int{4}, ZeroTail: true},
		{Name: "negative degree", Breaks: []float64{0}, Degrees: []int{-1}, ZeroTail: true},
		{Name: "count mismatch", Breaks: []float64{0}, Degrees: []int{1, 2}, ZeroTail: true},
		{Name: "unsorted", Breaks: []float64{0.1, -0.1}, Degrees: []int{1, 2}, ZeroTail: true},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %q accepted", s.Name)
		}
	}
}

func TestSpecRegionsDescription(t *testing.T) {
	r := Model2Spec().Regions()
	if len(r) != 4 {
		t.Fatalf("regions = %v", r)
	}
	if r[0] == "" || r[3] == "" {
		t.Fatal("empty region description")
	}
}

func TestPaperBreakpointsMatchSection4(t *testing.T) {
	m1, m2 := Model1Spec(), Model2Spec()
	if m1.Breaks[0] != -0.08 || m1.Breaks[1] != 0.08 {
		t.Fatalf("Model 1 breaks %v", m1.Breaks)
	}
	if m2.Breaks[0] != -0.28 || m2.Breaks[1] != -0.03 || m2.Breaks[2] != 0.12 {
		t.Fatalf("Model 2 breaks %v", m2.Breaks)
	}
}

func TestFitProducesC1Curve(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	for _, build := range []func(*fettoy.Model) (*Model, error){Model1, Model2} {
		m, err := build(ref)
		if err != nil {
			t.Fatal(err)
		}
		q := Quality(ref, m, FitOptions{})
		scale := math.Abs(m.QS(m.dev.EF - 0.4))
		if q.C0 > 1e-9*scale {
			t.Fatalf("%s: value jump %g vs scale %g", m.Spec().Name, q.C0, scale)
		}
	}
}

func TestChargeFitAccuracy(t *testing.T) {
	// The paper: Model 2 tracks the theoretical charge more closely
	// than Model 1 (figs. 4 vs 5); both are few-percent accurate.
	ref := refModel(t, fettoy.Default())
	m1, err := Model1(ref)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	q1 := Quality(ref, m1, FitOptions{})
	q2 := Quality(ref, m2, FitOptions{})
	if q2.RMSRel >= q1.RMSRel {
		t.Fatalf("Model 2 rel RMS %g not better than Model 1 %g", q2.RMSRel, q1.RMSRel)
	}
	// The default fit is knee-weighted, so the absolute RMS over the
	// window is looser than a pure least-squares fit would give;
	// figures 4/5 still bound it well under the curve scale.
	if q1.RMSRel > 0.25 {
		t.Fatalf("Model 1 charge fit too loose: %g", q1.RMSRel)
	}
	if q2.RMSRel > 0.08 {
		t.Fatalf("Model 2 charge fit too loose: %g", q2.RMSRel)
	}
	// Knee region (|u| <= 0.1): charge must be accurate in *relative*
	// terms there, since subthreshold IDS is exponentially sensitive.
	dev := ref.Device()
	for _, u := range []float64{-0.05, 0, 0.05} {
		vsc := u + dev.EF
		truth := ref.QS(vsc)
		if truth <= 0 {
			continue
		}
		rel2 := math.Abs(m2.QS(vsc)-truth) / truth
		if rel2 > 0.25 {
			t.Fatalf("Model 2 knee error %.0f%% at u=%g", 100*rel2, u)
		}
	}
}

func TestQSZeroRegion(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model1(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Above EF/q + 0.08 the filled-state term is identically zero, so
	// QS sits exactly at the equilibrium constant -q·N0/2 (which for
	// EF = -0.32 eV is ~1e-17 C/m, six orders below the curve scale).
	want := -0.5 * units.Q * ref.N0()
	for _, u := range []float64{0.09, 0.2, 1, 5} {
		if got := m.QS(m.dev.EF + u); got != want {
			t.Fatalf("QS(u=%g) = %g, want exactly %g", u, got, want)
		}
	}
	if math.Abs(want) > 1e-15 {
		t.Fatalf("equilibrium constant %g unexpectedly large for EF=-0.32", want)
	}
}

func TestQDIsShiftedQS(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, vds := range []float64{0, 0.1, 0.35, 0.6} {
		for _, vsc := range []float64{-0.6, -0.4, -0.32, -0.2, 0} {
			if got, want := m.QD(vsc, vds), m.QS(vsc+vds); got != want {
				t.Fatalf("QD(%g,%g) = %g, QS(shift) = %g", vsc, vds, got, want)
			}
		}
	}
}

func TestSolveVSCMatchesReference(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m2, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []fettoy.Bias{
		{VG: 0.3, VD: 0.1}, {VG: 0.45, VD: 0.3}, {VG: 0.6, VD: 0.6}, {VG: 0.2, VD: 0.5},
	} {
		fast, err := m2.SolveVSC(b)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		slow, _, err := ref.SolveVSC(b)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		if math.Abs(fast-slow) > 0.02 {
			t.Fatalf("%+v: VSC fast %g vs reference %g", b, fast, slow)
		}
	}
}

func TestIDSParityWithReferenceFamily(t *testing.T) {
	// The headline claim: IDS from the piecewise models stays within a
	// few percent RMS of the theory across the paper's sweep window.
	ref := refModel(t, fettoy.Default())
	m1, _ := Model1(ref)
	m2, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, vg := range []float64{0.3, 0.45, 0.6} {
		var sum1, sum2, norm float64
		n := 0
		for vd := 0.0; vd <= 0.6+1e-9; vd += 0.05 {
			b := fettoy.Bias{VG: vg, VD: vd}
			iRef, err := ref.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			i1, err := m1.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			i2, err := m2.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			sum1 += (i1 - iRef) * (i1 - iRef)
			sum2 += (i2 - iRef) * (i2 - iRef)
			norm += iRef
			n++
		}
		norm /= float64(n)
		rms1 := math.Sqrt(sum1/float64(n)) / norm
		rms2 := math.Sqrt(sum2/float64(n)) / norm
		if rms1 > 0.10 {
			t.Fatalf("VG=%g: Model 1 IDS RMS %.3f too large", vg, rms1)
		}
		if rms2 > 0.05 {
			t.Fatalf("VG=%g: Model 2 IDS RMS %.3f too large", vg, rms2)
		}
	}
}

func TestIDSZeroAtZeroVDS(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	i, err := m.IDS(fettoy.Bias{VG: 0.5, VD: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i) > 1e-15 {
		t.Fatalf("IDS(VDS=0) = %g", i)
	}
}

func TestIDSMonotoneInVG(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, vg := range []float64{0.1, 0.25, 0.4, 0.55} {
		i, err := m.IDS(fettoy.Bias{VG: vg, VD: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		if i <= prev {
			t.Fatalf("not monotone at VG=%g", vg)
		}
		prev = i
	}
}

func TestSolveMirrorsOperatingPoint(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	b := fettoy.Bias{VG: 0.5, VD: 0.3}
	op, err := m.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := m.IDS(b)
	if !units.CloseRel(op.IDS, ids, 1e-12) {
		t.Fatal("Solve/IDS disagree")
	}
	if op.QS != m.QS(op.VSC) || op.QD != m.QD(op.VSC, 0.3) {
		t.Fatal("operating point charges inconsistent")
	}
}

func TestFitOptionsValidation(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	if _, err := Fit(ref, Model1Spec(), FitOptions{URange: [2]float64{1, -1}}); err == nil {
		t.Fatal("inverted URange accepted")
	}
	if _, err := Fit(ref, Spec{Name: "bad"}, FitOptions{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestOptimizeBreaksImprovesOrMatchesPaperBreaks(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	base, err := Fit(ref, Model1Spec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Fit(ref, Model1Spec(), FitOptions{OptimizeBreaks: true})
	if err != nil {
		t.Fatal(err)
	}
	qBase := Quality(ref, base, FitOptions{})
	qOpt := Quality(ref, opt, FitOptions{})
	if qOpt.RMS > qBase.RMS*1.0000001 {
		t.Fatalf("optimised breaks worse: %g vs %g", qOpt.RMS, qBase.RMS)
	}
}

func TestDifferentTemperaturesFitAndSolve(t *testing.T) {
	for _, temp := range []float64{150, 300, 450} {
		for _, ef := range []float64{-0.5, -0.32, 0} {
			dev := fettoy.Default()
			dev.T = temp
			dev.EF = ef
			ref := refModel(t, dev)
			m, err := Model2(ref)
			if err != nil {
				t.Fatalf("T=%g EF=%g: %v", temp, ef, err)
			}
			i, err := m.IDS(fettoy.Bias{VG: 0.4, VD: 0.3})
			if err != nil {
				t.Fatalf("T=%g EF=%g: %v", temp, ef, err)
			}
			if i <= 0 || math.IsNaN(i) {
				t.Fatalf("T=%g EF=%g: IDS = %g", temp, ef, i)
			}
		}
	}
}

func TestAccessors(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model1(ref)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().Name != "Model 1" {
		t.Fatal("spec accessor")
	}
	if len(m.BreaksU()) != 2 {
		t.Fatal("breaks accessor")
	}
	if m.Device().EF != fettoy.Default().EF {
		t.Fatal("device accessor")
	}
	if m.PiecewiseU().MaxDegree() != 2 {
		t.Fatal("piecewise accessor")
	}
	// BreaksU returns a copy.
	m.BreaksU()[0] = 99
	if m.breaks[0] == 99 {
		t.Fatal("BreaksU aliases internal state")
	}
}

func TestFastSolverMatchesGenericPath(t *testing.T) {
	// The allocation-free solver and the generic piecewise machinery
	// must agree to solver precision over a dense bias grid, for both
	// models and several devices.
	devices := []fettoy.Device{fettoy.Default(), fettoy.Javey()}
	for _, dev := range devices {
		ref := refModel(t, dev)
		for _, spec := range []Spec{Model1Spec(), Model2Spec()} {
			m, err := Fit(ref, spec, FitOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for vg := 0.0; vg <= 0.61; vg += 0.06 {
				for vd := 0.0; vd <= 0.61; vd += 0.1 {
					b := fettoy.Bias{VG: vg, VD: vd}
					fast, err1 := m.SolveVSC(b)
					gen, err2 := m.SolveVSCGeneric(b)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s %+v: %v / %v", spec.Name, b, err1, err2)
					}
					if math.Abs(fast-gen) > 1e-9 {
						t.Fatalf("%s %+v: fast %.12g vs generic %.12g", spec.Name, b, fast, gen)
					}
				}
			}
		}
	}
}

func TestFastSolverNegativeVDS(t *testing.T) {
	// Circuit use reaches VDS < 0 (through the element's symmetry
	// wrapper) and VS != 0; the solver itself must stay consistent for
	// raw negative drain bias too.
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	b := fettoy.Bias{VG: 0.5, VD: -0.2}
	fast, err1 := m.SolveVSC(b)
	gen, err2 := m.SolveVSCGeneric(b)
	if err1 != nil || err2 != nil {
		t.Fatalf("%v / %v", err1, err2)
	}
	if math.Abs(fast-gen) > 1e-9 {
		t.Fatalf("fast %g vs generic %g", fast, gen)
	}
}

func TestPiecewiseConductancesMatchFiniteDifferences(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	for _, build := range []func(*fettoy.Model) (*Model, error){Model1, Model2} {
		m, err := build(ref)
		if err != nil {
			t.Fatal(err)
		}
		h := 1e-7
		for _, b := range []fettoy.Bias{
			{VG: 0.3, VD: 0.2}, {VG: 0.5, VD: 0.05}, {VG: 0.6, VD: 0.5},
		} {
			ids, gm, gds, err := m.Conductances(b)
			if err != nil {
				t.Fatalf("%+v: %v", b, err)
			}
			direct, _ := m.IDS(b)
			if math.Abs(ids-direct) > 1e-9*math.Abs(direct) {
				t.Fatalf("%+v: IDS mismatch", b)
			}
			iGp, _ := m.IDS(fettoy.Bias{VG: b.VG + h, VD: b.VD})
			iGm, _ := m.IDS(fettoy.Bias{VG: b.VG - h, VD: b.VD})
			iDp, _ := m.IDS(fettoy.Bias{VG: b.VG, VD: b.VD + h})
			iDm, _ := m.IDS(fettoy.Bias{VG: b.VG, VD: b.VD - h})
			fdGm := (iGp - iGm) / (2 * h)
			fdGds := (iDp - iDm) / (2 * h)
			// The piecewise curve has slope kinks at region
			// boundaries; away from them the analytic derivative is
			// exact.
			if math.Abs(gm-fdGm) > 1e-4*math.Abs(fdGm)+1e-10 {
				t.Fatalf("%s %+v: gm analytic %g vs fd %g", m.Spec().Name, b, gm, fdGm)
			}
			if math.Abs(gds-fdGds) > 1e-4*math.Abs(fdGds)+1e-10 {
				t.Fatalf("%s %+v: gds analytic %g vs fd %g", m.Spec().Name, b, gds, fdGds)
			}
		}
	}
}

func TestMultiTemperatureTraining(t *testing.T) {
	// One model trained over the paper's 150-450 K range must still
	// track the 300 K theory, just less tightly than a fit at 300 K
	// itself.
	ref := refModel(t, fettoy.Default())
	perT, err := Fit(ref, Model2Spec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Fit(ref, Model2Spec(), FitOptions{TrainTemps: []float64{150, 300, 450}})
	if err != nil {
		t.Fatal(err)
	}
	rms := func(m *Model) float64 {
		var sum, norm float64
		n := 0
		for vd := 0.05; vd <= 0.6; vd += 0.05 {
			b := fettoy.Bias{VG: 0.45, VD: vd}
			iRef, err := ref.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			im, err := m.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			sum += (im - iRef) * (im - iRef)
			norm += iRef
			n++
		}
		return math.Sqrt(sum/float64(n)) / (norm / float64(n))
	}
	rPer, rMulti := rms(perT), rms(multi)
	if rMulti > 0.15 {
		t.Fatalf("multi-T model too loose at 300K: %.3f", rMulti)
	}
	if rPer > rMulti*1.5 {
		t.Fatalf("per-T fit (%.4f) should not be much worse than multi-T (%.4f)", rPer, rMulti)
	}
}

func TestTrainTempsValidation(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	if _, err := Fit(ref, Model2Spec(), FitOptions{TrainTemps: []float64{-10}}); err == nil {
		t.Fatal("negative training temperature accepted")
	}
}

func TestTailC1CollapsesModel1(t *testing.T) {
	// With C1 enforced against the zero tail, Model 1 has a single
	// degree of freedom (the quadratic is k·(u-b)² and the line its
	// tangent); the fit still works but tracks the knee much worse.
	ref := refModel(t, fettoy.Default())
	spec := Model1Spec()
	spec.TailC1 = true
	rigid, err := Fit(ref, spec, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Structural check: quadratic piece is k(u-b)² — its value and
	// slope vanish at the tail break.
	pw := rigid.PiecewiseU()
	b := pw.Breaks[1]
	q := pw.Pieces[1]
	if math.Abs(q.At(b)) > 1e-15 || math.Abs(q.Deriv().At(b)) > 1e-13 {
		t.Fatalf("tail join not C1: value %g slope %g", q.At(b), q.Deriv().At(b))
	}
	flexible, err := Fit(ref, Model1Spec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The flexible fit must be at least as good in weighted RMS; spot
	// check IDS at a knee bias.
	bias := fettoy.Bias{VG: 0.4, VD: 0.3}
	iRef, _ := ref.IDS(bias)
	iR, _ := rigid.IDS(bias)
	iF, _ := flexible.IDS(bias)
	if math.Abs(iF-iRef) > math.Abs(iR-iRef)*1.2 {
		t.Fatalf("flexible fit (%g) not better than rigid (%g) vs ref %g", iF, iR, iRef)
	}
}

func TestQuantumCapacitanceMatchesTheory(t *testing.T) {
	// The figure-1 equivalent-circuit elements: the model's piecewise
	// dQS/dVSC must track the theoretical -q·N'(USF)/2 in the charging
	// region.
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, vsc := range []float64{-0.6, -0.5, -0.45} {
		want := ref.CQS(vsc)
		got := m.CQS(vsc)
		if want >= 0 {
			t.Fatalf("theory CQS(%g) = %g, expected negative (QS decreasing)", vsc, want)
		}
		// The linear region's constant slope is a secant of the curved
		// theory derivative, so agreement is loose by construction --
		// right order and sign, not pointwise.
		if math.Abs(got-want) > 0.45*math.Abs(want) {
			t.Fatalf("CQS(%g): model %g vs theory %g", vsc, got, want)
		}
	}
	// Consistency with finite differences of the model's own QS.
	h := 1e-6
	for _, vsc := range []float64{-0.55, -0.4, -0.3} {
		fd := (m.QS(vsc+h) - m.QS(vsc-h)) / (2 * h)
		if math.Abs(m.CQS(vsc)-fd) > 1e-6*math.Abs(fd)+1e-18 {
			t.Fatalf("CQS(%g) = %g, fd %g", vsc, m.CQS(vsc), fd)
		}
	}
	// Drain-side is the shifted source-side.
	if m.CQD(-0.5, 0.2) != m.CQS(-0.3) {
		t.Fatal("CQD should be shifted CQS")
	}
}

func TestWithEFMatchesRefit(t *testing.T) {
	// Shifting the Fermi level through WithEF must agree with a fresh
	// fit at that Fermi level: the u-space curve is EF-invariant.
	base := refModel(t, fettoy.Default())
	m, err := Model2(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range []float64{-0.25, -0.4, -0.35} {
		shifted, err := m.WithEF(ef)
		if err != nil {
			t.Fatal(err)
		}
		dev := fettoy.Default()
		dev.EF = ef
		ref := refModel(t, dev)
		refit, err := Model2(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []fettoy.Bias{{VG: 0.4, VD: 0.3}, {VG: 0.6, VD: 0.6}} {
			iS, err1 := shifted.IDS(b)
			iR, err2 := refit.IDS(b)
			if err1 != nil || err2 != nil {
				t.Fatalf("EF=%g %+v: %v/%v", ef, b, err1, err2)
			}
			// Both approximate the same theory; the u-window of the
			// two fits differs slightly, so allow small deviation.
			if math.Abs(iS-iR) > 0.05*iR {
				t.Fatalf("EF=%g %+v: WithEF %g vs refit %g", ef, b, iS, iR)
			}
			// And the shifted model tracks the theory itself.
			iT, err := ref.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(iS-iT) > 0.08*iT {
				t.Fatalf("EF=%g %+v: WithEF %g vs theory %g", ef, b, iS, iT)
			}
		}
	}
}

func TestWithEFEquilibriumConstant(t *testing.T) {
	// At EF = 0 the equilibrium density is substantial and must come
	// out of the fitted curve itself.
	dev := fettoy.Default()
	dev.EF = -0.1
	ref := refModel(t, dev)
	m, err := Fit(ref, Model2Spec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := m.WithEF(-0.02)
	if err != nil {
		t.Fatal(err)
	}
	devShift := dev
	devShift.EF = -0.02
	refShift := refModel(t, devShift)
	wantN0 := refShift.N0()
	if wantN0 <= 0 {
		t.Fatal("reference N0 not positive")
	}
	if rel := math.Abs(shifted.n0-wantN0) / wantN0; rel > 0.25 {
		t.Fatalf("WithEF N0 %g vs theory %g (rel %g)", shifted.n0, wantN0, rel)
	}
}

func TestWithEFValidation(t *testing.T) {
	ref := refModel(t, fettoy.Default())
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	// A NaN Fermi level must not produce a silently plausible current:
	// either construction fails or evaluation propagates the NaN.
	if mm, err := m.WithEF(math.NaN()); err == nil && mm != nil {
		if i, err := mm.IDS(fettoy.Bias{VG: 0.5, VD: 0.3}); err == nil && !math.IsNaN(i) {
			t.Fatalf("NaN EF silently produced %g", i)
		}
	}
}

func TestTransmissionPropagatesToFastModel(t *testing.T) {
	dev := fettoy.Default()
	dev.Transmission = 0.7
	ref := refModel(t, dev)
	m, err := Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	devBal := fettoy.Default()
	refBal := refModel(t, devBal)
	mBal, err := Model2(refBal)
	if err != nil {
		t.Fatal(err)
	}
	b := fettoy.Bias{VG: 0.5, VD: 0.4}
	iS, err1 := m.IDS(b)
	iB, err2 := mBal.IDS(b)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(iS-0.7*iB) > 1e-6*iB {
		t.Fatalf("fast model T=0.7 current %g, want 0.7x %g", iS, iB)
	}
}
