// Package report renders the library's tables, data series and quick
// ASCII plots. Every experiment regenerator (cmd/cntrms, cmd/cntiv,
// cmd/cntfit, bench harness) prints through this package so the output
// format matches across tools.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, one format per cell value.
func (t *Table) AddRowf(format string, values ...any) {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = fmt.Sprintf(format, v)
	}
	t.AddRow(parts...)
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV emits series columns as CSV: one header row, then one row
// per index. All columns must share a length.
func WriteCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("report: %d headers for %d columns", len(headers), len(cols))
	}
	n := -1
	for _, c := range cols {
		if n == -1 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("report: ragged columns (%d vs %d)", len(c), n)
		}
	}
	fmt.Fprintln(w, strings.Join(headers, ","))
	for i := 0; i < n; i++ {
		for j := range cols {
			if j > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%g", cols[j][i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ASCIIPlot draws series of (x, y) points on a small character canvas.
// Distinct series use distinct glyphs. It is intentionally minimal —
// the examples use it to let a terminal user see the figure shapes
// without leaving the shell.
type ASCIIPlot struct {
	Width, Height  int
	XLabel, YLabel string
	series         []plotSeries
}

type plotSeries struct {
	xs, ys []float64
	glyph  byte
}

// NewASCIIPlot creates a plot canvas; zero dimensions default to 72x20.
func NewASCIIPlot() *ASCIIPlot { return &ASCIIPlot{Width: 72, Height: 20} }

// Add appends a series rendered with the given glyph.
func (p *ASCIIPlot) Add(glyph byte, xs, ys []float64) {
	p.series = append(p.series, plotSeries{xs: xs, ys: ys, glyph: glyph})
}

// Render draws the canvas.
func (p *ASCIIPlot) Render(w io.Writer) {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymin = math.Min(ymin, s.ys[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	if xmin > xmax {
		fmt.Fprintln(w, "(empty plot)")
		return
	}
	if xmax == xmin { //lint:allow floatcmp degenerate axis-range guard
		xmax = xmin + 1
	}
	if ymax == ymin { //lint:allow floatcmp degenerate axis-range guard
		ymax = ymin + 1
	}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		for i := range s.xs {
			cx := int(float64(width-1) * (s.xs[i] - xmin) / (xmax - xmin))
			cy := int(float64(height-1) * (s.ys[i] - ymin) / (ymax - ymin))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				canvas[row][cx] = s.glyph
			}
		}
	}
	fmt.Fprintf(w, "%-12s max %.3g\n", p.YLabel, ymax)
	for _, row := range canvas {
		fmt.Fprintf(w, "|%s\n", string(row))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, " %-10g%*s%g  (%s)\n", xmin, width-22, "", xmax, p.XLabel)
}

// Histogram renders a horizontal ASCII histogram of samples into bins
// equally spaced between the sample min and max.
func Histogram(w io.Writer, samples []float64, bins int, label string) {
	if len(samples) == 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	if bins < 1 {
		bins = 10
	}
	mn, mx := samples[0], samples[0]
	for _, s := range samples {
		mn = math.Min(mn, s)
		mx = math.Max(mx, s)
	}
	if mx == mn { //lint:allow floatcmp degenerate value-range guard
		fmt.Fprintf(w, "all %d samples at %g\n", len(samples), mn)
		return
	}
	counts := make([]int, bins)
	for _, s := range samples {
		i := int(float64(bins) * (s - mn) / (mx - mn))
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	const width = 50
	fmt.Fprintf(w, "%s (%d samples)\n", label, len(samples))
	for i, c := range counts {
		lo := mn + (mx-mn)*float64(i)/float64(bins)
		bar := strings.Repeat("#", c*width/peak)
		fmt.Fprintf(w, "%12.4g |%-*s %d\n", lo, width, bar, c)
	}
}
