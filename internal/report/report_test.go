package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligns(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("a-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line %q", lines[1])
	}
	// The value column must start at the same offset in both data rows.
	i1 := strings.Index(lines[3], "1")
	i2 := strings.Index(lines[4], "22")
	if i1 != i2 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableAddRowfAndShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("%.1f", 1.0, 2.0, 3.0)
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "only-one") {
		t.Fatalf("render:\n%s", out)
	}
	// Extra cells are dropped silently.
	tb2 := NewTable("", "x")
	tb2.AddRow("1", "overflow")
	if strings.Contains(tb2.String(), "overflow") {
		t.Fatal("overflow cell rendered")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"x", "y"}, []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,3\n2,4\n"
	if b.String() != want {
		t.Fatalf("csv = %q", b.String())
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("header/column mismatch accepted")
	}
	if err := WriteCSV(&b, []string{"x", "y"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestASCIIPlotRendersSeries(t *testing.T) {
	p := NewASCIIPlot()
	p.XLabel = "VDS [V]"
	p.YLabel = "IDS [A]"
	p.Add('*', []float64{0, 0.5, 1}, []float64{0, 0.5, 1})
	p.Add('o', []float64{0, 0.5, 1}, []float64{1, 0.5, 0})
	var b strings.Builder
	p.Render(&b)
	out := b.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "VDS [V]") || !strings.Contains(out, "IDS [A]") {
		t.Fatalf("labels missing:\n%s", out)
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	var b strings.Builder
	NewASCIIPlot().Render(&b)
	if !strings.Contains(b.String(), "empty") {
		t.Fatalf("empty plot: %q", b.String())
	}
}

func TestASCIIPlotDegenerateRange(t *testing.T) {
	p := NewASCIIPlot()
	p.Add('x', []float64{1, 1}, []float64{2, 2})
	var b strings.Builder
	p.Render(&b) // must not divide by zero
	if !strings.Contains(b.String(), "x") {
		t.Fatal("point not drawn")
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	Histogram(&b, []float64{1, 1, 1, 2, 2, 3}, 3, "demo")
	out := b.String()
	if !strings.Contains(out, "demo (6 samples)") || !strings.Contains(out, "###") {
		t.Fatalf("histogram:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 4 { // label + 3 bins
		t.Fatalf("%d lines:\n%s", lines, out)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	var b strings.Builder
	Histogram(&b, nil, 5, "x")
	if !strings.Contains(b.String(), "no samples") {
		t.Fatal("empty case")
	}
	b.Reset()
	Histogram(&b, []float64{2, 2, 2}, 5, "x")
	if !strings.Contains(b.String(), "all 3 samples") {
		t.Fatal("constant case")
	}
}
