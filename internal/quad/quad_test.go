package quad

import (
	"math"
	"testing"
)

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics even without refinement.
	f := func(x float64) float64 { return 1 + x + x*x + x*x*x }
	got, err := Simpson(f, 0, 2, 1e-12, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + 2.0 + 8.0/3 + 4.0 // ∫ = x + x²/2 + x³/3 + x⁴/4
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestSimpsonTranscendental(t *testing.T) {
	got, err := Simpson(math.Exp, 0, 1, 1e-12, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(math.E-1)) > 1e-10 {
		t.Fatalf("∫e^x = %g", got)
	}
}

func TestSimpsonOrientationAndDegenerate(t *testing.T) {
	fwd, _ := Simpson(math.Sin, 0, math.Pi, 1e-10, 30)
	rev, _ := Simpson(math.Sin, math.Pi, 0, 1e-10, 30)
	if math.Abs(fwd+rev) > 1e-9 {
		t.Fatalf("reversal not antisymmetric: %g vs %g", fwd, rev)
	}
	if v, _ := Simpson(math.Sin, 1, 1, 1e-10, 30); v != 0 {
		t.Fatalf("zero-width integral = %g", v)
	}
}

func TestSimpsonReportsNonConvergence(t *testing.T) {
	// A fast oscillation that depth-2 refinement cannot resolve to
	// 1e-14 anywhere in the interval.
	osc := func(x float64) float64 { return math.Sin(1000 * x) }
	_, err := Simpson(osc, 0, 1, 1e-14, 2)
	if err == nil {
		t.Fatal("expected ErrNoConverge at tiny depth")
	}
}

func TestGaussLegendreNodesSymmetric(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33} {
		g := NewGaussLegendre(n)
		wsum := 0.0
		for i := range g.X {
			if math.Abs(g.X[i]+g.X[n-1-i]) > 1e-14 {
				t.Fatalf("n=%d nodes not symmetric: %v", n, g.X)
			}
			wsum += g.W[i]
		}
		if math.Abs(wsum-2) > 1e-12 {
			t.Fatalf("n=%d weights sum to %g, want 2", n, wsum)
		}
	}
}

func TestGaussLegendreExactForHighDegree(t *testing.T) {
	// n-point GL is exact for degree 2n-1.
	g := NewGaussLegendre(5)
	f := func(x float64) float64 { return math.Pow(x, 9) + math.Pow(x, 8) }
	got := g.Integrate(f, -1, 1)
	want := 2.0 / 9 // odd term vanishes; ∫x^8 = 2/9
	if math.Abs(got-want) > 1e-13 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestGaussLegendreGeneralInterval(t *testing.T) {
	g := NewGaussLegendre(20)
	got := g.Integrate(math.Exp, 0, 1)
	if math.Abs(got-(math.E-1)) > 1e-13 {
		t.Fatalf("GL ∫e^x = %g", got)
	}
}

func TestGaussLegendrePanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGaussLegendre(0)
}

func TestSemiInfiniteExponential(t *testing.T) {
	// ∫₀^∞ e^-x dx = 1
	got, err := SemiInfinite(func(x float64) float64 { return math.Exp(-x) }, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("got %g", got)
	}
}

func TestSemiInfiniteShiftedGaussianTail(t *testing.T) {
	// ∫_a^∞ x e^-x² dx = e^-a²/2
	a := 1.3
	got, err := SemiInfinite(func(x float64) float64 { return x * math.Exp(-x*x) }, a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-a*a) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestSemiInfiniteFermiTail(t *testing.T) {
	// ∫₀^∞ 1/(1+e^(x-η)) dx = ln(1+e^η): the physics this exists for.
	eta := 2.0
	got, err := SemiInfinite(func(x float64) float64 { return 1 / (1 + math.Exp(x-eta)) }, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1 + math.Exp(eta))
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestSqrtSingularUpperExact(t *testing.T) {
	// ∫_s^b dx/sqrt(x-s) = 2*sqrt(b-s) with f = 1.
	s, b := 0.4, 2.0
	got, err := SqrtSingularUpper(func(x float64) float64 { return 1 }, s, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt(b-s)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestSqrtSingularUpperVanHoveShape(t *testing.T) {
	// ∫_s^b x/sqrt(x²-s²) dx = sqrt(b²-s²). Write the integrand as
	// f(x)/sqrt(x-s) with f(x) = x/sqrt(x+s), smooth on [s,b].
	s, b := 0.29, 1.0
	f := func(x float64) float64 { return x / math.Sqrt(x+s) }
	got, err := SqrtSingularUpper(f, s, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(b*b - s*s)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestSqrtSingularUpperEmpty(t *testing.T) {
	if v, err := SqrtSingularUpper(func(float64) float64 { return 1 }, 1, 0.5, 1e-10); err != nil || v != 0 {
		t.Fatalf("empty interval: %g %v", v, err)
	}
}

func TestTrapezoid(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 1, 2}
	if got := Trapezoid(xs, ys); got != 2 {
		t.Fatalf("got %g", got)
	}
}

func TestTrapezoidPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Trapezoid([]float64{1}, []float64{1, 2})
}
