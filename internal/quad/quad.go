// Package quad provides the numerical integration the reference
// (FETToy-style) model spends its time in: adaptive Simpson quadrature,
// fixed-order Gauss–Legendre rules, semi-infinite transforms for the
// Fermi-tail integrals, and a substitution that removes the van Hove
// 1/sqrt singularity at a subband edge exactly.
package quad

import (
	"errors"
	"math"
)

// ErrNoConverge is returned when adaptive refinement hits its depth
// limit before reaching the requested tolerance.
var ErrNoConverge = errors.New("quad: adaptive quadrature did not converge")

// Simpson integrates f over [a, b] with adaptive Simpson quadrature to
// absolute tolerance tol. maxDepth bounds the recursion (a depth of 30
// splits the interval into up to 2^30 panels).
func Simpson(f func(float64) float64, a, b, tol float64, maxDepth int) (float64, error) {
	if a == b { //lint:allow floatcmp an exactly empty interval integrates to zero
		return 0, nil
	}
	sign := 1.0
	if b < a {
		a, b = b, a
		sign = -1
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	v, ok := adaptiveSimpson(f, a, b, fa, fm, fb, whole, tol, maxDepth)
	if !ok {
		return sign * v, ErrNoConverge
	}
	return sign * v, nil
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, bool) {
	m := 0.5 * (a + b)
	lm, rm := 0.5*(a+m), 0.5*(m+b)
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol || !isFiniteTriple(flm, frm, fm) {
		return left + right + delta/15, true
	}
	if depth <= 0 {
		return left + right + delta/15, false
	}
	lv, lok := adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1)
	rv, rok := adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
	return lv + rv, lok && rok
}

func isFiniteTriple(a, b, c float64) bool {
	return !math.IsInf(a, 0) && !math.IsNaN(a) &&
		!math.IsInf(b, 0) && !math.IsNaN(b) &&
		!math.IsInf(c, 0) && !math.IsNaN(c)
}

// GaussLegendre holds the nodes and weights of an n-point rule on
// [-1, 1].
type GaussLegendre struct {
	X, W []float64
}

// NewGaussLegendre computes an n-point Gauss–Legendre rule. Nodes are
// found by Newton iteration on the Legendre polynomial from the
// Chebyshev initial guess; weights from the standard derivative formula.
func NewGaussLegendre(n int) *GaussLegendre {
	if n < 1 {
		panic("quad: Gauss-Legendre order must be >= 1")
	}
	g := &GaussLegendre{X: make([]float64, n), W: make([]float64, n)}
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess: Chebyshev-like root location.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			// Recurrence for P_n(x).
			for j := 0; j < n; j++ {
				p0, p1 = ((2*float64(j)+1)*x*p0-float64(j)*p1)/float64(j+1), p0
			}
			// Derivative via the standard identity.
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		g.X[i] = -x
		g.X[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		g.W[i] = w
		g.W[n-1-i] = w
	}
	if n%2 == 1 {
		g.X[n/2] = 0
	}
	return g
}

// Integrate applies the rule to f on [a, b].
func (g *GaussLegendre) Integrate(f func(float64) float64, a, b float64) float64 {
	c, h := 0.5*(a+b), 0.5*(b-a)
	s := 0.0
	for i, x := range g.X {
		s += g.W[i] * f(c+h*x)
	}
	return s * h
}

// SemiInfinite integrates f over [a, +inf) for integrands that decay at
// least exponentially (Fermi tails). It maps t in (0,1] to
// x = a + t/(1-t) and integrates the transformed integrand adaptively.
func SemiInfinite(f func(float64) float64, a, tol float64) (float64, error) {
	g := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		om := 1 - t
		x := a + t/om
		return f(x) / (om * om)
	}
	return Simpson(g, 0, 1, tol, 40)
}

// SqrtSingularUpper integrates f(x)/sqrt(x - s) over [s, b] where f is
// smooth: the substitution x = s + u^2 removes the singularity exactly,
// giving 2*∫ f(s+u^2) du over [0, sqrt(b-s)]. This is the van Hove edge
// of the nanotube density of states.
func SqrtSingularUpper(f func(float64) float64, s, b, tol float64) (float64, error) {
	if b <= s {
		return 0, nil
	}
	g := func(u float64) float64 { return 2 * f(s+u*u) }
	return Simpson(g, 0, math.Sqrt(b-s), tol, 40)
}

// Trapezoid integrates samples ys on the uniform grid xs (paired
// slices) with the composite trapezoid rule; used for RMS-metric
// normalisation and reporting, never for the physics.
func Trapezoid(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("quad: Trapezoid length mismatch")
	}
	s := 0.0
	for i := 1; i < len(xs); i++ {
		s += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	return s
}
