package device

import "cntfet/internal/fettoy"

// The reference theory model provides every capability. (The piecewise
// model's assertions live in internal/core to keep this package's
// import graph minimal; the public surface re-asserts both families.)
var (
	_ Device         = (*fettoy.Model)(nil)
	_ WarmStarter    = (*fettoy.Model)(nil)
	_ BatchSolver    = (*fettoy.Model)(nil)
	_ GradientSolver = (*fettoy.Model)(nil)
	_ ContextBuilder = (*fettoy.Model)(nil)
)
