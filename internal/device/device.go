// Package device declares the single capability interface set every
// layer of the library programs against. Before it existed, the same
// two model families (the FETToy-style reference theory in
// internal/fettoy and the paper's piecewise closed-form models in
// internal/core) were described three times over — sweep.CurrentSource
// plus warm-start/batch extensions, circuit.TransistorModel plus a
// conductance extension, and the public cntfet.Transistor — and each
// consumer type-asserted against its private copy. This package is the
// one place those contracts live:
//
//   - Solver is the core capability: a drain current at a bias point.
//   - Device extends Solver with the full solved operating point.
//   - WarmStarter, BatchSolver, GradientSolver and ContextBuilder are
//     optional capabilities discovered by type assertion, never
//     required: warm-start continuation along a sweep row, batched
//     evaluation that amortises per-call overhead, analytic
//     small-signal parameters for circuit Jacobians, and deferred
//     construction (charge-table builds) that honours a context.
//
// Consumers accept the smallest interface they need (usually Solver)
// and upgrade opportunistically; providers implement whatever their
// numerics support. The orchestration layer that routes jobs over
// these capabilities is internal/engine.
package device

import (
	"context"

	"cntfet/internal/fettoy"
)

// Solver is the core evaluate capability: produce a drain-source
// current at one bias point. Both library model families satisfy it,
// and it is the minimum contract every sweep, circuit element and
// engine job requires.
type Solver interface {
	// IDS returns the drain-source current in amperes.
	IDS(fettoy.Bias) (float64, error)
}

// Device is a Solver that can also report the full solved operating
// point (self-consistent voltage, current, terminal charges). The
// public cntfet.Transistor interface aliases it.
type Device interface {
	Solver
	// Solve returns the full operating point.
	Solve(fettoy.Bias) (fettoy.OperatingPoint, error)
}

// WarmStarter is the optional warm-start capability: IDSFrom starts
// the solve at guess (NaN means cold) and returns the solved
// self-consistent voltage for the caller to thread into the next
// point. The reference model warm-starts its Newton iteration; the
// piecewise models satisfy the interface trivially (the closed form
// has no iteration state, so the guess is ignored).
type WarmStarter interface {
	IDSFrom(b fettoy.Bias, guess float64) (ids, vsc float64, err error)
}

// BatchSolver is the optional batched-evaluation capability: evaluate
// many bias points in one call, amortising per-call overhead
// (interface dispatch, error wrapping, telemetry gating) across the
// batch. out must be at least as long as bias.
type BatchSolver interface {
	IDSBatch(bias []fettoy.Bias, out []float64) error
}

// GradientSolver is the optional analytic small-signal capability:
// the drain current together with gm = ∂IDS/∂VG and gds = ∂IDS/∂VD.
// The circuit simulator uses it for Newton Jacobians instead of finite
// differences, saving two device solves per stamp.
type GradientSolver interface {
	Conductances(b fettoy.Bias) (ids, gm, gds float64, err error)
}

// ContextBuilder is the optional deferred-construction capability:
// models with an expensive lazy build step (the reference model's
// adaptive charge-table tabulation) expose it so orchestration can run
// the build under a cancellable context instead of paying for it
// implicitly — and uncancellably — inside the first solve.
type ContextBuilder interface {
	// BuildContext completes any deferred construction, honouring ctx.
	// It is a no-op when there is nothing to build.
	BuildContext(ctx context.Context) error
}
