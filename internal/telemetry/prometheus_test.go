package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusRoundTrip populates every instrument type and
// checks the exposition both against the conformance validator and for
// the concrete lines a Prometheus scrape relies on.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry(true)
	r.Counter(KeySweepPoints).Add(5)
	r.Gauge("cluster.replica.0.healthy").Set(1)
	r.Timer(KeyFettoySolveTime).Observe(1500 * time.Microsecond)
	h := r.Histogram(KeyServerRequestSeconds, LatencyBuckets)
	h.Observe(0.0007)
	h.Observe(0.3)
	h.Observe(40) // beyond the last bound: lands only in +Inf

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE cntfet_sweep_points_total counter",
		"cntfet_sweep_points_total 5",
		"# TYPE cntfet_cluster_replica_0_healthy gauge",
		"cntfet_cluster_replica_0_healthy 1",
		"# TYPE cntfet_fettoy_solve_time_seconds summary",
		"cntfet_fettoy_solve_time_seconds_count 1",
		"# TYPE cntfet_server_request_seconds histogram",
		`cntfet_server_request_seconds_bucket{le="0.001"} 1`,
		`cntfet_server_request_seconds_bucket{le="+Inf"} 3`,
		"cntfet_server_request_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusEmpty checks an empty registry still produces a
// valid (empty) exposition.
func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry(true).WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := ValidatePrometheus(&buf); err != nil {
		t.Fatalf("empty exposition fails validation: %v", err)
	}
}

// TestValidatePrometheusRejects feeds the validator the malformations
// it exists to catch: the servesmoke gate is only as good as these.
func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":  "1bad 3\n",
		"bad value":        "cntfet_ok not_a_number\n",
		"bare brace":       "cntfet_ok{le=\"x\" 1\n",
		"bad label name":   "cntfet_ok{2le=\"x\"} 1\n",
		"unquoted label":   "cntfet_ok{le=x} 1\n",
		"type after use":   "cntfet_ok 1\n# TYPE cntfet_ok counter\n",
		"duplicate type":   "# TYPE cntfet_ok counter\n# TYPE cntfet_ok counter\ncntfet_ok 1\n",
		"histogram no inf": "# TYPE cntfet_h histogram\ncntfet_h_bucket{le=\"1\"} 1\ncntfet_h_sum 1\ncntfet_h_count 1\n",
		"count mismatch": "# TYPE cntfet_h histogram\ncntfet_h_bucket{le=\"+Inf\"} 2\n" +
			"cntfet_h_sum 1\ncntfet_h_count 1\n",
	}
	for name, in := range cases {
		if err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
}

// TestPromName checks dotted registry keys sanitize into the
// prefixed underscore namespace.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sweep.points":          "cntfet_sweep_points",
		"server.cache.hits":     "cntfet_server_cache_hits",
		"sweep.worker.3.points": "cntfet_sweep_worker_3_points",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
