package telemetry

// This file is the single registry of telemetry instrument names and
// trace event kinds. Every call site that names a counter, timer,
// histogram or trace kind must reference one of these constants — the
// telemetrykeys analyzer (internal/analysis/telemetrykeys, run by
// cmd/cntlint) rejects raw string literals, so singular/plural and
// typo drift between call sites, dashboards and the README/DESIGN
// counter tables cannot creep back in.
//
// Naming conventions:
//
//   - Instrument keys are dotted paths rooted at the owning layer
//     (fettoy, core, circuit, sweep).
//   - Counters that count events use the plural noun of the event:
//     "fettoy.solves", "circuit.dc.solves", "circuit.tran.retries".
//   - Trace kinds describe ONE event and use the singular of the same
//     stem: the "fettoy.solve" summary event is the per-event twin of
//     the "fettoy.solves" counter. The two namespaces are disjoint
//     (Registry instruments vs Trace.Emit kinds); declaring both here,
//     side by side, is what keeps the pairing canonical. The historic
//     "circuit.converge_fail" trace kind, whose stem had drifted from
//     the "circuit.convergence_failures" counter, is reconciled to
//     KindCircuitConvergenceFailure below.
//   - Per-worker attribution keys are fmt.Sprintf patterns (suffix
//     "Fmt"); telemetrykeys accepts fmt.Sprintf(<Fmt constant>, ...)
//     where a key is expected.

// Counter keys of the reference (FETToy-equivalent) model: quadrature
// and Newton work per solve, and the charge-table build/lookup split.
const (
	// KeyFettoyIntegralEvals counts state-density integral evaluations
	// (N or N'), the cost the piecewise approximation removes.
	KeyFettoyIntegralEvals = "fettoy.integral_evals"
	// KeyFettoyQuadPoints counts quadrature integrand evaluations.
	KeyFettoyQuadPoints = "fettoy.quad_points"
	// KeyFettoyNewtonIters counts Newton iterations across VSC solves.
	KeyFettoyNewtonIters = "fettoy.newton_iters"
	// KeyFettoyBracketFailures counts VSC solves whose root bracket
	// search failed.
	KeyFettoyBracketFailures = "fettoy.bracket_failures"
	// KeyFettoySolves counts completed SolveVSC calls. Its per-event
	// trace twin is KindFettoySolve.
	KeyFettoySolves = "fettoy.solves"
	// KeyFettoyTableBuilds counts charge-table constructions.
	KeyFettoyTableBuilds = "fettoy.table.builds"
	// KeyFettoyTableNodes accumulates adaptive grid sizes over builds.
	KeyFettoyTableNodes = "fettoy.table.nodes"
	// KeyFettoyTableHits counts interpolated table lookups.
	KeyFettoyTableHits = "fettoy.table.hits"
	// KeyFettoyTableMisses counts lookups that fell back to direct
	// quadrature (out of tabulated range, or a failed table solve).
	KeyFettoyTableMisses = "fettoy.table.misses"
	// KeyFettoyTableSnapshotLoads counts charge tables published from a
	// deserialized snapshot instead of an adaptive build (warm starts).
	KeyFettoyTableSnapshotLoads = "fettoy.table.snapshot_loads"
	// KeyFettoyTableSnapshotSaves counts charge-table snapshots written.
	KeyFettoyTableSnapshotSaves = "fettoy.table.snapshot_saves"
)

// Timer and histogram keys of the reference model.
const (
	// KeyFettoySolveTime times SolveVSC (behind the telemetry gate).
	KeyFettoySolveTime = "fettoy.solve_time"
	// KeyFettoySolveIters buckets Newton iterations per solve.
	KeyFettoySolveIters = "fettoy.solve_iters"
)

// Counter keys of the piecewise closed-form solver: which root formula
// the bracketed region required, and fallbacks to the generic path.
const (
	KeyCoreSolves            = "core.solves"
	KeyCoreDispatchNone      = "core.dispatch.none"
	KeyCoreDispatchLinear    = "core.dispatch.linear"
	KeyCoreDispatchQuadratic = "core.dispatch.quadratic"
	KeyCoreDispatchCardano   = "core.dispatch.cardano"
	KeyCoreDispatchTrig      = "core.dispatch.trig"
	KeyCoreFallbackGeneric   = "core.fallback_generic"
)

// Counter and histogram keys of the MNA circuit engine.
const (
	KeyCircuitDCSolves            = "circuit.dc.solves"
	KeyCircuitDCNewtonIters       = "circuit.dc.newton_iters"
	KeyCircuitDCGminSteps         = "circuit.dc.gmin_steps"
	KeyCircuitLUSolves            = "circuit.lu_solves"
	KeyCircuitConvergenceFailures = "circuit.convergence_failures"
	KeyCircuitTranSteps           = "circuit.tran.steps"
	KeyCircuitTranNewtonIters     = "circuit.tran.newton_iters"
	KeyCircuitTranRetries         = "circuit.tran.retries"
	KeyCircuitACSolves            = "circuit.ac.solves"
	KeyCircuitNewtonItersPerSolve = "circuit.newton_iters_per_solve"
)

// Counter keys of the sweep schedulers. The worker-attribution pair
// are Sprintf patterns taking the worker index.
const (
	KeySweepPoints          = "sweep.points"
	KeySweepErrors          = "sweep.errors"
	KeySweepWorkerPointsFmt = "sweep.worker.%d.points"
	KeySweepWorkerTimeFmt   = "sweep.worker.%d.time"
)

// Counter keys of the sweep-service front-end (internal/server +
// cmd/cntserve). Requests/errors/canceled/saturated partition the
// HTTP outcomes; the cache pair splits model resolution between reuse
// of an already-built model and a fresh build.
const (
	// KeyServerRequests counts accepted job requests (after routing,
	// before admission control).
	KeyServerRequests = "server.requests"
	// KeyServerErrors counts job requests answered with an error
	// status other than cancellation (400/422/429/5xx).
	KeyServerErrors = "server.errors"
	// KeyServerCanceled counts jobs aborted by client disconnect or
	// the per-request deadline (HTTP 499).
	KeyServerCanceled = "server.canceled"
	// KeyServerSaturated counts requests shed with 429 because every
	// concurrency slot was busy.
	KeyServerSaturated = "server.saturated"
	// KeyServerCacheHits counts job requests served by an
	// already-built model from the keyed cache.
	KeyServerCacheHits = "server.cache.hits"
	// KeyServerCacheMisses counts model-cache misses that paid a model
	// build (reference construction, charge-table attach, or a
	// piecewise fit).
	KeyServerCacheMisses = "server.cache.misses"
	// KeyServerStreamRequests counts jobs answered as chunked NDJSON
	// streams (the stream request field or an x-ndjson Accept header).
	KeyServerStreamRequests = "server.stream.requests"
	// KeyServerStreamRows counts result rows flushed to streaming
	// clients (sweep rows and Monte Carlo checkpoints alike).
	KeyServerStreamRows = "server.stream.rows"
	// KeyServerCoalesceHits counts job requests that joined another
	// request's in-flight identical job instead of running their own.
	KeyServerCoalesceHits = "server.coalesce.hits"
	// KeyServerCoalesceMisses counts coalescable job requests that
	// found no identical job in flight and became the leader of one.
	KeyServerCoalesceMisses = "server.coalesce.misses"
	// KeyServerSnapshotErrors counts charge-table snapshot load/save
	// attempts that failed (corrupt file, mismatched device, I/O); the
	// server falls back to an ordinary build, so these are the only
	// evidence snapshots are not serving.
	KeyServerSnapshotErrors = "server.snapshot.errors"
)

// Counter and gauge keys of the cluster router (internal/cluster +
// cmd/cntshard): how jobs route across the rendezvous-hashed replica
// ring, and per-replica health as active probes see it.
const (
	// KeyClusterRouteLocalHit counts jobs served by their home replica —
	// the first replica in the key's rendezvous order.
	KeyClusterRouteLocalHit = "cluster.route.local_hit"
	// KeyClusterRouteFailover counts jobs served by a fallback replica
	// because the home replica was down or kept failing.
	KeyClusterRouteFailover = "cluster.route.failover"
	// KeyClusterRouteRetries counts individual failed proxy attempts
	// that moved on to the next replica in hash order (connect errors,
	// 5xx and 429 responses).
	KeyClusterRouteRetries = "cluster.route.retries"
	// KeyClusterRouteErrors counts jobs the router could not serve from
	// any replica (answered 502).
	KeyClusterRouteErrors = "cluster.route.errors"
	// KeyClusterProbes counts active health probes sent to replicas.
	KeyClusterProbes = "cluster.probes"
	// KeyClusterReplicaHealthyFmt is the per-replica health gauge
	// pattern (1 = in rotation, 0 = out), taking the replica index.
	KeyClusterReplicaHealthyFmt = "cluster.replica.%d.healthy"
)

// Counter and histogram keys of the engine job layer. The jobs
// counter and the duration histogram are recorded once per engine.Run,
// so the Prometheus exposition carries job-rate and job-latency series
// without per-front-end instrumentation.
const (
	// KeyEngineJobs counts engine.Run invocations (all kinds, success
	// and failure).
	KeyEngineJobs = "engine.jobs"
	// KeyEngineJobSeconds buckets per-job wall-clock duration in
	// seconds (LatencyBuckets).
	KeyEngineJobSeconds = "engine.job_seconds"
)

// Histogram key of the HTTP front-end request latency (seconds,
// LatencyBuckets), observed once per request by the server's
// observability middleware.
const KeyServerRequestSeconds = "server.request_seconds"

// Span kinds (Tracer.StartSpan). Like trace kinds, spans describe ONE
// operation and use singular stems; the tree they form — request →
// job → chunk/row → table build — is the request-scoped view of the
// same work the plural counters aggregate process-wide.
const (
	// SpanServerRequest covers one HTTP request end to end (minted by
	// the server middleware; the root of a request's trace).
	SpanServerRequest = "server.request"
	// SpanServerModelBuild covers one model-cache miss: reference
	// construction plus charge-table attach, or a piecewise fit.
	SpanServerModelBuild = "server.model_build"
	// SpanServerStream covers the response-writing half of one
	// streamed job: first row to last flush, with the row count.
	SpanServerStream = "server.stream"
	// SpanEngineJob covers one engine.Run job; its Metrics carry the
	// job's telemetry counter deltas.
	SpanEngineJob = "engine.job"
	// SpanSweepChunk covers one scheduled chunk of a parallel family
	// sweep (one worker, one run of neighbouring VDS points).
	SpanSweepChunk = "sweep.chunk"
	// SpanSweepRow covers one VDS row of a batched family sweep.
	SpanSweepRow = "sweep.row"
	// SpanFettoyTableBuild covers one adaptive charge-table build.
	SpanFettoyTableBuild = "fettoy.table_build"
)

// Structured-log field names: the trace-correlation envelope shared by
// span records, the access log and the job log.
const (
	// FieldTrace is the request's trace ID — the join key between the
	// access log, the job log and /debug/trace spans.
	FieldTrace = "trace"
	// FieldSpan and FieldParent are the span's own and parent IDs.
	FieldSpan   = "span"
	FieldParent = "parent"
	// FieldKind is the span kind of a span record.
	FieldKind = "kind"
	// FieldDurNS is a duration in integer nanoseconds.
	FieldDurNS = "dur_ns"
)

// Span attribute and structured-log field names carrying request
// payload facts: what was asked for and what it cost.
const (
	// AttrJobKind is the engine job kind ("family-sweep", ...).
	AttrJobKind = "job_kind"
	// AttrMethod, AttrPath and AttrStatus describe one HTTP exchange.
	AttrMethod = "method"
	AttrPath   = "path"
	AttrStatus = "status"
	// AttrModelKey names the resolved model: family/preset/T/EF.
	AttrModelKey = "model_key"
	// AttrCacheHit reports whether the model cache served the request
	// without a build.
	AttrCacheHit = "cache_hit"
	// AttrStream reports whether the response was a chunked NDJSON
	// stream.
	AttrStream = "stream"
	// AttrCoalesced reports whether the job's result came from a
	// shared in-flight run instead of a run of its own.
	AttrCoalesced = "coalesced"
	// AttrRows counts result rows flushed by a streamed response.
	AttrRows = "rows"
	// AttrGates and AttrDrains are the sweep grid dimensions.
	AttrGates  = "gates"
	AttrDrains = "drains"
	// AttrPoints counts bias points a span evaluated.
	AttrPoints = "points"
	// AttrWorker is the parallel-sweep worker index of a chunk span.
	AttrWorker = "worker"
	// AttrVG is the gate voltage of a sweep row/chunk span, in volts.
	AttrVG = "vg"
	// AttrNewtonIters counts Newton iterations attributed to a span.
	AttrNewtonIters = "newton_iters"
	// AttrTableNodes is the adaptive grid size of a table-build span.
	AttrTableNodes = "table_nodes"
	// AttrError carries a span's failure message.
	AttrError = "error"
)

// Structured-log event names (Logger.Log).
const (
	// LogEventAccess is one access-log record: method, path, status,
	// duration, trace ID. Written once per HTTP request.
	LogEventAccess = "access"
	// LogEventJob is one job-log record: job kind, status, duration,
	// Newton iterations, cache hit, trace ID. Written once per
	// /v1/jobs request that reached the engine.
	LogEventJob = "job"
	// LogEventSpan is one completed span, flattened (see spanFields).
	LogEventSpan = "span"
)

// Trace event kinds (Trace.Emit). Kinds are singular: one event per
// occurrence; see the naming conventions above for how they pair with
// the plural counters.
const (
	// KindFettoyNewton is one Newton iteration of a VSC solve.
	KindFettoyNewton = "fettoy.newton"
	// KindFettoySolve is the per-solve summary event (the trace twin of
	// the KeyFettoySolves counter).
	KindFettoySolve = "fettoy.solve"
	// KindCircuitDCSolve is one converged DC Newton solve.
	KindCircuitDCSolve = "circuit.dc.solve"
	// KindCircuitDCSweepPoint is one accepted DC sweep point.
	KindCircuitDCSweepPoint = "circuit.dc.sweep_point"
	// KindCircuitConvergenceFailure is one Newton convergence failure
	// (the trace twin of KeyCircuitConvergenceFailures; this kind was
	// "circuit.converge_fail" before the keys were centralised).
	KindCircuitConvergenceFailure = "circuit.convergence_failure"
	// KindCircuitTranStep is one accepted transient step.
	KindCircuitTranStep = "circuit.tran.step"
	// KindCircuitTranRetry is one rejected-and-halved transient step.
	KindCircuitTranRetry = "circuit.tran.retry"
	// KindCircuitACPoint is one solved AC frequency point.
	KindCircuitACPoint = "circuit.ac.point"
)
