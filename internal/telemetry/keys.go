package telemetry

// This file is the single registry of telemetry instrument names and
// trace event kinds. Every call site that names a counter, timer,
// histogram or trace kind must reference one of these constants — the
// telemetrykeys analyzer (internal/analysis/telemetrykeys, run by
// cmd/cntlint) rejects raw string literals, so singular/plural and
// typo drift between call sites, dashboards and the README/DESIGN
// counter tables cannot creep back in.
//
// Naming conventions:
//
//   - Instrument keys are dotted paths rooted at the owning layer
//     (fettoy, core, circuit, sweep).
//   - Counters that count events use the plural noun of the event:
//     "fettoy.solves", "circuit.dc.solves", "circuit.tran.retries".
//   - Trace kinds describe ONE event and use the singular of the same
//     stem: the "fettoy.solve" summary event is the per-event twin of
//     the "fettoy.solves" counter. The two namespaces are disjoint
//     (Registry instruments vs Trace.Emit kinds); declaring both here,
//     side by side, is what keeps the pairing canonical. The historic
//     "circuit.converge_fail" trace kind, whose stem had drifted from
//     the "circuit.convergence_failures" counter, is reconciled to
//     KindCircuitConvergenceFailure below.
//   - Per-worker attribution keys are fmt.Sprintf patterns (suffix
//     "Fmt"); telemetrykeys accepts fmt.Sprintf(<Fmt constant>, ...)
//     where a key is expected.

// Counter keys of the reference (FETToy-equivalent) model: quadrature
// and Newton work per solve, and the charge-table build/lookup split.
const (
	// KeyFettoyIntegralEvals counts state-density integral evaluations
	// (N or N'), the cost the piecewise approximation removes.
	KeyFettoyIntegralEvals = "fettoy.integral_evals"
	// KeyFettoyQuadPoints counts quadrature integrand evaluations.
	KeyFettoyQuadPoints = "fettoy.quad_points"
	// KeyFettoyNewtonIters counts Newton iterations across VSC solves.
	KeyFettoyNewtonIters = "fettoy.newton_iters"
	// KeyFettoyBracketFailures counts VSC solves whose root bracket
	// search failed.
	KeyFettoyBracketFailures = "fettoy.bracket_failures"
	// KeyFettoySolves counts completed SolveVSC calls. Its per-event
	// trace twin is KindFettoySolve.
	KeyFettoySolves = "fettoy.solves"
	// KeyFettoyTableBuilds counts charge-table constructions.
	KeyFettoyTableBuilds = "fettoy.table.builds"
	// KeyFettoyTableNodes accumulates adaptive grid sizes over builds.
	KeyFettoyTableNodes = "fettoy.table.nodes"
	// KeyFettoyTableHits counts interpolated table lookups.
	KeyFettoyTableHits = "fettoy.table.hits"
	// KeyFettoyTableMisses counts lookups that fell back to direct
	// quadrature (out of tabulated range, or a failed table solve).
	KeyFettoyTableMisses = "fettoy.table.misses"
)

// Timer and histogram keys of the reference model.
const (
	// KeyFettoySolveTime times SolveVSC (behind the telemetry gate).
	KeyFettoySolveTime = "fettoy.solve_time"
	// KeyFettoySolveIters buckets Newton iterations per solve.
	KeyFettoySolveIters = "fettoy.solve_iters"
)

// Counter keys of the piecewise closed-form solver: which root formula
// the bracketed region required, and fallbacks to the generic path.
const (
	KeyCoreSolves            = "core.solves"
	KeyCoreDispatchNone      = "core.dispatch.none"
	KeyCoreDispatchLinear    = "core.dispatch.linear"
	KeyCoreDispatchQuadratic = "core.dispatch.quadratic"
	KeyCoreDispatchCardano   = "core.dispatch.cardano"
	KeyCoreDispatchTrig      = "core.dispatch.trig"
	KeyCoreFallbackGeneric   = "core.fallback_generic"
)

// Counter and histogram keys of the MNA circuit engine.
const (
	KeyCircuitDCSolves            = "circuit.dc.solves"
	KeyCircuitDCNewtonIters       = "circuit.dc.newton_iters"
	KeyCircuitDCGminSteps         = "circuit.dc.gmin_steps"
	KeyCircuitLUSolves            = "circuit.lu_solves"
	KeyCircuitConvergenceFailures = "circuit.convergence_failures"
	KeyCircuitTranSteps           = "circuit.tran.steps"
	KeyCircuitTranNewtonIters     = "circuit.tran.newton_iters"
	KeyCircuitTranRetries         = "circuit.tran.retries"
	KeyCircuitACSolves            = "circuit.ac.solves"
	KeyCircuitNewtonItersPerSolve = "circuit.newton_iters_per_solve"
)

// Counter keys of the sweep schedulers. The worker-attribution pair
// are Sprintf patterns taking the worker index.
const (
	KeySweepPoints          = "sweep.points"
	KeySweepErrors          = "sweep.errors"
	KeySweepWorkerPointsFmt = "sweep.worker.%d.points"
	KeySweepWorkerTimeFmt   = "sweep.worker.%d.time"
)

// Counter keys of the sweep-service front-end (internal/server +
// cmd/cntserve). Requests/errors/canceled/saturated partition the
// HTTP outcomes; the cache pair splits model resolution between reuse
// of an already-built model and a fresh build.
const (
	// KeyServerRequests counts accepted job requests (after routing,
	// before admission control).
	KeyServerRequests = "server.requests"
	// KeyServerErrors counts job requests answered with an error
	// status other than cancellation (400/422/429/5xx).
	KeyServerErrors = "server.errors"
	// KeyServerCanceled counts jobs aborted by client disconnect or
	// the per-request deadline (HTTP 499).
	KeyServerCanceled = "server.canceled"
	// KeyServerSaturated counts requests shed with 429 because every
	// concurrency slot was busy.
	KeyServerSaturated = "server.saturated"
	// KeyServerCacheHits counts job requests served by an
	// already-built model from the keyed cache.
	KeyServerCacheHits = "server.cache.hits"
	// KeyServerCacheMisses counts model-cache misses that paid a model
	// build (reference construction, charge-table attach, or a
	// piecewise fit).
	KeyServerCacheMisses = "server.cache.misses"
)

// Trace event kinds (Trace.Emit). Kinds are singular: one event per
// occurrence; see the naming conventions above for how they pair with
// the plural counters.
const (
	// KindFettoyNewton is one Newton iteration of a VSC solve.
	KindFettoyNewton = "fettoy.newton"
	// KindFettoySolve is the per-solve summary event (the trace twin of
	// the KeyFettoySolves counter).
	KindFettoySolve = "fettoy.solve"
	// KindCircuitDCSolve is one converged DC Newton solve.
	KindCircuitDCSolve = "circuit.dc.solve"
	// KindCircuitDCSweepPoint is one accepted DC sweep point.
	KindCircuitDCSweepPoint = "circuit.dc.sweep_point"
	// KindCircuitConvergenceFailure is one Newton convergence failure
	// (the trace twin of KeyCircuitConvergenceFailures; this kind was
	// "circuit.converge_fail" before the keys were centralised).
	KindCircuitConvergenceFailure = "circuit.convergence_failure"
	// KindCircuitTranStep is one accepted transient step.
	KindCircuitTranStep = "circuit.tran.step"
	// KindCircuitTranRetry is one rejected-and-halved transient step.
	KindCircuitTranRetry = "circuit.tran.retry"
	// KindCircuitACPoint is one solved AC frequency point.
	KindCircuitACPoint = "circuit.ac.point"
)
