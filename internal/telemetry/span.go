// span.go is the request-scoped half of the telemetry package: a
// stdlib-only span tracer. Where the Registry aggregates work
// process-wide (how many Newton iterations since start?), spans
// attribute work to one request (how many Newton iterations did THIS
// job pay, and inside which chunk of which sweep?). StartSpan mints
// trace/span IDs, propagates them through context.Context, and on End
// records the span — duration plus typed attributes — into a bounded
// in-memory ring (served by /debug/trace and the CLIs' -trace output)
// and, when a Logger is attached, into the structured NDJSON log as
// one "span" record.
//
// Cost model: tracing is off by default. A disabled StartSpan is one
// atomic load returning a nil *Span whose methods no-op, so the sweep
// chunk loop and other warm paths can hold spans unconditionally; the
// disabled-overhead benchmark (span_test.go) pins this near zero.
// Enabled spans allocate (ID formatting, context values) and are meant
// for request-rate paths — per HTTP request, per job, per sweep chunk,
// per table build — not per solve.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// idPrefix distinguishes processes (replicas) in merged logs: IDs are
// "<prefix><counter>" in hex, so within one process the atomic counter
// alone guarantees uniqueness and across processes the random prefix
// keeps collisions unlikely.
var idPrefix = func() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degrade to counter-only uniqueness (still correct within one
		// process, which is what the hammer tests assert).
		return 0
	}
	return binary.BigEndian.Uint32(b[:])
}()

var idSeq atomic.Uint64

// newID mints a process-unique 16-hex-digit identifier.
func newID() string {
	return fmt.Sprintf("%08x%08x", idPrefix, uint32(idSeq.Add(1)))
}

// SpanData is the immutable record of one completed span — the unit
// the ring retains, /debug/trace serves, and the NDJSON log encodes.
type SpanData struct {
	TraceID string `json:"trace"`
	SpanID  string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	// Start is the wall-clock span start; DurNS the duration in
	// nanoseconds.
	Start time.Time `json:"ts"`
	DurNS int64     `json:"dur_ns"`
	// Attrs are the typed attributes set with Span.Set (values are
	// string, int64, float64 or bool). Metrics are per-span telemetry
	// counter deltas attached with Span.SetMetrics — the engine feeds
	// its per-job deltas here, turning process-global counters into
	// request-scoped cost attribution.
	Attrs   map[string]any   `json:"attrs,omitempty"`
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Span is one in-flight operation. A nil *Span (what StartSpan returns
// when tracing is disabled) ignores all method calls, so call sites
// never branch on the tracing state. Set/SetMetrics/End are safe for
// concurrent use, though a span normally belongs to one goroutine.
type Span struct {
	tracer *Tracer
	mu     sync.Mutex
	data   SpanData
	start  time.Time
	ended  bool
}

// Set attaches typed attributes (built with the String/Int/Float/Bool/
// Dur field constructors; keys come from keys.go like every other
// instrument name).
func (s *Span) Set(fields ...Field) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]any, len(fields))
	}
	for _, f := range fields {
		s.data.Attrs[f.key] = f.value()
	}
}

// SetMetrics attaches per-span telemetry counter deltas (instrument
// name -> delta). The map is stored as given; callers pass freshly
// built delta maps (engine.Result.Metrics) and must not mutate them
// afterwards.
func (s *Span) SetMetrics(deltas map[string]int64) {
	if s == nil || len(deltas) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Metrics = deltas
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's own identifier ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// End completes the span: the duration is fixed, the record enters the
// tracer's ring, and an attached logger gets one "span" NDJSON record.
// A second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurNS = int64(time.Since(s.start))
	data := s.data
	s.mu.Unlock()
	s.tracer.record(data)
}

// spanKey carries the current *Span through a context.
type spanKey struct{}

// SpanFrom returns the context's current span, or nil (a valid no-op
// span) when the context carries none.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// TraceIDFrom returns the trace ID the context carries, or "".
func TraceIDFrom(ctx context.Context) string { return SpanFrom(ctx).TraceID() }

// Tracer owns the tracing gate, the bounded ring of completed spans,
// and the optional structured-log sink. The zero value is not ready;
// use NewTracer or DefaultTracer.
type Tracer struct {
	enabled atomic.Bool
	logger  atomic.Pointer[Logger]

	mu      sync.Mutex
	buf     []SpanData
	next    int
	wrapped bool
	dropped int64
}

// DefaultSpanCapacity is the default tracer's ring size.
const DefaultSpanCapacity = 2048

// NewTracer returns a disabled tracer retaining at most capacity
// completed spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]SpanData, 0, capacity)}
}

// defaultTracer is the process-wide tracer, disabled by default like
// the default registry.
var defaultTracer = NewTracer(DefaultSpanCapacity)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan starts a span on the default tracer; see Tracer.StartSpan.
func StartSpan(ctx context.Context, kind string) (context.Context, *Span) {
	return defaultTracer.StartSpan(ctx, kind)
}

// SetEnabled flips the tracing gate.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports the tracing gate state.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetLogger attaches (or, with nil, detaches) the structured log every
// completed span is written to as a "span" record.
func (t *Tracer) SetLogger(l *Logger) { t.logger.Store(l) }

// StartSpan begins a span of the given kind (a Span* constant from
// keys.go). When the context already carries a span, the new one joins
// its trace as a child; otherwise a fresh trace ID is minted. The
// returned context carries the new span for callees; the returned
// *Span is nil — ignoring all calls — while the tracer is disabled.
func (t *Tracer) StartSpan(ctx context.Context, kind string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if ctx == nil {
		// Mirror engine.Run's guard: sweep helpers tolerate nil contexts.
		ctx = context.Background() //lint:allow ctxpropagate documented nil-context guard, not a root context
	}
	s := &Span{tracer: t, start: time.Now()}
	s.data.Kind = kind
	s.data.Start = s.start
	s.data.SpanID = newID()
	if parent := SpanFrom(ctx); parent != nil {
		s.data.TraceID = parent.data.TraceID
		s.data.Parent = parent.data.SpanID
	} else {
		s.data.TraceID = newID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// record stores one completed span in the ring and forwards it to the
// attached logger, if any.
func (t *Tracer) record(data SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, data)
	} else {
		t.buf[t.next] = data
		t.next = (t.next + 1) % cap(t.buf)
		t.wrapped = true
		t.dropped++
	}
	t.mu.Unlock()
	if l := t.logger.Load(); l != nil {
		l.Log(LogEventSpan, spanFields(data)...)
	}
}

// spanFields flattens a span record into structured-log fields.
func spanFields(d SpanData) []Field {
	fields := make([]Field, 0, 6+len(d.Attrs)+len(d.Metrics))
	fields = append(fields,
		String(FieldTrace, d.TraceID),
		String(FieldSpan, d.SpanID),
	)
	if d.Parent != "" {
		fields = append(fields, String(FieldParent, d.Parent))
	}
	fields = append(fields,
		String(FieldKind, d.Kind),
		Int(FieldDurNS, d.DurNS),
	)
	for k, v := range d.Attrs {
		switch x := v.(type) {
		case string:
			fields = append(fields, String(k, x))
		case int64:
			fields = append(fields, Int(k, x))
		case float64:
			fields = append(fields, Float(k, x))
		case bool:
			fields = append(fields, Bool(k, x))
		}
	}
	for k, v := range d.Metrics {
		fields = append(fields, Int(k, v))
	}
	return fields
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many spans were overwritten by ring wrap.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns the retained spans in completion order.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Reset drops all retained spans (the drop counter survives, like
// Trace.Reset keeps its sequence).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.next = 0
	t.wrapped = false
}

// WriteJSON writes the retained spans as NDJSON, one span per line —
// the /debug/trace format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}
