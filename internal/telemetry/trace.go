package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one structured trace record. T carries the solver's own
// notion of time (transient simulation time, sweep value) rather than
// wall-clock, which keeps event logs deterministic and diffable; Seq
// orders events globally within one trace.
type Event struct {
	Seq    int64              `json:"seq"`
	Kind   string             `json:"kind"`
	T      float64            `json:"t,omitempty"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Trace is a fixed-capacity ring buffer of solver events. When full,
// the oldest events are overwritten and counted as dropped — a long
// transient keeps its tail, which is where convergence trouble shows.
// A nil *Trace is a valid no-op sink, so call sites can hold one
// unconditionally and emit without nil checks.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int // ring write position
	wrapped bool
	seq     int64
	dropped int64
}

// NewTrace returns a trace holding at most capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Enabled reports whether events will be recorded; callers can skip
// assembling expensive fields when false.
func (t *Trace) Enabled() bool { return t != nil }

// Emit records one event. kv lists alternating string keys and
// float64 values; a trailing odd key is ignored.
func (t *Trace) Emit(kind string, simTime float64, kv ...any) {
	if t == nil {
		return
	}
	var fields map[string]float64
	if len(kv) >= 2 {
		fields = make(map[string]float64, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				continue
			}
			switch v := kv[i+1].(type) {
			case float64:
				fields[k] = v
			case int:
				fields[k] = float64(v)
			case int64:
				fields[k] = float64(v)
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{Seq: t.seq, Kind: kind, T: simTime, Fields: fields}
	t.seq++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % cap(t.buf)
	t.wrapped = true
	t.dropped++
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events in emission order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Reset drops all retained events but keeps the sequence counter, so
// post-reset events remain globally ordered against earlier exports.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.next = 0
	t.wrapped = false
}

// WriteJSON writes the retained events as JSON Lines (one event object
// per line), the format every log tool ingests.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes the retained events as human-oriented lines:
//
//	[seq] kind t=... k1=v1 k2=v2
func (t *Trace) WriteText(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, "[%d] %s t=%g", ev.Seq, ev.Kind, ev.T); err != nil {
			return err
		}
		keys := make([]string, 0, len(ev.Fields))
		for k := range ev.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, " %s=%g", k, ev.Fields[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
