// Package telemetry is the dependency-free observability substrate of
// the library: a concurrency-safe registry of named counters, timers
// and histograms, plus a ring-buffered structured solve trace (see
// trace.go). Every solver layer — the FETToy-style reference theory,
// the piecewise closed-form solve, the MNA circuit engine, the sweep
// workers — records its work here, so speedup claims can be correlated
// with actual work reduction (quadrature points, Newton iterations,
// LU factorizations) rather than wall-clock alone.
//
// Cost model: instruments are uncontended atomic updates (a few ns).
// Call sites on hot paths that run millions of times per second (the
// piecewise closed-form solve) additionally gate on On(), a single
// atomic bool load, so disabled telemetry stays below noise. Cold
// paths (one quadrature integral costs ~10 µs) record unconditionally
// so diagnostics like fettoy.Model.Counters keep working with
// telemetry off.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter in place, keeping handles valid.
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous level — replica health, queue depth,
// in-flight occupancy — that moves both ways, unlike a Counter. The
// zero value is ready to use; a nil Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative n moves it down).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// reset zeroes the gauge in place, keeping handles valid.
func (g *Gauge) reset() { g.v.Store(0) }

// Timer accumulates durations of an operation. The zero value is ready
// to use; a nil Timer ignores updates.
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Observe records one operation of duration d.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.n.Add(1)
		t.ns.Add(int64(d))
	}
}

// Start begins timing an operation; the returned stop function records
// the elapsed time when called.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Observe(time.Since(begin)) }
}

// Count returns how many durations were observed.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Mean returns the average observed duration (0 when empty).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

func (t *Timer) reset() { t.n.Store(0); t.ns.Store(0) }

// Histogram counts observations into fixed buckets with upper bounds
// bounds[i]; values above the last bound land in an overflow bucket.
// Sum and count are tracked exactly so means survive bucketing. A nil
// Histogram ignores updates.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Uint64  // float64 bits, CAS-updated
	n      atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and the per-bucket counts
// (one extra trailing count for the overflow bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.n.Store(0)
}

// Registry is a named collection of instruments. Get-or-create lookups
// return stable handles: Reset zeroes values in place, so handles
// cached at construction time stay valid for the process lifetime.
type Registry struct {
	enabled atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry with the given enabled state.
func NewRegistry(enabled bool) *Registry {
	r := &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
	}
	r.enabled.Store(enabled)
	return r
}

// defaultRegistry is the process-wide registry; disabled by default so
// the piecewise hot path pays nothing unless a CLI or test opts in.
var defaultRegistry = NewRegistry(false)

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// On reports whether the default registry is enabled — the single
// branch hot paths gate on.
func On() bool { return defaultRegistry.enabled.Load() }

// Enable turns the default registry on.
func Enable() { defaultRegistry.SetEnabled(true) }

// Disable turns the default registry off.
func Disable() { defaultRegistry.SetEnabled(false) }

// SetEnabled flips the registry's enabled gate.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports the registry's gate state.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls keep the original
// buckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument in place. Cached handles stay valid.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, t := range r.timers {
		t.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// TimerStat is the exported view of a Timer.
type TimerStat struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
}

// HistStat is the exported view of a Histogram.
type HistStat struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot is a point-in-time JSON-ready copy of a registry. Counters
// with value zero are included, so the schema is stable across runs.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters"`
	Gauges     map[string]int64     `json:"gauges,omitempty"`
	Timers     map[string]TimerStat `json:"timers,omitempty"`
	Histograms map[string]HistStat  `json:"histograms,omitempty"`
}

// Snapshot copies the current instrument values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Counters: map[string]int64{}}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = map[string]int64{}
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = map[string]TimerStat{}
		for name, t := range r.timers {
			st := TimerStat{Count: t.Count(), TotalNS: int64(t.Total())}
			if st.Count > 0 {
				st.MeanNS = float64(st.TotalNS) / float64(st.Count)
			}
			s.Timers[name] = st
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = map[string]HistStat{}
		for name, h := range r.hists {
			bounds, counts := h.Buckets()
			s.Histograms[name] = HistStat{
				Count: h.Count(), Sum: h.Sum(), Bounds: bounds, Buckets: counts,
			}
		}
	}
	return s
}

// WriteJSON writes the snapshot as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot as sorted "name value" lines with the
// given per-line prefix (use "# " or "* " to embed in CSV/deck output).
func (r *Registry) WriteText(w io.Writer, prefix string) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", prefix, n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", prefix, n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Timers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := s.Timers[n]
		if _, err := fmt.Fprintf(w, "%s%s count=%d total=%s mean=%s\n",
			prefix, n, t.Count,
			time.Duration(t.TotalNS), time.Duration(t.MeanNS)); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%s%s count=%d sum=%g buckets=%v le=%v\n",
			prefix, n, h.Count, h.Sum, h.Buckets, h.Bounds); err != nil {
			return err
		}
	}
	return nil
}
