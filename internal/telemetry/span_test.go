package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSpanParenting checks trace propagation through contexts: a child
// span joins its parent's trace, records the parent's span ID, and the
// context accessors see the innermost span.
func TestSpanParenting(t *testing.T) {
	tr := NewTracer(16)
	tr.SetEnabled(true)

	ctx := context.Background()
	if id := TraceIDFrom(ctx); id != "" {
		t.Fatalf("empty context carries trace %q", id)
	}
	ctx1, parent := tr.StartSpan(ctx, SpanServerRequest)
	ctx2, child := tr.StartSpan(ctx1, SpanEngineJob)

	if parent.TraceID() == "" || parent.SpanID() == "" {
		t.Fatalf("parent IDs empty: %q %q", parent.TraceID(), parent.SpanID())
	}
	if child.TraceID() != parent.TraceID() {
		t.Fatalf("child trace %q != parent trace %q", child.TraceID(), parent.TraceID())
	}
	if child.SpanID() == parent.SpanID() {
		t.Fatalf("child reused parent span ID %q", parent.SpanID())
	}
	if got := SpanFrom(ctx2); got != child {
		t.Fatalf("SpanFrom(ctx2) = %v, want the child span", got)
	}
	if got := TraceIDFrom(ctx2); got != parent.TraceID() {
		t.Fatalf("TraceIDFrom(ctx2) = %q, want %q", got, parent.TraceID())
	}

	child.Set(Int(AttrPoints, 7), Bool(AttrCacheHit, true))
	child.SetMetrics(map[string]int64{KeyFettoyNewtonIters: 42})
	child.End()
	child.End() // idempotent
	parent.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(spans))
	}
	// Completion order: child first.
	if spans[0].Kind != SpanEngineJob || spans[1].Kind != SpanServerRequest {
		t.Fatalf("span order wrong: %q, %q", spans[0].Kind, spans[1].Kind)
	}
	if spans[0].Parent != parent.SpanID() {
		t.Fatalf("child parent %q, want %q", spans[0].Parent, parent.SpanID())
	}
	if got := spans[0].Attrs[AttrPoints]; got != int64(7) {
		t.Fatalf("attr points = %v (%T), want int64 7", got, got)
	}
	if got := spans[0].Metrics[KeyFettoyNewtonIters]; got != 42 {
		t.Fatalf("metrics iters = %d, want 42", got)
	}
}

// TestSpanDisabledIsNil checks the no-op contract tracing-off call
// sites rely on: StartSpan returns the context unchanged and a nil
// span whose every method is safe.
func TestSpanDisabledIsNil(t *testing.T) {
	tr := NewTracer(4)
	ctx := context.Background()
	ctx2, sp := tr.StartSpan(ctx, SpanSweepChunk)
	if sp != nil {
		t.Fatalf("disabled StartSpan returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("disabled StartSpan rewrapped the context")
	}
	sp.Set(Int(AttrPoints, 1))
	sp.SetMetrics(map[string]int64{KeySweepPoints: 1})
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Fatalf("nil span has IDs")
	}
	sp.End()
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.Len())
	}
}

// TestSpanHammer runs many goroutines through StartSpan/Set/End
// against a small ring with a logger attached, and checks the
// invariants the -race suite guards: no span record is lost or
// duplicated on the log path, every span ID is unique, the ring stays
// bounded, and the drop counter accounts exactly for the overflow.
func TestSpanHammer(t *testing.T) {
	const goroutines = 8
	const perG = 200
	const capacity = 64

	tr := NewTracer(capacity)
	tr.SetEnabled(true)
	var buf bytes.Buffer
	tr.SetLogger(NewLogger(&buf))

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, sp := tr.StartSpan(context.Background(), SpanSweepChunk)
				sp.Set(Int(AttrWorker, int64(g)), Int(AttrPoints, int64(i)))
				_, child := tr.StartSpan(ctx, SpanSweepRow)
				child.End()
				sp.End()
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG * 2 // parent + child per iteration
	if got := tr.Len(); got != capacity {
		t.Fatalf("ring holds %d spans, want full capacity %d", got, capacity)
	}
	if got := tr.Dropped(); got != total-capacity {
		t.Fatalf("dropped = %d, want %d", got, total-capacity)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != total {
		t.Fatalf("log carries %d span records, want %d", len(lines), total)
	}
	seen := make(map[string]bool, total)
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span record %q: %v", line, err)
		}
		if rec["event"] != LogEventSpan {
			t.Fatalf("unexpected event %v", rec["event"])
		}
		id, _ := rec[FieldSpan].(string)
		if id == "" || seen[id] {
			t.Fatalf("span ID %q missing or duplicated", id)
		}
		seen[id] = true
	}
}

// TestLoggerHammer checks the NDJSON logger under concurrency: every
// record arrives as exactly one valid JSON line, none lost, none
// interleaved.
func TestLoggerHammer(t *testing.T) {
	const goroutines = 8
	const perG = 500

	var buf bytes.Buffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Log(LogEventAccess,
					Int(AttrWorker, int64(g)),
					Int(AttrStatus, int64(i)),
					String(AttrPath, "/v1/jobs"),
				)
			}
		}(g)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("log carries %d records, want %d", len(lines), goroutines*perG)
	}
	counts := make(map[int64]int, goroutines)
	for _, line := range lines {
		var rec struct {
			TS     string `json:"ts"`
			Event  string `json:"event"`
			Worker int64  `json:"worker"`
			Status int64  `json:"status"`
			Path   string `json:"path"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		if rec.Event != LogEventAccess || rec.TS == "" || rec.Path != "/v1/jobs" {
			t.Fatalf("record fields wrong: %q", line)
		}
		counts[rec.Worker]++
	}
	for g := int64(0); g < goroutines; g++ {
		if counts[g] != perG {
			t.Fatalf("worker %d wrote %d records, want %d", g, counts[g], perG)
		}
	}
}

// TestLoggerNonFinite checks that non-finite floats stay valid JSON.
func TestLoggerNonFinite(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Log(LogEventJob, Float(AttrVG, math.NaN()), Float(AttrError, math.Inf(1)))
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("non-finite floats broke JSON: %v: %s", err, buf.String())
	}
}

// BenchmarkStartSpanDisabled pins the disabled-tracing cost the warm
// paths pay: one atomic load and a nil-method chain, no allocation.
func BenchmarkStartSpanDisabled(b *testing.B) {
	tr := NewTracer(64)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, SpanSweepChunk)
		sp.Set(Int(AttrPoints, 1))
		sp.End()
	}
}

// BenchmarkStartSpanEnabled is the contrast: the full mint-set-record
// cost a traced request pays per span.
func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := NewTracer(64)
	tr.SetEnabled(true)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, SpanSweepChunk)
		sp.Set(Int(AttrPoints, 1))
		sp.End()
	}
}
