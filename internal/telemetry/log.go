// log.go is the structured NDJSON job/access log: one JSON object per
// line, hand-encoded (deterministic field order, one Write per record,
// no reflection) so concurrent writers never interleave and log
// consumers get machine-parseable lines. Field keys are registered in
// keys.go and enforced by the telemetrykeys analyzer exactly like
// instrument names — a dashboards-vs-code drift in "dur_ns" is the
// same bug as one in "fettoy.newton_iters".
package telemetry

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// fieldKind discriminates the typed Field payload.
type fieldKind uint8

const (
	fkString fieldKind = iota
	fkInt
	fkFloat
	fkBool
)

// Field is one typed key/value pair of a structured-log record or a
// span attribute. Build fields with the String/Int/Float/Bool/Dur
// constructors; keys must be Field*/Attr* constants from keys.go.
type Field struct {
	key  string
	kind fieldKind
	str  string
	i64  int64
	f64  float64
	b    bool
}

// String returns a string-valued field.
func String(key, v string) Field { return Field{key: key, kind: fkString, str: v} }

// Int returns an integer-valued field.
func Int(key string, v int64) Field { return Field{key: key, kind: fkInt, i64: v} }

// Float returns a float-valued field.
func Float(key string, v float64) Field { return Field{key: key, kind: fkFloat, f64: v} }

// Bool returns a boolean-valued field.
func Bool(key string, v bool) Field { return Field{key: key, kind: fkBool, b: v} }

// Dur returns a duration field, serialised as integer nanoseconds
// (pair it with a key carrying the _ns suffix, like FieldDurNS).
func Dur(key string, d time.Duration) Field { return Int(key, int64(d)) }

// Key returns the field's key.
func (f Field) Key() string { return f.key }

// value returns the field's payload as its natural Go type.
func (f Field) value() any {
	switch f.kind {
	case fkInt:
		return f.i64
	case fkFloat:
		return f.f64
	case fkBool:
		return f.b
	}
	return f.str
}

// Logger writes structured NDJSON records. A nil *Logger ignores all
// calls, so call sites hold one unconditionally. Safe for concurrent
// use: each record is one buffered Write under the mutex.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewLogger returns a logger writing NDJSON records to w.
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// Log writes one record:
//
//	{"ts":"<RFC3339Nano>","event":"<event>", <fields...>}
//
// event is a LogEvent* constant; duplicate field keys keep the last
// value wins semantics of JSON readers (emit each key once). Write
// errors are dropped: logging must never fail the request it observes.
func (l *Logger) Log(event string, fields ...Field) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendQuote(b, time.Now().UTC().Format(time.RFC3339Nano))
	b = append(b, `,"event":`...)
	b = strconv.AppendQuote(b, event)
	for _, f := range fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.key)
		b = append(b, ':')
		switch f.kind {
		case fkString:
			b = strconv.AppendQuote(b, f.str)
		case fkInt:
			b = strconv.AppendInt(b, f.i64, 10)
		case fkFloat:
			if math.IsNaN(f.f64) || math.IsInf(f.f64, 0) {
				// JSON has no NaN/Inf literals; quote them like
				// encoding/json refuses to.
				b = strconv.AppendQuote(b, strconv.FormatFloat(f.f64, 'g', -1, 64))
			} else {
				b = strconv.AppendFloat(b, f.f64, 'g', -1, 64)
			}
		case fkBool:
			b = strconv.AppendBool(b, f.b)
		}
	}
	b = append(b, '}', '\n')
	l.buf = b
	_, _ = l.w.Write(b)
}
