package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterTimerBasics(t *testing.T) {
	r := NewRegistry(true)
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("get-or-create returned a different handle")
	}
	tm := r.Timer("a.t")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 8*time.Millisecond || tm.Mean() != 4*time.Millisecond {
		t.Fatalf("timer stats = %d %s %s", tm.Count(), tm.Total(), tm.Mean())
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry(true)
	g := r.Gauge("replica.healthy")
	g.Set(1)
	g.Add(2)
	g.Add(-3)
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	g.Set(1)
	if r.Gauge("replica.healthy") != g {
		t.Fatal("get-or-create returned a different handle")
	}
	if got := r.Snapshot().Gauges["replica.healthy"]; got != 1 {
		t.Fatalf("snapshot gauge = %d, want 1", got)
	}
	r.Reset()
	if g.Value() != 0 {
		t.Fatal("reset did not zero gauge")
	}
	g.Set(5)
	if r.Gauge("replica.healthy").Value() != 5 {
		t.Fatal("handle detached after reset")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf, "# "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# replica.healthy 5") {
		t.Fatalf("text export missing gauge:\n%s", buf.String())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var tm *Timer
	var h *Histogram
	var tr *Trace
	c.Inc()
	c.Add(3)
	g.Set(2)
	g.Add(1)
	tm.Observe(time.Second)
	tm.Start()()
	h.Observe(1)
	tr.Emit("x", 0)
	if c.Value() != 0 || g.Value() != 0 || tm.Count() != 0 || h.Count() != 0 || tr.Len() != 0 || tr.Enabled() {
		t.Fatal("nil instruments must be inert")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(true)
	h := r.Histogram("iters", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("shape %d/%d", len(bounds), len(counts))
	}
	// SearchFloat64s: value v lands in the first bucket with bound >= v.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 || h.Sum() != 106 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
}

// TestRegistryConcurrent hammers get-or-create and updates from many
// goroutines; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(true)
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Timer("t.shared").Observe(time.Microsecond)
				r.Histogram("h.shared", []float64{1, 10}).Observe(float64(i % 20))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Timer("t.shared").Count(); got != workers*perWorker {
		t.Fatalf("timer count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h.shared", nil).Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry(true)
	c := r.Counter("x")
	c.Add(7)
	tm := r.Timer("y")
	tm.Observe(time.Second)
	r.Reset()
	if c.Value() != 0 || tm.Count() != 0 {
		t.Fatal("reset did not zero values")
	}
	c.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("handle detached after reset")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry(true)
	r.Counter("fettoy.newton_iters").Add(42)
	r.Timer("solve").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["fettoy.newton_iters"] != 42 {
		t.Fatalf("roundtrip lost counter: %+v", s)
	}
	buf.Reset()
	if err := r.WriteText(&buf, "# "); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# fettoy.newton_iters 42") {
		t.Fatalf("text export missing counter:\n%s", buf.String())
	}
}

func TestTraceRingAndExport(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit("step", float64(i), "iter", i, "res", 0.5)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Kind != "step" || ev.Fields["res"] != 0.5 {
			t.Fatalf("bad event %+v", ev)
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("exported %d lines, want 4", lines)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit("ev", float64(i), "w", i)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Fatalf("len = %d, want 64", tr.Len())
	}
	if got := tr.Dropped() + int64(tr.Len()); got != 8*500 {
		t.Fatalf("retained+dropped = %d, want %d", got, 8*500)
	}
}

func TestDefaultRegistryGate(t *testing.T) {
	if On() {
		t.Fatal("default registry must start disabled")
	}
	Enable()
	defer Disable()
	if !On() {
		t.Fatal("Enable did not flip the gate")
	}
}
