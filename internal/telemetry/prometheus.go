// prometheus.go renders a Registry snapshot in the Prometheus text
// exposition format (version 0.0.4), the lingua franca every metrics
// scraper ingests — replacing the ad-hoc JSON dump the sweep service
// used to serve at /metrics (the JSON snapshot survives at
// /metrics.json for the CLIs). Mapping:
//
//   - counters  -> "cntfet_<name>_total" (TYPE counter)
//   - gauges    -> "cntfet_<name>" (TYPE gauge)
//   - timers    -> "cntfet_<name>_seconds" (TYPE summary: _sum/_count)
//   - histograms-> "cntfet_<name>" (TYPE histogram: cumulative
//     _bucket{le=...} series, _sum, _count)
//
// Dots and other non-metric characters in instrument names become
// underscores. ValidatePrometheus is the matching conformance checker
// the servesmoke CI step and the server tests scrape /metrics through,
// so a malformed exposition is a test failure, not a silent scrape
// error in production.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromPrefix namespaces every exposed metric.
const PromPrefix = "cntfet_"

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// LatencyBuckets are the declared histogram bucket upper bounds, in
// seconds, for request latency and job duration (KeyServerRequestSeconds,
// KeyEngineJobSeconds): half-millisecond floor for cached piecewise
// jobs up to tens of seconds for cold reference tabulations.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// promName sanitises an instrument name into a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, with the cntfet_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(PromPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value (Prometheus accepts NaN/+Inf/-Inf
// spellings).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry snapshot in the text exposition
// format, deterministically ordered by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		fmt.Fprintf(bw, "# HELP %s Counter %q from the cntfet telemetry registry.\n", pn, n)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(bw, "# HELP %s Gauge %q from the cntfet telemetry registry.\n", pn, n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Timers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := s.Timers[n]
		pn := promName(n) + "_seconds"
		fmt.Fprintf(bw, "# HELP %s Timer %q from the cntfet telemetry registry.\n", pn, n)
		fmt.Fprintf(bw, "# TYPE %s summary\n", pn)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(float64(t.TotalNS)/1e9))
		fmt.Fprintf(bw, "%s_count %d\n", pn, t.Count)
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(bw, "# HELP %s Histogram %q from the cntfet telemetry registry.\n", pn, n)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}

// ValidatePrometheus parses a text exposition and reports the first
// conformance violation: malformed names, labels or values, unknown
// TYPE declarations, samples preceding their TYPE line, and histograms
// missing the mandatory +Inf bucket or with _count disagreeing with
// it. It is deliberately a checker, not a full client parser — enough
// for CI to reject an exposition a real scraper would drop.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	infBuckets := map[string]float64{} // histogram base name -> +Inf bucket value
	counts := map[string]float64{}     // histogram base name -> _count value
	sawSample := map[string]bool{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: malformed %s comment: %s", line, fields[1], text)
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return fmt.Errorf("line %d: TYPE wants exactly a name and a type: %s", line, text)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
					}
					if sawSample[fields[2]] {
						return fmt.Errorf("line %d: TYPE for %s after its samples", line, fields[2])
					}
					if _, dup := types[fields[2]]; dup {
						return fmt.Errorf("line %d: duplicate TYPE for %s", line, fields[2])
					}
					types[fields[2]] = fields[3]
				}
			}
			continue // other comments are free text
		}
		name, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		base := sampleBase(name, types)
		sawSample[base] = true
		if types[base] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, err := bucketLE(text)
				if err != nil {
					return fmt.Errorf("line %d: %w", line, err)
				}
				if math.IsInf(le, +1) {
					infBuckets[base] = value
				}
			case strings.HasSuffix(name, "_count"):
				counts[base] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for base, typ := range types {
		if typ != "histogram" || !sawSample[base] {
			continue
		}
		inf, ok := infBuckets[base]
		if !ok {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", base)
		}
		if cnt, ok := counts[base]; ok && cnt != inf { //lint:allow floatcmp exposition format requires exact agreement
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", base, cnt, inf)
		}
	}
	return nil
}

// sampleBase strips the _bucket/_sum/_count suffix when the remaining
// name is a declared histogram (or summary), so samples are grouped
// under their family.
func sampleBase(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// parseSample validates one sample line and returns its metric name
// and value.
func parseSample(text string) (name string, value float64, err error) {
	rest := text
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", 0, fmt.Errorf("sample without value: %q", text)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", 0, fmt.Errorf("unterminated label set: %q", text)
		}
		if err := validateLabels(rest[1:end]); err != nil {
			return "", 0, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("want `name[{labels}] value [timestamp]`, got %q", text)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", 0, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, value, nil
}

// validateLabels checks a comma-separated label body: name="value"
// pairs with quoted, backslash-escaped values.
func validateLabels(body string) error {
	if strings.TrimSpace(body) == "" {
		return nil
	}
	rest := body
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return fmt.Errorf("label without '=': %q", rest)
		}
		lname := strings.TrimSpace(rest[:eq])
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value after %s", lname)
		}
		// Scan the quoted value honouring backslash escapes.
		i := 1
		for {
			if i >= len(rest) {
				return fmt.Errorf("unterminated label value after %s", lname)
			}
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		rest = strings.TrimSpace(rest[i+1:])
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("label pairs must be comma-separated: %q", rest)
		}
		rest = strings.TrimSpace(rest[1:])
	}
	return nil
}

// bucketLE extracts the le label value of one _bucket sample.
func bucketLE(text string) (float64, error) {
	i := strings.Index(text, `le="`)
	if i < 0 {
		return 0, fmt.Errorf("histogram bucket without le label: %q", text)
	}
	rest := text[i+len(`le="`):]
	end := strings.Index(rest, `"`)
	if end < 0 {
		return 0, fmt.Errorf("unterminated le label: %q", text)
	}
	return parsePromValue(rest[:end])
}

// parsePromValue parses a sample value, accepting the Prometheus
// NaN/+Inf/-Inf spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
