package optimize

import (
	"math"
	"testing"
)

func TestGoldenSectionParabola(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x, err := GoldenSection(f, -10, 10, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.7) > 1e-8 {
		t.Fatalf("min at %g", x)
	}
}

func TestGoldenSectionReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x + 2) }
	x, err := GoldenSection(f, 5, -5, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x+2) > 1e-7 {
		t.Fatalf("min at %g", x)
	}
}

func TestGoldenSectionNonSmooth(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 0.123) }
	x, err := GoldenSection(f, 0, 1, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.123) > 1e-8 {
		t.Fatalf("min at %g", x)
	}
}

func TestGoldenSectionIterationLimit(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	if _, err := GoldenSection(f, -1e9, 1e9, 1e-15, 3); err != ErrMaxIter {
		t.Fatalf("err = %v", err)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fx, err := NelderMead(rosen, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000, FTol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("min at %v (f=%g)", x, fx)
	}
}

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}
	x, _, err := NelderMead(f, []float64{5, 5, 5}, NelderMeadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if math.Abs(v-float64(i)) > 1e-4 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestNelderMeadCustomSteps(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	x, _, err := NelderMead(f, []float64{0}, NelderMeadOptions{InitialStep: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-5 {
		t.Fatalf("x = %v", x)
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Fatal("expected error for empty start")
	}
}

func TestNelderMeadIterationLimitReturnsBest(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	x, _, err := NelderMead(f, []float64{100}, NelderMeadOptions{MaxIter: 3})
	if err != ErrMaxIter {
		t.Fatalf("err = %v", err)
	}
	if len(x) != 1 {
		t.Fatal("best point missing")
	}
}
