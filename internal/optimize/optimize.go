// Package optimize contains the derivative-free minimisers used to tune
// the piecewise-model breakpoints: golden-section search in one
// dimension and Nelder–Mead simplex in several. The paper chooses its
// region boundaries "to minimise the RMS deviation from the theoretical
// curves"; these routines are that choice made executable.
package optimize

import (
	"errors"
	"math"
	"sort"
)

// ErrMaxIter is returned when an iteration budget is exhausted before
// the tolerance is met. The best point found so far is still returned.
var ErrMaxIter = errors.New("optimize: iteration limit reached")

const invPhi = 0.6180339887498949 // 1/golden ratio

// GoldenSection minimises a unimodal f on [a, b] to the absolute
// x-tolerance tol. It returns the abscissa of the minimum.
func GoldenSection(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < maxIter; i++ {
		if b-a < tol {
			return 0.5 * (a + b), nil
		}
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b), ErrMaxIter
}

// NelderMeadOptions configures the simplex search.
type NelderMeadOptions struct {
	// InitialStep sets the simplex edge length per coordinate; zero
	// means 5% of |x0_i| (or 0.01 when x0_i is zero).
	InitialStep []float64
	// FTol stops when the simplex function-value spread falls below it.
	FTol float64
	// MaxIter bounds the iteration count.
	MaxIter int
}

// NelderMead minimises f from the starting point x0 with the
// Nelder–Mead simplex algorithm (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5). It returns the best point found.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, errors.New("optimize: empty starting point")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 400 * n
	}
	if opt.FTol <= 0 {
		opt.FTol = 1e-12
	}
	step := func(i int) float64 {
		if i < len(opt.InitialStep) && opt.InitialStep[i] != 0 { //lint:allow floatcmp zero InitialStep selects the default
			return opt.InitialStep[i]
		}
		if x0[i] != 0 { //lint:allow floatcmp relative step needs a nonzero coordinate
			return 0.05 * math.Abs(x0[i])
		}
		return 0.01
	}

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			x[i-1] += step(i - 1)
		}
		simplex[i] = vertex{x: x, f: f(x)}
	}
	order := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	centroid := make([]float64, n)

	for iter := 0; iter < opt.MaxIter; iter++ {
		order()
		best, worst := simplex[0], simplex[n]
		if math.Abs(worst.f-best.f) <= opt.FTol*(math.Abs(best.f)+opt.FTol) {
			return best.x, best.f, nil
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j] / float64(n)
			}
		}
		at := func(coef float64) vertex {
			x := make([]float64, n)
			for j := range x {
				x[j] = centroid[j] + coef*(centroid[j]-worst.x[j])
			}
			return vertex{x: x, f: f(x)}
		}
		refl := at(1)
		switch {
		case refl.f < best.f:
			if exp := at(2); exp.f < refl.f {
				simplex[n] = exp
			} else {
				simplex[n] = refl
			}
		case refl.f < simplex[n-1].f:
			simplex[n] = refl
		default:
			contr := at(-0.5)
			if contr.f < worst.f {
				simplex[n] = contr
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	order()
	return simplex[0].x, simplex[0].f, ErrMaxIter
}
