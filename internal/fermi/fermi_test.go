package fermi

import (
	"math"
	"testing"
	"testing/quick"
)

const kT300 = 0.025852 // eV at 300 K

func TestFermiFunctionLimits(t *testing.T) {
	if got := F(0, kT300); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("f(0) = %g", got)
	}
	if got := F(-100*kT300, kT300); math.Abs(got-1) > 1e-12 {
		t.Fatalf("deep occupied f = %g", got)
	}
	if got := F(100*kT300, kT300); got > 1e-12 {
		t.Fatalf("far tail f = %g", got)
	}
}

func TestFermiFunctionOverflowSafe(t *testing.T) {
	for _, e := range []float64{-1e6, -1e3, 1e3, 1e6} {
		got := F(e, kT300)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("F(%g) = %g", e, got)
		}
	}
}

func TestFermiSymmetry(t *testing.T) {
	// f(e) + f(-e) = 1
	for _, e := range []float64{0.01, 0.1, 0.5, 3} {
		if s := F(e, kT300) + F(-e, kT300); math.Abs(s-1) > 1e-12 {
			t.Fatalf("symmetry broken at %g: %g", e, s)
		}
	}
}

func TestDFMatchesFiniteDifference(t *testing.T) {
	h := 1e-6
	for _, e := range []float64{-0.1, -0.01, 0, 0.02, 0.15} {
		fd := (F(e+h, kT300) - F(e-h, kT300)) / (2 * h)
		an := DF(e, kT300)
		if math.Abs(fd-an) > 1e-5*math.Abs(an)+1e-9 {
			t.Fatalf("DF(%g): analytic %g vs fd %g", e, an, fd)
		}
	}
}

func TestDFFarTailIsZero(t *testing.T) {
	if DF(1e5, kT300) != 0 || DF(-1e5, kT300) != 0 {
		t.Fatal("DF should underflow to 0 in the far tails")
	}
}

func TestF0ClosedForm(t *testing.T) {
	cases := []struct{ eta, want float64 }{
		{0, math.Ln2},
		{1, math.Log(1 + math.E)},
		{-3, math.Log(1 + math.Exp(-3))},
	}
	for _, c := range cases {
		if got := F0(c.eta); math.Abs(got-c.want) > 1e-14 {
			t.Fatalf("F0(%g) = %.16g want %.16g", c.eta, got, c.want)
		}
	}
}

func TestF0LargeArguments(t *testing.T) {
	// Degenerate limit: F0(η) → η.
	if got := F0(800); math.Abs(got-800) > 1e-10 {
		t.Fatalf("F0(800) = %g", got)
	}
	// Non-degenerate limit: F0(η) → e^η.
	if got := F0(-30); math.Abs(got-math.Exp(-30)) > 1e-18 {
		t.Fatalf("F0(-30) = %g", got)
	}
	if v := F0(-800); v != 0 && math.IsNaN(v) {
		t.Fatalf("F0(-800) = %g", v)
	}
}

func TestDF0IsOccupation(t *testing.T) {
	for _, eta := range []float64{-5, -0.3, 0, 0.7, 10} {
		want := 1 / (1 + math.Exp(-eta))
		if got := DF0(eta); math.Abs(got-want) > 1e-14 {
			t.Fatalf("DF0(%g) = %g want %g", eta, got, want)
		}
	}
}

func TestDF0MatchesF0FiniteDifference(t *testing.T) {
	h := 1e-6
	for _, eta := range []float64{-2, 0, 1.5, 4} {
		fd := (F0(eta+h) - F0(eta-h)) / (2 * h)
		if got := DF0(eta); math.Abs(got-fd) > 1e-6 {
			t.Fatalf("DF0(%g) = %g, fd %g", eta, got, fd)
		}
	}
}

func TestIntegralOrderZeroMatchesClosedForm(t *testing.T) {
	for _, eta := range []float64{-4, -1, 0, 1, 5, 12} {
		num := Integral(0, eta)
		if cf := F0(eta); math.Abs(num-cf) > 1e-6*(1+cf) {
			t.Fatalf("F_0(%g): numeric %g closed %g", eta, num, cf)
		}
	}
}

func TestIntegralHalfOrderDegenerateLimit(t *testing.T) {
	// For large η, F_1/2(η) → η^(3/2)/Γ(5/2) → (4/3√π)·η^(3/2) in the
	// normalised convention.
	eta := 40.0
	want := math.Pow(eta, 1.5) / math.Gamma(2.5)
	got := Integral(0.5, eta)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("F_1/2(%g) = %g, degenerate limit %g", eta, got, want)
	}
}

func TestIntegralNonDegenerateLimit(t *testing.T) {
	// For very negative η every order tends to e^η.
	for _, j := range []float64{-0.5, 0, 0.5, 1} {
		eta := -15.0
		got := Integral(j, eta)
		want := math.Exp(eta)
		if math.Abs(got-want)/want > 1e-3 {
			t.Fatalf("F_%g(%g) = %g want %g", j, eta, got, want)
		}
	}
}

// Property: F is monotone decreasing in energy and bounded in [0,1].
func TestFermiMonotoneProperty(t *testing.T) {
	f := func(e1, e2 float64) bool {
		if math.IsNaN(e1) || math.IsNaN(e2) {
			return true
		}
		a, b := math.Min(e1, e2), math.Max(e1, e2)
		fa, fb := F(a, kT300), F(b, kT300)
		return fa >= fb && fa >= 0 && fa <= 1 && fb >= 0 && fb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: F0 is positive, increasing, and convexity of its derivative
// (the occupation) stays within [0,1].
func TestF0MonotoneProperty(t *testing.T) {
	f := func(x1, x2 float64) bool {
		if math.IsNaN(x1) || math.IsNaN(x2) || math.Abs(x1) > 1e6 || math.Abs(x2) > 1e6 {
			return true
		}
		a, b := math.Min(x1, x2), math.Max(x1, x2)
		if F0(a) > F0(b)+1e-12 {
			return false
		}
		d := DF0(a)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
