// Package fermi implements the Fermi–Dirac statistics the CNT theory is
// built on: the occupation function, the closed-form order-0 integral
// F0(η) = ln(1+e^η) that gives the ballistic drain current (paper
// eq. 13), its derivative, and numerically evaluated integrals of other
// orders for validation.
package fermi

import (
	"math"

	"cntfet/internal/quad"
)

// F returns the Fermi occupation f(e) = 1/(1+exp(e/kT)) where e is the
// energy measured from the Fermi level and kT the thermal energy, both
// in the same unit. The implementation is overflow-safe for |e/kT| up
// to the float64 exponent range.
func F(e, kT float64) float64 {
	x := e / kT
	if x > 0 {
		// 1/(1+e^x) = e^-x/(1+e^-x); e^-x underflows safely to 0.
		ex := math.Exp(-x)
		return ex / (1 + ex)
	}
	return 1 / (1 + math.Exp(x))
}

// DF returns df/de, the derivative of the occupation with respect to
// energy: -1/(4kT) sech^2(e/2kT), written to avoid overflow.
func DF(e, kT float64) float64 {
	x := e / (2 * kT)
	if math.Abs(x) > 350 {
		return 0
	}
	ch := math.Cosh(x)
	return -1 / (4 * kT * ch * ch)
}

// F0 is the Fermi–Dirac integral of order 0 in its closed form
// ln(1 + e^η) (paper eq. 13), evaluated without overflow: for large
// positive η it returns η + ln(1+e^-η) ≈ η.
func F0(eta float64) float64 {
	if eta > 0 {
		return eta + math.Log1p(math.Exp(-eta))
	}
	return math.Log1p(math.Exp(eta))
}

// DF0 is dF0/dη = 1/(1+e^-η), the occupation itself.
func DF0(eta float64) float64 {
	if eta < 0 {
		ex := math.Exp(eta)
		return ex / (1 + ex)
	}
	return 1 / (1 + math.Exp(-eta))
}

// Integral evaluates the normalised Fermi–Dirac integral of real order
// j > -1,
//
//	F_j(η) = 1/Γ(j+1) ∫₀^∞ t^j / (1 + e^(t-η)) dt,
//
// by adaptive quadrature on a semi-infinite transform. It exists to
// cross-check F0 and to support density-of-states validations; the
// device models never call it in their hot paths.
func Integral(j, eta float64) float64 {
	gamma := math.Gamma(j + 1)
	integrand := func(t float64) float64 {
		if t == 0 { //lint:allow floatcmp exact integrand endpoint t = 0
			if j > 0 {
				return 0
			}
			// j == 0 edge: integrand is the occupation at t=0.
			return 1 / (1 + math.Exp(-eta))
		}
		return math.Pow(t, j) * DF0(eta-t)
	}
	// DF0(eta-t) equals 1/(1+e^(t-eta)).
	v, err := quad.SemiInfinite(integrand, 0, 1e-12)
	if err != nil {
		// The integrand is smooth and decaying; if the tolerance was
		// not met the partial value is still the best estimate.
		_ = err
	}
	return v / gamma
}
