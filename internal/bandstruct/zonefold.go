package bandstruct

import (
	"math"
	"sort"

	"cntfet/internal/units"
)

// This file implements zone folding of the graphene π-band for a tube
// of arbitrary chirality (Saito/Dresselhaus conventions), generalising
// the zigzag-only helpers: the allowed states of an (n, m) tube are
// cuts of the 2-D graphene dispersion along lines
// k = μ·K1 + k∥·K2/|K2|, one line per subband index μ.

// Graphene lattice vectors a1, a2 (metres) and reciprocal vectors
// b1, b2 (1/m) in the standard orientation.
func grapheneVectors() (a1, a2, b1, b2 [2]float64) {
	a := units.ALattice
	a1 = [2]float64{a * math.Sqrt(3) / 2, a / 2}
	a2 = [2]float64{a * math.Sqrt(3) / 2, -a / 2}
	b1 = [2]float64{2 * math.Pi / (a * math.Sqrt(3)), 2 * math.Pi / a}
	b2 = [2]float64{2 * math.Pi / (a * math.Sqrt(3)), -2 * math.Pi / a}
	return
}

// GrapheneEnergy returns the π-band tight-binding energy (eV,
// conduction branch) at 2-D wavevector (kx, ky) in 1/m:
// E = γ·sqrt(1 + 4·cos(√3·kx·a/2)·cos(ky·a/2) + 4·cos²(ky·a/2)).
func GrapheneEnergy(kx, ky float64) float64 {
	a := units.ALattice
	c := math.Cos(ky * a / 2)
	inner := 1 + 4*math.Cos(math.Sqrt(3)*kx*a/2)*c + 4*c*c
	if inner < 0 {
		inner = 0 // rounding at the Dirac point
	}
	return units.Gamma * math.Sqrt(inner)
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TranslationIndices returns the (t1, t2) integer components of the
// translation vector T = t1·a1 + t2·a2 along the tube axis.
func (c Chirality) TranslationIndices() (t1, t2 int) {
	dr := gcd(2*c.N+c.M, 2*c.M+c.N)
	return (2*c.M + c.N) / dr, -(2*c.N + c.M) / dr
}

// NumHexagons returns the number of graphene hexagons in the tube unit
// cell, which is also the number of distinct subband cutting lines.
func (c Chirality) NumHexagons() int {
	dr := gcd(2*c.N+c.M, 2*c.M+c.N)
	return 2 * (c.N*c.N + c.N*c.M + c.M*c.M) / dr
}

// TranslationLength returns |T| in metres (the 1-D unit-cell length).
func (c Chirality) TranslationLength() float64 {
	t1, t2 := c.TranslationIndices()
	a1, a2, _, _ := grapheneVectors()
	tx := float64(t1)*a1[0] + float64(t2)*a2[0]
	ty := float64(t1)*a1[1] + float64(t2)*a2[1]
	return math.Hypot(tx, ty)
}

// Dispersion returns the conduction-band energy (eV) of subband mu
// (0 <= mu < NumHexagons) at axial wavevector k (1/m, Brillouin zone
// |k| <= π/|T|) for an arbitrary chirality, by cutting the graphene
// dispersion along the tube's allowed line.
func (c Chirality) Dispersion(mu int, k float64) float64 {
	if !c.Valid() {
		panic("bandstruct: invalid chirality")
	}
	nHex := c.NumHexagons()
	if mu < 0 || mu >= nHex {
		panic("bandstruct: subband index out of range")
	}
	t1, t2 := c.TranslationIndices()
	_, _, b1, b2 := grapheneVectors()
	nf := float64(nHex)
	// K1 = (-t2·b1 + t1·b2)/N, K2 = (m·b1 - n·b2)/N.
	k1 := [2]float64{
		(-float64(t2)*b1[0] + float64(t1)*b2[0]) / nf,
		(-float64(t2)*b1[1] + float64(t1)*b2[1]) / nf,
	}
	k2 := [2]float64{
		(float64(c.M)*b1[0] - float64(c.N)*b2[0]) / nf,
		(float64(c.M)*b1[1] - float64(c.N)*b2[1]) / nf,
	}
	k2len := math.Hypot(k2[0], k2[1])
	kx := float64(mu)*k1[0] + k*k2[0]/k2len
	ky := float64(mu)*k1[1] + k*k2[1]/k2len
	return GrapheneEnergy(kx, ky)
}

// SubbandMinimaGeneral returns the lowest `count` distinct conduction
// subband minima (eV, ascending) of an arbitrary-chirality tube, found
// by scanning each cutting line over the 1-D Brillouin zone and
// refining the minimum by golden-section-style bisection of the grid
// neighbourhood.
func (c Chirality) SubbandMinimaGeneral(count int) []float64 {
	nHex := c.NumHexagons()
	kMax := math.Pi / c.TranslationLength()
	const grid = 400
	minima := make([]float64, 0, nHex)
	for mu := 0; mu < nHex; mu++ {
		best := math.Inf(1)
		bestK := 0.0
		for i := 0; i <= grid; i++ {
			k := -kMax + 2*kMax*float64(i)/grid
			if e := c.Dispersion(mu, k); e < best {
				best, bestK = e, k
			}
		}
		// Local refinement by ternary search around the grid minimum.
		lo := math.Max(bestK-2*kMax/grid, -kMax)
		hi := math.Min(bestK+2*kMax/grid, kMax)
		for it := 0; it < 60; it++ {
			m1 := lo + (hi-lo)/3
			m2 := hi - (hi-lo)/3
			if c.Dispersion(mu, m1) < c.Dispersion(mu, m2) {
				hi = m2
			} else {
				lo = m1
			}
		}
		minima = append(minima, c.Dispersion(mu, 0.5*(lo+hi)))
	}
	sort.Float64s(minima)
	// Merge degenerate lines.
	out := minima[:0]
	for _, e := range minima {
		if len(out) == 0 || e-out[len(out)-1] > 1e-6 {
			out = append(out, e)
		}
	}
	if count > 0 && count < len(out) {
		out = out[:count]
	}
	return append([]float64(nil), out...)
}

// BandGapGeneral returns the tube band gap in eV from exact zone
// folding (0 for metallic tubes, up to grid resolution).
func (c Chirality) BandGapGeneral() float64 {
	minima := c.SubbandMinimaGeneral(1)
	if len(minima) == 0 {
		return 0
	}
	gap := 2 * minima[0]
	if gap < 1e-6 {
		return 0
	}
	return gap
}
