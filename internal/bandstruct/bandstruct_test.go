package bandstruct

import (
	"math"
	"testing"
	"testing/quick"

	"cntfet/internal/quad"
	"cntfet/internal/units"
)

func TestChiralityGeometry(t *testing.T) {
	// (10,10) armchair: d = 0.246*sqrt(300)/π nm ≈ 1.356 nm.
	c := Chirality{10, 10}
	if !c.Valid() || !c.IsMetallic() {
		t.Fatal("armchair should be valid and metallic")
	}
	if d := c.Diameter(); !units.CloseRel(d, 1.356e-9, 0.01) {
		t.Fatalf("d(10,10) = %g", d)
	}
	if a := c.ChiralAngle(); !units.CloseRel(a, math.Pi/6, 1e-9) {
		t.Fatalf("armchair chiral angle = %g", a)
	}
	z := Chirality{17, 0}
	if z.IsMetallic() {
		t.Fatal("(17,0) is semiconducting")
	}
	if a := z.ChiralAngle(); a != 0 {
		t.Fatalf("zigzag angle = %g", a)
	}
	if (Chirality{0, 0}).Valid() || (Chirality{3, 5}).Valid() {
		t.Fatal("invalid chirality accepted")
	}
	if s := z.String(); s != "(17,0)" {
		t.Fatalf("String = %q", s)
	}
}

func TestHalfGapScalesInversely(t *testing.T) {
	// E1 = a_cc*γ/d: for d = 1 nm, E1 = 0.142*3 = 0.426 eV.
	if e := HalfGap(1e-9); !units.CloseRel(e, 0.426, 1e-6) {
		t.Fatalf("E1(1nm) = %g", e)
	}
	if e := HalfGap(2e-9); !units.CloseRel(e, 0.213, 1e-6) {
		t.Fatalf("E1(2nm) = %g", e)
	}
}

func TestLadderSelectionRule(t *testing.T) {
	d := 1.4e-9
	e1 := HalfGap(d)
	l := Ladder(d, 5)
	wantMult := []float64{1, 2, 4, 5, 7}
	for i, b := range l {
		if !units.CloseRel(b.EMin, e1*wantMult[i], 1e-12) {
			t.Fatalf("subband %d at %g, want %g", i, b.EMin, e1*wantMult[i])
		}
		if b.Degeneracy != 2 {
			t.Fatalf("subband %d degeneracy %d", i, b.Degeneracy)
		}
	}
}

func TestZigzagMinimaMatchLadderForFirstSubbands(t *testing.T) {
	// (17,0): d = 17*0.246/π nm = 1.331 nm. Exact TB minima should be
	// close to the linear-ladder values for the first couple of
	// subbands (the ladder is the k·p limit, so allow a few percent).
	n := 17
	d := (Chirality{n, 0}).Diameter()
	exact := ZigzagMinima(n)
	approx := Ladder(d, 2)
	for i := 0; i < 2; i++ {
		rel := math.Abs(exact[i]-approx[i].EMin) / exact[i]
		if rel > 0.06 {
			t.Fatalf("subband %d: exact %g vs ladder %g (rel %g)", i, exact[i], approx[i].EMin, rel)
		}
	}
}

func TestZigzagDispersionMinimumAtZoneCentre(t *testing.T) {
	n, p := 17, 11 // a low-lying subband of (17,0)
	e0 := ZigzagDispersion(n, p, 0)
	for _, k := range []float64{1e8, 5e8, 1e9} {
		if ZigzagDispersion(n, p, k) < e0-1e-12 {
			t.Fatalf("dispersion dips below k=0 value at k=%g", k)
		}
	}
}

func TestZigzagDispersionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ZigzagDispersion(10, 0, 0)
}

func TestDOSBelowGapIsZero(t *testing.T) {
	bands := Ladder(1.4e-9, 3)
	if v := DOS(bands[0].EMin*0.99, bands); v != 0 {
		t.Fatalf("DOS inside the gap = %g", v)
	}
}

func TestDOSAsymptoteApproachesLadderD0(t *testing.T) {
	bands := Ladder(1.4e-9, 1)
	e := bands[0].EMin * 50
	want := D0() // one doubly-degenerate subband → 2/2 · D0
	if got := DOS(e, bands); math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("asymptotic DOS %g want %g", got, want)
	}
}

func TestDOSElectronHoleSymmetry(t *testing.T) {
	bands := Ladder(1.4e-9, 2)
	e := bands[0].EMin * 1.7
	if DOS(e, bands) != DOS(-e, bands) {
		t.Fatal("DOS should be symmetric in this approximation")
	}
}

func TestStatesBelowMatchesQuadrature(t *testing.T) {
	bands := Ladder(1.4e-9, 2)
	e1 := bands[0].EMin
	upper := e1 * 3 // above the second subband (2·e1)
	// Integrate the DOS across both van Hove edges with the
	// singularity-removing substitution per edge.
	total := 0.0
	for _, b := range bands {
		if upper <= b.EMin {
			continue
		}
		f := func(x float64) float64 {
			// DOS piece = c·x/sqrt(x²-Ep²) = [c·x/sqrt(x+Ep)] / sqrt(x-Ep)
			c := float64(b.Degeneracy) / 2 * D0()
			return c * x / math.Sqrt(x+b.EMin)
		}
		// The integrand scale is D0 ~ 2e9 /(eV·m); the tolerance must
		// be absolute on that scale.
		v, err := quad.SqrtSingularUpper(f, b.EMin, upper, 1e-6*D0())
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	want := StatesBelow(upper, bands)
	if math.Abs(total-want)/want > 1e-8 {
		t.Fatalf("quadrature %g vs closed form %g", total, want)
	}
}

func TestGateCapacitanceFormulas(t *testing.T) {
	d, tox, kappa := 1.6e-9, 50e-9, 3.9
	cp := PlanarGateCapacitance(d, tox, kappa)
	cc := CoaxialGateCapacitance(d, tox, kappa)
	// Planar: 2π·3.9·ε0/acosh(101.6/1.6) ≈ 4.5e-11 F/m.
	if cp < 3e-11 || cp > 6e-11 {
		t.Fatalf("planar C = %g F/m", cp)
	}
	// Coaxial encloses more flux than planar for the same geometry.
	if cc <= cp {
		t.Fatalf("coaxial %g should exceed planar %g", cc, cp)
	}
}

func TestCapacitancePanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { CoaxialGateCapacitance(0, 1e-9, 3.9) },
		func() { PlanarGateCapacitance(1e-9, 0, 3.9) },
		func() { HalfGap(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: the DOS is non-negative and StatesBelow is non-decreasing.
func TestStatesBelowMonotoneProperty(t *testing.T) {
	bands := Ladder(1.6e-9, 3)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Abs(a), math.Abs(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 100 { // eV — far beyond physical range
			return true
		}
		return StatesBelow(hi, bands) >= StatesBelow(lo, bands) && DOS(hi, bands) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
