package bandstruct

import (
	"math"
	"testing"

	"cntfet/internal/units"
)

func TestGrapheneEnergyDiracPoint(t *testing.T) {
	// The K point (4π/(3a), 0)... in this orientation the Dirac point
	// sits at kx = 2π/(√3·a), ky = 2π/(3a): energy must vanish.
	a := units.ALattice
	kx := 2 * math.Pi / (math.Sqrt(3) * a)
	ky := 2 * math.Pi / (3 * a)
	if e := GrapheneEnergy(kx, ky); e > 1e-9 {
		t.Fatalf("Dirac point energy %g", e)
	}
	// The Γ point carries the full band width 3γ.
	if e := GrapheneEnergy(0, 0); math.Abs(e-3*units.Gamma) > 1e-9 {
		t.Fatalf("Γ energy %g, want %g", e, 3*units.Gamma)
	}
}

func TestTranslationIndicesZigzagArmchair(t *testing.T) {
	// Zigzag (n,0): T = a1 - 2·a2... with dR = n the standard result is
	// (t1, t2) = (1, -2).
	if t1, t2 := (Chirality{13, 0}).TranslationIndices(); t1 != 1 || t2 != -2 {
		t.Fatalf("zigzag T = (%d,%d)", t1, t2)
	}
	// Armchair (n,n): (1, -1).
	if t1, t2 := (Chirality{8, 8}).TranslationIndices(); t1 != 1 || t2 != -1 {
		t.Fatalf("armchair T = (%d,%d)", t1, t2)
	}
}

func TestNumHexagons(t *testing.T) {
	if n := (Chirality{13, 0}).NumHexagons(); n != 26 {
		t.Fatalf("zigzag N = %d, want 26", n)
	}
	if n := (Chirality{8, 8}).NumHexagons(); n != 16 {
		t.Fatalf("armchair N = %d, want 16", n)
	}
	// Chiral (4,2): dR = gcd(10, 8) = 2, N = 2·28/2 = 28.
	if n := (Chirality{4, 2}).NumHexagons(); n != 28 {
		t.Fatalf("(4,2) N = %d, want 28", n)
	}
}

func TestTranslationLength(t *testing.T) {
	// Zigzag: |T| = √3·a; armchair: |T| = a.
	a := units.ALattice
	if l := (Chirality{13, 0}).TranslationLength(); math.Abs(l-math.Sqrt(3)*a) > 1e-15 {
		t.Fatalf("zigzag |T| = %g", l)
	}
	if l := (Chirality{8, 8}).TranslationLength(); math.Abs(l-a) > 1e-15 {
		t.Fatalf("armchair |T| = %g", l)
	}
}

func TestGeneralFoldingMatchesZigzagMinima(t *testing.T) {
	for _, n := range []int{10, 13, 17} {
		c := Chirality{n, 0}
		gen := c.SubbandMinimaGeneral(3)
		zig := ZigzagMinima(n)
		for i := 0; i < 3 && i < len(zig); i++ {
			if math.Abs(gen[i]-zig[i]) > 1e-3*(1+zig[i]) {
				t.Fatalf("(%d,0) subband %d: general %g vs zigzag %g", n, i, gen[i], zig[i])
			}
		}
	}
}

func TestArmchairIsGapless(t *testing.T) {
	if gap := (Chirality{8, 8}).BandGapGeneral(); gap != 0 {
		t.Fatalf("armchair gap %g, want 0", gap)
	}
}

func TestMetallicRuleAcrossChiralities(t *testing.T) {
	for _, c := range []Chirality{{9, 0}, {12, 3}, {10, 4}, {13, 0}, {7, 5}, {10, 10}} {
		gap := c.BandGapGeneral()
		if c.IsMetallic() {
			// Curvature effects excluded in pure zone folding: the
			// (n-m)%3 rule must give (near-)zero gap.
			if gap > 0.02 {
				t.Fatalf("%v metallic but gap %g", c, gap)
			}
		} else if gap < 0.1 {
			t.Fatalf("%v semiconducting but gap %g", c, gap)
		}
	}
}

func TestSemiconductingGapScalesInverseDiameter(t *testing.T) {
	// Eg ≈ 2·a_cc·γ/d across semiconducting chiralities of different
	// families; allow the few-percent trigonal-warping deviation.
	for _, c := range []Chirality{{10, 0}, {13, 0}, {17, 0}, {14, 1}, {10, 5}} {
		if c.IsMetallic() {
			continue
		}
		gap := c.BandGapGeneral()
		want := 2 * units.ACC * units.Gamma / c.Diameter()
		if math.Abs(gap-want)/want > 0.08 {
			t.Fatalf("%v gap %g vs 2accγ/d %g", c, gap, want)
		}
	}
}

func TestDispersionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { (Chirality{0, 0}).Dispersion(0, 0) },
		func() { (Chirality{10, 0}).Dispersion(-1, 0) },
		func() { (Chirality{10, 0}).Dispersion(99, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLadderConsistentWithGeneralFolding(t *testing.T) {
	// The k·p ladder used by the device models must agree with exact
	// folding for the first two subbands of a typical tube.
	c := Chirality{17, 0}
	gen := c.SubbandMinimaGeneral(2)
	lad := Ladder(c.Diameter(), 2)
	for i := 0; i < 2; i++ {
		rel := math.Abs(gen[i]-lad[i].EMin) / gen[i]
		if rel > 0.08 {
			t.Fatalf("subband %d: general %g vs ladder %g", i, gen[i], lad[i].EMin)
		}
	}
}
