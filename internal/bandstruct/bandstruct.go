// Package bandstruct models the electronic structure of single-walled
// carbon nanotubes at the level the ballistic transport theory needs:
// chirality-derived geometry, the subband ladder of conduction-band
// minima, the non-parabolic band approximation and its analytic density
// of states, plus the electrostatic gate capacitances that close the
// self-consistent voltage equation.
//
// Energies in this package are in electron-volts; lengths in metres;
// the density of states is per eV per metre of tube (spin and valley
// degeneracy included).
package bandstruct

import (
	"fmt"
	"math"
	"sort"

	"cntfet/internal/units"
)

// Chirality identifies a nanotube by its wrapping indices (n, m).
type Chirality struct {
	N, M int
}

// Valid reports whether the indices describe a real tube
// (n >= m >= 0, n > 0).
func (c Chirality) Valid() bool { return c.N > 0 && c.M >= 0 && c.M <= c.N }

// Diameter returns the tube diameter in metres:
// d = a·sqrt(n² + nm + m²)/π with a the graphene lattice constant.
func (c Chirality) Diameter() float64 {
	n, m := float64(c.N), float64(c.M)
	return units.ALattice * math.Sqrt(n*n+n*m+m*m) / math.Pi
}

// IsMetallic reports whether the tube is metallic ((n-m) divisible
// by 3); the ballistic FET theory applies to semiconducting tubes.
func (c Chirality) IsMetallic() bool { return (c.N-c.M)%3 == 0 }

// ChiralAngle returns the chiral angle in radians (0 for zigzag,
// π/6 for armchair).
func (c Chirality) ChiralAngle() float64 {
	n, m := float64(c.N), float64(c.M)
	return math.Atan2(math.Sqrt(3)*m, 2*n+m)
}

// String renders the conventional (n,m) notation.
func (c Chirality) String() string { return fmt.Sprintf("(%d,%d)", c.N, c.M) }

// HalfGap returns the first conduction-subband minimum E1 (half the band
// gap) in eV for a semiconducting tube of diameter d (metres):
// E1 = a_cc·γ/d, the ħ·vF·Δk⊥ of the allowed line nearest the K point.
func HalfGap(d float64) float64 {
	if d <= 0 {
		panic("bandstruct: non-positive diameter")
	}
	return units.ACC * units.Gamma / d
}

// Subband is one conduction-band minimum of the tube.
type Subband struct {
	// EMin is the minimum energy in eV measured from mid-gap.
	EMin float64
	// Degeneracy counts coincident bands (valley degeneracy gives 2
	// for generic subbands).
	Degeneracy int
}

// Ladder returns the lowest `count` conduction subbands of a
// semiconducting tube of diameter d, using the zone-folding selection
// rule: allowed transverse lines sit at multiples of 2/(3d) from the K
// point with indices m ≢ 0 (mod 3), giving minima E1·{1, 2, 4, 5, 7, …},
// each doubly valley-degenerate.
func Ladder(d float64, count int) []Subband {
	e1 := HalfGap(d)
	out := make([]Subband, 0, count)
	for m := 1; len(out) < count; m++ {
		if m%3 == 0 {
			continue
		}
		out = append(out, Subband{EMin: e1 * float64(m), Degeneracy: 2})
	}
	return out
}

// D0 returns the asymptotic 1-D density of states
// 8/(3π·a_cc·γ) ≈ 2.0e9 states/(eV·m), per doubly-degenerate subband,
// spin included. Each subband's DOS tends to Degeneracy/2 · D0 · E/sqrt(E²-Ep²).
func D0() float64 { return 8 / (3 * math.Pi * units.ACC * units.Gamma) }

// DOS returns the total density of states at energy E (eV from
// mid-gap) summed over the given subbands, in states/(eV·m). It is the
// non-parabolic-band analytic form with the van Hove divergence at each
// EMin; callers integrating across an edge should use
// quad.SqrtSingularUpper. Below the first subband it returns 0.
func DOS(e float64, bands []Subband) float64 {
	if e < 0 {
		e = -e // electron-hole symmetric in this approximation
	}
	s := 0.0
	for _, b := range bands {
		if e <= b.EMin {
			continue
		}
		s += float64(b.Degeneracy) / 2 * D0() * e / math.Sqrt(e*e-b.EMin*b.EMin)
	}
	return s
}

// StatesBelow returns the integrated density of states from the band
// edge up to energy E (eV from mid-gap) for the given subbands, in
// states/m: ∫ D = Σ D0·(deg/2)·sqrt(E²-Ep²). Closed form because the
// integrand is d/dE sqrt(E²-Ep²); used to validate the quadrature path.
func StatesBelow(e float64, bands []Subband) float64 {
	if e < 0 {
		return 0
	}
	s := 0.0
	for _, b := range bands {
		if e <= b.EMin {
			continue
		}
		s += float64(b.Degeneracy) / 2 * D0() * math.Sqrt(e*e-b.EMin*b.EMin)
	}
	return s
}

// ZigzagDispersion returns the zone-folded tight-binding energy (eV,
// conduction branch) of subband p (1..n) at axial wavevector k (1/m)
// for an (n,0) zigzag tube:
//
//	E(k) = γ·sqrt(1 + 4·cos(πp/n)·cos(k·a/2) + 4·cos²(πp/n))
//
// with a the lattice constant. Used in tests to confirm the
// non-parabolic approximation and the Ladder minima.
func ZigzagDispersion(n, p int, k float64) float64 {
	if n <= 0 || p < 1 || p > n {
		panic("bandstruct: bad zigzag indices")
	}
	c := math.Cos(math.Pi * float64(p) / float64(n))
	x := math.Cos(k * units.ALattice / 2)
	return units.Gamma * math.Sqrt(1+4*c*x+4*c*c)
}

// ZigzagMinima returns the distinct conduction-subband minima (eV,
// ascending) of an (n,0) tube from exact zone folding at k = 0:
// E_p(0) = γ·|1 + 2·cos(πp/n)|.
func ZigzagMinima(n int) []float64 {
	if n <= 0 {
		panic("bandstruct: bad zigzag index")
	}
	set := make([]float64, 0, n)
	for p := 1; p <= n; p++ {
		e := units.Gamma * math.Abs(1+2*math.Cos(math.Pi*float64(p)/float64(n)))
		set = append(set, e)
	}
	sort.Float64s(set)
	// Merge near-duplicates (valley degeneracy).
	out := set[:0]
	for _, e := range set {
		if len(out) == 0 || e-out[len(out)-1] > 1e-9 {
			out = append(out, e)
		}
	}
	return out
}

// CoaxialGateCapacitance returns the insulator capacitance per unit
// length (F/m) of a wrap-around gate of oxide thickness tox and
// relative permittivity kappa around a tube of diameter d:
// C = 2πκε0 / ln((2·tox + d)/d). This is FETToy's geometry.
func CoaxialGateCapacitance(d, tox, kappa float64) float64 {
	if d <= 0 || tox <= 0 || kappa <= 0 {
		panic("bandstruct: non-positive capacitance parameter")
	}
	return 2 * math.Pi * kappa * units.Eps0 / math.Log((2*tox+d)/d)
}

// PlanarGateCapacitance returns the capacitance per unit length (F/m)
// of a tube of diameter d suspended tox above a conducting plane in a
// dielectric of relative permittivity kappa:
// C = 2πκε0 / acosh((2·tox + d)/d). This is the back-gated geometry of
// the Javey 2005 experimental device the paper compares against.
func PlanarGateCapacitance(d, tox, kappa float64) float64 {
	if d <= 0 || tox <= 0 || kappa <= 0 {
		panic("bandstruct: non-positive capacitance parameter")
	}
	return 2 * math.Pi * kappa * units.Eps0 / math.Acosh((2*tox+d)/d)
}
