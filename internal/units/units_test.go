package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThermalEnergyRoomTemperature(t *testing.T) {
	kt := KT(300)
	if !CloseRel(kt, 0.025852, 1e-3) {
		t.Fatalf("KT(300) = %g eV, want ~0.025852 eV", kt)
	}
}

func TestEVRoundTrip(t *testing.T) {
	for _, ev := range []float64{-1.5, -0.32, 0, 0.026, 3.0} {
		if got := ToEV(EV(ev)); !Close(got, ev, 1e-12, 1e-300) {
			t.Errorf("ToEV(EV(%g)) = %g", ev, got)
		}
	}
}

func TestFermiVelocityMagnitude(t *testing.T) {
	// The standard graphene Fermi velocity is ~9.7e5 m/s for
	// gamma = 3.0 eV, acc = 0.142 nm.
	if VFermi < 9e5 || VFermi > 1.1e6 {
		t.Fatalf("VFermi = %g m/s, outside the physical window", VFermi)
	}
}

func TestCloseBasics(t *testing.T) {
	cases := []struct {
		a, b, rel, abs float64
		want           bool
	}{
		{1, 1, 0, 0, true},
		{1, 1.0001, 1e-3, 0, true},
		{1, 1.01, 1e-3, 0, false},
		{0, 1e-15, 0, 1e-12, true},
		{math.NaN(), 1, 1, 1, false},
		{1, math.NaN(), 1, 1, false},
		{math.Inf(1), math.Inf(1), 0, 0, true},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b, c.rel, c.abs); got != c.want {
			t.Errorf("Close(%g,%g,%g,%g) = %v, want %v", c.a, c.b, c.rel, c.abs, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestLinspaceEndpointsAndSpacing(t *testing.T) {
	pts := Linspace(-0.5, 0.5, 11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != -0.5 || pts[10] != 0.5 {
		t.Fatalf("endpoints %g %g", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if !Close(pts[i]-pts[i-1], 0.1, 1e-12, 1e-12) {
			t.Fatalf("uneven spacing at %d: %g", i, pts[i]-pts[i-1])
		}
	}
}

func TestLinspaceDegenerate(t *testing.T) {
	if got := Linspace(1, 2, 0); got != nil {
		t.Fatalf("n=0 should be nil, got %v", got)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("n=1 should be [lo], got %v", got)
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !CloseRel(pts[i], want[i], 1e-10) {
			t.Fatalf("Logspace[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
}

func TestLogspacePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive endpoint")
		}
	}()
	Logspace(0, 1, 3)
}

// Property: Linspace is monotone increasing whenever hi > lo.
func TestLinspaceMonotoneProperty(t *testing.T) {
	f := func(a, b float64, nRaw uint8) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if hi <= lo {
			lo, hi = hi, lo+1
		}
		if math.IsInf(hi-lo, 0) {
			return true // span overflows float64; spacing is undefined
		}
		n := int(nRaw%30) + 2
		pts := Linspace(lo, hi, n)
		for i := 1; i < len(pts); i++ {
			if pts[i] < pts[i-1] {
				return false
			}
		}
		return pts[0] == lo && pts[len(pts)-1] == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp output is always inside [lo,hi] and idempotent.
func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(x, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
