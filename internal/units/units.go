// Package units collects the physical constants and small numeric helpers
// shared by every other package in the library.
//
// All quantities are SI unless the name says otherwise. Energies cross the
// eV/J boundary constantly in device modelling, so explicit conversion
// helpers are provided instead of ad-hoc multiplications at call sites.
package units

import "math"

// CODATA 2018 values (truncated to double precision).
const (
	// Q is the elementary charge in coulomb.
	Q = 1.602176634e-19
	// KB is the Boltzmann constant in J/K.
	KB = 1.380649e-23
	// HBar is the reduced Planck constant in J·s.
	HBar = 1.054571817e-34
	// H is the Planck constant in J·s.
	H = 6.62607015e-34
	// Eps0 is the vacuum permittivity in F/m.
	Eps0 = 8.8541878128e-12
	// MElectron is the electron rest mass in kg.
	MElectron = 9.1093837015e-31
)

// Carbon-nanotube tight-binding parameters (Saito/Dresselhaus
// conventions, the same values used by FETToy).
const (
	// ACC is the carbon-carbon bond length in metres (0.142 nm).
	ACC = 0.142e-9
	// ALattice is the graphene lattice constant sqrt(3)*ACC in metres.
	ALattice = 0.246e-9
	// Gamma is the C-C tight-binding hopping energy in eV (V_ppi).
	Gamma = 3.0
	// VFermi is the graphene Fermi velocity 3*ACC*Gamma/(2*hbar) in m/s.
	VFermi = 3.0 * ACC * Gamma * Q / (2.0 * HBar)
)

// EV converts an energy in electron-volts to joules.
func EV(ev float64) float64 { return ev * Q }

// ToEV converts an energy in joules to electron-volts.
func ToEV(j float64) float64 { return j / Q }

// KT returns the thermal energy k*T in electron-volts for a temperature
// in kelvin. At 300 K this is about 0.02585 eV.
func KT(tempK float64) float64 { return KB * tempK / Q }

// Room is the conventional room temperature in kelvin.
const Room = 300.0

// Close reports whether a and b agree within both a relative tolerance
// rel and an absolute tolerance abs. It treats NaN as never close and
// equal infinities as close.
func Close(a, b, rel, abs float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:allow floatcmp exact equality also covers equal infinities
		return true
	}
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}

// CloseRel is Close with a zero absolute tolerance.
func CloseRel(a, b, rel float64) bool { return Close(a, b, rel, 0) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be at least 2 for a nondegenerate range; n==1 returns [lo].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Logspace returns n points logarithmically spaced from lo to hi
// inclusive. Both endpoints must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("units: Logspace endpoints must be positive")
	}
	pts := Linspace(math.Log(lo), math.Log(hi), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n > 1 {
		pts[n-1] = hi
	}
	return pts
}
