// Package netlist parses a SPICE-flavoured netlist into a circuit and
// its analyses, so CNT circuits can be described as decks instead of Go
// code. The dialect is the familiar one:
//
//   - CNT complementary inverter
//     .model fast cnt level=2 d=1n tox=1.5n kappa=25 ef=-0.32 temp=300
//     VDD vdd 0 0.6
//     VIN in 0 PULSE(0 0.6 0 10p 10p 5n 10n)
//     MP  out in vdd fast p
//     MN  out in 0   fast n
//     CL  out 0 1f
//     .dc VIN 0 0.6 0.01
//     .tran 10p 20n
//     .print v(out) i(VDD)
//     .end
//
// Element cards: R/C/V/I (two nodes + value or waveform), D (two nodes
// + is=...), M (drain gate source + model name + optional polarity and
// tubes=N). Model cards: .model <name> cnt with level=1 (paper Model
// 1), level=2 (Model 2) or level=0 (reference theory), plus device
// parameters d, tox, kappa, ef, temp, alphag, alphad, subbands,
// geometry=coaxial|planar. Analyses: .op, .dc, .tran (with an optional
// trailing "trap"), outputs: .print.
package netlist

import (
	"fmt"
	"strconv"
	"strings"

	"cntfet/internal/circuit"
	"cntfet/internal/device"
	"cntfet/internal/fettoy"
)

// Analysis is one requested simulation.
type Analysis struct {
	Kind string // "op", "dc", "tran", "ac"
	// DC sweep fields (Source doubles as the AC excitation source).
	Source         string
	From, To, Step float64
	// Transient fields; Adaptive selects LTE-controlled stepping with
	// TStep as the minimum step.
	TStep, TStop float64
	Trapezoidal  bool
	Adaptive     bool
	// AC fields: points per decade over [FStart, FStop].
	FStart, FStop float64
	PerDecade     int
}

// Probe is one .print output.
type Probe struct {
	Kind string // "v" or "i"
	Name string // node or source name
}

// Options are deck-level directives from .options cards:
//
//	.options trace metrics tracecap=8192
//
// trace attaches a solver event trace to every analysis and appends it
// to the output as JSON lines; metrics appends the telemetry counters
// as "* "-prefixed comment lines; tracecap sizes the trace ring buffer
// (default 4096 events).
type Options struct {
	Trace    bool
	Metrics  bool
	TraceCap int
}

// Deck is a parsed netlist.
type Deck struct {
	Title    string
	Circuit  *circuit.Circuit
	Analyses []Analysis
	Probes   []Probe
	Options  Options

	models map[string]*modelCard
}

type modelCard struct {
	name  string
	level int
	dev   fettoy.Device
	built device.Solver
}

// Parse reads a netlist deck from source text.
func Parse(src string) (*Deck, error) {
	d := &Deck{Circuit: circuit.New(), models: map[string]*modelCard{}}
	lines := strings.Split(src, "\n")
	// SPICE convention: the first line is always the title.
	start := 0
	if len(lines) > 0 {
		t := strings.TrimSpace(lines[0])
		d.Title = strings.TrimSpace(strings.TrimPrefix(t, "*"))
		start = 1
	}
	// Model cards first so element cards can reference them in any
	// order.
	for ln := start; ln < len(lines); ln++ {
		line := clean(lines[ln])
		if line == "" {
			continue
		}
		if strings.HasPrefix(strings.ToLower(line), ".model") {
			if err := d.parseModel(line); err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", ln+1, err)
			}
		}
	}
	for ln := start; ln < len(lines); ln++ {
		line := clean(lines[ln])
		if line == "" || strings.HasPrefix(strings.ToLower(line), ".model") {
			continue
		}
		if err := d.parseCard(line); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", ln+1, err)
		}
	}
	return d, nil
}

func clean(line string) string {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "*") {
		return ""
	}
	if i := strings.Index(line, ";"); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	return line
}

func (d *Deck) parseCard(line string) error {
	low := strings.ToLower(line)
	switch {
	case strings.HasPrefix(low, ".end"):
		return nil
	// .options must be matched before the .op prefix.
	case strings.HasPrefix(low, ".option"):
		return d.parseOptions(line)
	case strings.HasPrefix(low, ".op"):
		d.Analyses = append(d.Analyses, Analysis{Kind: "op"})
		return nil
	case strings.HasPrefix(low, ".dc"):
		return d.parseDC(line)
	case strings.HasPrefix(low, ".ac"):
		return d.parseAC(line)
	case strings.HasPrefix(low, ".tran"):
		return d.parseTran(line)
	case strings.HasPrefix(low, ".print"):
		return d.parsePrint(line)
	case strings.HasPrefix(low, "."):
		return fmt.Errorf("unknown card %q", strings.Fields(line)[0])
	}
	return d.parseElement(line)
}

// parseOptions handles ".options key [key=value ...]".
func (d *Deck) parseOptions(line string) error {
	for _, tok := range strings.Fields(line)[1:] {
		key, val, hasVal := strings.Cut(tok, "=")
		switch strings.ToLower(key) {
		case "trace":
			d.Options.Trace = true
		case "metrics":
			d.Options.Metrics = true
		case "tracecap":
			if !hasVal {
				return fmt.Errorf(".options tracecap needs a value")
			}
			n, err := ParseValue(val)
			if err != nil || n < 1 {
				return fmt.Errorf("bad .options tracecap %q", val)
			}
			d.Options.TraceCap = int(n)
		default:
			return fmt.Errorf("unknown .options key %q", key)
		}
	}
	return nil
}

func (d *Deck) parseDC(line string) error {
	f := strings.Fields(line)
	if len(f) != 5 {
		return fmt.Errorf(".dc needs SOURCE FROM TO STEP, got %q", line)
	}
	from, err1 := ParseValue(f[2])
	to, err2 := ParseValue(f[3])
	step, err3 := ParseValue(f[4])
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf(".dc values in %q", line)
	}
	d.Analyses = append(d.Analyses, Analysis{Kind: "dc", Source: f[1], From: from, To: to, Step: step})
	return nil
}

// parseAC handles ".ac SOURCE dec N FSTART FSTOP": small-signal sweep
// exciting SOURCE with a unit phasor.
func (d *Deck) parseAC(line string) error {
	f := strings.Fields(line)
	if len(f) != 6 || !strings.EqualFold(f[2], "dec") {
		return fmt.Errorf(".ac needs SOURCE dec N FSTART FSTOP, got %q", line)
	}
	n, err1 := ParseValue(f[3])
	fstart, err2 := ParseValue(f[4])
	fstop, err3 := ParseValue(f[5])
	if err1 != nil || err2 != nil || err3 != nil || n < 1 {
		return fmt.Errorf(".ac values in %q", line)
	}
	d.Analyses = append(d.Analyses, Analysis{
		Kind: "ac", Source: f[1], PerDecade: int(n), FStart: fstart, FStop: fstop,
	})
	return nil
}

func (d *Deck) parseTran(line string) error {
	f := strings.Fields(line)
	if len(f) < 3 || len(f) > 4 {
		return fmt.Errorf(".tran needs STEP STOP [trap], got %q", line)
	}
	step, err1 := ParseValue(f[1])
	stop, err2 := ParseValue(f[2])
	if err1 != nil || err2 != nil {
		return fmt.Errorf(".tran values in %q", line)
	}
	a := Analysis{Kind: "tran", TStep: step, TStop: stop}
	if len(f) == 4 {
		switch {
		case strings.EqualFold(f[3], "trap"):
			a.Trapezoidal = true
		case strings.EqualFold(f[3], "adaptive"):
			a.Adaptive = true
		default:
			return fmt.Errorf("unknown .tran option %q", f[3])
		}
	}
	d.Analyses = append(d.Analyses, a)
	return nil
}

func (d *Deck) parsePrint(line string) error {
	f := strings.Fields(line)
	for _, tok := range f[1:] {
		low := strings.ToLower(tok)
		switch {
		case strings.HasPrefix(low, "v(") && strings.HasSuffix(low, ")"):
			d.Probes = append(d.Probes, Probe{Kind: "v", Name: tok[2 : len(tok)-1]})
		case strings.HasPrefix(low, "i(") && strings.HasSuffix(low, ")"):
			d.Probes = append(d.Probes, Probe{Kind: "i", Name: tok[2 : len(tok)-1]})
		default:
			return fmt.Errorf("bad probe %q (want v(node) or i(vsource))", tok)
		}
	}
	return nil
}

// ParseValue parses a SPICE number with magnitude suffix (f p n u m k
// meg g t; case-insensitive; trailing unit letters after the suffix
// are ignored, so "10pF" works).
func ParseValue(s string) (float64, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	if low == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split the numeric prefix.
	end := 0
	for end < len(low) {
		ch := low[end]
		if ch >= '0' && ch <= '9' || ch == '.' || ch == '+' || ch == '-' ||
			ch == 'e' && end > 0 && isDigitOrDot(low[end-1]) {
			end++
			continue
		}
		break
	}
	num, err := strconv.ParseFloat(low[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	suffix := low[end:]
	mult := 1.0
	switch {
	case suffix == "":
	case strings.HasPrefix(suffix, "meg"):
		mult = 1e6
	case strings.HasPrefix(suffix, "f"):
		mult = 1e-15
	case strings.HasPrefix(suffix, "p"):
		mult = 1e-12
	case strings.HasPrefix(suffix, "n"):
		mult = 1e-9
	case strings.HasPrefix(suffix, "u"):
		mult = 1e-6
	case strings.HasPrefix(suffix, "m"):
		mult = 1e-3
	case strings.HasPrefix(suffix, "k"):
		mult = 1e3
	case strings.HasPrefix(suffix, "g"):
		mult = 1e9
	case strings.HasPrefix(suffix, "t"):
		mult = 1e12
	default:
		return 0, fmt.Errorf("unknown suffix %q in %q", suffix, s)
	}
	return num * mult, nil
}

func isDigitOrDot(b byte) bool { return b >= '0' && b <= '9' || b == '.' }
