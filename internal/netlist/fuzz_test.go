package netlist

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseValue: the SPICE number parser must never panic and must
// return finite values for whatever it accepts.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{
		"10", "1k", "2.5meg", "10pF", "-0.32", "1e-9", "", "abc",
		"1..2", "--3", "1e", "meg", "0x10", "1e308k", "+.5u",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		if math.IsNaN(v) {
			t.Fatalf("ParseValue(%q) accepted NaN", s)
		}
	})
}

// FuzzParse: arbitrary deck text must either parse or error, never
// panic; parsed decks must be runnable or fail with an error (no
// panics in analysis dispatch either).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"t\nR1 a 0 1k\nV1 a 0 1\n.op\n",
		"t\n.model m cnt level=2\nM1 d g 0 m\nVD d 0 0.5\nVG g 0 0.5\n.op\n",
		"t\nV1 a 0 PULSE(0 1 0 1n 1n 5n 10n)\nR1 a 0 1k\n.tran 1n 10n\n",
		"t\nV1 a 0 SIN(0 1 1meg)\nR1 a 0 1k\n.ac V1 dec 5 1k 1meg\n.print v(a)\n",
		".op",
		"*comment only\n",
		"t\nE1 a 0 b 0 2\nG1 c 0 b 0 1m\nV1 b 0 1\nR1 a 0 1\nR2 c 0 1\nR3 b 0 1\n.op\n",
		"t\nD1 a 0 is=1e-14\nV1 a 0 1\n.op\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Keep runaway transient decks cheap: cap the text size.
		if len(src) > 2000 {
			return
		}
		deck, err := Parse(src)
		if err != nil {
			return
		}
		// Guard against expensive analyses the fuzzer may synthesise:
		// only run decks whose transients stay tiny and whose sweeps
		// are bounded.
		for _, a := range deck.Analyses {
			if a.Kind == "tran" && (a.TStep <= 0 || a.TStop/a.TStep > 500) {
				return
			}
			if a.Kind == "dc" && a.Step != 0 && math.Abs((a.To-a.From)/a.Step) > 500 {
				return
			}
			if a.Kind == "ac" && a.PerDecade > 50 {
				return
			}
		}
		var b strings.Builder
		_ = deck.Run(&b) // errors fine; panics are failures
	})
}
