package netlist

import (
	"fmt"
	"strings"

	"cntfet/internal/circuit"
	"cntfet/internal/core"
	"cntfet/internal/device"
	"cntfet/internal/fettoy"
)

func (d *Deck) parseElement(line string) error {
	f := strings.Fields(line)
	name := f[0]
	switch strings.ToUpper(name[:1]) {
	case "R":
		return d.twoTerminal(f, func(a, b string, v float64) circuit.Element {
			return &circuit.Resistor{Label: name, A: a, B: b, Ohms: v}
		})
	case "C":
		return d.twoTerminal(f, func(a, b string, v float64) circuit.Element {
			return &circuit.Capacitor{Label: name, A: a, B: b, Farads: v}
		})
	case "L":
		return d.twoTerminal(f, func(a, b string, v float64) circuit.Element {
			return &circuit.Inductor{Label: name, A: a, B: b, Henrys: v}
		})
	case "V":
		return d.source(f, func(p, n string, w circuit.Waveform) circuit.Element {
			return &circuit.VSource{Label: name, P: p, N: n, Wave: w}
		})
	case "I":
		return d.source(f, func(p, n string, w circuit.Waveform) circuit.Element {
			return &circuit.ISource{Label: name, P: p, N: n, Wave: w}
		})
	case "D":
		return d.diode(f)
	case "M":
		return d.cntfet(f)
	case "G":
		return d.controlled(f, func(p, n, cp, cn string, gain float64) circuit.Element {
			return &circuit.VCCS{Label: name, P: p, N: n, CP: cp, CN: cn, Gain: gain}
		})
	case "E":
		return d.controlled(f, func(p, n, cp, cn string, gain float64) circuit.Element {
			return &circuit.VCVS{Label: name, P: p, N: n, CP: cp, CN: cn, Gain: gain}
		})
	default:
		return fmt.Errorf("unknown element card %q", name)
	}
}

func (d *Deck) controlled(f []string, build func(p, n, cp, cn string, gain float64) circuit.Element) error {
	if len(f) != 6 {
		return fmt.Errorf("%s needs P N CP CN GAIN", f[0])
	}
	gain, err := ParseValue(f[5])
	if err != nil {
		return err
	}
	return d.Circuit.Add(build(f[1], f[2], f[3], f[4], gain))
}

func (d *Deck) twoTerminal(f []string, build func(a, b string, v float64) circuit.Element) error {
	if len(f) != 4 {
		return fmt.Errorf("%s needs NODE NODE VALUE", f[0])
	}
	v, err := ParseValue(f[3])
	if err != nil {
		return err
	}
	if v <= 0 {
		return fmt.Errorf("%s value must be positive, got %g", f[0], v)
	}
	return d.Circuit.Add(build(f[1], f[2], v))
}

func (d *Deck) source(f []string, build func(p, n string, w circuit.Waveform) circuit.Element) error {
	if len(f) < 4 {
		return fmt.Errorf("%s needs NODE NODE VALUE|WAVEFORM", f[0])
	}
	rest := strings.Join(f[3:], " ")
	w, err := parseWaveform(rest)
	if err != nil {
		return fmt.Errorf("%s: %w", f[0], err)
	}
	return d.Circuit.Add(build(f[1], f[2], w))
}

func parseWaveform(s string) (circuit.Waveform, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasPrefix(low, "pulse"):
		args, err := waveArgs(s, 5, 7)
		if err != nil {
			return nil, err
		}
		p := circuit.Pulse{V1: args[0], V2: args[1], Delay: args[2], Rise: args[3], Fall: args[4]}
		if len(args) > 5 {
			p.Width = args[5]
		}
		if len(args) > 6 {
			p.Period = args[6]
		}
		return p, nil
	case strings.HasPrefix(low, "sin"):
		args, err := waveArgs(s, 3, 4)
		if err != nil {
			return nil, err
		}
		w := circuit.Sin{Offset: args[0], Amplitude: args[1], Freq: args[2]}
		if len(args) > 3 {
			w.Delay = args[3]
		}
		return w, nil
	case strings.HasPrefix(low, "dc"):
		v, err := ParseValue(strings.TrimSpace(s[2:]))
		if err != nil {
			return nil, err
		}
		return circuit.DC(v), nil
	default:
		v, err := ParseValue(s)
		if err != nil {
			return nil, err
		}
		return circuit.DC(v), nil
	}
}

func waveArgs(s string, minArgs, maxArgs int) ([]float64, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return nil, fmt.Errorf("waveform needs (...) args: %q", s)
	}
	fields := strings.Fields(strings.ReplaceAll(s[open+1:close], ",", " "))
	if len(fields) < minArgs || len(fields) > maxArgs {
		return nil, fmt.Errorf("waveform wants %d..%d args, got %d", minArgs, maxArgs, len(fields))
	}
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := ParseValue(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (d *Deck) diode(f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("%s needs ANODE CATHODE [is=..]", f[0])
	}
	el := &circuit.Diode{Label: f[0], A: f[1], B: f[2], Is: 1e-14}
	for _, kv := range f[3:] {
		k, v, err := splitKV(kv)
		if err != nil {
			return err
		}
		switch k {
		case "is":
			el.Is = v
		case "n":
			el.N = v
		case "temp":
			el.Temp = v
		default:
			return fmt.Errorf("unknown diode parameter %q", k)
		}
	}
	return d.Circuit.Add(el)
}

func (d *Deck) cntfet(f []string) error {
	if len(f) < 5 {
		return fmt.Errorf("%s needs DRAIN GATE SOURCE MODEL [n|p] [tubes=N]", f[0])
	}
	card, ok := d.models[strings.ToLower(f[4])]
	if !ok {
		return fmt.Errorf("%s references undefined model %q", f[0], f[4])
	}
	el := &circuit.CNTFET{Label: f[0], D: f[1], G: f[2], S: f[3]}
	for _, tok := range f[5:] {
		low := strings.ToLower(tok)
		switch {
		case low == "n":
			el.Pol = circuit.NType
		case low == "p":
			el.Pol = circuit.PType
		case strings.HasPrefix(low, "tubes="):
			v, err := ParseValue(low[len("tubes="):])
			if err != nil || v < 1 {
				return fmt.Errorf("bad tubes in %q", tok)
			}
			el.Tubes = int(v)
		default:
			return fmt.Errorf("unknown transistor option %q", tok)
		}
	}
	m, err := card.build()
	if err != nil {
		return fmt.Errorf("%s: building model %q: %w", f[0], card.name, err)
	}
	el.Model = m
	return d.Circuit.Add(el)
}

func (d *Deck) parseModel(line string) error {
	f := strings.Fields(line)
	if len(f) < 3 || !strings.EqualFold(f[2], "cnt") {
		return fmt.Errorf(".model needs NAME cnt [params], got %q", line)
	}
	card := &modelCard{name: strings.ToLower(f[1]), level: 2, dev: fettoy.Default()}
	for _, kv := range f[3:] {
		k, v, err := splitKVString(kv)
		if err != nil {
			return err
		}
		switch k {
		case "level":
			n, err := ParseValue(v)
			if err != nil || n != 0 && n != 1 && n != 2 { //lint:allow floatcmp level is an exact small integer
				return fmt.Errorf("level must be 0 (reference), 1 or 2, got %q", v)
			}
			card.level = int(n)
		case "d":
			if card.dev.Diameter, err = ParseValue(v); err != nil {
				return err
			}
		case "tox":
			if card.dev.Tox, err = ParseValue(v); err != nil {
				return err
			}
		case "kappa":
			if card.dev.Kappa, err = ParseValue(v); err != nil {
				return err
			}
		case "ef":
			if card.dev.EF, err = ParseValue(v); err != nil {
				return err
			}
		case "temp":
			if card.dev.T, err = ParseValue(v); err != nil {
				return err
			}
		case "alphag":
			if card.dev.AlphaG, err = ParseValue(v); err != nil {
				return err
			}
		case "alphad":
			if card.dev.AlphaD, err = ParseValue(v); err != nil {
				return err
			}
		case "subbands":
			n, err := ParseValue(v)
			if err != nil {
				return err
			}
			card.dev.Subbands = int(n)
		case "trans":
			if card.dev.Transmission, err = ParseValue(v); err != nil {
				return err
			}
		case "geometry":
			switch strings.ToLower(v) {
			case "coaxial":
				card.dev.Geometry = fettoy.Coaxial
			case "planar":
				card.dev.Geometry = fettoy.Planar
			default:
				return fmt.Errorf("unknown geometry %q", v)
			}
		default:
			return fmt.Errorf("unknown model parameter %q", k)
		}
	}
	if _, dup := d.models[card.name]; dup {
		return fmt.Errorf("duplicate model %q", card.name)
	}
	d.models[card.name] = card
	return nil
}

// build constructs (once) the transistor model behind a card.
func (c *modelCard) build() (device.Solver, error) {
	if c.built != nil {
		return c.built, nil
	}
	ref, err := fettoy.New(c.dev)
	if err != nil {
		return nil, err
	}
	switch c.level {
	case 0:
		c.built = ref
	case 1:
		m, err := core.Model1(ref)
		if err != nil {
			return nil, err
		}
		c.built = m
	default:
		m, err := core.Model2(ref)
		if err != nil {
			return nil, err
		}
		c.built = m
	}
	return c.built, nil
}

func splitKV(kv string) (string, float64, error) {
	k, vs, err := splitKVString(kv)
	if err != nil {
		return "", 0, err
	}
	v, err := ParseValue(vs)
	return k, v, err
}

func splitKVString(kv string) (string, string, error) {
	i := strings.Index(kv, "=")
	if i <= 0 || i == len(kv)-1 {
		return "", "", fmt.Errorf("bad key=value %q", kv)
	}
	return strings.ToLower(kv[:i]), kv[i+1:], nil
}
