package netlist

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cntfet/internal/telemetry"
)

func TestParseOptions(t *testing.T) {
	d, err := Parse(`rc deck
V1 in 0 1
R1 in out 1k
C1 out 0 1p
.options trace metrics tracecap=128
.op
.end`)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Options.Trace || !d.Options.Metrics || d.Options.TraceCap != 128 {
		t.Fatalf("options = %+v", d.Options)
	}
	if _, err := Parse("x\nV1 a 0 1\n.options bogus\n.op\n.end"); err == nil {
		t.Fatal("unknown .options key must be rejected")
	}
}

func TestOptionsTraceProducesEventLog(t *testing.T) {
	defer telemetry.Disable() // .options trace enables the global gate
	d, err := Parse(`rc transient
V1 in 0 PULSE(0 1 1n 0.1n 0.1n 2n 4n)
R1 in out 1k
C1 out 0 1p
.options trace metrics
.tran 0.2n 4n
.print v(out)
.end`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* trace events (json lines):") {
		t.Fatalf("missing trace section:\n%s", out)
	}
	// Every line starting with '{' must be a parseable event, and the
	// transient must have produced per-step events.
	steps := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable event %q: %v", line, err)
		}
		if ev.Kind == "circuit.tran.step" {
			steps++
		}
	}
	if steps != 20 {
		t.Fatalf("trace has %d tran step events, want 20", steps)
	}
	// The metrics block reports the process-global registry, so other
	// enabled-telemetry tests may have contributed; require presence,
	// not an exact value.
	if !strings.Contains(out, "* circuit.tran.steps ") {
		t.Fatalf("metrics section missing step counter:\n%s", out)
	}
}
