package netlist

import (
	"context"
	"fmt"
	"io"

	"cntfet/internal/circuit"
	"cntfet/internal/report"
	"cntfet/internal/telemetry"
)

// Run executes every analysis in deck order and writes tabular results
// to w. Probes from .print select the columns; without probes, all
// node voltages are printed.
//
// ".options trace" / ".options metrics" enable the process-wide
// telemetry gate for the run and append, respectively, the solver
// event log (JSON lines) and the counter snapshot ("* "-prefixed) to
// the output. A trace already attached to the circuit (e.g. by the
// cntspice -trace flag) is left alone — the caller owns its export.
func (d *Deck) Run(w io.Writer) error {
	return d.RunContext(context.Background(), w) //lint:allow ctxpropagate documented non-cancellable compatibility shim
}

// RunContext is Run under a cancellable context, checked between
// analyses (one .op/.dc/.tran/.ac card is the unit of work). A
// canceled deck returns an error wrapping the context's cause;
// analyses already written to w stand.
func (d *Deck) RunContext(ctx context.Context, w io.Writer) error {
	if len(d.Analyses) == 0 {
		return fmt.Errorf("netlist: deck has no analyses (.op/.dc/.tran)")
	}
	if d.Options.Trace || d.Options.Metrics {
		telemetry.Enable()
	}
	var ownTrace *telemetry.Trace
	if d.Options.Trace && d.Circuit.Trace() == nil {
		capacity := d.Options.TraceCap
		if capacity == 0 {
			capacity = 4096
		}
		ownTrace = telemetry.NewTrace(capacity)
		d.Circuit.SetTrace(ownTrace)
	}
	for _, a := range d.Analyses {
		if err := context.Cause(ctx); err != nil {
			return fmt.Errorf("netlist: canceled before .%s: %w", a.Kind, err)
		}
		switch a.Kind {
		case "op":
			if err := d.runOP(w); err != nil {
				return err
			}
		case "dc":
			if err := d.runDC(w, a); err != nil {
				return err
			}
		case "tran":
			if err := d.runTran(w, a); err != nil {
				return err
			}
		case "ac":
			if err := d.runAC(w, a); err != nil {
				return err
			}
		default:
			return fmt.Errorf("netlist: unknown analysis %q", a.Kind)
		}
	}
	if ownTrace != nil {
		fmt.Fprintln(w, "* trace events (json lines):")
		if err := ownTrace.WriteJSON(w); err != nil {
			return fmt.Errorf("netlist: trace export: %w", err)
		}
		if n := ownTrace.Dropped(); n > 0 {
			fmt.Fprintf(w, "* trace ring dropped %d oldest events (raise .options tracecap)\n", n)
		}
	}
	if d.Options.Metrics {
		fmt.Fprintln(w, "* solver metrics:")
		if err := telemetry.Default().WriteText(w, "* "); err != nil {
			return fmt.Errorf("netlist: metrics export: %w", err)
		}
	}
	return nil
}

func (d *Deck) probesOrAllNodes() []Probe {
	if len(d.Probes) > 0 {
		return d.Probes
	}
	var out []Probe
	for _, n := range d.Circuit.Nodes() {
		out = append(out, Probe{Kind: "v", Name: n})
	}
	return out
}

// probeValue resolves one probe against a solution. Current probes
// read voltage-source branch currents directly; for a CNTFET element
// they evaluate the device's drain current at the solved voltages.
func (d *Deck) probeValue(p Probe, sol *circuit.Solution) float64 {
	if p.Kind == "i" {
		if fet, ok := d.Circuit.Element(p.Name).(*circuit.CNTFET); ok {
			id, err := fet.DrainCurrent(sol)
			if err != nil {
				return 0
			}
			return id
		}
		return sol.BranchCurrent(p.Name)
	}
	return sol.Voltage(p.Name)
}

func probeHeader(p Probe) string { return fmt.Sprintf("%s(%s)", p.Kind, p.Name) }

func (d *Deck) runOP(w io.Writer) error {
	sol, err := d.Circuit.OperatingPoint(circuit.DCOptions{})
	if err != nil {
		return fmt.Errorf("netlist: .op: %w", err)
	}
	probes := d.probesOrAllNodes()
	tb := report.NewTable("Operating point", "probe", "value")
	for _, p := range probes {
		tb.AddRow(probeHeader(p), fmt.Sprintf("%.6g", d.probeValue(p, sol)))
	}
	tb.Render(w)
	return nil
}

func (d *Deck) runDC(w io.Writer, a Analysis) error {
	pts, err := d.Circuit.DCSweep(a.Source, a.From, a.To, a.Step, circuit.DCOptions{})
	if err != nil {
		return fmt.Errorf("netlist: .dc: %w", err)
	}
	probes := d.probesOrAllNodes()
	headers := []string{a.Source}
	for _, p := range probes {
		headers = append(headers, probeHeader(p))
	}
	cols := make([][]float64, len(headers))
	for _, pt := range pts {
		cols[0] = append(cols[0], pt.Value)
		for i, p := range probes {
			cols[i+1] = append(cols[i+1], d.probeValue(p, pt.Solution))
		}
	}
	fmt.Fprintf(w, "DC sweep of %s\n", a.Source)
	return report.WriteCSV(w, headers, cols...)
}

func (d *Deck) runTran(w io.Writer, a Analysis) error {
	var sols []*circuit.Solution
	var err error
	if a.Adaptive {
		sols, err = d.Circuit.TransientAdaptive(circuit.TranAdaptiveOptions{
			Stop: a.TStop, MinStep: a.TStep,
		})
	} else {
		sols, err = d.Circuit.Transient(circuit.TranOptions{
			Step: a.TStep, Stop: a.TStop, Trapezoidal: a.Trapezoidal,
		})
	}
	if err != nil {
		return fmt.Errorf("netlist: .tran: %w", err)
	}
	probes := d.probesOrAllNodes()
	headers := []string{"time"}
	for _, p := range probes {
		headers = append(headers, probeHeader(p))
	}
	cols := make([][]float64, len(headers))
	for _, sol := range sols {
		cols[0] = append(cols[0], sol.Time)
		for i, p := range probes {
			cols[i+1] = append(cols[i+1], d.probeValue(p, sol))
		}
	}
	fmt.Fprintln(w, "Transient")
	return report.WriteCSV(w, headers, cols...)
}

// runAC writes the magnitude and phase of each voltage probe across
// the frequency grid (device-current probes are not defined for AC).
func (d *Deck) runAC(w io.Writer, a Analysis) error {
	freqs, err := circuit.DecadeFrequencies(a.FStart, a.FStop, a.PerDecade)
	if err != nil {
		return fmt.Errorf("netlist: .ac: %w", err)
	}
	pts, err := d.Circuit.AC(a.Source, freqs, circuit.DCOptions{})
	if err != nil {
		return fmt.Errorf("netlist: .ac: %w", err)
	}
	probes := d.probesOrAllNodes()
	headers := []string{"freq"}
	for _, p := range probes {
		if p.Kind != "v" {
			return fmt.Errorf("netlist: .ac supports v(node) probes, got %s(%s)", p.Kind, p.Name)
		}
		headers = append(headers, "mag_"+p.Name, "phase_"+p.Name)
	}
	cols := make([][]float64, len(headers))
	for _, pt := range pts {
		cols[0] = append(cols[0], pt.Freq)
		for i, p := range probes {
			cols[1+2*i] = append(cols[1+2*i], pt.Mag(p.Name))
			cols[2+2*i] = append(cols[2+2*i], pt.PhaseDeg(p.Name))
		}
	}
	fmt.Fprintf(w, "AC sweep exciting %s\n", a.Source)
	return report.WriteCSV(w, headers, cols...)
}
