package netlist

import (
	"math"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10}, {"1k", 1e3}, {"2.5meg", 2.5e6}, {"10p", 1e-11},
		{"1f", 1e-15}, {"3n", 3e-9}, {"4u", 4e-6}, {"5m", 5e-3},
		{"1g", 1e9}, {"2t", 2e12}, {"10pF", 1e-11}, {"-0.32", -0.32},
		{"1e-9", 1e-9}, {"1.5e3", 1500},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.in, err)
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Fatalf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1x", "--3"} {
		if _, err := ParseValue(in); err == nil {
			t.Errorf("ParseValue(%q) accepted", in)
		}
	}
}

func TestParseDividerDeckAndRun(t *testing.T) {
	deck, err := Parse(`resistive divider
V1 in 0 10
R1 in out 1k
R2 out 0 3k
.op
.print v(out) i(V1)
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if deck.Title != "resistive divider" {
		t.Fatalf("title %q", deck.Title)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "7.5") {
		t.Fatalf("divider output missing:\n%s", out)
	}
	if !strings.Contains(out, "-0.0025") {
		t.Fatalf("source current missing:\n%s", out)
	}
}

func TestParseWaveforms(t *testing.T) {
	deck, err := Parse(`waveforms
V1 a 0 PULSE(0 1 0 1n 1n 5n 10n)
V2 b 0 SIN(0 0.5 1meg)
V3 c 0 DC 2
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
.op
`)
	if err != nil {
		t.Fatal(err)
	}
	if deck.Circuit.Element("V1") == nil || deck.Circuit.Element("V2") == nil {
		t.Fatal("sources missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"t\nR1 a 0\n.op\n",                                 // missing value
		"t\nR1 a 0 -5\n.op\n",                              // non-positive value
		"t\nQ1 a 0 1k\n.op\n",                              // unknown element
		"t\n.bogus\n",                                      // unknown card
		"t\n.dc V1 0 1\n",                                  // short .dc
		"t\n.tran 1n\n",                                    // short .tran
		"t\n.print q(x)\n.op\n",                            // bad probe
		"t\nM1 d g s nomodel\n.op\n",                       // undefined model
		"t\n.model m1 njf\n.op\n",                          // non-cnt model
		"t\n.model m1 cnt level=7\n.op\n",                  // bad level
		"t\n.model m1 cnt d=1n\n.model m1 cnt d=1n\n.op\n", // dup model
		"t\nV1 a 0 PULSE(0)\n.op\n",                        // short waveform
		"t\nD1 a 0 bogus\n.op\n",                           // bad diode param
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestDeckWithoutAnalysesRejectedAtRun(t *testing.T) {
	deck, err := Parse("t\nR1 a 0 1k\nV1 a 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := deck.Run(&strings.Builder{}); err == nil {
		t.Fatal("analysis-free deck ran")
	}
}

func TestCNTInverterDeckDCSweep(t *testing.T) {
	deck, err := Parse(`cnt resistive inverter
.model fast cnt level=2 d=1n tox=1.5n kappa=25 ef=-0.32 temp=300 alphag=0.88 alphad=0.035 geometry=coaxial
VDD vdd 0 0.6
VIN in 0 0
RL vdd out 200k
M1 out in 0 fast n
.dc VIN 0 0.6 0.1
.print v(out)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header line ("DC sweep..."), CSV header, then 7 data rows.
	if len(lines) != 9 {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
	first := strings.Split(lines[2], ",")
	last := strings.Split(lines[8], ",")
	voutHigh, err1 := ParseValue(first[1])
	voutLow, err2 := ParseValue(last[1])
	if err1 != nil || err2 != nil {
		t.Fatalf("parse outputs: %v %v", err1, err2)
	}
	if voutHigh < 0.55 || voutLow > 0.25 {
		t.Fatalf("inverter rails: %g / %g", voutHigh, voutLow)
	}
}

func TestCNTComplementaryInverterTransient(t *testing.T) {
	deck, err := Parse(`cnt cmos inverter transient
.model fast cnt level=2
VDD vdd 0 0.6
VIN in 0 PULSE(0 0.6 0 10p 10p 2n 4n)
MP out in vdd fast p
MN out in 0 fast n
CL out 0 10f
.tran 20p 4n
.print v(in) v(out)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	// The output must swing: find min and max of v(out).
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, ln := range lines[2:] {
		f := strings.Split(ln, ",")
		if len(f) != 3 {
			t.Fatalf("bad row %q", ln)
		}
		v, err := ParseValue(f[2])
		if err != nil {
			t.Fatal(err)
		}
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if mx < 0.5 || mn > 0.15 {
		t.Fatalf("inverter transient swing [%g, %g]", mn, mx)
	}
}

func TestModelLevelsSelectImplementations(t *testing.T) {
	deck, err := Parse(`levels
.model ref cnt level=0
.model m1 cnt level=1
.model m2 cnt level=2
VDD d 0 0.4
VG g 0 0.5
Mref d g 0 ref
Mm1 d2 g 0 m1
Mm2 d3 g 0 m2
VD2 d2 0 0.4
VD3 d3 0 0.4
.op
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
}

func TestDiodeCard(t *testing.T) {
	deck, err := Parse(`diode
V1 in 0 5
R1 in d 1k
D1 d 0 is=1e-14 n=1 temp=300
.op
.print v(d)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.6") && !strings.Contains(b.String(), "0.7") {
		t.Fatalf("diode drop missing:\n%s", b.String())
	}
}

func TestTubesMultiplier(t *testing.T) {
	run := func(tubes string) float64 {
		deck, err := Parse(`tubes
.model fast cnt level=2
VDD d 0 0.5
VG g 0 0.6
M1 d g 0 fast n ` + tubes + `
.op
.print i(VDD)
`)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := deck.Run(&b); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		f := strings.Fields(lines[len(lines)-1])
		v, err := ParseValue(f[len(f)-1])
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	one := run("tubes=1")
	three := run("tubes=3")
	// The two operating points converge independently to the Newton
	// voltage tolerance, so the ratio is 3 only to solver precision.
	if math.Abs(three/one-3) > 1e-3 {
		t.Fatalf("tubes scaling: %g vs %g", one, three)
	}
}

func TestControlledSourceCards(t *testing.T) {
	deck, err := Parse(`controlled sources
VC c 0 0.25
RC c 0 1meg
E1 eout 0 c 0 8
RLE eout 0 50
G1 gout 0 c 0 2m
RLG gout 0 1k
.op
.print v(eout) v(gout)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "2") {
		t.Fatalf("VCVS output missing:\n%s", out)
	}
	// G element with 0.25V control and 2mS: 0.5mA leaving P through 1k
	// pulls gout to -0.5.
	if !strings.Contains(out, "-0.5") {
		t.Fatalf("VCCS output missing:\n%s", out)
	}
}

func TestControlledSourceCardErrors(t *testing.T) {
	if _, err := Parse("t\nE1 a 0 b 8\n.op\n"); err == nil {
		t.Fatal("short E card accepted")
	}
	if _, err := Parse("t\nG1 a 0 b 0 xx\n.op\n"); err == nil {
		t.Fatal("bad gain accepted")
	}
}

func TestDeviceCurrentProbe(t *testing.T) {
	deck, err := Parse(`device probe
.model fast cnt level=2
VDD d 0 0.5
VG g 0 0.6
M1 d g 0 fast n
.op
.print i(M1) i(VDD)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	var iM1, iVDD float64
	for _, ln := range lines {
		f := strings.Fields(ln)
		if len(f) != 2 {
			continue
		}
		v, err := ParseValue(f[1])
		if err != nil {
			continue
		}
		switch f[0] {
		case "i(M1)":
			iM1 = v
		case "i(VDD)":
			iVDD = v
		}
	}
	if iM1 <= 0 {
		t.Fatalf("device current %g, want positive", iM1)
	}
	// KCL: the supply sources exactly the device current (sign per the
	// branch convention: current flows out of the + terminal).
	if math.Abs(iM1+iVDD) > 1e-6*iM1 {
		t.Fatalf("i(M1)=%g, i(VDD)=%g: KCL broken", iM1, iVDD)
	}
}

func TestACCard(t *testing.T) {
	deck, err := Parse(`rc lowpass ac
VIN in 0 0
R1 in out 1k
C1 out 0 1n
.ac VIN dec 10 1k 100meg
.print v(out)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[0], "AC sweep") || !strings.Contains(lines[1], "mag_out") {
		t.Fatalf("output:\n%s", b.String())
	}
	// First point (1 kHz, far below the 159 kHz pole): magnitude ≈ 1.
	first := strings.Split(lines[2], ",")
	mag, err := ParseValue(first[1])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mag-1) > 1e-3 {
		t.Fatalf("passband magnitude %g", mag)
	}
	// Last point (100 MHz): deep stopband.
	last := strings.Split(lines[len(lines)-1], ",")
	mag, err = ParseValue(last[1])
	if err != nil {
		t.Fatal(err)
	}
	if mag > 0.01 {
		t.Fatalf("stopband magnitude %g", mag)
	}
}

func TestACCardErrors(t *testing.T) {
	if _, err := Parse("t\n.ac V1 dec 10 1k\n"); err == nil {
		t.Fatal("short .ac accepted")
	}
	if _, err := Parse("t\n.ac V1 lin 10 1 1k\n"); err == nil {
		t.Fatal("non-dec .ac accepted")
	}
	deck, err := Parse("t\nVIN in 0 0\nR1 in 0 1k\n.ac VIN dec 10 1k 1meg\n.print i(VIN)\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := deck.Run(&strings.Builder{}); err == nil {
		t.Fatal("current probe in .ac accepted")
	}
}

func TestInductorCardAndAdaptiveTran(t *testing.T) {
	deck, err := Parse(`rl step, adaptive stepping
V1 in 0 PULSE(0 1 0 1n 1n 1 1)
R1 in mid 1k
L1 mid 0 1m
.tran 1n 5u adaptive
.print v(mid) i(V1)
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := deck.Run(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	last := strings.Split(lines[len(lines)-1], ",")
	// After 5τ the source current approaches -1 mA (branch convention).
	iv, err := ParseValue(last[2])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv+1e-3) > 0.05e-3 {
		t.Fatalf("final source current %g", iv)
	}
	// Adaptive stepping: far fewer rows than the 5000 a fixed 1n grid
	// would produce.
	if len(lines) > 1000 {
		t.Fatalf("adaptive produced %d rows", len(lines))
	}
}
