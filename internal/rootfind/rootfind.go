// Package rootfind provides the scalar root-finding used by the
// reference CNT model: damped Newton–Raphson with a bisection safeguard
// (the solver the paper's technique eliminates), plus plain bisection
// and Brent's method for robust brackets.
package rootfind

import (
	"errors"
	"fmt"
	"math"
)

// ErrMaxIter is returned when the iteration budget runs out.
var ErrMaxIter = errors.New("rootfind: iteration limit reached")

// ErrBadBracket is returned when [a,b] does not bracket a sign change.
var ErrBadBracket = errors.New("rootfind: interval does not bracket a root")

// Options configures the iterative solvers.
type Options struct {
	// XTol is the absolute step-size convergence threshold.
	XTol float64
	// FTol is the absolute residual convergence threshold.
	FTol float64
	// MaxIter bounds the iteration count.
	MaxIter int
	// OnIter, when non-nil, observes each Newton iteration after the
	// residual evaluation: iteration number (1-based), current iterate
	// and residual. Used by telemetry tracing; leave nil on hot paths.
	OnIter func(iter int, x, fx float64)
}

// Default returns the options used throughout the library when the
// caller does not care: tight tolerances, generous budget.
func Default() Options {
	return Options{XTol: 1e-12, FTol: 0, MaxIter: 200}
}

func (o *Options) fill() {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.XTol == 0 && o.FTol == 0 { //lint:allow floatcmp both exactly zero selects the default tolerances
		o.XTol = 1e-12
	}
}

// Result carries a root and solver diagnostics.
type Result struct {
	Root       float64
	Iterations int
	// FuncEvals counts calls to f (and f' for Newton).
	FuncEvals int
}

// Bisect finds a root of f in the bracketing interval [a, b].
func Bisect(f func(float64) float64, a, b float64, opt Options) (Result, error) {
	opt.fill()
	fa, fb := f(a), f(b)
	res := Result{FuncEvals: 2}
	if fa == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		res.Root = a
		return res, nil
	}
	if fb == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		res.Root = b
		return res, nil
	}
	if fa*fb > 0 {
		return res, ErrBadBracket
	}
	for i := 0; i < opt.MaxIter; i++ {
		res.Iterations = i + 1
		m := 0.5 * (a + b)
		fm := f(m)
		res.FuncEvals++
		if fm == 0 || math.Abs(b-a) < 2*opt.XTol || (opt.FTol > 0 && math.Abs(fm) < opt.FTol) { //lint:allow floatcmp residual exactly zero is an exact root
			res.Root = m
			return res, nil
		}
		if fa*fm < 0 {
			b = m
		} else {
			a, fa = m, fm
		}
	}
	res.Root = 0.5 * (a + b)
	return res, ErrMaxIter
}

// Newton finds a root of f with derivative df, starting from x0 and
// safeguarded by the bracket [lo, hi]: steps leaving the bracket, or
// meeting a vanishing derivative, fall back to bisection of the current
// bracket, which is shrunk using each evaluated sign. f must be
// monotone-free to benefit fully, but correctness only needs the
// initial bracket to contain a sign change.
func Newton(f, df func(float64) float64, x0, lo, hi float64, opt Options) (Result, error) {
	opt.fill()
	res := Result{}
	flo, fhi := f(lo), f(hi)
	res.FuncEvals = 2
	if flo == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		res.Root = lo
		return res, nil
	}
	if fhi == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		res.Root = hi
		return res, nil
	}
	if flo*fhi > 0 {
		return res, ErrBadBracket
	}
	x := x0
	if x < lo || x > hi {
		x = 0.5 * (lo + hi)
	}
	for i := 0; i < opt.MaxIter; i++ {
		res.Iterations = i + 1
		fx := f(x)
		res.FuncEvals++
		if opt.OnIter != nil {
			opt.OnIter(i+1, x, fx)
		}
		if fx == 0 || (opt.FTol > 0 && math.Abs(fx) < opt.FTol) { //lint:allow floatcmp residual exactly zero is an exact root
			res.Root = x
			return res, nil
		}
		// Maintain the bracket.
		if flo*fx < 0 {
			hi = x
		} else {
			lo, flo = x, fx
		}
		dx := df(x)
		res.FuncEvals++
		var next float64
		if dx == 0 { //lint:allow floatcmp exact-zero derivative guard before dividing
			next = 0.5 * (lo + hi)
		} else {
			next = x - fx/dx
			if next <= lo || next >= hi {
				next = 0.5 * (lo + hi)
			}
		}
		if math.Abs(next-x) < opt.XTol {
			res.Root = next
			return res, nil
		}
		x = next
	}
	res.Root = x
	return res, ErrMaxIter
}

// Brent finds a root of f in the bracket [a, b] using Brent's method
// (inverse quadratic interpolation with bisection fallback).
func Brent(f func(float64) float64, a, b float64, opt Options) (Result, error) {
	opt.fill()
	fa, fb := f(a), f(b)
	res := Result{FuncEvals: 2}
	if fa == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		res.Root = a
		return res, nil
	}
	if fb == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		res.Root = b
		return res, nil
	}
	if fa*fb > 0 {
		return res, ErrBadBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < opt.MaxIter; i++ {
		res.Iterations = i + 1
		if fb == 0 || math.Abs(b-a) < opt.XTol || (opt.FTol > 0 && math.Abs(fb) < opt.FTol) { //lint:allow floatcmp residual exactly zero is an exact root
			res.Root = b
			return res, nil
		}
		var s float64
		if fa != fc && fb != fc { //lint:allow floatcmp inverse quadratic needs exactly distinct ordinates
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < opt.XTol) ||
			(!mflag && math.Abs(c-d) < opt.XTol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		res.FuncEvals++
		d, c, fc = c, b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	res.Root = b
	return res, ErrMaxIter
}

// ExpandBracket grows [a, b] geometrically around its centre until f
// changes sign, up to maxGrow doublings. It returns the bracket found.
func ExpandBracket(f func(float64) float64, a, b float64, maxGrow int) (float64, float64, error) {
	if a == b { //lint:allow floatcmp degenerate bracket guard
		b = a + 1e-6
	}
	if b < a {
		a, b = b, a
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxGrow; i++ {
		if fa == 0 || fb == 0 || fa*fb < 0 { //lint:allow floatcmp an exact root at a bracket end is a valid bracket
			return a, b, nil
		}
		w := b - a
		a -= w
		b += w
		fa, fb = f(a), f(b)
	}
	if fa*fb <= 0 {
		return a, b, nil
	}
	return a, b, fmt.Errorf("rootfind: %w after %d expansions", ErrBadBracket, maxGrow)
}
