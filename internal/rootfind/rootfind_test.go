package rootfind

import (
	"math"
	"math/rand"
	"testing"
)

func TestBisectSimple(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	r, err := Bisect(f, 0, 2, Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root = %.15g", r.Root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, Default()); err != nil || r.Root != 0 {
		t.Fatalf("endpoint root missed: %v %v", r.Root, err)
	}
	if r, err := Bisect(f, -1, 0, Default()); err != nil || r.Root != 0 {
		t.Fatalf("endpoint root missed: %v %v", r.Root, err)
	}
}

func TestBisectBadBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, Default()); err != ErrBadBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestNewtonQuadraticConvergence(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 3 }
	df := math.Exp
	r, err := Newton(f, df, 0.5, 0, 3, Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Root-math.Log(3)) > 1e-10 {
		t.Fatalf("root = %g", r.Root)
	}
	if r.Iterations > 12 {
		t.Fatalf("Newton took %d iterations", r.Iterations)
	}
}

func TestNewtonSafeguardsAgainstZeroDerivative(t *testing.T) {
	// f = x^3 has f'(0) = 0; start at the stationary point.
	f := func(x float64) float64 { return x * x * x }
	df := func(x float64) float64 { return 3 * x * x }
	r, err := Newton(f, df, 0, -1, 2, Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Root) > 1e-6 {
		t.Fatalf("root = %g", r.Root)
	}
}

func TestNewtonWildDerivativeFallsBackToBisection(t *testing.T) {
	// Steep tanh: naive Newton from the flat region diverges; the
	// bracket safeguard must still land the root.
	k := 500.0
	f := func(x float64) float64 { return math.Tanh(k * (x - 0.3)) }
	df := func(x float64) float64 {
		c := math.Cosh(k * (x - 0.3))
		return k / (c * c)
	}
	r, err := Newton(f, df, -5, -6, 6, Default())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Root-0.3) > 1e-8 {
		t.Fatalf("root = %g", r.Root)
	}
}

func TestNewtonBadBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton(f, df, 0, -1, 1, Default()); err != ErrBadBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestBrentAgainstKnownRoots(t *testing.T) {
	cases := []struct {
		f        func(float64) float64
		a, b, rt float64
	}{
		{func(x float64) float64 { return x*x*x - 2*x - 5 }, 2, 3, 2.0945514815423265},
		{func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{func(x float64) float64 { return math.Exp(-x) - x }, 0, 1, 0.5671432904097838},
	}
	for i, c := range cases {
		r, err := Brent(c.f, c.a, c.b, Default())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(r.Root-c.rt) > 1e-9 {
			t.Fatalf("case %d: root = %.15g want %.15g", i, r.Root, c.rt)
		}
	}
}

func TestBrentBadBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, Default()); err != ErrBadBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := ExpandBracket(f, 0, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if f(a)*f(b) > 0 {
		t.Fatalf("[%g,%g] does not bracket", a, b)
	}
}

func TestExpandBracketFailure(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, _, err := ExpandBracket(f, -1, 1, 5); err == nil {
		t.Fatal("expected failure for rootless function")
	}
}

// Property: on random monotone cubics with a bracketed root, all three
// solvers agree.
func TestSolversAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		a := 0.2 + rng.Float64()*3
		b := rng.NormFloat64()
		c := rng.NormFloat64() * 2
		f := func(x float64) float64 { return a*x*x*x + a*x + b*0 + c + b } // monotone: 3a x² + a > 0
		df := func(x float64) float64 { return 3*a*x*x + a }
		lo, hi, err := ExpandBracket(f, -1, 1, 60)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rb, err1 := Bisect(f, lo, hi, Default())
		rn, err2 := Newton(f, df, 0.5*(lo+hi), lo, hi, Default())
		rr, err3 := Brent(f, lo, hi, Default())
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("trial %d: %v %v %v", trial, err1, err2, err3)
		}
		if math.Abs(rb.Root-rn.Root) > 1e-7 || math.Abs(rn.Root-rr.Root) > 1e-7 {
			t.Fatalf("trial %d: roots disagree %g %g %g", trial, rb.Root, rn.Root, rr.Root)
		}
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.MaxIter != 200 || o.XTol != 1e-12 {
		t.Fatalf("fill: %+v", o)
	}
	o2 := Options{FTol: 1e-6}
	o2.fill()
	if o2.XTol != 0 || o2.FTol != 1e-6 {
		t.Fatalf("fill clobbered explicit FTol: %+v", o2)
	}
}
