package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cntfet/internal/core"
	"cntfet/internal/fettoy"
	"cntfet/internal/rootfind"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
	"cntfet/internal/units"
)

// buildPair returns the reference model and the fitted Model 2 for a
// device, failing the test on construction errors.
func buildPair(t *testing.T, dev fettoy.Device) (*fettoy.Model, *core.Model) {
	t.Helper()
	ref, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := core.Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	return ref, fast
}

func sameFamilies(t *testing.T, label string, got, want []sweep.Curve) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d curves, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].VG != want[i].VG {
			t.Fatalf("%s: curve %d at VG=%g, want %g", label, i, got[i].VG, want[i].VG)
		}
		for j := range want[i].IDS {
			if got[i].IDS[j] != want[i].IDS[j] {
				t.Fatalf("%s: curve %d point %d: %g != %g (diff %g)",
					label, i, j, got[i].IDS[j], want[i].IDS[j],
					got[i].IDS[j]-want[i].IDS[j])
			}
		}
	}
}

// TestFamilyGoldenEquivalence is the engine/direct equivalence gate:
// for both model families and the three table temperatures, a
// FamilySweep job must reproduce the direct sweep paths bit for bit.
func TestFamilyGoldenEquivalence(t *testing.T) {
	vgs := []float64{0.3, 0.45, 0.6}
	vds := units.Linspace(0, 0.6, 13)
	for _, temp := range []float64{150, 300, 450} {
		dev := fettoy.Default()
		dev.T = temp
		ref, fast := buildPair(t, dev)
		for _, tc := range []struct {
			name  string
			model interface {
				IDS(fettoy.Bias) (float64, error)
			}
		}{{"reference", ref}, {"piecewise", fast}} {
			label := fmt.Sprintf("T=%g/%s", temp, tc.name)
			direct, err := sweep.FamilyBatch(context.Background(), tc.model, vgs, vds)
			if err != nil {
				t.Fatalf("%s: direct: %v", label, err)
			}
			res, err := Run(context.Background(), Request{
				Kind:     FamilySweep,
				Model:    tc.model,
				Gates:    vgs,
				Drains:   vds,
				Strategy: Batch,
			})
			if err != nil {
				t.Fatalf("%s: engine: %v", label, err)
			}
			sameFamilies(t, label+"/batch", res.Family, direct)

			directSerial, err := sweep.Family(context.Background(), tc.model, vgs, vds)
			if err != nil {
				t.Fatalf("%s: direct serial: %v", label, err)
			}
			resSerial, err := Run(context.Background(), Request{
				Kind:     FamilySweep,
				Model:    tc.model,
				Gates:    vgs,
				Drains:   vds,
				Strategy: Serial,
			})
			if err != nil {
				t.Fatalf("%s: engine serial: %v", label, err)
			}
			sameFamilies(t, label+"/serial", resSerial.Family, directSerial)
		}
	}
}

// TestIVPointGoldenEquivalence checks the single-point job against the
// models' direct Solve/IDS paths.
func TestIVPointGoldenEquivalence(t *testing.T) {
	ref, fast := buildPair(t, fettoy.Default())
	bias := fettoy.Bias{VG: 0.5, VD: 0.4}
	for _, tc := range []struct {
		name  string
		model interface {
			IDS(fettoy.Bias) (float64, error)
			Solve(fettoy.Bias) (fettoy.OperatingPoint, error)
		}
	}{{"reference", ref}, {"piecewise", fast}} {
		op, err := tc.model.Solve(bias)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), Request{Kind: IVPoint, Model: tc.model, Bias: bias})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.IDS != op.IDS || res.OP.IDS != op.IDS || res.OP.VSC != op.VSC {
			t.Fatalf("%s: engine OP %+v != direct %+v", tc.name, res.OP, op)
		}
	}
}

// TestRMSCompareGoldenEquivalence checks the compare job against the
// direct sweep + CompareFamilies composition.
func TestRMSCompareGoldenEquivalence(t *testing.T) {
	ref, fast := buildPair(t, fettoy.Default())
	vgs := []float64{0.4, 0.6}
	vds := units.Linspace(0, 0.6, 9)
	famRef, err := sweep.FamilyBatch(context.Background(), ref, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	famFast, err := sweep.FamilyBatch(context.Background(), fast, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.CompareFamilies(famFast, famRef)
	if err != nil {
		t.Fatal(err)
	}
	// Strategy pinned to Batch: the golden composition above is the
	// batched path, and Auto now resolves to the parallel scheduler
	// (whose chunked warm-start chains differ at float precision).
	res, err := Run(context.Background(), Request{
		Kind: RMSCompare, Model: fast, Ref: ref, Gates: vgs, Drains: vds,
		Strategy: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.RMSPercent[i] != want[i] {
			t.Fatalf("rms[%d] = %g, want %g", i, res.RMSPercent[i], want[i])
		}
	}
	sameFamilies(t, "model", res.Family, famFast)
	sameFamilies(t, "ref", res.RefFamily, famRef)

	// The precomputed-reference form must agree too.
	res2, err := Run(context.Background(), Request{
		Kind: RMSCompare, Model: fast, RefFamily: famRef, Gates: vgs, Drains: vds,
		Strategy: Batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res2.RMSPercent[i] != want[i] {
			t.Fatalf("refFamily form: rms[%d] = %g, want %g", i, res2.RMSPercent[i], want[i])
		}
	}
}

// TestIVPointPrebuildCancellation pins the runIVPoint context fix: an
// IVPoint job on a table-backed model must run the charge-table build
// under the job context (cancellable, attributed to the job) instead
// of hiding it inside the first solve.
func TestIVPointPrebuildCancellation(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	ref.EnableTable(fettoy.TableOptions{})
	bias := fettoy.Bias{VG: 0.5, VD: 0.4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(ctx, Request{Kind: IVPoint, Model: ref, Bias: bias})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled IVPoint on table-backed model: want ErrCanceled, got %v", err)
	}
	// The aborted build must not poison the table, and the retried job
	// must carry the build in its own counter delta.
	res, err := Run(context.Background(), Request{Kind: IVPoint, Model: ref, Bias: bias})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.IDS > 0) {
		t.Fatalf("degenerate IVPoint result: %+v", res)
	}
	if res.Metrics["fettoy.table.builds"] != 1 {
		t.Fatalf("table build not attributed to the IVPoint job: %v", res.Metrics)
	}
}

// TestRMSCompareRefFamilyValidation pins the runRMSCompare validation
// fix: a present-but-empty RefFamily (or one that does not cover the
// gate grid) must be rejected up front as an invalid request, not
// surface later from sweep.CompareFamilies as a numerical-looking
// failure.
func TestRMSCompareRefFamilyValidation(t *testing.T) {
	_, fast := buildPair(t, fettoy.Default())
	gates := []float64{0.4, 0.6}
	drains := []float64{0, 0.3, 0.6}
	for name, refFam := range map[string][]sweep.Curve{
		"empty":         {},
		"gate mismatch": {{VG: 0.4, VDS: drains, IDS: make([]float64, len(drains))}},
	} {
		_, err := Run(context.Background(), Request{
			Kind: RMSCompare, Model: fast, RefFamily: refFam,
			Gates: gates, Drains: drains,
		})
		if !errors.Is(err, ErrInvalidRequest) {
			t.Fatalf("%s RefFamily: want ErrInvalidRequest, got %v", name, err)
		}
		if errors.Is(err, ErrNumerical) {
			t.Fatalf("%s RefFamily: misclassified as numerical: %v", name, err)
		}
	}
}

// bracketSolver always fails the way the reference model does when its
// root bracket never encloses a sign change.
type bracketSolver struct{}

func (bracketSolver) IDS(fettoy.Bias) (float64, error) {
	return 0, fmt.Errorf("stub solve: %w", rootfind.ErrBadBracket)
}

// TestBracketFailureSurfacesThroughRun is the error-taxonomy gate: a
// solver bracket failure deep in a sweep must stay reachable with
// errors.Is through an engine.Run call, carry the ErrNumerical class,
// and not masquerade as a cancellation.
func TestBracketFailureSurfacesThroughRun(t *testing.T) {
	_, err := Run(context.Background(), Request{
		Kind:   FamilySweep,
		Model:  bracketSolver{},
		Gates:  []float64{0.5},
		Drains: []float64{0, 0.3},
	})
	if err == nil {
		t.Fatal("bracket failure vanished")
	}
	if !errors.Is(err, rootfind.ErrBadBracket) {
		t.Fatalf("errors.Is(err, rootfind.ErrBadBracket) = false: %v", err)
	}
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("errors.Is(err, ErrNumerical) = false: %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("numerical failure classified as canceled: %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Kind != FamilySweep {
		t.Fatalf("not a FamilySweep JobError: %v", err)
	}
}

// TestInvalidRequests checks the ErrInvalidRequest corner of the
// taxonomy.
func TestInvalidRequests(t *testing.T) {
	_, fast := buildPair(t, fettoy.Default())
	for name, req := range map[string]Request{
		"unknown kind":  {},
		"missing model": {Kind: FamilySweep, Gates: []float64{0.5}, Drains: []float64{0.1}},
		"empty grid":    {Kind: FamilySweep, Model: fast},
		"both refs": {Kind: RMSCompare, Model: fast, Ref: fast,
			RefFamily: []sweep.Curve{{}}, Gates: []float64{0.5}, Drains: []float64{0.1}},
		"neither ref":  {Kind: RMSCompare, Model: fast, Gates: []float64{0.5}, Drains: []float64{0.1}},
		"zero samples": {Kind: MonteCarlo},
		"missing deck": {Kind: Netlist},
	} {
		_, err := Run(context.Background(), req)
		if !errors.Is(err, ErrInvalidRequest) {
			t.Fatalf("%s: want ErrInvalidRequest, got %v", name, err)
		}
	}
}

// slowSolver burns wall clock per point and counts evaluations, so a
// cancellation test can measure promptness and counter consistency.
type slowSolver struct {
	delay time.Duration
	calls atomic.Int64
}

func (s *slowSolver) IDS(b fettoy.Bias) (float64, error) {
	s.calls.Add(1)
	time.Sleep(s.delay)
	return b.VG * b.VD, nil
}

// TestCancelMidSweep is the cancellation gate: canceling mid-sweep
// must return ErrCanceled promptly, leak no worker goroutines, and
// leave the telemetry point counters consistent with the points
// actually evaluated.
func TestCancelMidSweep(t *testing.T) {
	vgs := units.Linspace(0.1, 0.6, 8)
	vds := units.Linspace(0, 0.6, 50) // 400 points x 2ms >> the 25ms budget
	for _, tc := range []struct {
		name     string
		strategy Strategy
		workers  int
	}{
		{"parallel", Parallel, 4},
		{"serial-fallback", Batch, 0}, // slowSolver has no IDSBatch: row loop path
	} {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			m := &slowSolver{delay: 2 * time.Millisecond}
			ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
			defer cancel()
			start := time.Now()
			res, err := Run(ctx, Request{
				Kind:     FamilySweep,
				Model:    m,
				Gates:    vgs,
				Drains:   vds,
				Strategy: tc.strategy,
				Workers:  tc.workers,
			})
			elapsed := time.Since(start)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("want ErrCanceled, got %v", err)
			}
			if elapsed > time.Second {
				t.Fatalf("cancellation took %v, want prompt return", elapsed)
			}
			total := int64(len(vgs) * len(vds))
			calls := m.calls.Load()
			if calls == 0 || calls >= total {
				t.Fatalf("evaluated %d of %d points; cancellation did not land mid-sweep", calls, total)
			}
			if pts := res.Metrics["sweep.points"]; pts > calls {
				t.Fatalf("sweep.points = %d but only %d solves ran", pts, calls)
			}
			// Workers must drain: the goroutine count returns to (about)
			// the pre-run baseline.
			deadline := time.Now().Add(2 * time.Second)
			for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before+1 {
				t.Fatalf("goroutines leaked: %d before, %d after", before, n)
			}
		})
	}
}

// TestCancelBeforeDispatch checks the already-canceled fast path.
func TestCancelBeforeDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, fast := buildPair(t, fettoy.Default())
	_, err := Run(ctx, Request{
		Kind: FamilySweep, Model: fast,
		Gates: []float64{0.5}, Drains: []float64{0.1},
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

// TestMonteCarloEquivalence checks the MC job against the direct call
// and that cancellation classifies correctly.
func TestMonteCarloEquivalence(t *testing.T) {
	res, err := Run(context.Background(), Request{
		Kind:    MonteCarlo,
		Device:  fettoy.Default(),
		Bias:    fettoy.Bias{VG: 0.5, VD: 0.4},
		Samples: 50,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MC == nil || len(res.MC.Samples) != 50 || !(res.MC.Mean > 0) {
		t.Fatalf("degenerate MC result: %+v", res.MC)
	}
	// Same seed, same draws — the engine adds no nondeterminism.
	res2, err := Run(context.Background(), Request{
		Kind:    MonteCarlo,
		Device:  fettoy.Default(),
		Bias:    fettoy.Bias{VG: 0.5, VD: 0.4},
		Samples: 50,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.MC.Samples {
		if res.MC.Samples[i] != res2.MC.Samples[i] {
			t.Fatalf("sample %d differs across identical jobs", i)
		}
	}
}

// TestMetricsDelta checks that a job's Metrics carry only its own
// counter movement.
func TestMetricsDelta(t *testing.T) {
	ref, _ := buildPair(t, fettoy.Default())
	res, err := Run(context.Background(), Request{
		Kind:   FamilySweep,
		Model:  ref,
		Gates:  []float64{0.5},
		Drains: units.Linspace(0, 0.6, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics["sweep.points"]; got != 5 {
		t.Fatalf("sweep.points delta = %d, want 5", got)
	}
	if res.Metrics["fettoy.solves"] <= 0 {
		t.Fatalf("no solver work attributed: %v", res.Metrics)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
}

// TestPrebuildCancellation checks that a charge-table build scheduled
// by the engine is itself cancellable (device.ContextBuilder), and
// that the aborted build retries cleanly on the next job.
func TestPrebuildCancellation(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	ref.EnableTable(fettoy.TableOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(ctx, Request{
		Kind: FamilySweep, Model: ref,
		Gates: []float64{0.5}, Drains: []float64{0.1, 0.2},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The canceled build must not poison the table: the same model
	// completes under a live context.
	res, err := Run(context.Background(), Request{
		Kind: FamilySweep, Model: ref,
		Gates: []float64{0.5}, Drains: []float64{0.1, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Family) != 1 || math.IsNaN(res.Family[0].IDS[1]) {
		t.Fatalf("retry produced a degenerate family: %+v", res.Family)
	}
}

// TestResolveStrategy pins the Auto mapping: the zero-value request
// (Workers == 0, meaning GOMAXPROCS to FamilyParallel) must land on
// the parallel scheduler; only an explicit Workers: 1 keeps the
// single-threaded batch path. Explicit strategies pass through.
func TestResolveStrategy(t *testing.T) {
	cases := []struct {
		st      Strategy
		workers int
		want    Strategy
	}{
		{Auto, 0, Parallel},
		{Auto, 1, Batch},
		{Auto, 2, Parallel},
		{Auto, 16, Parallel},
		{Serial, 0, Serial},
		{Batch, 0, Batch},
		{Parallel, 1, Parallel},
	}
	for _, c := range cases {
		if got := resolveStrategy(c.st, c.workers); got != c.want {
			t.Errorf("resolveStrategy(%d, %d) = %d, want %d", c.st, c.workers, got, c.want)
		}
	}
}

// TestDefaultRequestRunsParallel is the regression test for the Auto
// bug where Workers == 0 silently fell back to the single-threaded
// batch path: a default FamilySweep request must leave per-worker
// accounting (sweep.worker.*.points), which only the chunked parallel
// scheduler records, and the per-worker totals must cover the grid.
func TestDefaultRequestRunsParallel(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	_, fast := buildPair(t, fettoy.Default())
	gates := units.Linspace(0.2, 0.6, 3)
	drains := units.Linspace(0, 0.6, 8)
	res, err := Run(context.Background(), Request{
		Kind:   FamilySweep,
		Model:  fast,
		Gates:  gates,
		Drains: drains,
	})
	if err != nil {
		t.Fatal(err)
	}
	var workerPts int64
	for k, v := range res.Metrics {
		if strings.HasPrefix(k, "sweep.worker.") && strings.HasSuffix(k, ".points") {
			workerPts += v
		}
	}
	want := int64(len(gates) * len(drains))
	if workerPts != want {
		t.Fatalf("per-worker points = %d, want %d (default request did not run the parallel scheduler; metrics: %v)",
			workerPts, want, res.Metrics)
	}
}
