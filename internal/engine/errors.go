package engine

import (
	"context"
	"errors"
	"fmt"

	"cntfet/internal/circuit"
	"cntfet/internal/rootfind"
)

// The engine's error taxonomy. Every error returned by Run is a
// *JobError whose Unwrap chain carries one of these class sentinels
// (when the failure is classifiable) alongside the underlying cause,
// so callers distinguish the three failure families with errors.Is and
// still reach the concrete diagnostics — rootfind.ErrBadBracket,
// *circuit.ConvergenceError and friends — with errors.Is/errors.As.
var (
	// ErrCanceled marks a user abort: the request's context was
	// canceled or timed out. errors.Is against context.Canceled /
	// context.DeadlineExceeded (or the cancel cause) also holds.
	//
	//taxonomy:class
	ErrCanceled = errors.New("engine: job canceled")

	// ErrNumerical marks a solver failure: a root bracket that never
	// enclosed a sign change, a Newton iteration that hit its limit, or
	// a circuit operating point that did not converge.
	//
	//taxonomy:class
	ErrNumerical = errors.New("engine: numerical failure")

	// ErrInvalidRequest marks a malformed Request — wrong field
	// combination for the job kind, not a solver problem.
	//
	//taxonomy:class
	ErrInvalidRequest = errors.New("engine: invalid request")
)

// JobError is the typed failure Run returns: the job kind that failed,
// the taxonomy class (nil when unclassified), and the underlying
// error. Unwrap exposes both the class sentinel and the cause, so
//
//	errors.Is(err, engine.ErrCanceled)
//	errors.Is(err, rootfind.ErrBadBracket)
//	errors.As(err, &convergenceErr)
//
// all work end-to-end through an engine.Run call.
type JobError struct {
	Kind  Kind
	Class error
	Err   error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("engine: %s job: %v", e.Kind, e.Err)
}

// Unwrap exposes the class sentinel and the underlying cause to the
// errors.Is/errors.As traversal.
func (e *JobError) Unwrap() []error {
	if e.Class == nil {
		return []error{e.Err}
	}
	return []error{e.Class, e.Err}
}

// classify wraps a job failure into the taxonomy. Errors that are
// already JobErrors pass through unchanged.
func classify(kind Kind, err error) error {
	var je *JobError
	if errors.As(err, &je) {
		return err
	}
	return &JobError{Kind: kind, Class: classOf(err), Err: err}
}

// classOf maps an underlying error to its taxonomy sentinel, or nil
// when it fits no class. Cancellation is checked first: a sweep
// aborted mid-flight may surface either the context error or a partial
// numerical failure, and the user's abort is the truth of what
// happened.
func classOf(err error) error {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ErrCanceled
	case errors.Is(err, ErrSinkClosed):
		// The streaming consumer went away; the job was abandoned, not
		// numerically wrong.
		return ErrCanceled
	case errors.Is(err, ErrInvalidRequest):
		return nil // invalid marks itself; no second class needed
	case isNumerical(err):
		return ErrNumerical
	}
	return nil
}

// isNumerical reports whether err originates in a solver: a failed
// root bracket, an iteration limit, or circuit non-convergence. The
// sentinel checks travel the %w chains the solvers build
// (fettoy wraps rootfind errors; *circuit.ConvergenceError unwraps to
// circuit.ErrNoConvergence).
func isNumerical(err error) bool {
	if errors.Is(err, rootfind.ErrBadBracket) ||
		errors.Is(err, rootfind.ErrMaxIter) ||
		errors.Is(err, circuit.ErrNoConvergence) {
		return true
	}
	var ce *circuit.ConvergenceError
	return errors.As(err, &ce)
}

// invalidf builds an ErrInvalidRequest violation.
func invalidf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrInvalidRequest)...)
}
