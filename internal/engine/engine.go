// Package engine is the orchestration layer between the device models
// and every front-end: one request/response job API over the unified
// capability interfaces of internal/device. CLIs and the sweep-service
// front-end (internal/server) build a Request, call Run with a context, and
// print from the Result — model selection, sweep-strategy dispatch,
// cancellation, error classification and request-scoped telemetry all
// live here instead of being re-implemented per front-end.
//
// Job lifecycle:
//
//	Request ── validate ── pre-build (device.ContextBuilder, cancellable)
//	        ── dispatch by Kind over capability interfaces
//	        ── Result{payload, Metrics: counter deltas, Elapsed}
//	        └─ on failure: *JobError{Kind, Class, Err}  (see errors.go)
//
// Cancellation is cooperative and prompt: the context threads through
// the sweep worker loops (checked per point), the batched row loop,
// the Monte Carlo sample loop, the netlist analysis loop and the
// adaptive charge-table build.
package engine

import (
	"context"
	"fmt"
	"io"
	"time"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/netlist"
	"cntfet/internal/sweep"
	"cntfet/internal/telemetry"
	"cntfet/internal/variation"
)

// Kind selects the job a Request describes.
type Kind int

// Job kinds.
const (
	// IVPoint solves one bias point: Result.IDS, and Result.OP when the
	// model provides the full operating-point capability.
	IVPoint Kind = iota + 1
	// FamilySweep evaluates a family of IDS(VDS) curves, one per gate
	// voltage: Result.Family. Repeat > 1 re-runs the sweep (benchmark
	// loops); the last family is returned.
	FamilySweep
	// RMSCompare sweeps Model and a reference (Ref, or the precomputed
	// RefFamily) on the same grid and computes the paper's per-gate RMS
	// error: Result.Family, Result.RefFamily, Result.RMSPercent.
	RMSCompare
	// MonteCarlo runs a process-variability study: Result.MC.
	MonteCarlo
	// Netlist executes a parsed SPICE-style deck, writing analysis
	// tables to Output.
	Netlist
)

func (k Kind) String() string {
	switch k {
	case IVPoint:
		return "iv-point"
	case FamilySweep:
		return "family-sweep"
	case RMSCompare:
		return "rms-compare"
	case MonteCarlo:
		return "monte-carlo"
	case Netlist:
		return "netlist"
	}
	return "unknown"
}

// Strategy selects how a family sweep is scheduled.
type Strategy int

// Sweep strategies.
const (
	// Auto picks Batch when Workers == 1 and Parallel otherwise —
	// including the zero default, which FamilyParallel expands to
	// GOMAXPROCS. A default request therefore saturates the machine;
	// only an explicit Workers: 1 opts into the single-threaded batch
	// path (which the reference model's warm-start continuation still
	// prefers for strictly serial rows).
	Auto Strategy = iota
	// Serial forces the plain row-by-row Family loop (the paper's
	// Table I benchmark protocol).
	Serial
	// Batch forces the device.BatchSolver path with serial fallback.
	Batch
	// Parallel forces the chunked worker scheduler.
	Parallel
)

// Request describes one job. Kind selects which fields matter; the
// per-kind validation rejects missing ones with ErrInvalidRequest.
type Request struct {
	Kind Kind

	// Model is the device under test (IVPoint, FamilySweep,
	// RMSCompare). Optional capabilities — warm start, batch, analytic
	// gradients, cancellable pre-build — are discovered by type
	// assertion against internal/device.
	Model device.Solver
	// Ref is the reference device an RMSCompare sweeps on the same
	// grid. Alternatively RefFamily supplies precomputed (or
	// experimental) reference curves; exactly one must be set.
	Ref       device.Solver
	RefFamily []sweep.Curve

	// Bias is the operating point (IVPoint, MonteCarlo).
	Bias fettoy.Bias
	// Gates and Drains define the sweep grid (FamilySweep, RMSCompare).
	Gates, Drains []float64
	// Strategy and Workers steer sweep scheduling; see Strategy.
	Strategy Strategy
	Workers  int
	// Repeat re-runs a FamilySweep (benchmark loops). 0 means once.
	Repeat int

	// Device and the fields below parameterise a MonteCarlo study.
	Device  fettoy.Device
	Spread  variation.Spread
	Samples int
	Seed    int64

	// Deck and Output drive a Netlist job. A nil Output discards the
	// analysis tables (the Metrics still report the solver work).
	Deck   *netlist.Deck
	Output io.Writer

	// Sink, when non-nil, receives results incrementally as the job
	// computes them — see the Sink interface for the ordering, memory
	// and error contract. Nil keeps the fully buffered Result.
	Sink Sink
}

// Result is a job's response. Only the fields of the requested Kind
// are populated, plus the request-scoped observability pair: Metrics
// (telemetry counter deltas attributable to this job — non-zero deltas
// only) and Elapsed.
type Result struct {
	// IDS and OP answer an IVPoint (OP only when the model implements
	// device.Device; OP.IDS == IDS then).
	IDS float64
	OP  fettoy.OperatingPoint

	// Family answers FamilySweep and RMSCompare; RefFamily and
	// RMSPercent (one entry per gate voltage) answer RMSCompare.
	Family     []sweep.Curve
	RefFamily  []sweep.Curve
	RMSPercent []float64

	// MC answers MonteCarlo.
	MC *variation.Result

	// Metrics holds the per-job telemetry counter deltas (quadrature
	// points, Newton iterations, sweep points, ...). Deltas are exact
	// for a job running alone and attributably approximate under
	// concurrent jobs (the registry is process-wide).
	Metrics map[string]int64
	// Elapsed is the wall-clock job duration.
	Elapsed time.Duration
}

// Run executes one job. It is safe for concurrent use; the models
// referenced by the request must themselves be safe for concurrent use
// if shared across jobs (both library models are, after construction).
// Errors are classified — see JobError.
func Run(ctx context.Context, req Request) (Result, error) {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxpropagate documented nil-context guard, not a root context
	}
	reg := telemetry.Default()
	reg.Counter(telemetry.KeyEngineJobs).Inc()
	ctx, span := telemetry.StartSpan(ctx, telemetry.SpanEngineJob)
	span.Set(telemetry.String(telemetry.AttrJobKind, req.Kind.String()))
	before := reg.Snapshot().Counters
	start := time.Now()
	res, err := dispatch(ctx, req)
	res.Elapsed = time.Since(start)
	res.Metrics = counterDelta(before, reg.Snapshot().Counters)
	reg.Histogram(telemetry.KeyEngineJobSeconds, telemetry.LatencyBuckets).
		Observe(res.Elapsed.Seconds())
	// The per-job counter deltas double as span attributes: the same
	// Newton-iteration and cache-hit movement that is global noise in
	// the registry is exact cost attribution on the job's span.
	span.SetMetrics(res.Metrics)
	if len(req.Gates) > 0 || len(req.Drains) > 0 {
		span.Set(
			telemetry.Int(telemetry.AttrGates, int64(len(req.Gates))),
			telemetry.Int(telemetry.AttrDrains, int64(len(req.Drains))),
		)
	}
	if err != nil {
		span.Set(telemetry.String(telemetry.AttrError, err.Error()))
		span.End()
		return res, classify(req.Kind, err)
	}
	span.End()
	return res, nil
}

func dispatch(ctx context.Context, req Request) (Result, error) {
	if err := context.Cause(ctx); err != nil {
		return Result{}, err
	}
	switch req.Kind {
	case IVPoint:
		return runIVPoint(ctx, req)
	case FamilySweep:
		return runFamily(ctx, req)
	case RMSCompare:
		return runRMSCompare(ctx, req)
	case MonteCarlo:
		return runMonteCarlo(ctx, req)
	case Netlist:
		return runNetlist(ctx, req)
	}
	return Result{}, invalidf("engine: unknown job kind %d", int(req.Kind))
}

func runIVPoint(ctx context.Context, req Request) (Result, error) {
	if req.Model == nil {
		return Result{}, invalidf("engine: %s needs Model", req.Kind)
	}
	// A table-backed model pays its one-time tabulation here, under the
	// job's context, instead of uncancellably inside the first solve.
	if err := prebuild(ctx, req.Model); err != nil {
		return Result{}, err
	}
	if err := context.Cause(ctx); err != nil {
		return Result{}, err
	}
	var res Result
	if d, ok := req.Model.(device.Device); ok {
		op, err := d.Solve(req.Bias)
		if err != nil {
			return Result{}, err
		}
		res.OP = op
		res.IDS = op.IDS
		return res, nil
	}
	ids, err := req.Model.IDS(req.Bias)
	if err != nil {
		return Result{}, err
	}
	res.IDS = ids
	return res, nil
}

// prebuild completes a model's deferred construction (charge-table
// tabulation) under the job's context, so the one-time cost is
// cancellable instead of hiding inside the first solve.
func prebuild(ctx context.Context, m device.Solver) error {
	if cb, ok := m.(device.ContextBuilder); ok {
		return cb.BuildContext(ctx)
	}
	return nil
}

// resolveStrategy maps Auto onto a concrete scheduler. Workers == 0
// means "use GOMAXPROCS" to FamilyParallel, so the zero-value request
// resolves to the parallel scheduler; only an explicit Workers: 1
// keeps the serial batch path.
func resolveStrategy(st Strategy, workers int) Strategy {
	if st != Auto {
		return st
	}
	if workers == 1 {
		return Batch
	}
	return Parallel
}

// familyOnceTo runs one family sweep under the resolved strategy,
// handing rows to emit in gate order as they complete.
func familyOnceTo(ctx context.Context, req Request, m device.Solver, emit func(int, sweep.Curve) error) error {
	switch resolveStrategy(req.Strategy, req.Workers) {
	case Serial:
		return sweep.FamilyTo(ctx, m, req.Gates, req.Drains, emit)
	case Parallel:
		return sweep.FamilyParallelTo(ctx, m, req.Gates, req.Drains, req.Workers, emit)
	default:
		return sweep.FamilyBatchTo(ctx, m, req.Gates, req.Drains, emit)
	}
}

// familyOnce is the collecting wrapper over familyOnceTo.
func familyOnce(ctx context.Context, req Request, m device.Solver) ([]sweep.Curve, error) {
	out := make([]sweep.Curve, 0, len(req.Gates))
	if err := familyOnceTo(ctx, req, m, func(_ int, c sweep.Curve) error {
		out = append(out, c)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

func validateGrid(req Request) error {
	if req.Model == nil {
		return invalidf("engine: %s needs Model", req.Kind)
	}
	if len(req.Gates) == 0 || len(req.Drains) == 0 {
		return invalidf("engine: %s needs a non-empty Gates x Drains grid", req.Kind)
	}
	return nil
}

func runFamily(ctx context.Context, req Request) (Result, error) {
	if err := validateGrid(req); err != nil {
		return Result{}, err
	}
	if err := prebuild(ctx, req.Model); err != nil {
		return Result{}, err
	}
	repeat := req.Repeat
	if repeat < 1 {
		repeat = 1
	}
	var res Result
	for i := 0; i < repeat; i++ {
		if req.Sink != nil && i == repeat-1 {
			// Streaming iteration: rows leave through the sink as they
			// complete and are not buffered — a million-point sweep
			// holds one row at a time (batch path) instead of the whole
			// family. Earlier Repeat iterations (benchmark loops) run
			// buffered and are discarded, as before.
			if err := familyOnceTo(ctx, req, req.Model, rowEmit(req.Sink, false)); err != nil {
				return Result{}, err
			}
			res.Family = nil
			continue
		}
		fam, err := familyOnce(ctx, req, req.Model)
		if err != nil {
			return Result{}, err
		}
		res.Family = fam
	}
	return res, nil
}

func runRMSCompare(ctx context.Context, req Request) (Result, error) {
	if err := validateGrid(req); err != nil {
		return Result{}, err
	}
	if (req.Ref == nil) == (req.RefFamily == nil) {
		return Result{}, invalidf("engine: %s needs exactly one of Ref or RefFamily", req.Kind)
	}
	// A precomputed reference family must actually cover the grid: an
	// empty or mis-sized RefFamily is a malformed request, not the
	// numerical failure sweep.CompareFamilies would later report it as.
	if req.Ref == nil {
		if len(req.RefFamily) == 0 {
			return Result{}, invalidf("engine: %s needs a non-empty RefFamily", req.Kind)
		}
		if len(req.RefFamily) != len(req.Gates) {
			return Result{}, invalidf("engine: %s RefFamily has %d curves for %d gate voltages",
				req.Kind, len(req.RefFamily), len(req.Gates))
		}
	}
	var res Result
	refFam := req.RefFamily
	if req.Ref != nil {
		if err := prebuild(ctx, req.Ref); err != nil {
			return Result{}, err
		}
		// The comparison needs the whole reference family, so the rows
		// are collected either way; with a sink they stream out too
		// (Ref: true) as they complete.
		refFam = make([]sweep.Curve, 0, len(req.Gates))
		collect := func(gi int, c sweep.Curve) error {
			refFam = append(refFam, c)
			if req.Sink != nil {
				return rowEmit(req.Sink, true)(gi, c)
			}
			return nil
		}
		if err := familyOnceTo(ctx, req, req.Ref, collect); err != nil {
			return Result{}, err
		}
	} else if req.Sink != nil {
		// A precomputed reference still streams, so a consumer sees the
		// same row sequence whichever way the reference was supplied.
		for gi, c := range refFam {
			if err := rowEmit(req.Sink, true)(gi, c); err != nil {
				return Result{}, err
			}
		}
	}
	if err := prebuild(ctx, req.Model); err != nil {
		return Result{}, err
	}
	fam := make([]sweep.Curve, 0, len(req.Gates))
	collect := func(gi int, c sweep.Curve) error {
		fam = append(fam, c)
		if req.Sink != nil {
			return rowEmit(req.Sink, false)(gi, c)
		}
		return nil
	}
	if err := familyOnceTo(ctx, req, req.Model, collect); err != nil {
		return Result{}, err
	}
	rms, err := sweep.CompareFamilies(fam, refFam)
	if err != nil {
		return Result{}, err
	}
	res.Family = fam
	res.RefFamily = refFam
	res.RMSPercent = rms
	return res, nil
}

func runMonteCarlo(ctx context.Context, req Request) (Result, error) {
	if req.Samples < 1 {
		return Result{}, invalidf("engine: %s needs Samples >= 1, got %d", req.Kind, req.Samples)
	}
	var every int
	var emit func(variation.Partial) error
	if req.Sink != nil {
		// Checkpoint cadence: ~64 partials per study keeps a live
		// convergence picture without flooding small runs or starving
		// huge ones.
		every = req.Samples / 64
		if every < 1 {
			every = 1
		}
		if every > 16384 {
			every = 16384
		}
		emit = func(p variation.Partial) error {
			ev := Event{MC: &MCEvent{Done: p.Done, Total: p.Total, Mean: p.Mean, Std: p.Std}}
			if err := req.Sink.Emit(ev); err != nil {
				return fmt.Errorf("%w: %w", ErrSinkClosed, err)
			}
			return nil
		}
	}
	mc, err := variation.MonteCarloIDSTo(ctx, req.Device, req.Spread, req.Bias, req.Samples, req.Seed, every, emit)
	if err != nil {
		return Result{}, err
	}
	return Result{MC: &mc}, nil
}

func runNetlist(ctx context.Context, req Request) (Result, error) {
	if req.Deck == nil {
		return Result{}, invalidf("engine: %s needs Deck", req.Kind)
	}
	out := req.Output
	if out == nil {
		out = io.Discard
	}
	return Result{}, req.Deck.RunContext(ctx, out)
}

// counterDelta keeps the non-zero counter movements of one job.
func counterDelta(before, after map[string]int64) map[string]int64 {
	d := make(map[string]int64)
	for k, v := range after {
		if dv := v - before[k]; dv != 0 {
			d[k] = dv
		}
	}
	return d
}
