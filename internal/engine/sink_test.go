package engine

import (
	"context"
	"errors"
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/sweep"
	"cntfet/internal/units"
)

// collectSink buffers every event, optionally failing after a number
// of row deliveries.
type collectSink struct {
	rows    []RowEvent
	mcs     []MCEvent
	failAt  int // fail when len(rows) reaches failAt (0 = never)
	failErr error
}

func (s *collectSink) Emit(ev Event) error {
	if ev.Row != nil {
		if s.failAt > 0 && len(s.rows) >= s.failAt {
			return s.failErr
		}
		s.rows = append(s.rows, *ev.Row)
	}
	if ev.MC != nil {
		s.mcs = append(s.mcs, *ev.MC)
	}
	return nil
}

// TestSinkFamilyBitForBit is the tentpole equivalence check at the
// engine layer: for every strategy, the rows a sink receives are
// bit-identical, in the same order, to the buffered Result.Family —
// and the streamed Result carries no family (bounded memory).
func TestSinkFamilyBitForBit(t *testing.T) {
	_, fast := buildPair(t, fettoy.Default())
	vgs := units.Linspace(0.3, 0.6, 7)
	vds := units.Linspace(0, 0.6, 31)
	for _, st := range []Strategy{Serial, Batch, Parallel} {
		base := Request{Kind: FamilySweep, Model: fast, Gates: vgs, Drains: vds, Strategy: st, Workers: 3}
		buffered, err := Run(context.Background(), base)
		if err != nil {
			t.Fatal(err)
		}
		sink := &collectSink{}
		streamReq := base
		streamReq.Sink = sink
		streamed, err := Run(context.Background(), streamReq)
		if err != nil {
			t.Fatal(err)
		}
		if streamed.Family != nil {
			t.Fatalf("strategy %d: streamed Result still buffers %d curves", st, len(streamed.Family))
		}
		if len(sink.rows) != len(buffered.Family) {
			t.Fatalf("strategy %d: %d rows streamed, want %d", st, len(sink.rows), len(buffered.Family))
		}
		for i, ev := range sink.rows {
			if ev.Index != i || ev.Ref {
				t.Fatalf("strategy %d: row %d arrived as %+v", st, i, ev)
			}
			want := buffered.Family[i]
			if ev.Curve.VG != want.VG { //lint:allow floatcmp bit-for-bit equivalence is the contract
				t.Fatalf("strategy %d row %d: VG %g vs %g", st, i, ev.Curve.VG, want.VG)
			}
			for j := range want.IDS {
				if ev.Curve.IDS[j] != want.IDS[j] { //lint:allow floatcmp bit-for-bit equivalence is the contract
					t.Fatalf("strategy %d row %d point %d: %g vs %g", st, i, j, ev.Curve.IDS[j], want.IDS[j])
				}
			}
		}
	}
}

// TestSinkFailureClassifiesCanceled checks the error contract: a
// refusing sink aborts the job and Run reports it as a cancellation
// carrying ErrSinkClosed and the sink's own error.
func TestSinkFailureClassifiesCanceled(t *testing.T) {
	_, fast := buildPair(t, fettoy.Default())
	gone := errors.New("client went away")
	sink := &collectSink{failAt: 2, failErr: gone}
	_, err := Run(context.Background(), Request{
		Kind:   FamilySweep,
		Model:  fast,
		Gates:  units.Linspace(0.3, 0.6, 7),
		Drains: units.Linspace(0, 0.6, 11),
		Sink:   sink,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, ErrSinkClosed) || !errors.Is(err, gone) {
		t.Fatalf("chain lost the sink diagnostics: %v", err)
	}
	if len(sink.rows) != 2 {
		t.Fatalf("%d rows delivered before abort, want 2", len(sink.rows))
	}
}

// TestSinkRMSCompare checks the comparison job's stream: reference
// rows (Ref: true) in gate order, then model rows, with the buffered
// result untouched.
func TestSinkRMSCompare(t *testing.T) {
	ref, fast := buildPair(t, fettoy.Default())
	vgs := units.Linspace(0.3, 0.5, 3)
	vds := units.Linspace(0, 0.6, 13)
	sink := &collectSink{}
	res, err := Run(context.Background(), Request{
		Kind: RMSCompare, Model: fast, Ref: ref,
		Gates: vgs, Drains: vds, Strategy: Batch, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Family) != len(vgs) || len(res.RefFamily) != len(vgs) || len(res.RMSPercent) != len(vgs) {
		t.Fatalf("buffered comparison payload degenerate: %d/%d/%d", len(res.Family), len(res.RefFamily), len(res.RMSPercent))
	}
	if len(sink.rows) != 2*len(vgs) {
		t.Fatalf("%d rows streamed, want %d", len(sink.rows), 2*len(vgs))
	}
	for i, ev := range sink.rows {
		wantRef := i < len(vgs)
		wantIdx := i % len(vgs)
		if ev.Ref != wantRef || ev.Index != wantIdx {
			t.Fatalf("row %d arrived as ref=%v idx=%d, want ref=%v idx=%d", i, ev.Ref, ev.Index, wantRef, wantIdx)
		}
	}
	// A precomputed reference must stream the same sequence.
	sink2 := &collectSink{}
	res2, err := Run(context.Background(), Request{
		Kind: RMSCompare, Model: fast, RefFamily: res.RefFamily,
		Gates: vgs, Drains: vds, Strategy: Batch, Sink: sink2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink2.rows) != 2*len(vgs) {
		t.Fatalf("precomputed reference streamed %d rows, want %d", len(sink2.rows), 2*len(vgs))
	}
	for i := range res2.RMSPercent {
		if res2.RMSPercent[i] != res.RMSPercent[i] { //lint:allow floatcmp same grid, same models, same arithmetic
			t.Fatalf("gate %d: RMS differs between swept and precomputed reference", i)
		}
	}
}

// TestSinkMonteCarlo checks the study stream: monotone checkpoints
// ending at the full sample count, with the buffered statistics
// unchanged by emission.
func TestSinkMonteCarlo(t *testing.T) {
	buffered, err := Run(context.Background(), Request{
		Kind: MonteCarlo, Device: fettoy.Default(),
		Bias:    fettoy.Bias{VG: 0.5, VD: 0.4},
		Samples: 50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	streamed, err := Run(context.Background(), Request{
		Kind: MonteCarlo, Device: fettoy.Default(),
		Bias:    fettoy.Bias{VG: 0.5, VD: 0.4},
		Samples: 50, Seed: 7, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.mcs) == 0 {
		t.Fatal("no Monte Carlo checkpoints streamed")
	}
	prev := 0
	for _, ev := range sink.mcs {
		if ev.Done <= prev || ev.Total != 50 {
			t.Fatalf("checkpoint out of order: %+v after Done=%d", ev, prev)
		}
		prev = ev.Done
	}
	if prev != 50 {
		t.Fatalf("final checkpoint at %d samples, want 50", prev)
	}
	for i := range buffered.MC.Samples {
		if buffered.MC.Samples[i] != streamed.MC.Samples[i] { //lint:allow floatcmp emission must not perturb the draws
			t.Fatalf("sample %d differs between buffered and streamed runs", i)
		}
	}
}

var _ Sink = SinkFunc(nil)

// TestSinkFuncAdapter pins the function adapter.
func TestSinkFuncAdapter(t *testing.T) {
	n := 0
	s := SinkFunc(func(Event) error { n++; return nil })
	if err := s.Emit(Event{Row: &RowEvent{Curve: sweep.Curve{}}}); err != nil || n != 1 {
		t.Fatalf("adapter broken: n=%d err=%v", n, err)
	}
}
