package engine

import (
	"errors"
	"fmt"

	"cntfet/internal/sweep"
)

// Sink receives a job's results incrementally while the job runs —
// one event per completed sweep row, one per Monte Carlo statistics
// checkpoint — so a front-end can forward them (the streaming NDJSON
// responses of internal/server) instead of waiting for the buffered
// Result. Set it on Request.Sink; a nil Sink is the buffered path.
//
// Contract:
//   - Events arrive in result order (rows by ascending gate index,
//     reference rows before model rows in an RMSCompare; Monte Carlo
//     partials by ascending Done) regardless of sweep strategy — the
//     parallel scheduler reorders internally before emitting.
//   - The rows streamed for a FamilySweep are bit-for-bit the curves
//     the buffered Result.Family would hold; to keep the job's memory
//     bounded by one row, Result.Family stays nil when a Sink is set
//     (RMSCompare still buffers both families — the RMS comparison
//     needs them — and Repeat > 1 streams only the final iteration).
//   - Emit is called from the job's goroutines (a parallel sweep calls
//     it under an internal lock, never concurrently) and blocks the
//     emitting worker: a slow consumer is backpressure, not a buffer.
//   - A non-nil error from Emit aborts the job promptly; Run returns a
//     JobError classified as ErrCanceled whose chain carries
//     ErrSinkClosed and the sink's own error.
type Sink interface {
	Emit(Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event) error

// Emit implements Sink.
func (f SinkFunc) Emit(ev Event) error { return f(ev) }

// Event is one incremental result. Exactly one field is non-nil.
type Event struct {
	// Row is a completed sweep row (FamilySweep, RMSCompare).
	Row *RowEvent
	// MC is a Monte Carlo running-statistics checkpoint.
	MC *MCEvent
}

// RowEvent is one finished IDS(VDS) curve. Index is the row's position
// in the request's Gates grid; Ref marks the reference family of an
// RMSCompare (reference rows stream before model rows). Ownership of
// the Curve's slices transfers to the sink.
type RowEvent struct {
	Index int
	Ref   bool
	Curve sweep.Curve
}

// MCEvent mirrors variation.Partial: running mean and standard
// deviation over the first Done of Total samples.
type MCEvent struct {
	Done, Total int
	Mean, Std   float64
}

// ErrSinkClosed marks a job aborted because its Sink refused an event
// — typically a streaming client that disconnected mid-response. Such
// failures classify as ErrCanceled: the consumer gave up, the job did
// not fail.
var ErrSinkClosed = errors.New("engine: sink closed")

// rowEmit adapts a Sink to the sweep layer's emit callback, wrapping
// sink failures in ErrSinkClosed so they classify as cancellation.
func rowEmit(s Sink, ref bool) func(int, sweep.Curve) error {
	return func(gi int, c sweep.Curve) error {
		if err := s.Emit(Event{Row: &RowEvent{Index: gi, Ref: ref, Curve: c}}); err != nil {
			return fmt.Errorf("%w: %w", ErrSinkClosed, err)
		}
		return nil
	}
}
