// Package server is the long-running front-end of the library: a
// stdlib-only HTTP service that decodes JSON job requests into
// engine.Request, runs them through engine.Run, and answers with
// engine.Result as JSON. It closes the ROADMAP's "sharded / batched
// sweep service" loop: PR 2's batched sweep engine is the compute
// core, PR 3's job API is the request surface, and this package adds
// the production plumbing a multi-tenant deployment needs —
//
//   - a keyed model cache (cache.go) so charge tables and piecewise
//     fits are built once per (family, device, T, EF) and shared;
//   - admission control: a concurrency-limiting semaphore answering
//     429 at saturation, and a request body-size cap;
//   - per-request deadlines and client-disconnect cancellation, both
//     threaded into the job context so sweeps abort promptly;
//   - the engine error taxonomy mapped onto HTTP statuses
//     (ErrInvalidRequest→400, ErrCanceled→499, ErrNumerical→422);
//   - graceful shutdown draining in-flight jobs; and
//   - /healthz plus a /metrics telemetry snapshot, with the service's
//     own work counted under the server.* keys.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"cntfet/internal/engine"
	"cntfet/internal/telemetry"
)

// StatusClientClosedRequest is the non-standard HTTP status (nginx's
// 499) answering a job whose client disconnected — or whose deadline
// expired — before the result was ready. net/http cannot deliver it to
// the vanished client; it exists for access logs and the status
// counters.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value serves on :8080 with
// production-shaped defaults.
type Config struct {
	// Addr is the listen address (ListenAndServe). Empty means :8080.
	Addr string
	// Timeout is the per-request job deadline. Zero means 60s;
	// negative disables the deadline (client disconnect still
	// cancels).
	Timeout time.Duration
	// MaxBody caps the request body size in bytes. Zero means 1 MiB.
	MaxBody int64
	// MaxInFlight bounds concurrently running jobs; excess requests
	// are shed with 429. Zero means GOMAXPROCS.
	MaxInFlight int
	// Resolver resolves wire model descriptions. Nil means a fresh
	// ModelCache; tests substitute fakes.
	Resolver Resolver
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.Resolver == nil {
		c.Resolver = NewModelCache()
	}
	return c
}

// Server is the HTTP front-end. Create one with New; drive it with
// ListenAndServe or Serve and stop it with Shutdown.
type Server struct {
	cfg  Config
	sem  chan struct{}
	http *http.Server
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /metrics", handleMetrics)
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler exposes the route table (handler-level tests go through it
// without a listener).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// ListenAndServe serves on the configured address until Shutdown.
// Like http.Server, it returns http.ErrServerClosed after a clean
// shutdown.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Serve serves on an existing listener (tests bind an ephemeral port
// first and read it back).
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown stops accepting connections and drains in-flight jobs,
// waiting until they finish or ctx expires. In-flight job contexts
// stay live during the drain: a request already computing completes
// and its client gets the answer.
func (s *Server) Shutdown(ctx context.Context) error { return s.http.Shutdown(ctx) }

// handleJob is POST /v1/jobs: admission control, decode, resolve,
// run, answer.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	reg := telemetry.Default()
	reg.Counter(telemetry.KeyServerRequests).Inc()

	// Admission first, before reading the body: a saturated server
	// sheds load at the cheapest possible point.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		reg.Counter(telemetry.KeyServerSaturated).Inc()
		reg.Counter(telemetry.KeyServerErrors).Inc()
		writeError(w, http.StatusTooManyRequests, "saturated",
			fmt.Errorf("server: all %d job slots busy", cap(s.sem)))
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var jr JobRequest
	if err := dec.Decode(&jr); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		reg.Counter(telemetry.KeyServerErrors).Inc()
		writeError(w, status, "invalid-request", fmt.Errorf("decoding request: %w", err))
		return
	}

	req, err := jr.toEngine(s.cfg.Resolver)
	if err != nil {
		reg.Counter(telemetry.KeyServerErrors).Inc()
		writeError(w, http.StatusBadRequest, "invalid-request", err)
		return
	}

	// The job context is the request context — net/http cancels it on
	// client disconnect — tightened by the per-request deadline.
	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	res, err := engine.Run(ctx, req)
	if err != nil {
		status, class := statusOf(err)
		if status == StatusClientClosedRequest {
			reg.Counter(telemetry.KeyServerCanceled).Inc()
		} else {
			reg.Counter(telemetry.KeyServerErrors).Inc()
		}
		writeError(w, status, class, err)
		return
	}
	writeJSON(w, http.StatusOK, toWire(jr.Kind, res))
}

// statusOf maps the engine error taxonomy onto HTTP statuses via
// errors.Is, so the classification established by engine.JobError
// travels to the client unchanged.
func statusOf(err error) (status int, class string) {
	switch {
	case errors.Is(err, engine.ErrInvalidRequest):
		return http.StatusBadRequest, "invalid-request"
	case errors.Is(err, engine.ErrCanceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, engine.ErrNumerical):
		return http.StatusUnprocessableEntity, "numerical"
	}
	return http.StatusInternalServerError, "internal"
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the process-wide telemetry snapshot — the same
// counters the CLIs print with -metrics, plus the server.* keys.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.Default().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding errors past the header are undeliverable (the client is
	// mid-read or gone); nothing useful remains to be done with them.
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, class string, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Class: class})
}
