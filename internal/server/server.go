// Package server is the long-running front-end of the library: a
// stdlib-only HTTP service that decodes JSON job requests into
// engine.Request, runs them through engine.Run, and answers with
// engine.Result as JSON. It closes the ROADMAP's "sharded / batched
// sweep service" loop: PR 2's batched sweep engine is the compute
// core, PR 3's job API is the request surface, and this package adds
// the production plumbing a multi-tenant deployment needs —
//
//   - a keyed model cache (cache.go) so charge tables and piecewise
//     fits are built once per (family, device, T, EF) and shared;
//   - admission control: a concurrency-limiting semaphore answering
//     429 at saturation, and a request body-size cap;
//   - per-request deadlines and client-disconnect cancellation, both
//     threaded into the job context so sweeps abort promptly;
//   - the engine error taxonomy mapped onto HTTP statuses
//     (ErrInvalidRequest→400, ErrCanceled→499, ErrNumerical→422);
//   - graceful shutdown draining in-flight jobs; and
//   - request-scoped observability: every request runs under a
//     telemetry span (the trace ID threads through engine → sweep →
//     charge-table build), the NDJSON access and job logs carry that
//     trace ID, /debug/trace serves the completed-span ring,
//     /metrics serves Prometheus text exposition (latency and
//     job-duration histograms included) and /metrics.json keeps the
//     JSON snapshot the CLIs consume.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cntfet/internal/engine"
	"cntfet/internal/telemetry"
)

// StatusClientClosedRequest is the non-standard HTTP status (nginx's
// 499) answering a job whose client disconnected — or whose deadline
// expired — before the result was ready. net/http cannot deliver it to
// the vanished client; it exists for access logs and the status
// counters.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value serves on :8080 with
// production-shaped defaults.
type Config struct {
	// Addr is the listen address (ListenAndServe). Empty means :8080.
	Addr string
	// Timeout is the per-request job deadline. Zero means 60s;
	// negative disables the deadline (client disconnect still
	// cancels).
	Timeout time.Duration
	// MaxBody caps the request body size in bytes. Zero means 1 MiB.
	MaxBody int64
	// MaxInFlight bounds concurrently running jobs; excess requests
	// are shed with 429. Zero means GOMAXPROCS.
	MaxInFlight int
	// Resolver resolves wire model descriptions. Nil means a fresh
	// ModelCache; tests substitute fakes.
	Resolver Resolver
	// SnapshotDir, when set and Resolver is nil, points the default
	// ModelCache at a directory of charge-table snapshots: reference
	// models warm-start from "<key>.snap" when one matches, and write
	// one after building otherwise, so a restarted replica's first
	// reference job skips the tabulation (fettoy.table.builds stays 0).
	SnapshotDir string
	// AccessLog, when set, receives the structured NDJSON access/job
	// log: one "access" record per request, one "job" record per
	// /v1/jobs request that reached the engine, and — when span
	// tracing is enabled — one "span" record per completed span. All
	// records of one request share a trace ID.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.Resolver == nil {
		mc := NewModelCache()
		mc.SetSnapshotDir(c.SnapshotDir)
		c.Resolver = mc
	}
	return c
}

// Server is the HTTP front-end. Create one with New; drive it with
// ListenAndServe or Serve and stop it with Shutdown.
type Server struct {
	cfg     Config
	sem     chan struct{}
	http    *http.Server
	log     *telemetry.Logger
	start   time.Time
	flights flightGroup
	// drainCtx ends when Shutdown finishes draining (or gives up);
	// coalesced flight leaders derive from it so a detached engine run
	// cannot outlive the server.
	drainCtx    context.Context
	drainCancel context.CancelFunc
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background()) //lint:allow ctxpropagate the drain context is rooted in the server's lifetime, not any request
	if cfg.AccessLog != nil {
		s.log = telemetry.NewLogger(cfg.AccessLog)
		// Completed spans join the same NDJSON stream, so one file
		// correlates access lines, job lines and the span tree.
		telemetry.DefaultTracer().SetLogger(s.log)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /metrics.json", handleMetricsJSON)
	mux.HandleFunc("GET /debug/trace", handleDebugTrace)
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.observe(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler exposes the route table including the observability
// middleware (handler-level tests go through it without a listener).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// ListenAndServe serves on the configured address until Shutdown.
// Like http.Server, it returns http.ErrServerClosed after a clean
// shutdown.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Serve serves on an existing listener (tests bind an ephemeral port
// first and read it back).
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown stops accepting connections and drains in-flight jobs,
// waiting until they finish or ctx expires. In-flight job contexts
// stay live during the drain: a request already computing completes
// and its client gets the answer. Once the drain ends — either way —
// any coalesced flight still running is cancelled, so a detached
// leader cannot keep computing past an over-budget shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.drainCancel()
	return err
}

// statusWriter captures the response status for the access log and
// the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher — streamed responses flush through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// observe is the observability middleware every route runs under: it
// roots the request's span (when tracing is enabled), times the
// exchange into the server.request_seconds histogram, and writes one
// access-log record carrying the trace ID.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, span := telemetry.StartSpan(r.Context(), telemetry.SpanServerRequest)
		rec := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))
		d := time.Since(start)
		telemetry.Default().
			Histogram(telemetry.KeyServerRequestSeconds, telemetry.LatencyBuckets).
			Observe(d.Seconds())
		span.Set(
			telemetry.String(telemetry.AttrMethod, r.Method),
			telemetry.String(telemetry.AttrPath, r.URL.Path),
			telemetry.Int(telemetry.AttrStatus, int64(rec.status)),
		)
		span.End()
		s.log.Log(telemetry.LogEventAccess,
			telemetry.String(telemetry.FieldTrace, span.TraceID()),
			telemetry.String(telemetry.AttrMethod, r.Method),
			telemetry.String(telemetry.AttrPath, r.URL.Path),
			telemetry.Int(telemetry.AttrStatus, int64(rec.status)),
			telemetry.Dur(telemetry.FieldDurNS, d),
		)
	})
}

// handleJob is POST /v1/jobs: admission control, decode, resolve,
// run, answer — all under the request span the middleware rooted.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	reg := telemetry.Default()
	reg.Counter(telemetry.KeyServerRequests).Inc()

	// Admission first, before reading the body: a saturated server
	// sheds load at the cheapest possible point.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		reg.Counter(telemetry.KeyServerSaturated).Inc()
		reg.Counter(telemetry.KeyServerErrors).Inc()
		writeError(w, http.StatusTooManyRequests, "saturated",
			fmt.Errorf("server: all %d job slots busy", cap(s.sem)))
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var jr JobRequest
	if err := dec.Decode(&jr); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		reg.Counter(telemetry.KeyServerErrors).Inc()
		writeError(w, status, "invalid-request", fmt.Errorf("decoding request: %w", err))
		return
	}

	// The job context is the request context — net/http cancels it on
	// client disconnect — tightened by the per-request deadline. It is
	// established before model resolution, so a cache-miss build is
	// attributed to (and bounded by) the request that pays for it.
	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	telemetry.SpanFrom(ctx).Set(telemetry.String(telemetry.AttrJobKind, jr.Kind))

	req, meta, err := jr.toEngine(ctx, s.cfg.Resolver)
	if err != nil {
		reg.Counter(telemetry.KeyServerErrors).Inc()
		writeError(w, http.StatusBadRequest, "invalid-request", err)
		return
	}
	if meta.Resolved {
		telemetry.SpanFrom(ctx).Set(
			telemetry.String(telemetry.AttrModelKey, meta.ModelKey),
			telemetry.Bool(telemetry.AttrCacheHit, meta.CacheHit),
		)
	}

	if wantsStream(jr, r) {
		// Streamed responses bypass coalescing: the byte stream belongs
		// to this connection alone. The deadline context still applies.
		s.streamJob(w, r.WithContext(ctx), jr, req, meta)
		return
	}

	// Buffered identical requests in flight at the same time share one
	// engine run (coalesce.go); the key is the canonical re-encoding of
	// the decoded request.
	res, coalesced, err := s.runCoalesced(ctx, jr, req)
	if coalesced {
		telemetry.SpanFrom(ctx).Set(telemetry.Bool(telemetry.AttrCoalesced, true))
	}
	status := http.StatusOK
	if err != nil {
		var class string
		status, class = statusOf(err)
		if status == StatusClientClosedRequest {
			reg.Counter(telemetry.KeyServerCanceled).Inc()
		} else {
			reg.Counter(telemetry.KeyServerErrors).Inc()
		}
		s.logJob(ctx, jr.Kind, meta, status, res)
		writeError(w, status, class, err)
		return
	}
	s.logJob(ctx, jr.Kind, meta, status, res)
	writeJSON(w, http.StatusOK, toWire(jr.Kind, res))
}

// runCoalesced routes a buffered job through the flight group. A
// request whose key cannot be computed (never expected: JobRequest is
// plain data) just runs alone.
func (s *Server) runCoalesced(ctx context.Context, jr JobRequest, req engine.Request) (engine.Result, bool, error) {
	key, err := coalesceKey(jr)
	if err != nil {
		res, runErr := engine.Run(ctx, req)
		return res, false, runErr
	}
	return s.flights.run(ctx, s.drainCtx, key, req)
}

// logJob writes the per-job NDJSON record: one line per job that
// reached the engine, sharing the access log's trace ID and carrying
// the job's cost attribution (duration, Newton iterations, sweep
// points, model identity and cache outcome).
func (s *Server) logJob(ctx context.Context, kind string, meta resolveMeta, status int, res engine.Result) {
	if s.log == nil {
		return
	}
	fields := []telemetry.Field{
		telemetry.String(telemetry.FieldTrace, telemetry.TraceIDFrom(ctx)),
		telemetry.String(telemetry.AttrJobKind, kind),
		telemetry.Int(telemetry.AttrStatus, int64(status)),
		telemetry.Dur(telemetry.FieldDurNS, res.Elapsed),
		telemetry.Int(telemetry.AttrNewtonIters, res.Metrics[telemetry.KeyFettoyNewtonIters]),
		telemetry.Int(telemetry.AttrPoints, res.Metrics[telemetry.KeySweepPoints]),
	}
	if meta.Resolved {
		fields = append(fields,
			telemetry.String(telemetry.AttrModelKey, meta.ModelKey),
			telemetry.Bool(telemetry.AttrCacheHit, meta.CacheHit),
		)
	}
	s.log.Log(telemetry.LogEventJob, fields...)
}

// statusOf maps the engine error taxonomy onto HTTP statuses via
// errors.Is, so the classification established by engine.JobError
// travels to the client unchanged. The httpstatus analyzer reconciles
// the arms below against every //taxonomy:class sentinel, both ways.
//
//taxonomy:statusmap
func statusOf(err error) (status int, class string) {
	switch {
	case errors.Is(err, engine.ErrInvalidRequest):
		return http.StatusBadRequest, "invalid-request"
	case errors.Is(err, engine.ErrCanceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, engine.ErrNumerical):
		return http.StatusUnprocessableEntity, "numerical"
	}
	return http.StatusInternalServerError, "internal"
}

// Health is the GET /healthz response body: enough build and load
// identity to tell replicas apart in a fleet.
type Health struct {
	Status string `json:"status"`
	// GoVersion is the runtime's version; Revision the VCS commit the
	// binary was built from (with "+dirty" for modified trees), empty
	// when build info carries none (go test binaries).
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	// UptimeSeconds counts from Server construction.
	UptimeSeconds float64 `json:"uptime_s"`
	// InFlight and MaxInFlight describe current job-slot occupancy.
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
}

// buildRevision resolves the VCS revision once per process.
var buildRevision = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && rev != "" {
		rev += "+dirty"
	}
	return rev
})

// handleHealthz reports liveness plus build info, uptime and in-flight
// job count — what a fleet scheduler or a human needs to identify a
// replica, instead of the former bare 200.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      len(s.sem),
		MaxInFlight:   cap(s.sem),
	})
}

// handleMetrics serves the process-wide telemetry snapshot in
// Prometheus text exposition format — counters as *_total, timers as
// summaries, histograms (request latency, job duration, Newton
// iterations per solve) with declared buckets.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.PromContentType)
	if err := telemetry.Default().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetricsJSON keeps the pre-Prometheus JSON snapshot — the
// format the CLIs print with -metrics — available to existing tooling.
func handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := telemetry.Default().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleDebugTrace serves the bounded ring of completed spans as
// NDJSON, newest last — the server-side twin of the CLIs' -trace
// output. Empty (with tracing disabled) is a valid response.
func handleDebugTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := telemetry.DefaultTracer().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding errors past the header are undeliverable (the client is
	// mid-read or gone); nothing useful remains to be done with them.
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, class string, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Class: class})
}
