package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// refBody is the iv-point job every snapshot test resolves: the
// table-backed reference family on the default device.
const refBody = `{"kind": "iv-point", "model": {"family": "reference"}, "vg": 0.5, "vd": 0.4}`

// refSnapshotPath is where the cache expects the reference model's
// snapshot inside dir — computed through the same key path Resolve
// uses, so the tests plant files exactly where a warm start looks.
func refSnapshotPath(t *testing.T, dir string) string {
	t.Helper()
	spec := ModelSpec{Family: FamilyReference}
	dev, err := spec.device()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, snapshotFileName(specCacheKey(spec, dev)))
}

// TestSnapshotIdentityMismatchRebuilds pins the identity check: a
// snapshot at the right path for the right key string, but built with
// different table options, must be refused — counted as a
// server.snapshot.errors — and rebuilt, never silently served. Serving
// it would answer physics questions from a grid refined to the wrong
// tolerance.
func TestSnapshotIdentityMismatchRebuilds(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.Default()

	// Plant a decoy: same device, same key, coarser tolerance than the
	// default the server's warm start expects.
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	decoy := ref.EnableTable(fettoy.TableOptions{RelTol: 1e-5})
	decoy.Build()
	f, err := os.Create(refSnapshotPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := decoy.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Baselines after the decoy build, so its own table build does not
	// pollute the deltas.
	errsBefore := reg.Counter(telemetry.KeyServerSnapshotErrors).Value()
	buildsBefore := reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	loadsBefore := reg.Counter(telemetry.KeyFettoyTableSnapshotLoads).Value()

	clean := decodeJob(t, post(t, New(Config{}).Handler(), refBody))
	got := decodeJob(t, post(t, New(Config{SnapshotDir: dir}).Handler(), refBody))
	if got.IDS != clean.IDS { //lint:allow floatcmp a refused snapshot must end in a bit-identical rebuild
		t.Fatalf("mismatched snapshot changed the answer: %g, want %g", got.IDS, clean.IDS)
	}
	if d := reg.Counter(telemetry.KeyServerSnapshotErrors).Value() - errsBefore; d != 1 {
		t.Fatalf("server.snapshot.errors delta = %d, want 1", d)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableSnapshotLoads).Value() - loadsBefore; d != 0 {
		t.Fatalf("mismatched snapshot was loaded: loads delta = %d, want 0", d)
	}
	// Two builds: the clean server's and the snapshot server's rebuild.
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != 2 {
		t.Fatalf("table builds delta = %d, want 2 (clean + rebuild)", d)
	}
}

// TestSnapshotTruncatedFileRebuilds pins the crash-shaped failure the
// durable save exists to prevent arriving from older processes: a
// half-written .snap must degrade to a counted rebuild, and a
// completed save must leave exactly the snapshot — no temp residue.
func TestSnapshotTruncatedFileRebuilds(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.Default()

	cold := decodeJob(t, post(t, New(Config{SnapshotDir: dir}).Handler(), refBody))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".snap") {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("save left %v, want exactly one .snap and no temp files", names)
	}

	path := refSnapshotPath(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	errsBefore := reg.Counter(telemetry.KeyServerSnapshotErrors).Value()
	buildsBefore := reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	warm := decodeJob(t, post(t, New(Config{SnapshotDir: dir}).Handler(), refBody))
	if warm.IDS != cold.IDS { //lint:allow floatcmp a rebuilt table must answer bit-identically
		t.Fatalf("rebuild after truncated snapshot answered %g, want %g", warm.IDS, cold.IDS)
	}
	if d := reg.Counter(telemetry.KeyServerSnapshotErrors).Value() - errsBefore; d != 1 {
		t.Fatalf("server.snapshot.errors delta = %d, want 1", d)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - buildsBefore; d != 1 {
		t.Fatalf("table builds delta = %d, want 1", d)
	}

	// The rebuild re-persisted a complete snapshot: the next process
	// warm-starts again.
	if fresh, err := os.ReadFile(path); err != nil || len(fresh) != len(raw) {
		t.Fatalf("snapshot not re-persisted after rebuild: len %d, want %d (err %v)", len(fresh), len(raw), err)
	}
}
