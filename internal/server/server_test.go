package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// post sends one job request body to a handler and returns the
// recorded response.
func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeJob(t *testing.T, w *httptest.ResponseRecorder) JobResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var jr JobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &jr); err != nil {
		t.Fatalf("decoding response: %v: %s", err, w.Body)
	}
	return jr
}

// TestJobRoundTrips drives every wire job kind end-to-end through the
// handler with real models and a shared cache.
func TestJobRoundTrips(t *testing.T) {
	h := New(Config{}).Handler()

	t.Run("iv-point", func(t *testing.T) {
		jr := decodeJob(t, post(t, h, `{
			"kind": "iv-point",
			"model": {"family": "model2"},
			"vg": 0.5, "vd": 0.4
		}`))
		if !(jr.IDS > 0) {
			t.Fatalf("degenerate IDS: %+v", jr)
		}
		if jr.OP == nil || jr.OP.IDS != jr.IDS {
			t.Fatalf("operating point missing or inconsistent: %+v", jr)
		}
	})

	var family []Curve
	t.Run("family-sweep", func(t *testing.T) {
		jr := decodeJob(t, post(t, h, `{
			"kind": "family-sweep",
			"model": {"family": "model2"},
			"gates": [0.4, 0.6],
			"drains": [0, 0.3, 0.6],
			"strategy": "serial"
		}`))
		if len(jr.Family) != 2 || len(jr.Family[0].IDS) != 3 {
			t.Fatalf("degenerate family: %+v", jr)
		}
		family = jr.Family
	})

	t.Run("rms-compare/ref-model", func(t *testing.T) {
		jr := decodeJob(t, post(t, h, `{
			"kind": "rms-compare",
			"model": {"family": "model2"},
			"ref": {"family": "model1"},
			"gates": [0.4, 0.6],
			"drains": [0, 0.3, 0.6]
		}`))
		if len(jr.RMSPercent) != 2 || len(jr.RefFamily) != 2 {
			t.Fatalf("degenerate compare: %+v", jr)
		}
	})

	t.Run("rms-compare/ref-family", func(t *testing.T) {
		// The model compared against its own precomputed sweep must
		// score zero RMS on every curve.
		body, err := json.Marshal(JobRequest{
			Kind:      "rms-compare",
			Model:     &ModelSpec{Family: FamilyModel2},
			RefFamily: family,
			Gates:     []float64{0.4, 0.6},
			Drains:    []float64{0, 0.3, 0.6},
			Strategy:  "serial",
		})
		if err != nil {
			t.Fatal(err)
		}
		jr := decodeJob(t, post(t, h, string(body)))
		for i, rms := range jr.RMSPercent {
			if rms != 0 {
				t.Fatalf("self-compare rms[%d] = %g, want 0", i, rms)
			}
		}
	})

	t.Run("monte-carlo", func(t *testing.T) {
		jr := decodeJob(t, post(t, h, `{
			"kind": "monte-carlo",
			"model": {"family": "model2"},
			"vg": 0.5, "vd": 0.4,
			"ef_sigma": 0.02, "samples": 25, "seed": 7
		}`))
		if jr.MC == nil || len(jr.MC.Samples) != 25 || !(jr.MC.Mean > 0) {
			t.Fatalf("degenerate MC: %+v", jr)
		}
	})
}

// TestBadRequests checks the client-error corner: malformed JSON,
// unknown kinds/families/strategies, invalid physics, wrong routes.
func TestBadRequests(t *testing.T) {
	h := New(Config{}).Handler()
	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"malformed JSON":   {`{"kind": `, http.StatusBadRequest},
		"unknown field":    {`{"kind": "iv-point", "modle": {}}`, http.StatusBadRequest},
		"unknown kind":     {`{"kind": "netlist", "model": {"family": "model2"}}`, http.StatusBadRequest},
		"missing model":    {`{"kind": "iv-point"}`, http.StatusBadRequest},
		"unknown family":   {`{"kind": "iv-point", "model": {"family": "model9"}}`, http.StatusBadRequest},
		"unknown device":   {`{"kind": "iv-point", "model": {"family": "model2", "device": "exotic"}}`, http.StatusBadRequest},
		"invalid physics":  {`{"kind": "iv-point", "model": {"family": "model2", "t": -4}}`, http.StatusBadRequest},
		"unknown strategy": {`{"kind": "family-sweep", "model": {"family": "model2"}, "gates": [0.5], "drains": [0.1], "strategy": "warp"}`, http.StatusBadRequest},
		"empty grid":       {`{"kind": "family-sweep", "model": {"family": "model2"}}`, http.StatusBadRequest},
		"both refs":        {`{"kind": "rms-compare", "model": {"family": "model2"}, "ref": {"family": "model1"}, "ref_family": [], "gates": [0.5], "drains": [0.1]}`, http.StatusBadRequest},
		"empty ref_family": {`{"kind": "rms-compare", "model": {"family": "model2"}, "ref_family": [], "gates": [0.5], "drains": [0.1]}`, http.StatusBadRequest},
		"zero samples":     {`{"kind": "monte-carlo", "model": {"family": "model2"}}`, http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			w := post(t, h, tc.body)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.want, w.Body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("error body not structured: %s", w.Body)
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/jobs: status %d, want 405", w.Code)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		small := New(Config{MaxBody: 64}).Handler()
		w := post(t, small, `{"kind": "iv-point", "model": {"family": "model2"}, "drains": [`+
			strings.Repeat("0.1,", 100)+`0.1]}`)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413: %s", w.Code, w.Body)
		}
	})
}

// blockingSolver is a test model whose solves wait on gate signals:
// started closes on the first call, and every call then sleeps in
// short slices so sweep cancellation lands promptly.
type blockingSolver struct {
	started chan struct{}
	once    atomic.Bool
	delay   time.Duration
	calls   atomic.Int64
}

func (b *blockingSolver) IDS(bias fettoy.Bias) (float64, error) {
	if b.once.CompareAndSwap(false, true) {
		close(b.started)
	}
	b.calls.Add(1)
	time.Sleep(b.delay)
	return bias.VG * bias.VD, nil
}

type fakeResolver struct{ m device.Solver }

func (f fakeResolver) Resolve(context.Context, ModelSpec) (device.Solver, bool, error) {
	return f.m, false, nil
}

// sweepBody is a family-sweep request big enough to stay in flight
// while a test interferes with it (800 points x delay).
const sweepBody = `{
	"kind": "family-sweep",
	"model": {"family": "model2"},
	"gates": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
	"drains": [0, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
	           0.51, 0.52, 0.53, 0.54, 0.55, 0.56, 0.57, 0.58, 0.59, 0.6,
	           0.61, 0.62, 0.63, 0.64, 0.65, 0.66, 0.67, 0.68, 0.69, 0.7,
	           0.71, 0.72, 0.73, 0.74, 0.75, 0.76, 0.77, 0.78, 0.79, 0.8,
	           0.81, 0.82, 0.83, 0.84, 0.85, 0.86, 0.87, 0.88, 0.89, 0.9,
	           0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99, 1.0,
	           1.01, 1.02, 1.03, 1.04, 1.05, 1.06, 1.07, 1.08, 1.09, 1.1,
	           1.11, 1.12, 1.13, 1.14, 1.15, 1.16, 1.17, 1.18, 1.19, 1.2,
	           1.21, 1.22, 1.23, 1.24, 1.25, 1.26, 1.27, 1.28, 1.29, 1.3,
	           1.31, 1.32, 1.33, 1.34, 1.35, 1.36, 1.37, 1.38, 1.39, 1.4],
	"strategy": "serial"
}`

// TestSaturationSheds429 checks admission control: with one job slot
// busy, the next request is shed with 429 and the saturation counter
// moves; after the slot frees, requests are admitted again.
func TestSaturationSheds429(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: 2 * time.Millisecond}
	srv := New(Config{MaxInFlight: 1, Resolver: fakeResolver{m}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	saturatedBefore := telemetry.Default().Counter(telemetry.KeyServerSaturated).Value()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("first request: status %d", resp.StatusCode)
			}
		}
		firstDone <- err
	}()
	<-m.started

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Class != "saturated" {
		t.Fatalf("429 body not classified: %s", body)
	}
	if got := telemetry.Default().Counter(telemetry.KeyServerSaturated).Value(); got <= saturatedBefore {
		t.Fatalf("server.saturated did not move: %d -> %d", saturatedBefore, got)
	}

	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	// The slot is free again: a small request must be admitted.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(
		`{"kind": "family-sweep", "model": {"family": "model2"}, "gates": [0.5], "drains": [0.1], "strategy": "serial"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: status %d, want 200", resp.StatusCode)
	}
}

// TestClientDisconnectCancels checks the cancellation path end to end:
// a client that walks away mid-sweep must abort the job promptly
// (ErrCanceled -> server.canceled counted) and leak no goroutines.
func TestClientDisconnectCancels(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: 2 * time.Millisecond}
	srv := New(Config{Resolver: fakeResolver{m}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	canceledBefore := telemetry.Default().Counter(telemetry.KeyServerCanceled).Value()
	goroutinesBefore := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-m.started
	cancel()
	if err := <-done; err == nil {
		t.Fatal("client Do returned nil error after context cancel")
	}

	// The handler finishes asynchronously after the disconnect; the
	// canceled counter moving is the proof the job saw ErrCanceled.
	deadline := time.Now().Add(5 * time.Second)
	for telemetry.Default().Counter(telemetry.KeyServerCanceled).Value() <= canceledBefore &&
		time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := telemetry.Default().Counter(telemetry.KeyServerCanceled).Value(); got <= canceledBefore {
		t.Fatalf("server.canceled did not move after client disconnect: %d -> %d", canceledBefore, got)
	}
	calls := m.calls.Load()
	if calls == 0 || calls >= 800 {
		t.Fatalf("evaluated %d of 800 points; cancellation did not land mid-sweep", calls)
	}

	// No leaked workers or handler goroutines once the dust settles.
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, n)
	}
}

// TestGracefulShutdownDrains checks the drain contract: Shutdown
// called mid-sweep waits for the in-flight job, whose client still
// receives its 200.
func TestGracefulShutdownDrains(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: time.Millisecond}
	srv := New(Config{Resolver: fakeResolver{m}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(fmt.Sprintf("http://%s/v1/jobs", l.Addr()),
			"application/json", strings.NewReader(sweepBody))
		if err == nil {
			var jr JobResponse
			derr := json.NewDecoder(resp.Body).Decode(&jr)
			resp.Body.Close()
			switch {
			case resp.StatusCode != http.StatusOK:
				err = fmt.Errorf("in-flight request: status %d", resp.StatusCode)
			case derr != nil:
				err = derr
			case len(jr.Family) != 8:
				err = fmt.Errorf("in-flight request: %d curves, want 8", len(jr.Family))
			}
		}
		reqDone <- err
	}()
	<-m.started

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request broken by shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestModelCacheReuse checks that two requests naming the same model
// build it once, and that distinct keys build separately.
func TestModelCacheReuse(t *testing.T) {
	cache := NewModelCache()
	h := New(Config{Resolver: cache}).Handler()
	reg := telemetry.Default()
	hitsBefore := reg.Counter(telemetry.KeyServerCacheHits).Value()
	missesBefore := reg.Counter(telemetry.KeyServerCacheMisses).Value()

	body := `{"kind": "iv-point", "model": {"family": "model2"}, "vg": 0.5, "vd": 0.4}`
	first := decodeJob(t, post(t, h, body))
	second := decodeJob(t, post(t, h, body))
	if first.IDS != second.IDS {
		t.Fatalf("cache served a different model: %g != %g", first.IDS, second.IDS)
	}
	if n := cache.Len(); n != 1 {
		t.Fatalf("cache holds %d models, want 1", n)
	}
	if got := reg.Counter(telemetry.KeyServerCacheMisses).Value() - missesBefore; got != 1 {
		t.Fatalf("server.cache.misses delta = %d, want 1", got)
	}
	if got := reg.Counter(telemetry.KeyServerCacheHits).Value() - hitsBefore; got != 1 {
		t.Fatalf("server.cache.hits delta = %d, want 1", got)
	}

	// A different temperature is a different physical model.
	decodeJob(t, post(t, h, `{"kind": "iv-point", "model": {"family": "model2", "t": 450}, "vg": 0.5, "vd": 0.4}`))
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache holds %d models after distinct key, want 2", n)
	}
}

// TestDefaultFamilyIsClosedForm pins the closed-form-first serving
// default: a request that omits "family" resolves to model1, shares
// one cache entry with an explicit model1 request, and answers
// bit-identically to it.
func TestDefaultFamilyIsClosedForm(t *testing.T) {
	cache := NewModelCache()
	h := New(Config{Resolver: cache}).Handler()

	implicit := decodeJob(t, post(t, h, `{"kind": "iv-point", "model": {}, "vg": 0.5, "vd": 0.4}`))
	explicit := decodeJob(t, post(t, h, `{"kind": "iv-point", "model": {"family": "model1"}, "vg": 0.5, "vd": 0.4}`))
	if implicit.IDS != explicit.IDS {
		t.Fatalf("default family answered %g, explicit model1 %g", implicit.IDS, explicit.IDS)
	}
	if n := cache.Len(); n != 1 {
		t.Fatalf("cache holds %d models, want 1 (default and explicit model1 must share a key)", n)
	}
	if got, want := (ModelSpec{}).Key(), (ModelSpec{Family: FamilyModel1}).Key(); got != want {
		t.Fatalf("spec keys diverge: %q vs %q", got, want)
	}

	// The default-family sweep must be closed-form work: no reference
	// Newton iterations or quadrature evaluations in the job's metrics.
	jr := decodeJob(t, post(t, h, `{
		"kind": "family-sweep",
		"model": {},
		"gates": [0.4, 0.6],
		"drains": [0, 0.3, 0.6]
	}`))
	if len(jr.Family) != 2 {
		t.Fatalf("degenerate family: %+v", jr)
	}
	for _, k := range []string{"fettoy.newton_iters", "fettoy.quad_points"} {
		if v := jr.Metrics[k]; v != 0 {
			t.Fatalf("default family did reference work: %s = %d", k, v)
		}
	}
}

// TestHealthAndMetrics checks the operational endpoints: /healthz
// serves build and load identity, /metrics serves valid Prometheus
// text exposition with the request-latency histogram, /metrics.json
// keeps the JSON snapshot for the CLIs.
func TestHealthAndMetrics(t *testing.T) {
	h := New(Config{}).Handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d %q", w.Code, w.Body)
	}
	var hz Health
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatalf("healthz not JSON: %v: %s", err, w.Body)
	}
	if hz.Status != "ok" || hz.GoVersion != runtime.Version() || hz.MaxInFlight < 1 {
		t.Fatalf("healthz fields wrong: %+v", hz)
	}
	if hz.UptimeSeconds < 0 || hz.InFlight != 0 {
		t.Fatalf("healthz load fields wrong: %+v", hz)
	}

	// One job first, so the exposition carries server.* counters and
	// the middleware has observed at least one request latency.
	post(t, h, `{"kind": "iv-point", "model": {"family": "model2"}, "vg": 0.5, "vd": 0.4}`)

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("metrics content type %q, want %q", ct, telemetry.PromContentType)
	}
	body := w.Body.String()
	if err := telemetry.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("metrics not valid Prometheus exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"cntfet_server_requests_total",
		"cntfet_server_request_seconds_bucket",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics.json", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics.json: status %d", w.Code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics.json not a snapshot: %v", err)
	}
	if snap.Counters[telemetry.KeyServerRequests] < 1 {
		t.Fatalf("metrics.json snapshot missing server.requests: %v", snap.Counters)
	}
}

// TestAdmissionAccountingOnEarlyRejects pins the bookkeeping of
// requests rejected before they reach the engine: malformed-JSON 400s
// and oversized-body 413s must release their job slot (a leak would
// wedge a MaxInFlight=1 server permanently) and be counted exactly
// once each in server.requests and the request-latency histogram.
// The sequence is saturate-reject-recover: early rejects, then a
// blocking job that must still be admitted, a 429 while it runs, and
// a final 200 after it drains — with every counter delta accounted.
func TestAdmissionAccountingOnEarlyRejects(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: 10 * time.Millisecond}
	srv := New(Config{MaxInFlight: 1, MaxBody: 2048, Resolver: fakeResolver{m}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reg := telemetry.Default()
	requestsBefore := reg.Counter(telemetry.KeyServerRequests).Value()
	errorsBefore := reg.Counter(telemetry.KeyServerErrors).Value()
	saturatedBefore := reg.Counter(telemetry.KeyServerSaturated).Value()
	latencyBefore := reg.Histogram(telemetry.KeyServerRequestSeconds, telemetry.LatencyBuckets).Count()

	do := func(body string) (int, error) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	must := func(body string, want int) {
		t.Helper()
		code, err := do(body)
		if err != nil {
			t.Fatal(err)
		}
		if code != want {
			t.Fatalf("status %d, want %d", code, want)
		}
	}

	// Early rejects: two malformed bodies and one over the body cap.
	// Each acquires the job slot and must give it back on the way out.
	must(`{"kind": `, http.StatusBadRequest)
	must(`{"kind": `, http.StatusBadRequest)
	must(`{"kind": "iv-point", "model": {}, "gates": [`+strings.Repeat("0.1,", 1024)+`0.1]}`,
		http.StatusRequestEntityTooLarge)

	// The single slot must still be free: this blocking sweep has to be
	// admitted and start solving (a leaked slot would 429 it).
	drains := make([]string, 40)
	for i := range drains {
		drains[i] = fmt.Sprintf("%g", 0.01*float64(i+1))
	}
	blockBody := `{"kind": "family-sweep", "model": {}, "gates": [0.5], "drains": [` +
		strings.Join(drains, ",") + `], "strategy": "serial"}`
	blockDone := make(chan error, 1)
	go func() {
		code, err := do(blockBody)
		if err == nil && code != http.StatusOK {
			err = fmt.Errorf("blocking job: status %d, want 200", code)
		}
		blockDone <- err
	}()
	<-m.started

	// Saturated now — and sheds before reading the body, so even a
	// malformed request answers 429, not 400.
	must(`{"kind": `, http.StatusTooManyRequests)

	if err := <-blockDone; err != nil {
		t.Fatal(err)
	}
	// Recovered: the slot drained and a normal job is served again.
	must(`{"kind": "iv-point", "model": {}, "vg": 0.5, "vd": 0.4}`, http.StatusOK)

	// Exactly six requests passed: each counted once in server.requests
	// and once in the latency histogram (no double counting), with four
	// errors (2x400 + 413 + 429) and one saturation. The middleware
	// observes latency just after the handler returns, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Histogram(telemetry.KeyServerRequestSeconds, telemetry.LatencyBuckets).Count()-latencyBefore < 6 &&
		time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if d := reg.Counter(telemetry.KeyServerRequests).Value() - requestsBefore; d != 6 {
		t.Fatalf("server.requests delta = %d, want 6", d)
	}
	if d := reg.Histogram(telemetry.KeyServerRequestSeconds, telemetry.LatencyBuckets).Count() - latencyBefore; d != 6 {
		t.Fatalf("request_seconds count delta = %d, want 6", d)
	}
	if d := reg.Counter(telemetry.KeyServerErrors).Value() - errorsBefore; d != 4 {
		t.Fatalf("server.errors delta = %d, want 4", d)
	}
	if d := reg.Counter(telemetry.KeyServerSaturated).Value() - saturatedBefore; d != 1 {
		t.Fatalf("server.saturated delta = %d, want 1", d)
	}
}

// TestTimeoutCancels checks the per-request deadline: a job slower
// than the configured timeout is aborted with 499 and counted as
// canceled.
func TestTimeoutCancels(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: 2 * time.Millisecond}
	srv := New(Config{Timeout: 30 * time.Millisecond, Resolver: fakeResolver{m}})
	w := post(t, srv.Handler(), sweepBody)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("timed-out job answered %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Class != "canceled" {
		t.Fatalf("499 body not classified: %s", w.Body)
	}
}
