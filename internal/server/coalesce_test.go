package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// TestCoalesceKeyCanonical pins the coalescing identity: spellings
// that resolve to the same engine run share a key, and any parameter
// that changes the run changes the key. This is the regression test
// for the key that used to re-marshal the decoded JobRequest, where
// `"family": "model1"` vs the omitted default (or an explicit preset
// temperature vs the zero value) defeated single-flight.
func TestCoalesceKeyCanonical(t *testing.T) {
	dev := fettoy.Default()
	base := JobRequest{Kind: "family-sweep", Model: &ModelSpec{}, Gates: []float64{0.5}, Drains: []float64{0.1}}
	key := func(jr JobRequest) string {
		t.Helper()
		k, err := coalesceKey(jr)
		if err != nil {
			t.Fatalf("coalesceKey: %v", err)
		}
		return k
	}
	want := key(base)

	same := map[string]JobRequest{
		"explicit default family":   {Kind: base.Kind, Model: &ModelSpec{Family: FamilyModel1}, Gates: base.Gates, Drains: base.Drains},
		"explicit default device":   {Kind: base.Kind, Model: &ModelSpec{Device: DeviceDefault}, Gates: base.Gates, Drains: base.Drains},
		"explicit preset T":         {Kind: base.Kind, Model: &ModelSpec{T: dev.T}, Gates: base.Gates, Drains: base.Drains},
		"explicit preset EF":        {Kind: base.Kind, Model: &ModelSpec{EF: &dev.EF}, Gates: base.Gates, Drains: base.Drains},
		"explicit auto strategy":    {Kind: base.Kind, Model: &ModelSpec{}, Gates: base.Gates, Drains: base.Drains, Strategy: "auto"},
		"every default spelled out": {Kind: base.Kind, Model: &ModelSpec{Family: FamilyModel1, Device: DeviceDefault, T: dev.T, EF: &dev.EF}, Gates: base.Gates, Drains: base.Drains, Strategy: "auto"},
	}
	for name, jr := range same {
		if got := key(jr); got != want {
			t.Errorf("%s: key diverged:\n%s\nvs\n%s", name, got, want)
		}
	}

	otherEF := dev.EF + 0.1
	different := map[string]JobRequest{
		"other family":    {Kind: base.Kind, Model: &ModelSpec{Family: FamilyModel2}, Gates: base.Gates, Drains: base.Drains},
		"other T":         {Kind: base.Kind, Model: &ModelSpec{T: dev.T + 50}, Gates: base.Gates, Drains: base.Drains},
		"other EF":        {Kind: base.Kind, Model: &ModelSpec{EF: &otherEF}, Gates: base.Gates, Drains: base.Drains},
		"other grid":      {Kind: base.Kind, Model: &ModelSpec{}, Gates: base.Gates, Drains: []float64{0.2}},
		"other kind":      {Kind: "rms-compare", Model: &ModelSpec{}, Gates: base.Gates, Drains: base.Drains},
		"serial not auto": {Kind: base.Kind, Model: &ModelSpec{}, Gates: base.Gates, Drains: base.Drains, Strategy: "serial"},
	}
	for name, jr := range different {
		if got := key(jr); got == want {
			t.Errorf("%s: key collided with the base request: %s", name, got)
		}
	}

	// The rms-compare reference model canonicalises the same way.
	refA := JobRequest{Kind: "rms-compare", Model: &ModelSpec{Family: FamilyModel2}, Ref: &ModelSpec{}, Gates: base.Gates, Drains: base.Drains}
	refB := JobRequest{Kind: "rms-compare", Model: &ModelSpec{Family: FamilyModel2}, Ref: &ModelSpec{Family: FamilyModel1, T: dev.T}, Gates: base.Gates, Drains: base.Drains}
	if key(refA) != key(refB) {
		t.Errorf("equivalent ref spellings did not coalesce:\n%s\nvs\n%s", key(refA), key(refB))
	}
}

// TestCoalescedSpellingsShareOneRun is the end-to-end half of the
// canonical-key fix: concurrent requests whose bodies spell the same
// job differently (omitted vs explicit family) must share one engine
// run — one miss, one hit, one sweep's worth of solver calls.
func TestCoalescedSpellingsShareOneRun(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: time.Millisecond}
	srv := New(Config{MaxInFlight: 8, Resolver: fakeResolver{m}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reg := telemetry.Default()
	hitsBefore := reg.Counter(telemetry.KeyServerCoalesceHits).Value()
	missesBefore := reg.Counter(telemetry.KeyServerCoalesceMisses).Value()

	do := func(body string) (string, error) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			return "", err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		return string(raw), err
	}

	// The leader omits the family; the follower spells out the default.
	// Before canonicalisation these marshalled to different flight keys.
	implicit := strings.Replace(sweepBody, `"model": {"family": "model2"}`, `"model": {}`, 1)
	explicit := strings.Replace(sweepBody, `"model": {"family": "model2"}`, `"model": {"family": "model1", "device": "default"}`, 1)

	leaderBody := make(chan string, 1)
	leaderErr := make(chan error, 1)
	go func() {
		body, err := do(implicit)
		leaderBody <- body
		leaderErr <- err
	}()
	<-m.started

	var wg sync.WaitGroup
	var followerBody string
	var followerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerBody, followerErr = do(explicit)
	}()
	wg.Wait()
	leader := <-leaderBody
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if followerErr != nil {
		t.Fatalf("follower: %v", followerErr)
	}
	if followerBody != leader {
		t.Fatalf("follower answer differs from leader's:\n%s\nvs\n%s", followerBody, leader)
	}
	if calls := m.calls.Load(); calls != 800 {
		t.Fatalf("solver ran %d points for 2 equivalent requests, want one run of 800", calls)
	}
	if got := reg.Counter(telemetry.KeyServerCoalesceMisses).Value() - missesBefore; got != 1 {
		t.Fatalf("coalesce misses delta %d, want 1", got)
	}
	if got := reg.Counter(telemetry.KeyServerCoalesceHits).Value() - hitsBefore; got != 1 {
		t.Fatalf("coalesce hits delta %d, want 1", got)
	}
}

// TestShutdownCancelsOrphanedFlight is the drain-bound regression: a
// coalesced flight is detached from its leader's connection, so before
// the drain context existed it would keep computing after an
// over-budget Shutdown returned. Now Shutdown's return must cancel the
// flight promptly — the waiting client gets its 499 long before the
// sweep could have finished, the solver stops mid-grid, and the
// canceled counter moves.
func TestShutdownCancelsOrphanedFlight(t *testing.T) {
	// 800 points x 5ms = 4s if the sweep ran to completion.
	m := &blockingSolver{started: make(chan struct{}), delay: 5 * time.Millisecond}
	srv := New(Config{Resolver: fakeResolver{m}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	canceledBefore := telemetry.Default().Counter(telemetry.KeyServerCanceled).Value()

	type answer struct {
		status int
		err    error
	}
	reqDone := make(chan answer, 1)
	go func() {
		resp, err := http.Post(fmt.Sprintf("http://%s/v1/jobs", l.Addr()),
			"application/json", strings.NewReader(sweepBody))
		a := answer{err: err}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			a.status = resp.StatusCode
		}
		reqDone <- a
	}()
	<-m.started

	// A drain budget far shorter than the sweep: Shutdown must give up,
	// and giving up must kill the flight.
	shutCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(shutCtx); err == nil {
		t.Fatal("Shutdown drained a 4s sweep inside a 50ms budget")
	}

	select {
	case a := <-reqDone:
		if a.err != nil {
			t.Fatalf("in-flight request errored: %v", a.err)
		}
		if a.status != StatusClientClosedRequest {
			t.Fatalf("orphaned flight answered %d, want %d", a.status, StatusClientClosedRequest)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("flight kept running after shutdown: no response within 3s")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if calls := m.calls.Load(); calls == 0 || calls >= 800 {
		t.Fatalf("evaluated %d of 800 points; shutdown did not cancel mid-sweep", calls)
	}
	if got := telemetry.Default().Counter(telemetry.KeyServerCanceled).Value(); got <= canceledBefore {
		t.Fatalf("server.canceled did not move: %d -> %d", canceledBefore, got)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}
