// stream.go is the chunked-NDJSON half of the job endpoint: the same
// jobs as the buffered JSON path, but every result row leaves the
// server the moment the engine emits it. A client asking for a stream
// (the "stream" request field, or "Accept: application/x-ndjson")
// reads one JSON object per line:
//
//	{"row":{"index":0,"vg":0.3,"vds":[...],"ids":[...]}}
//	{"row":{"index":1,...}}
//	...
//	{"done":{"kind":"family-sweep","metrics":{...},"elapsed_ns":...}}
//
// Rows arrive in result order (the sweep layer re-orders the parallel
// scheduler's out-of-order chunks) and carry bit-for-bit the same
// currents the buffered Result.Family would — the "done" frame
// deliberately omits the families so nothing is buffered or sent
// twice. Every frame is flushed individually: backpressure is the
// client connection itself (a slow reader stalls the emitting sweep
// worker), and a disconnected client fails the next write, which
// cancels the job promptly (HTTP 499 in the job log, server.canceled
// moves). Failures after the first row cannot change the HTTP status
// — the 200 left with that row — so they arrive as an "error" frame.
package server

import (
	"encoding/json"
	"net/http"
	"strings"

	"cntfet/internal/engine"
	"cntfet/internal/telemetry"
)

// StreamRow is the wire form of one streamed result row: a Curve plus
// its position. Ref marks the reference family of an rms-compare
// (reference rows stream first).
type StreamRow struct {
	Index int       `json:"index"`
	Ref   bool      `json:"ref,omitempty"`
	VG    float64   `json:"vg"`
	VDS   []float64 `json:"vds"`
	IDS   []float64 `json:"ids"`
}

// StreamMC is one streamed Monte Carlo checkpoint: running mean and
// standard deviation over the first Done of Total samples.
type StreamMC struct {
	Done  int     `json:"done"`
	Total int     `json:"total"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
}

// StreamFrame is one line of a streamed response. Exactly one field
// is set: result rows and checkpoints while the job runs, then either
// a final "done" (the JobResponse summary, families and Monte Carlo
// samples omitted — they already streamed) or an "error".
type StreamFrame struct {
	Row   *StreamRow     `json:"row,omitempty"`
	MC    *StreamMC      `json:"mc,omitempty"`
	Done  *JobResponse   `json:"done,omitempty"`
	Error *ErrorResponse `json:"error,omitempty"`
}

// wantsStream reports whether the request asked for NDJSON streaming.
func wantsStream(jr JobRequest, r *http.Request) bool {
	if jr.Stream {
		return true
	}
	for _, accept := range r.Header.Values("Accept") {
		if mediaTypeIsNDJSON(accept) {
			return true
		}
	}
	return false
}

// mediaTypeIsNDJSON matches an Accept header value against
// application/x-ndjson, tolerating parameters and lists.
func mediaTypeIsNDJSON(accept string) bool {
	for _, item := range strings.Split(accept, ",") {
		item, _, _ = strings.Cut(item, ";")
		if strings.TrimSpace(item) == "application/x-ndjson" {
			return true
		}
	}
	return false
}

// ndjsonSink adapts the response writer into an engine.Sink: encode
// one frame per event, flush, count. Emit runs on the job's emitting
// goroutine; a write or flush failure (client gone) aborts the job
// through the sink-error path.
type ndjsonSink struct {
	enc  *json.Encoder
	rc   *http.ResponseController
	rows int64
}

func (s *ndjsonSink) Emit(ev engine.Event) error {
	var frame StreamFrame
	switch {
	case ev.Row != nil:
		frame.Row = &StreamRow{
			Index: ev.Row.Index,
			Ref:   ev.Row.Ref,
			VG:    ev.Row.Curve.VG,
			VDS:   ev.Row.Curve.VDS,
			IDS:   ev.Row.Curve.IDS,
		}
	case ev.MC != nil:
		frame.MC = &StreamMC{Done: ev.MC.Done, Total: ev.MC.Total, Mean: ev.MC.Mean, Std: ev.MC.Std}
	default:
		return nil
	}
	if err := s.enc.Encode(frame); err != nil {
		return err
	}
	if err := s.rc.Flush(); err != nil {
		return err
	}
	s.rows++
	telemetry.Default().Counter(telemetry.KeyServerStreamRows).Inc()
	return nil
}

// streamJob runs one job with its results streaming out as NDJSON.
// Called from handleJob after decode/resolve; the engine runs on this
// goroutine (and its sweep workers), emitting through the sink.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, jr JobRequest, req engine.Request, meta resolveMeta) {
	ctx := r.Context()
	reg := telemetry.Default()
	reg.Counter(telemetry.KeyServerStreamRequests).Inc()
	telemetry.SpanFrom(ctx).Set(telemetry.Bool(telemetry.AttrStream, true))

	w.Header().Set("Content-Type", "application/x-ndjson")
	// The trace ID rides a header so streaming clients can correlate
	// their frames with the server's logs without parsing them.
	if tid := telemetry.TraceIDFrom(ctx); tid != "" {
		w.Header().Set("Trace-Id", tid)
	}
	w.WriteHeader(http.StatusOK)

	sink := &ndjsonSink{enc: json.NewEncoder(w), rc: http.NewResponseController(w)}
	req.Sink = sink
	_, span := telemetry.StartSpan(ctx, telemetry.SpanServerStream)
	res, err := engine.Run(ctx, req)
	span.Set(telemetry.Int(telemetry.AttrRows, sink.rows))
	if err != nil {
		status, class := statusOf(err)
		if status == StatusClientClosedRequest {
			reg.Counter(telemetry.KeyServerCanceled).Inc()
		} else {
			reg.Counter(telemetry.KeyServerErrors).Inc()
		}
		span.Set(telemetry.String(telemetry.AttrError, err.Error()))
		span.End()
		s.logJob(ctx, jr.Kind, meta, status, res)
		// The 200 and any rows are already on the wire; the failure
		// travels in-band. Undeliverable when the client is the reason.
		_ = sink.enc.Encode(StreamFrame{Error: &ErrorResponse{Error: err.Error(), Class: class}})
		_ = sink.rc.Flush()
		return
	}
	span.End()
	s.logJob(ctx, jr.Kind, meta, http.StatusOK, res)
	done := toWire(jr.Kind, res)
	// Rows already streamed; the done frame is summary only. (A
	// streamed family-sweep Result carries no family anyway — the
	// engine skips buffering when a sink is set — but rms-compare
	// buffers both families for the RMS computation, and Monte Carlo
	// retains its samples for the percentiles.)
	done.Family = nil
	done.RefFamily = nil
	if done.MC != nil {
		mc := *done.MC
		mc.Samples = nil
		done.MC = &mc
	}
	_ = sink.enc.Encode(StreamFrame{Done: &done})
	_ = sink.rc.Flush()
}
