// wire.go is the JSON schema of the sweep service: the structures a
// client POSTs to /v1/jobs and the response it reads back, plus the
// translation into/out of the engine's native types. engine.Request
// holds interface-typed models, so the wire form names a model family
// and the device parameters instead — the server resolves that
// description against its keyed model cache (cache.go) before
// dispatching to engine.Run.
package server

import (
	"context"
	"fmt"
	"strings"

	"cntfet/internal/engine"
	"cntfet/internal/fettoy"
	"cntfet/internal/sweep"
	"cntfet/internal/variation"
)

// Model families the wire schema can name. "reference" is the
// FETToy-style theory backed by a charge table (so repeated requests
// reuse one tabulation); "model1"/"model2" are the paper's piecewise
// closed-form models. An empty family defaults to DefaultFamily — the
// closed-form serving path — so the reference model is opt-in (as an
// rms-compare oracle or for explicit theory sweeps).
const (
	FamilyReference = "reference"
	FamilyModel1    = "model1"
	FamilyModel2    = "model2"

	// DefaultFamily is what an absent/empty "family" resolves to:
	// Model 1, the paper's piecewise closed-form model. Serving defaults
	// to the analytical path; numerics stay available as the oracle.
	DefaultFamily = FamilyModel1
)

// familyOrDefault normalises an empty wire family to DefaultFamily.
// Both the cache key and the build go through this, so an explicit
// "model1" and an omitted family share one cached model.
func familyOrDefault(family string) string {
	if family == "" {
		return DefaultFamily
	}
	return family
}

// Device presets the wire schema can name.
const (
	DeviceDefault = "default"
	DeviceJavey   = "javey"
)

// ModelSpec names a concrete device model without shipping one over
// the wire: a model family fitted to a preset device, with the two
// per-study parameters the paper varies (temperature and Fermi level)
// overridable. The tuple (family, device, t, ef) is also the model
// cache key.
type ModelSpec struct {
	// Family is "reference", "model1" or "model2". Empty defaults to
	// DefaultFamily (model1, the closed-form serving path); MonteCarlo
	// jobs use only the device parameters and ignore it entirely.
	Family string `json:"family,omitempty"`
	// Device is the preset name: "default" (the paper's nominal
	// device, also the zero value) or "javey" (the section-VI
	// experimental device).
	Device string `json:"device,omitempty"`
	// T overrides the preset lattice temperature in kelvin (K); 0
	// keeps the preset value.
	T float64 `json:"t,omitempty"`
	// EF overrides the preset source Fermi level in eV; null keeps the
	// preset value (0 is a legitimate override — table IV).
	EF *float64 `json:"ef,omitempty"`
}

// device resolves the preset and applies the overrides.
func (m ModelSpec) device() (fettoy.Device, error) {
	var dev fettoy.Device
	switch m.Device {
	case DeviceDefault, "":
		dev = fettoy.Default()
	case DeviceJavey:
		dev = fettoy.Javey()
	default:
		return fettoy.Device{}, fmt.Errorf("unknown device preset %q (want %q or %q)",
			m.Device, DeviceDefault, DeviceJavey)
	}
	if m.T != 0 { //lint:allow floatcmp zero value keeps the preset temperature
		dev.T = m.T
	}
	if m.EF != nil {
		dev.EF = *m.EF
	}
	if err := dev.Validate(); err != nil {
		return fettoy.Device{}, err
	}
	return dev, nil
}

// Curve is the wire form of one IDS(VDS) sweep at fixed VG. Voltages
// are in volts, currents in amperes.
type Curve struct {
	VG  float64   `json:"vg"`
	VDS []float64 `json:"vds"`
	IDS []float64 `json:"ids"`
}

func curvesToWire(fam []sweep.Curve) []Curve {
	if fam == nil {
		return nil
	}
	out := make([]Curve, len(fam))
	for i, c := range fam {
		out[i] = Curve{VG: c.VG, VDS: c.VDS, IDS: c.IDS}
	}
	return out
}

func curvesFromWire(fam []Curve) []sweep.Curve {
	if fam == nil {
		return nil
	}
	out := make([]sweep.Curve, len(fam))
	for i, c := range fam {
		out[i] = sweep.Curve{VG: c.VG, VDS: c.VDS, IDS: c.IDS}
	}
	return out
}

// JobRequest is the body of POST /v1/jobs. Kind selects the job;
// per-kind field requirements mirror engine.Request (the engine's own
// validation backstops anything the wire layer lets through).
type JobRequest struct {
	// Kind is one of "iv-point", "family-sweep", "rms-compare",
	// "monte-carlo".
	Kind string `json:"kind"`

	// Model is the device under test (all kinds; MonteCarlo reads only
	// its device parameters).
	Model *ModelSpec `json:"model"`
	// Ref or RefFamily supply the rms-compare reference: a model to
	// sweep on the same grid, or precomputed curves. Exactly one.
	Ref       *ModelSpec `json:"ref,omitempty"`
	RefFamily []Curve    `json:"ref_family,omitempty"`

	// VG and VD are the bias point in volts (iv-point, monte-carlo).
	VG float64 `json:"vg,omitempty"`
	VD float64 `json:"vd,omitempty"`
	// Gates and Drains are the sweep grids in volts (family-sweep,
	// rms-compare).
	Gates  []float64 `json:"gates,omitempty"`
	Drains []float64 `json:"drains,omitempty"`

	// Strategy is "auto" (default), "serial", "batch" or "parallel";
	// Workers steers the parallel scheduler; Repeat re-runs a
	// family-sweep (benchmark loops).
	Strategy string `json:"strategy,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Repeat   int    `json:"repeat,omitempty"`

	// Monte Carlo study shape: per-device dispersion (one standard
	// deviation each), sample count and RNG seed.
	EFSigma       float64 `json:"ef_sigma,omitempty"`
	DiameterSigma float64 `json:"diameter_sigma,omitempty"`
	Samples       int     `json:"samples,omitempty"`
	Seed          int64   `json:"seed,omitempty"`

	// Stream asks for a chunked NDJSON response: one frame per result
	// row (or Monte Carlo checkpoint) as it is computed, then a "done"
	// frame — see StreamFrame. An "Accept: application/x-ndjson"
	// request header selects the same path.
	Stream bool `json:"stream,omitempty"`
}

// kinds maps the wire kind names onto the engine's. Netlist jobs are
// deliberately absent: decks execute arbitrary analyses and belong to
// the CLIs, not a multi-tenant endpoint.
var kinds = map[string]engine.Kind{
	engine.IVPoint.String():     engine.IVPoint,
	engine.FamilySweep.String(): engine.FamilySweep,
	engine.RMSCompare.String():  engine.RMSCompare,
	engine.MonteCarlo.String():  engine.MonteCarlo,
}

var strategies = map[string]engine.Strategy{
	"":         engine.Auto,
	"auto":     engine.Auto,
	"serial":   engine.Serial,
	"batch":    engine.Batch,
	"parallel": engine.Parallel,
}

// resolveMeta describes how the request's primary model resolved —
// the cache identity and outcome the job log and request span report.
// Resolved is false for kinds that never touch the cache (MonteCarlo
// fits per-sample models from raw device parameters).
type resolveMeta struct {
	ModelKey string
	CacheHit bool
	Resolved bool
}

// toEngine resolves the wire request into an engine.Request, looking
// models up through the resolver under the job's context. Every error
// it returns is a client-side problem (the server maps them to HTTP
// 400).
func (jr JobRequest) toEngine(ctx context.Context, res Resolver) (engine.Request, resolveMeta, error) {
	var meta resolveMeta
	kind, ok := kinds[jr.Kind]
	if !ok {
		known := make([]string, 0, len(kinds))
		for k := range kinds {
			known = append(known, k)
		}
		return engine.Request{}, meta, fmt.Errorf("unknown kind %q (want one of %s)",
			jr.Kind, strings.Join(known, ", "))
	}
	if jr.Model == nil {
		return engine.Request{}, meta, fmt.Errorf("%s needs a model", jr.Kind)
	}
	req := engine.Request{
		Kind:    kind,
		Bias:    fettoy.Bias{VG: jr.VG, VD: jr.VD},
		Gates:   jr.Gates,
		Drains:  jr.Drains,
		Workers: jr.Workers,
		Repeat:  jr.Repeat,
		Spread:  variation.Spread{EF: jr.EFSigma, DiameterRel: jr.DiameterSigma},
		Samples: jr.Samples,
		Seed:    jr.Seed,
	}
	st, ok := strategies[jr.Strategy]
	if !ok {
		return engine.Request{}, meta, fmt.Errorf("unknown strategy %q (want auto, serial, batch or parallel)", jr.Strategy)
	}
	req.Strategy = st

	if kind == engine.MonteCarlo {
		// MC fits its own piecewise models per sample; only the device
		// parameters travel.
		dev, err := jr.Model.device()
		if err != nil {
			return engine.Request{}, meta, fmt.Errorf("model: %w", err)
		}
		req.Device = dev
		return req, meta, nil
	}

	m, cached, err := res.Resolve(ctx, *jr.Model)
	if err != nil {
		return engine.Request{}, meta, fmt.Errorf("model: %w", err)
	}
	req.Model = m
	meta = resolveMeta{ModelKey: jr.Model.Key(), CacheHit: cached, Resolved: true}

	if kind == engine.RMSCompare {
		if jr.Ref != nil && jr.RefFamily != nil {
			return engine.Request{}, meta, fmt.Errorf("%s takes ref or ref_family, not both", jr.Kind)
		}
		switch {
		case jr.Ref != nil:
			ref, _, err := res.Resolve(ctx, *jr.Ref)
			if err != nil {
				return engine.Request{}, meta, fmt.Errorf("ref: %w", err)
			}
			req.Ref = ref
		case jr.RefFamily != nil:
			req.RefFamily = curvesFromWire(jr.RefFamily)
		default:
			return engine.Request{}, meta, fmt.Errorf("%s needs ref or ref_family", jr.Kind)
		}
	}
	return req, meta, nil
}

// OperatingPoint is the wire form of a solved bias point: the
// self-consistent voltage in volts, current in amperes, terminal
// charges in C/m.
type OperatingPoint struct {
	VSC float64 `json:"vsc"`
	IDS float64 `json:"ids"`
	QS  float64 `json:"qs"`
	QD  float64 `json:"qd"`
}

// MCResult is the wire form of a Monte Carlo summary (currents in
// amperes).
type MCResult struct {
	Samples []float64 `json:"samples"`
	Mean    float64   `json:"mean"`
	Std     float64   `json:"std"`
	P5      float64   `json:"p5"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
}

// JobResponse is the body of a successful /v1/jobs answer. Only the
// fields of the requested kind are populated; Metrics carries the
// job's telemetry counter deltas and ElapsedNS its wall-clock
// duration.
type JobResponse struct {
	Kind string `json:"kind"`

	IDS float64         `json:"ids,omitempty"`
	OP  *OperatingPoint `json:"op,omitempty"`

	Family     []Curve   `json:"family,omitempty"`
	RefFamily  []Curve   `json:"ref_family,omitempty"`
	RMSPercent []float64 `json:"rms_percent,omitempty"`

	MC *MCResult `json:"mc,omitempty"`

	Metrics   map[string]int64 `json:"metrics,omitempty"`
	ElapsedNS int64            `json:"elapsed_ns"`
}

// toWire converts an engine result for the wire.
func toWire(kind string, res engine.Result) JobResponse {
	out := JobResponse{
		Kind:       kind,
		IDS:        res.IDS,
		Family:     curvesToWire(res.Family),
		RefFamily:  curvesToWire(res.RefFamily),
		RMSPercent: res.RMSPercent,
		Metrics:    res.Metrics,
		ElapsedNS:  int64(res.Elapsed),
	}
	if res.OP != (fettoy.OperatingPoint{}) {
		out.OP = &OperatingPoint{VSC: res.OP.VSC, IDS: res.OP.IDS, QS: res.OP.QS, QD: res.OP.QD}
	}
	if res.MC != nil {
		out.MC = &MCResult{
			Samples: res.MC.Samples,
			Mean:    res.MC.Mean, Std: res.MC.Std,
			P5: res.MC.P5, P50: res.MC.P50, P95: res.MC.P95,
		}
	}
	return out
}

// ErrorResponse is the body of a non-2xx answer. Class is the engine
// taxonomy bucket the failure mapped to ("invalid-request",
// "canceled", "numerical", "saturated" or "internal").
type ErrorResponse struct {
	Error string `json:"error"`
	Class string `json:"class"`
}
