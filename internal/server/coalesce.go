// coalesce.go collapses identical concurrent jobs into one engine
// run. A dashboard fan-out or a retrying load balancer routinely
// lands N byte-identical requests in the same instant; the model
// cache already makes them share the built model, but each still paid
// for its own sweep. Here the first request becomes the leader and
// actually runs; followers arriving while it is in flight wait for
// its Result and share it (engine results are immutable once
// returned). The flight is keyed by the canonical re-encoding of the
// decoded JobRequest, so requests coalesce exactly when they are
// semantically identical — field order or whitespace on the wire
// doesn't matter, any differing parameter does.
//
// Only buffered requests coalesce. A streamed response is an
// interactive byte stream owned by one connection; sharing it would
// mean buffering it, which is the opposite of streaming.
//
// Cancellation: the leader's engine run is detached from the leader's
// own request context (a follower must not lose its result because
// the leader hung up) and is cancelled when every waiter has gone —
// or when the server's drain context ends, so a flight cannot outlive
// a graceful shutdown whose budget expired. A waiter that disconnects
// early answers its own 499 and leaves; the last one out cancels the
// flight.
package server

import (
	"context"
	"fmt"
	"sync"

	"cntfet/internal/engine"
	"cntfet/internal/telemetry"
)

// flight is one in-progress engine run plus everyone waiting on it.
type flight struct {
	done    chan struct{} // closed after res/err are set
	res     engine.Result
	err     error
	waiters int
	cancel  context.CancelFunc
	// abandoned marks a flight whose last waiter left before it
	// finished: its run context is cancelled and its result (an
	// ErrCanceled) must not be joined by new arrivals.
	abandoned bool
}

// flightGroup deduplicates concurrent identical jobs. The zero value
// is ready.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// run executes req, sharing the result with any concurrent identical
// request. coalesced reports whether this caller joined an existing
// flight rather than leading one. drain bounds the detached flight's
// lifetime: when it ends (the server finished draining, successfully
// or over budget), any still-running flight is cancelled. A nil drain
// leaves the flight bounded only by its waiters.
func (g *flightGroup) run(ctx, drain context.Context, key string, req engine.Request) (res engine.Result, coalesced bool, err error) {
	reg := telemetry.Default()
	g.mu.Lock()
	if g.flights == nil {
		g.flights = map[string]*flight{}
	}
	f := g.flights[key]
	if f != nil && !f.abandoned {
		f.waiters++
		g.mu.Unlock()
		reg.Counter(telemetry.KeyServerCoalesceHits).Inc()
		res, err := g.wait(ctx, f)
		return res, true, err
	}
	// Lead a new flight (possibly replacing an abandoned one — its
	// goroutine deletes itself conditionally, so the replacement wins).
	// The run context keeps the leader's trace and span values but not
	// its cancellation: followers outlive the leader's connection. The
	// drain context caps the detachment — without it, a flight whose
	// waiters were force-closed by an over-budget shutdown would keep
	// computing for nobody.
	jctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	stop := func() bool { return true }
	if drain != nil {
		stop = context.AfterFunc(drain, cancel)
	}
	f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()
	reg.Counter(telemetry.KeyServerCoalesceMisses).Inc()
	go func() {
		res, err := engine.Run(jctx, req)
		stop()
		g.mu.Lock()
		// Delete before close so a request arriving after completion
		// starts fresh instead of reading a stale flight. Conditional:
		// an abandoned flight may already have been replaced.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		f.res, f.err = res, err
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	res, err = g.wait(ctx, f)
	return res, false, err
}

// wait blocks until the flight completes or this waiter's own context
// ends. The last waiter to leave an unfinished flight abandons it.
func (g *flightGroup) wait(ctx context.Context, f *flight) (engine.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
	}
	g.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	if last {
		f.abandoned = true
	}
	g.mu.Unlock()
	if last {
		// Nobody wants the answer any more; stop computing it. The
		// flight's goroutine still runs to completion of the cancel and
		// removes the map entry.
		f.cancel()
	}
	return engine.Result{}, fmt.Errorf("server: %w: request abandoned while coalesced: %w", engine.ErrCanceled, ctx.Err())
}
