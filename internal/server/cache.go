// cache.go is the server's model store. Building a model is the
// expensive part of a job — the reference theory's charge-table
// tabulation and the piecewise models' charge-curve fit both sample
// quadrature integrals — and it depends only on (family, device, T,
// EF), so a long-running server builds each description once and
// shares the immutable result across requests. Both library model
// families are safe for concurrent use after construction, which is
// exactly the property the cache relies on.
package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"cntfet/internal/core"
	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// Resolver turns a wire model description into a ready device model.
// The production implementation is ModelCache; tests substitute fakes
// to steer job latency and failure modes. cached reports whether an
// already-built model was reused — the observability layer turns it
// into the job's cache_hit attribute. ctx scopes the build (a
// cache-miss fit runs under the requesting job's span and deadline).
type Resolver interface {
	Resolve(ctx context.Context, spec ModelSpec) (m device.Solver, cached bool, err error)
}

// cacheEntry serialises the build of one key: the first request holds
// mu while building, later arrivals block on it and then read the
// published model. A failed build publishes nothing, so the next
// request retries.
type cacheEntry struct {
	mu    sync.Mutex
	model device.Solver
}

// ModelCache is a concurrency-safe keyed store of built models. The
// zero value is not ready; use NewModelCache.
type ModelCache struct {
	mu          sync.Mutex
	entries     map[cacheKey]*cacheEntry
	snapshotDir string
}

// NewModelCache returns an empty cache.
func NewModelCache() *ModelCache {
	return &ModelCache{entries: map[cacheKey]*cacheEntry{}}
}

// SetSnapshotDir points the cache at a directory of charge-table
// snapshot files (fettoy.WriteSnapshot format, one "<key>.snap" per
// reference model). With a dir set, a reference-family cache miss
// first tries to warm-start its charge table from the matching file —
// skipping the tabulation entirely, so fettoy.table.builds stays
// untouched — and otherwise builds the table synchronously and writes
// the snapshot back for the next process. Empty disables both sides.
// Call before serving; the dir is read during Resolve.
func (c *ModelCache) SetSnapshotDir(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snapshotDir = dir
}

// Resolve returns the model a spec names, building it on first use.
// Concurrent requests for the same key build once; distinct keys build
// in parallel. Hits and misses are counted on the default telemetry
// registry (server.cache.*), and a cache-miss build runs under its own
// span (server.model_build) carrying the model key, so the request
// that pays the one-time fit cost is visible in its trace.
func (c *ModelCache) Resolve(ctx context.Context, spec ModelSpec) (device.Solver, bool, error) {
	dev, err := spec.device()
	if err != nil {
		return nil, false, err
	}
	family := familyOrDefault(spec.Family)
	key := specCacheKey(spec, dev)
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	reg := telemetry.Default()
	if e.model != nil {
		reg.Counter(telemetry.KeyServerCacheHits).Inc()
		return e.model, true, nil
	}
	reg.Counter(telemetry.KeyServerCacheMisses).Inc()
	_, span := telemetry.StartSpan(ctx, telemetry.SpanServerModelBuild)
	span.Set(telemetry.String(telemetry.AttrModelKey, key.String()))
	m, err := c.build(ctx, key, family, dev)
	if err != nil {
		span.Set(telemetry.String(telemetry.AttrError, err.Error()))
		span.End()
		return nil, false, err
	}
	span.End()
	e.model = m
	return m, false, nil
}

// build constructs one model for the cache, adding charge-table
// snapshot warm-start around the package-level build when a snapshot
// dir is configured and the family is the table-backed reference.
func (c *ModelCache) build(ctx context.Context, key cacheKey, family string, dev fettoy.Device) (device.Solver, error) {
	c.mu.Lock()
	dir := c.snapshotDir
	c.mu.Unlock()
	if dir == "" || familyOrDefault(family) != FamilyReference {
		return build(family, dev)
	}
	ref, err := fettoy.New(dev)
	if err != nil {
		return nil, err
	}
	tab := ref.EnableTable(fettoy.TableOptions{})
	path := filepath.Join(dir, snapshotFileName(key))
	if loadSnapshot(tab, path) {
		return ref, nil
	}
	// Cold start: pay the tabulation now — under this request's
	// model_build span and deadline, where a lazy build would have run
	// anyway — then persist it for the next process. A failed save is
	// only a lost optimisation, not a failed job.
	if err := tab.BuildContext(ctx); err != nil {
		return nil, err
	}
	saveSnapshot(tab, path)
	return ref, nil
}

// snapshotFileName renders a cache key as a file name: the key string
// with its path separators flattened.
func snapshotFileName(key cacheKey) string {
	return strings.ReplaceAll(key.String(), "/", "_") + ".snap"
}

// loadSnapshot warm-starts tab from path, reporting success. A
// missing file is the normal cold case; anything else (corruption,
// identity mismatch, IO) counts a server.snapshot.errors and falls
// back to building.
func loadSnapshot(tab *fettoy.ChargeTable, path string) bool {
	f, err := os.Open(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			telemetry.Default().Counter(telemetry.KeyServerSnapshotErrors).Inc()
		}
		return false
	}
	defer f.Close()
	if err := tab.ReadSnapshot(f); err != nil {
		telemetry.Default().Counter(telemetry.KeyServerSnapshotErrors).Inc()
		return false
	}
	return true
}

// saveSnapshot writes tab's grid to path crash-safely: temp file in
// the same directory, fsync the file, rename into place, fsync the
// directory. Without the two syncs a crash between write and rename —
// or between rename and the directory entry reaching disk — can leave
// a truncated or missing .snap for the next process to trip over; with
// them, path either holds the complete old content or the complete new
// content. Best-effort: any failure counts server.snapshot.errors and
// costs only the warm start.
func saveSnapshot(tab *fettoy.ChargeTable, path string) {
	fail := func() { telemetry.Default().Counter(telemetry.KeyServerSnapshotErrors).Inc() }
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		fail()
		return
	}
	defer os.Remove(f.Name())
	if err := tab.WriteSnapshot(f); err != nil {
		f.Close()
		fail()
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fail()
		return
	}
	if err := f.Close(); err != nil {
		fail()
		return
	}
	if err := os.Rename(f.Name(), path); err != nil {
		fail()
		return
	}
	if err := syncDir(dir); err != nil {
		fail()
	}
}

// syncDir flushes a directory's entries to disk, making a just-renamed
// file durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Len reports how many models are built and cached.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		e.mu.Lock()
		if e.model != nil {
			n++
		}
		e.mu.Unlock()
	}
	return n
}

// build constructs one model. The reference model gets a charge table
// attached so its tabulation — built lazily under the first job's
// context via device.ContextBuilder — is reused by every later
// request with the same key instead of re-integrating per solve.
func build(family string, dev fettoy.Device) (device.Solver, error) {
	switch family {
	case FamilyReference:
		ref, err := fettoy.New(dev)
		if err != nil {
			return nil, err
		}
		ref.EnableTable(fettoy.TableOptions{})
		return ref, nil
	case FamilyModel1, FamilyModel2:
		ref, err := fettoy.New(dev)
		if err != nil {
			return nil, err
		}
		spec := core.Model2Spec()
		if family == FamilyModel1 {
			spec = core.Model1Spec()
		}
		return core.Fit(ref, spec, core.FitOptions{})
	case "":
		// Resolve normalises before calling here; direct callers get the
		// same default behaviour.
		return build(DefaultFamily, dev)
	}
	return nil, fmt.Errorf("unknown model family %q (want %q, %q or %q)",
		family, FamilyReference, FamilyModel1, FamilyModel2)
}
