package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cntfet/internal/telemetry"
)

// decodeNDJSON parses one-record-per-line JSON into generic maps.
func decodeNDJSON(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestTraceCorrelation is the end-to-end observability check: one
// POST /v1/jobs family-sweep against the real model cache produces one
// trace ID that appears in the access-log record, the job-log record,
// and the /debug/trace span ring — with the span tree reaching from
// server.request through engine.job down to the reference model's
// charge-table build, and the job record carrying Newton-iteration
// and cache-hit attribution.
func TestTraceCorrelation(t *testing.T) {
	tr := telemetry.DefaultTracer()
	tr.Reset()
	tr.SetEnabled(true)
	t.Cleanup(func() {
		tr.SetEnabled(false)
		tr.SetLogger(nil)
		tr.Reset()
	})

	var logBuf bytes.Buffer
	h := New(Config{AccessLog: &logBuf, Resolver: NewModelCache()}).Handler()

	body := `{
		"kind": "family-sweep",
		"model": {"family": "reference"},
		"gates": [0.45, 0.6],
		"drains": [0, 0.3, 0.6]
	}`
	resp := decodeJob(t, post(t, h, body))
	if len(resp.Family) != 2 || len(resp.Family[0].IDS) != 3 {
		t.Fatalf("family shape wrong: %+v", resp.Family)
	}

	// The NDJSON stream carries access, job and span records; the job's
	// trace ID must thread through all of them.
	records := decodeNDJSON(t, logBuf.Bytes())
	var access, job map[string]any
	for _, rec := range records {
		switch rec["event"] {
		case telemetry.LogEventAccess:
			if rec[telemetry.AttrPath] == "/v1/jobs" {
				access = rec
			}
		case telemetry.LogEventJob:
			job = rec
		}
	}
	if access == nil || job == nil {
		t.Fatalf("log stream missing access or job record:\n%s", logBuf.String())
	}
	trace, _ := access[telemetry.FieldTrace].(string)
	if trace == "" {
		t.Fatalf("access record has no trace ID: %v", access)
	}
	if got := job[telemetry.FieldTrace]; got != trace {
		t.Fatalf("job record trace %v != access trace %q", got, trace)
	}
	if iters, ok := job[telemetry.AttrNewtonIters].(float64); !ok || iters < 1 {
		t.Fatalf("job record missing Newton iterations: %v", job)
	}
	if _, ok := job[telemetry.AttrCacheHit].(bool); !ok {
		t.Fatalf("job record missing cache_hit: %v", job)
	}
	if key, _ := job[telemetry.AttrModelKey].(string); !strings.HasPrefix(key, "reference/default/") {
		t.Fatalf("job record model key %v, want reference/default/...", job[telemetry.AttrModelKey])
	}

	// /debug/trace serves the same trace's span tree, down to the
	// charge-table build the first reference job paid for.
	req := httptest.NewRequest(http.MethodGet, "/debug/trace", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("debug/trace: status %d", w.Code)
	}
	kinds := map[string]bool{}
	for _, span := range decodeNDJSON(t, w.Body.Bytes()) {
		if span[telemetry.FieldTrace] == trace {
			kind, _ := span[telemetry.FieldKind].(string)
			kinds[kind] = true
		}
	}
	for _, want := range []string{
		telemetry.SpanServerRequest,
		telemetry.SpanEngineJob,
		telemetry.SpanFettoyTableBuild,
	} {
		if !kinds[want] {
			t.Fatalf("trace %s missing %q span; got kinds %v", trace, want, kinds)
		}
	}

	// A second identical job reuses the cached model and says so.
	logBuf.Reset()
	decodeJob(t, post(t, h, body))
	job = nil
	for _, rec := range decodeNDJSON(t, logBuf.Bytes()) {
		if rec["event"] == telemetry.LogEventJob {
			job = rec
		}
	}
	if job == nil {
		t.Fatalf("second job logged nothing:\n%s", logBuf.String())
	}
	if hit, _ := job[telemetry.AttrCacheHit].(bool); !hit {
		t.Fatalf("second job should be a cache hit: %v", job)
	}
}
