// key.go is the single home of request identity: the cache key a
// model description resolves to, the canonical model-key string the
// cluster router (internal/cluster) hashes for key-affinity placement,
// and the coalescing key that decides when two buffered jobs are the
// same job. All three render through one path with wire defaults
// applied, so an omitted field and its explicit default spelling are
// byte-for-byte the same identity everywhere — the server's cache, the
// flight group and the router's rendezvous ring can never disagree
// about which requests are "the same".
package server

import (
	"encoding/json"
	"fmt"

	"cntfet/internal/fettoy"
)

// presetOrDefault normalises an empty wire device preset to
// DeviceDefault, mirroring familyOrDefault: the zero value and the
// explicit "default" spelling name the same device.
func presetOrDefault(preset string) string {
	if preset == "" {
		return DeviceDefault
	}
	return preset
}

// cacheKey identifies one built model. The float fields are the
// post-override (resolved) temperature and Fermi level: two requests
// share a model exactly when they resolve to byte-identical
// parameters, which is the right granularity for a cache
// (nearby-but-different T or EF is a different physical model).
type cacheKey struct {
	family, preset string
	t, ef          float64
}

// String renders the key for spans, logs and the router:
// "family/preset/T=…/EF=…" with resolved (post-override, post-default)
// parameter values.
func (k cacheKey) String() string {
	return fmt.Sprintf("%s/%s/T=%g/EF=%g",
		familyOrDefault(k.family), presetOrDefault(k.preset), k.t, k.ef)
}

// specCacheKey is the one constructor of a cacheKey: family and preset
// defaults applied, overrides resolved against the preset device. Both
// the cache and the coalescing key go through it, so an explicit
// `"family": "model1"` or `"t": 300` and the omitted spelling land on
// the same entry.
func specCacheKey(spec ModelSpec, dev fettoy.Device) cacheKey {
	return cacheKey{
		family: familyOrDefault(spec.Family),
		preset: presetOrDefault(spec.Device),
		t:      dev.T,
		ef:     dev.EF,
	}
}

// Key renders the cache identity a spec resolves to, for logs, spans
// and the cluster router — with the family and preset defaults applied
// and the T/EF overrides resolved, so an omitted family and an
// explicit "model1" (or an omitted T and an explicit 300) report the
// same identity. Unresolvable specs render with their raw override
// values; they are still deterministic, just never cached.
func (m ModelSpec) Key() string {
	dev, err := m.device()
	if err != nil {
		return fmt.Sprintf("%s/%s/T=%g/EF=%v",
			familyOrDefault(m.Family), presetOrDefault(m.Device), m.T, m.EF)
	}
	return specCacheKey(m, dev).String()
}

// RouteKey is the canonical model identity of a decoded job — the
// exact string the server's model cache keys on. The cluster router
// rendezvous-hashes it so every (family, device, T, EF) has one home
// replica; because router and server share this function, the replica
// that receives a key's jobs is the replica whose cache holds that
// key's model. Jobs without a model (invalid — the backend answers
// 400) route by their kind alone, which keeps them deterministic
// without polluting the model keyspace.
func RouteKey(jr JobRequest) string {
	if jr.Model == nil {
		return "invalid/" + jr.Kind
	}
	return jr.Model.Key()
}

// canonicalJob is the coalescing identity of a buffered job: the
// JobRequest with both model descriptions replaced by their resolved
// Key() strings and the strategy default applied. Marshalling this —
// rather than the decoded JobRequest itself — makes semantically
// identical spellings (explicit family vs omitted, explicit preset T
// vs zero, "auto" vs "") coalesce. Stream is deliberately absent:
// streamed responses never enter the flight group.
type canonicalJob struct {
	Kind      string    `json:"kind"`
	Model     string    `json:"model"`
	Ref       string    `json:"ref,omitempty"`
	RefFamily []Curve   `json:"ref_family,omitempty"`
	VG        float64   `json:"vg,omitempty"`
	VD        float64   `json:"vd,omitempty"`
	Gates     []float64 `json:"gates,omitempty"`
	Drains    []float64 `json:"drains,omitempty"`
	Strategy  string    `json:"strategy"`
	Workers   int       `json:"workers,omitempty"`
	Repeat    int       `json:"repeat,omitempty"`
	EFSigma   float64   `json:"ef_sigma,omitempty"`
	DiamSigma float64   `json:"diameter_sigma,omitempty"`
	Samples   int       `json:"samples,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
}

// coalesceKey canonicalises a decoded request into its flight-group
// key. Two requests get the same key exactly when they resolve to the
// same engine run: same kind, same resolved model identities, same
// grids and scheduling parameters.
func coalesceKey(jr JobRequest) (string, error) {
	cj := canonicalJob{
		Kind:      jr.Kind,
		Model:     RouteKey(jr),
		RefFamily: jr.RefFamily,
		VG:        jr.VG,
		VD:        jr.VD,
		Gates:     jr.Gates,
		Drains:    jr.Drains,
		Strategy:  jr.Strategy,
		Workers:   jr.Workers,
		Repeat:    jr.Repeat,
		EFSigma:   jr.EFSigma,
		DiamSigma: jr.DiameterSigma,
		Samples:   jr.Samples,
		Seed:      jr.Seed,
	}
	if jr.Ref != nil {
		cj.Ref = jr.Ref.Key()
	}
	if cj.Strategy == "" {
		cj.Strategy = "auto"
	}
	b, err := json.Marshal(cj)
	if err != nil {
		return "", fmt.Errorf("server: coalesce key: %w", err)
	}
	return string(b), nil
}
