package server

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cntfet/internal/telemetry"
)

// postStream sends a job with an NDJSON Accept header through a
// recorder and decodes every frame.
func postStream(t *testing.T, h http.Handler, body string) []StreamFrame {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	return decodeFrames(t, w.Body.String())
}

func decodeFrames(t *testing.T, body string) []StreamFrame {
	t.Helper()
	var frames []StreamFrame
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var f StreamFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, f)
	}
	return frames
}

// rowsOf splits a frame sequence into its row frames and the
// mandatory trailing done frame.
func rowsOf(t *testing.T, frames []StreamFrame) ([]StreamRow, JobResponse) {
	t.Helper()
	if len(frames) == 0 || frames[len(frames)-1].Done == nil {
		t.Fatalf("stream did not end in a done frame: %+v", frames)
	}
	var rows []StreamRow
	for _, f := range frames[:len(frames)-1] {
		if f.Error != nil {
			t.Fatalf("error frame in healthy stream: %+v", f.Error)
		}
		if f.Row != nil {
			rows = append(rows, *f.Row)
		}
	}
	return rows, *frames[len(frames)-1].Done
}

// TestStreamedFamilyParity is the tentpole contract: a streamed
// family sweep delivers exactly the rows the buffered response would
// — same count, same order, bit-for-bit currents — for every sweep
// strategy, with the done frame carrying the summary but no family.
func TestStreamedFamilyParity(t *testing.T) {
	h := New(Config{}).Handler()
	for _, strategy := range []string{"serial", "batch", "parallel"} {
		t.Run(strategy, func(t *testing.T) {
			body := `{
				"kind": "family-sweep",
				"model": {"family": "model2"},
				"gates": [0.3, 0.45, 0.6],
				"drains": [0, 0.2, 0.4, 0.6],
				"strategy": "` + strategy + `"}`
			buffered := decodeJob(t, post(t, h, body))
			rows, done := rowsOf(t, postStream(t, h, strings.Replace(body, `"kind"`, `"stream": true, "kind"`, 1)))

			if len(rows) != len(buffered.Family) {
				t.Fatalf("streamed %d rows, buffered %d curves", len(rows), len(buffered.Family))
			}
			for i, row := range rows {
				want := buffered.Family[i]
				if row.Index != i || row.Ref {
					t.Fatalf("row %d mislabeled: %+v", i, row)
				}
				if row.VG != want.VG { //lint:allow floatcmp streamed rows must match buffered bit-for-bit
					t.Fatalf("row %d VG %g, buffered %g", i, row.VG, want.VG)
				}
				for j := range want.IDS {
					if row.IDS[j] != want.IDS[j] || row.VDS[j] != want.VDS[j] { //lint:allow floatcmp streamed rows must match buffered bit-for-bit
						t.Fatalf("row %d point %d differs: %g vs %g", i, j, row.IDS[j], want.IDS[j])
					}
				}
			}
			if len(done.Family) != 0 {
				t.Fatalf("done frame re-buffers the family: %d curves", len(done.Family))
			}
			if done.Kind != "family-sweep" || done.ElapsedNS <= 0 {
				t.Fatalf("done frame not a summary: %+v", done)
			}
		})
	}
}

// TestStreamedRMSCompare checks compare streams: all reference rows
// first (Ref set), then the model rows, with the done frame keeping
// the RMS summary while dropping both buffered families.
func TestStreamedRMSCompare(t *testing.T) {
	h := New(Config{}).Handler()
	body := `{
		"kind": "rms-compare",
		"model": {"family": "model2"},
		"ref": {"family": "model1"},
		"gates": [0.4, 0.6],
		"drains": [0, 0.3, 0.6]}`
	buffered := decodeJob(t, post(t, h, body))
	rows, done := rowsOf(t, postStream(t, h, body))

	if len(rows) != 4 {
		t.Fatalf("streamed %d rows, want 2 ref + 2 model", len(rows))
	}
	for i, row := range rows {
		wantRef := i < 2
		if row.Ref != wantRef || row.Index != i%2 {
			t.Fatalf("row %d: ref=%v index=%d, want ref=%v index=%d", i, row.Ref, row.Index, wantRef, i%2)
		}
	}
	for i := range buffered.RefFamily {
		if rows[i].VG != buffered.RefFamily[i].VG { //lint:allow floatcmp streamed rows must match buffered bit-for-bit
			t.Fatalf("ref row %d VG drifted", i)
		}
	}
	if len(done.RMSPercent) != 2 || done.RMSPercent[0] != buffered.RMSPercent[0] { //lint:allow floatcmp same job must score same RMS
		t.Fatalf("done RMS %v, buffered %v", done.RMSPercent, buffered.RMSPercent)
	}
	if len(done.Family) != 0 || len(done.RefFamily) != 0 {
		t.Fatalf("done frame re-buffers families: %+v", done)
	}
}

// TestStreamedMonteCarlo checks MC streams: monotone running
// checkpoints ending at the full sample count, a final mean matching
// the buffered run bit-for-bit (same seed, same draws), and a done
// frame without the sample array.
func TestStreamedMonteCarlo(t *testing.T) {
	h := New(Config{}).Handler()
	body := `{
		"kind": "monte-carlo",
		"model": {"family": "model2"},
		"vg": 0.5, "vd": 0.4,
		"ef_sigma": 0.02, "samples": 25, "seed": 7}`
	buffered := decodeJob(t, post(t, h, body))
	frames := postStream(t, h, body)

	var mcs []StreamMC
	for _, f := range frames[:len(frames)-1] {
		if f.MC == nil {
			t.Fatalf("non-MC frame in MC stream: %+v", f)
		}
		mcs = append(mcs, *f.MC)
	}
	if len(mcs) == 0 || mcs[len(mcs)-1].Done != 25 {
		t.Fatalf("checkpoints did not reach 25: %+v", mcs)
	}
	for i := 1; i < len(mcs); i++ {
		if mcs[i].Done <= mcs[i-1].Done || mcs[i].Total != 25 {
			t.Fatalf("checkpoints not monotone: %+v", mcs)
		}
	}
	// The running (Welford) mean and the summary's sum-based mean agree
	// to rounding, not bit-for-bit.
	if got := mcs[len(mcs)-1].Mean; math.Abs(got-buffered.MC.Mean) > 1e-12*math.Abs(buffered.MC.Mean) {
		t.Fatalf("streamed final mean %g, buffered %g", got, buffered.MC.Mean)
	}
	done := frames[len(frames)-1].Done
	if done == nil || done.MC == nil || len(done.MC.Samples) != 0 {
		t.Fatalf("done frame should summarise without samples: %+v", done)
	}
	if done.MC.Mean != buffered.MC.Mean { //lint:allow floatcmp same seed must reproduce the same mean
		t.Fatalf("done mean %g, buffered %g", done.MC.Mean, buffered.MC.Mean)
	}
}

// TestStreamMidDisconnect is the disconnect satellite: a client that
// reads the first rows of a stream and hangs up must have received
// those rows while the sweep was still running, and the server must
// cancel the job promptly (server.canceled moves, solver stops well
// short of the grid) without leaking goroutines.
func TestStreamMidDisconnect(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: time.Millisecond}
	srv := New(Config{Resolver: fakeResolver{m}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	canceledBefore := telemetry.Default().Counter(telemetry.KeyServerCanceled).Value()
	goroutinesBefore := runtime.NumGoroutine()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	// Read exactly two row frames, then walk away. Each arriving row
	// while the solver is mid-grid proves per-row flushing.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d rows: %v", i, sc.Err())
		}
		var f StreamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil || f.Row == nil {
			t.Fatalf("frame %d not a row: %q", i, sc.Text())
		}
		if f.Row.Index != i {
			t.Fatalf("row %d arrived with index %d", i, f.Row.Index)
		}
	}
	if calls := m.calls.Load(); calls >= 800 {
		t.Fatalf("2 rows read only after all %d points: stream not incremental", calls)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for telemetry.Default().Counter(telemetry.KeyServerCanceled).Value() <= canceledBefore &&
		time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := telemetry.Default().Counter(telemetry.KeyServerCanceled).Value(); got <= canceledBefore {
		t.Fatalf("server.canceled did not move after mid-stream disconnect: %d -> %d", canceledBefore, got)
	}
	if calls := m.calls.Load(); calls >= 800 {
		t.Fatalf("evaluated all %d points; disconnect did not cancel the sweep", calls)
	}
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, n)
	}
}

// TestCoalescedRequestsShareOneRun checks single-flight: identical
// buffered requests arriving while one is in flight share its engine
// run — one miss, N-1 hits, one sweep's worth of solver calls, and
// byte-identical responses.
func TestCoalescedRequestsShareOneRun(t *testing.T) {
	m := &blockingSolver{started: make(chan struct{}), delay: time.Millisecond}
	srv := New(Config{MaxInFlight: 8, Resolver: fakeResolver{m}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reg := telemetry.Default()
	hitsBefore := reg.Counter(telemetry.KeyServerCoalesceHits).Value()
	missesBefore := reg.Counter(telemetry.KeyServerCoalesceMisses).Value()

	do := func() (string, int, error) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
		if err != nil {
			return "", 0, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body), resp.StatusCode, err
	}

	leaderBody := make(chan string, 1)
	go func() {
		body, code, err := do()
		if err != nil || code != http.StatusOK {
			body = ""
		}
		leaderBody <- body
	}()
	<-m.started

	// Three followers land while the leader's sweep is in flight.
	var wg sync.WaitGroup
	follower := make([]string, 3)
	for i := range follower {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code, err := do()
			if err == nil && code == http.StatusOK {
				follower[i] = body
			}
		}()
	}
	wg.Wait()
	leader := <-leaderBody
	if leader == "" {
		t.Fatal("leader request failed")
	}
	for i, body := range follower {
		if body != leader {
			t.Fatalf("follower %d answer differs from leader's:\n%s\nvs\n%s", i, body, leader)
		}
	}
	if calls := m.calls.Load(); calls != 800 {
		t.Fatalf("solver ran %d points for 4 identical requests, want one run of 800", calls)
	}
	if got := reg.Counter(telemetry.KeyServerCoalesceMisses).Value() - missesBefore; got != 1 {
		t.Fatalf("coalesce misses delta %d, want 1", got)
	}
	if got := reg.Counter(telemetry.KeyServerCoalesceHits).Value() - hitsBefore; got != 3 {
		t.Fatalf("coalesce hits delta %d, want 3", got)
	}
}

// TestSnapshotWarmStart checks the warm-start loop end to end: a
// server with a snapshot dir persists the reference charge table it
// builds, and a fresh server over the same dir serves its first
// reference job without building a table at all (fettoy.table.builds
// stays flat while snapshot_loads moves), answering bit-identically.
func TestSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	body := `{"kind": "iv-point", "model": {"family": "reference"}, "vg": 0.5, "vd": 0.4}`
	reg := telemetry.Default()

	coldBuilds := reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	cold := decodeJob(t, post(t, New(Config{SnapshotDir: dir}).Handler(), body))
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - coldBuilds; d != 1 {
		t.Fatalf("cold start built %d tables, want 1", d)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".snap") {
		t.Fatalf("snapshot not persisted: %v %v", entries, err)
	}

	warmBuilds := reg.Counter(telemetry.KeyFettoyTableBuilds).Value()
	warmLoads := reg.Counter(telemetry.KeyFettoyTableSnapshotLoads).Value()
	warm := decodeJob(t, post(t, New(Config{SnapshotDir: dir}).Handler(), body))
	if d := reg.Counter(telemetry.KeyFettoyTableBuilds).Value() - warmBuilds; d != 0 {
		t.Fatalf("warm start built %d tables, want 0", d)
	}
	if d := reg.Counter(telemetry.KeyFettoyTableSnapshotLoads).Value() - warmLoads; d != 1 {
		t.Fatalf("warm start loaded %d snapshots, want 1", d)
	}
	if warm.IDS != cold.IDS { //lint:allow floatcmp a warm-started table must answer bit-identically
		t.Fatalf("warm-started IDS %g, cold %g", warm.IDS, cold.IDS)
	}

	// A stale or foreign file degrades to a rebuild, never to a wrong
	// answer: corrupt the snapshot and resolve again.
	raw, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(dir+"/"+entries[0].Name(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	errsBefore := reg.Counter(telemetry.KeyServerSnapshotErrors).Value()
	rebuilt := decodeJob(t, post(t, New(Config{SnapshotDir: dir}).Handler(), body))
	if rebuilt.IDS != cold.IDS { //lint:allow floatcmp a rebuilt table must answer bit-identically
		t.Fatalf("rebuild after corrupt snapshot answered %g, want %g", rebuilt.IDS, cold.IDS)
	}
	if got := reg.Counter(telemetry.KeyServerSnapshotErrors).Value(); got <= errsBefore {
		t.Fatalf("server.snapshot.errors did not move on corrupt file: %d -> %d", errsBefore, got)
	}
}

// TestWantsStream pins the two opt-in paths and their absence.
func TestWantsStream(t *testing.T) {
	mk := func(accept string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/jobs", nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	if wantsStream(JobRequest{}, mk("")) {
		t.Fatal("plain request streamed")
	}
	if !wantsStream(JobRequest{Stream: true}, mk("")) {
		t.Fatal("stream field ignored")
	}
	if !wantsStream(JobRequest{}, mk("application/x-ndjson")) {
		t.Fatal("Accept header ignored")
	}
	if !wantsStream(JobRequest{}, mk("text/html, application/x-ndjson;q=0.9")) {
		t.Fatal("Accept list ignored")
	}
	if wantsStream(JobRequest{}, mk("application/json")) {
		t.Fatal("JSON Accept streamed")
	}
}
