package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies the suggested fixes of the given diagnostics to
// the files they touch and returns the rewritten contents keyed by
// filename — only files with at least one applied edit appear. Callers
// decide what to do with the bytes: cntlint -fix writes them back,
// analysistest compares them against golden files.
//
// Edits are validated before anything is rewritten: out-of-range or
// overlapping edits (two analyzers proposing conflicting rewrites of
// the same bytes) fail the whole batch rather than corrupting a file.
// Identical duplicate edits — the same fix reported twice — collapse
// to one.
func ApplyFixes(diags []Diagnostic) (map[string][]byte, error) {
	byFile := map[string][]Edit{}
	for _, d := range diags {
		for _, e := range d.Fix {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	out := map[string][]byte{}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Offset != edits[j].Offset {
				return edits[i].Offset < edits[j].Offset
			}
			return edits[i].End < edits[j].End
		})
		// Validate, dropping exact duplicates.
		kept := edits[:0]
		for i, e := range edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
				return nil, fmt.Errorf("applying fixes: edit [%d,%d) out of range for %s (%d bytes)",
					e.Offset, e.End, file, len(src))
			}
			if i > 0 && e == edits[i-1] {
				continue
			}
			if len(kept) > 0 && e.Offset < kept[len(kept)-1].End {
				return nil, fmt.Errorf("applying fixes: overlapping edits in %s at offset %d", file, e.Offset)
			}
			kept = append(kept, e)
		}
		// Apply back to front so earlier offsets stay valid.
		fixed := append([]byte(nil), src...)
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			fixed = append(fixed[:e.Offset], append([]byte(e.New), fixed[e.End:]...)...)
		}
		out[file] = fixed
	}
	return out, nil
}
