package errwrap_test

import (
	"strings"
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	diags := analysistest.Run(t, "testdata", errwrap.Analyzer, "a", "m")
	// The two plain directives carry fixes; the flagged %+v does not.
	fixes := 0
	for _, d := range diags {
		if len(d.Fix) > 0 {
			fixes++
		}
	}
	if fixes != 2 {
		t.Errorf("diagnostics with fixes = %d, want 2 (plain %%v and %%s only)", fixes)
	}
}

// TestErrwrapFix round-trips the mechanical %v→%w rewrite against the
// golden file.
func TestErrwrapFix(t *testing.T) {
	fixed := analysistest.RunWithFixes(t, "testdata", errwrap.Analyzer, "a")
	for file, src := range fixed {
		if strings.Contains(string(src), "exported: %v") {
			t.Errorf("%s: fix left %%v in place", file)
		}
	}
}
