// Package errwrap guards the error-taxonomy chain PR 3 established and
// PR 5 mapped onto HTTP statuses: every error that crosses a package
// boundary must keep its wrap chain intact, because the taxonomy is
// consulted exclusively through errors.Is — engine.JobError unwraps to
// ErrCanceled/ErrNumerical/ErrInvalidRequest, and internal/server maps
// those sentinels to 499/422/400. One fmt.Errorf("...: %v", err) on
// that path silently flattens the chain to a string: errors.Is stops
// matching, the server answers 500, and nothing fails until a client
// notices the wrong status.
//
// The rule: inside any function whose error result is observable
// across the package boundary — exported, or reachable from an
// exported function through the intra-package callgraph — formatting
// an error-typed value with %v, %s or %q in fmt.Errorf is a
// diagnostic. Use %w. Debug helpers that are unreachable from the
// exported surface may format errors freely; so may package main,
// whose errors terminate in a log line rather than an errors.Is.
//
// The %v→%w rewrite is mechanical, so the diagnostic carries a
// suggested fix that cntlint -fix applies. Sites that genuinely mean
// to flatten (e.g. embedding an error's text in a new message without
// adopting its identity) annotate //lint:allow errwrap <reason>.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"

	"cntfet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "errors formatted into fmt.Errorf on an exported-reachable path " +
		"must use %w, not %v/%s/%q, so errors.Is keeps reaching the " +
		"taxonomy sentinels end-to-end",
	Run: run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg.Name == "main" {
		return nil // command errors terminate in a log line, not errors.Is
	}
	cg := pkg.CallGraph()
	boundary := cg.ReachableFromExported()
	for _, node := range cg.Nodes() {
		if !boundary[node.Fn] {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pkg.Info, call)
			if !analysis.IsPkgFunc(fn, "fmt", "Errorf") {
				return true
			}
			checkErrorf(pass, call)
			return true
		})
	}
	return nil
}

// checkErrorf scans one fmt.Errorf call's format literal and reports
// every %v/%s/%q directive whose argument is an error.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // computed format: nothing to scan
	}
	for _, d := range scanVerbs(lit.Value) {
		if d.verb != 'v' && d.verb != 's' && d.verb != 'q' {
			continue
		}
		argIdx := 1 + d.arg
		if argIdx >= len(call.Args) {
			continue // malformed format; go vet owns that complaint
		}
		tv, ok := pass.Pkg.Info.Types[call.Args[argIdx]]
		if !ok || tv.Type == nil || !types.Implements(tv.Type, errorIface) {
			continue
		}
		var fix []analysis.Edit
		if d.plain {
			verbPos := lit.Pos() + token.Pos(d.verbOff)
			fix = []analysis.Edit{pass.Edit(verbPos, verbPos+1, "w")}
		}
		pass.ReportfFix(call.Args[argIdx].Pos(), fix,
			"error formatted with %%%c loses its wrap chain: use %%w so errors.Is "+
				"reaches the taxonomy sentinels (or //lint:allow errwrap with the "+
				"reason the identity is deliberately dropped)", d.verb)
	}
}

// directive is one %-verb of a format string: the verb letter, the
// byte offset of that letter within the literal's source text, the
// index of the argument it consumes, and whether the directive is a
// plain two-byte %v (no flags/width/precision), which makes the
// %w rewrite mechanical.
type directive struct {
	verb    byte
	verbOff int
	arg     int
	plain   bool
}

// scanVerbs walks a string literal's source text (quotes included —
// offsets are relative to the literal start, so a fix can be placed
// without unquoting) and returns its directives in order. The scan
// mirrors fmt's argument consumption: every directive except %% takes
// one argument, plus one per '*' width or precision.
func scanVerbs(src string) []directive {
	var out []directive
	arg := 0
	for i := 0; i < len(src); i++ {
		if src[i] != '%' {
			continue
		}
		if i+1 < len(src) && src[i+1] == '%' {
			i++
			continue
		}
		start := i
		i++
		// Flags, width, precision; '*' consumes an argument of its own.
		for i < len(src) {
			c := src[i]
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				(c >= '1' && c <= '9') || c == '.' {
				i++
				continue
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			break
		}
		if i >= len(src) {
			break
		}
		verb := src[i]
		if (verb >= 'a' && verb <= 'z') || (verb >= 'A' && verb <= 'Z') {
			out = append(out, directive{
				verb:    verb,
				verbOff: i,
				arg:     arg,
				plain:   i == start+1,
			})
			arg++
		}
	}
	return out
}
