// Package main is exempt: a command's errors end in a log line, not
// in an errors.Is chain some other package depends on.
package main

import (
	"errors"
	"fmt"
)

func main() {
	if err := run(); err != nil {
		fmt.Println(err)
	}
}

func run() error {
	return fmt.Errorf("run: %v", errors.New("boom"))
}
