// Package a is the errwrap fixture: wrap-chain losses on the
// exported-reachable path trigger, debug helpers and annotated sites
// do not.
package a

import (
	"errors"
	"fmt"
)

// ErrClass stands in for a taxonomy sentinel.
var ErrClass = errors.New("a: class")

// Exported is on the boundary: its errors are observable outside.
func Exported() error {
	if err := inner(); err != nil {
		return fmt.Errorf("exported: %v", err) // want `error formatted with %v loses its wrap chain`
	}
	return nil
}

// reachable is unexported but called from Exported, so its error
// escapes too.
func reachable() error {
	if err := inner(); err != nil {
		return fmt.Errorf("reachable: %s", err) // want `error formatted with %s loses its wrap chain`
	}
	return nil
}

// ExportedCaller keeps reachable on the boundary.
func ExportedCaller() error { return reachable() }

// Wrapped does it right: %w keeps errors.Is working.
func Wrapped() error {
	if err := inner(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

// Mixed wraps the error and formats a plain value; only error-typed
// arguments are constrained.
func Mixed(n int) error {
	if err := inner(); err != nil {
		return fmt.Errorf("mixed %d %v: %w", n, n, err)
	}
	return nil
}

// Flattened documents that it means to drop the identity.
func Flattened() error {
	if err := inner(); err != nil {
		//lint:allow errwrap the cause is advisory detail, not an identity callers match on
		return fmt.Errorf("flattened: %v", err)
	}
	return nil
}

// Flagged exercises a non-plain directive: reported, but with no
// mechanical fix (%+w is not a verb).
func Flagged() error {
	if err := inner(); err != nil {
		return fmt.Errorf("flagged: %+v", err) // want `error formatted with %v loses its wrap chain`
	}
	return nil
}

// debugDump is unreachable from the exported surface: its formatting
// is nobody's contract.
func debugDump() string {
	err := inner()
	return fmt.Errorf("debug: %v", err).Error()
}

func inner() error { return ErrClass }
