// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: named Analyzer passes that
// inspect one type-checked package at a time and report position-tagged
// diagnostics. It exists because this module vendors nothing — the
// container has no x/tools — yet the invariants the engine grew in PRs
// 1–3 (central telemetry keys, context propagation, NaN sentinels,
// atomic publication) deserve build-breaking checks, not review notes.
//
// The shape mirrors go/analysis closely on purpose so the suite can be
// ported to the real framework verbatim if the dependency ever becomes
// available: an Analyzer has a Name, a Doc and a Run func over a *Pass;
// cmd/cntlint is the multichecker; analysistest runs fixtures with
// "// want" comments.
//
// Suppression: a diagnostic is dropped when the line it lands on, or
// the line directly above, carries a comment of the form
//
//	//lint:allow <name>[,<name>...] [reason]
//
// naming the reporting analyzer. The escape hatch is deliberate and
// greppable — every allowed site documents why the invariant does not
// apply there.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description cntlint -help prints.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	// Nil for analyzers that only need the module-wide phase.
	Run func(*Pass) error
	// RunModule, when non-nil, runs once after every package's Run,
	// over the whole loaded package set — the hook for cross-package
	// invariants (the httpstatus class↔mapping check) that no single
	// package can see.
	RunModule func(*ModulePass) error
}

// Edit is one suggested textual fix: replace [Offset, End) of File
// with New. Offsets are byte offsets into the file as loaded.
type Edit struct {
	File        string
	Offset, End int
	New         string
}

// Diagnostic is one finding, already resolved to a file position.
// A non-empty Fix carries the mechanical remedy -fix mode applies.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      []Edit
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("cntfet/internal/sweep"; fixtures use
	// their directory name).
	Path string
	// Name is the package name from the package clauses.
	Name string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, comments included.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow maps file:line to the analyzer names allowed there, built
	// once from the //lint:allow comments of every file.
	allow map[string]map[string]bool
	// callgraph is the lazily built intra-package callgraph.
	callgraph *CallGraph
}

// Pass carries one (analyzer, package) pairing, collecting diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Fset returns the position table of the package under analysis.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the type-checker facts of the package.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos unless a //lint:allow annotation on
// that line (or the line above) names this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, "", nil, format, args...)
}

// ReportfFix is Reportf with a suggested mechanical fix attached, for
// -fix mode. Build the edits with p.Edit.
func (p *Pass) ReportfFix(pos token.Pos, fix []Edit, format string, args ...any) {
	p.report(pos, "", fix, format, args...)
}

// ReportfAllow is Reportf with an additional allow-comment alias: the
// diagnostic is also suppressed by //lint:allow <alias>. Used where a
// sub-rule has its own documented vocabulary (//lint:allow goroutine)
// distinct from the analyzer's name.
func (p *Pass) ReportfAllow(alias string, pos token.Pos, fix []Edit, format string, args ...any) {
	p.report(pos, alias, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, alias string, fix []Edit, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	if alias != "" && p.Pkg.allowed(alias, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Edit builds one suggested-fix edit replacing the [pos, end) source
// range with new text, resolving token positions to byte offsets.
func (p *Pass) Edit(pos, end token.Pos, newText string) Edit {
	from := p.Pkg.Fset.Position(pos)
	to := p.Pkg.Fset.Position(end)
	return Edit{File: from.Filename, Offset: from.Offset, End: to.Offset, New: newText}
}

var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,\- ]+)`)

// buildAllow scans every comment of every file once, recording which
// analyzer names are allowed on which source lines.
func (pkg *Package) buildAllow() {
	pkg.allow = map[string]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				names := strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ',' || r == ' '
				})
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				set := pkg.allow[key]
				if set == nil {
					set = map[string]bool{}
					pkg.allow[key] = set
				}
				for _, n := range names {
					set[strings.TrimSpace(n)] = true
				}
			}
		}
	}
}

// allowed reports whether analyzer name is suppressed at position: an
// annotation on the diagnostic's own line or on the line directly
// above it.
func (pkg *Package) allowed(name string, pos token.Position) bool {
	if pkg.allow == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := pkg.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]; set[name] {
			return true
		}
	}
	return false
}

// ModulePass carries one analyzer's module-wide phase: every loaded
// package at once, for invariants that span package boundaries.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags []Diagnostic
}

// Reportf records a module-phase finding at pos inside pkg,
// honouring pkg's //lint:allow annotations like the per-package phase.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if pkg.allowed(mp.Analyzer.Name, position) {
		return
	}
	mp.diags = append(mp.diags, Diagnostic{
		Analyzer: mp.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package — then every analyzer's
// module phase to the whole set — and returns the combined findings
// sorted by file position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.allow == nil {
			pkg.buildAllow()
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diags...)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s module phase: %w", a.Name, err)
		}
		out = append(out, mp.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// IsConstOfPackage reports whether expr (parens stripped) is a
// reference to a named constant declared in the package with the given
// import path — the telemetrykeys notion of "a key from the registry".
func IsConstOfPackage(info *types.Info, expr ast.Expr, pkgPath string) bool {
	expr = ast.Unparen(expr)
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id]
	if !ok {
		return false
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	return c.Pkg().Path() == pkgPath
}

// CalleeFunc resolves the called function or method of a call
// expression, or nil for indirect calls and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the named function (or method) from
// the package with the given import path.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
