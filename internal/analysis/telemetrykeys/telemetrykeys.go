// Package telemetrykeys rejects raw string literals as telemetry
// instrument names or trace event kinds: every name passed to
// Registry.Counter/Timer/Histogram or Trace.Emit must be a constant
// declared in internal/telemetry (keys.go). PR 1 scattered dotted keys
// as literals across six layers; the "fettoy.solve" trace kind next to
// the "fettoy.solves" counter shows how close typo and plural drift
// then sits to silently splitting a metric. With the registry central
// and literals banned, drift is a compile^W lint failure.
//
// Dynamic per-worker keys remain expressible as
// fmt.Sprintf(telemetry.KeySweepWorkerPointsFmt, w): Sprintf is
// accepted exactly when its format argument is itself a registry
// constant.
package telemetrykeys

import (
	"fmt"
	"go/ast"

	"cntfet/internal/analysis"
)

// TelemetryPath is the package whose constants are the key registry.
const TelemetryPath = "cntfet/internal/telemetry"

// methods whose first string argument names an instrument or kind.
var keyMethods = map[string]bool{
	"Counter":   true,
	"Timer":     true,
	"Histogram": true,
	"Emit":      true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "telemetrykeys",
	Doc: "telemetry instrument names and trace kinds must be constants " +
		"declared in internal/telemetry/keys.go, not string literals",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg.Path == TelemetryPath {
		// The registry package itself only declares the keys; its tests
		// (excluded from analysis anyway) mint ad-hoc names on purpose.
		return nil
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != TelemetryPath || !keyMethods[fn.Name()] {
				return true
			}
			if sig := fn.Signature(); sig.Recv() == nil {
				return true // only the Registry/Trace methods carry keys
			}
			arg := call.Args[0]
			if !isRegistryKey(pass, arg) {
				pass.Reportf(arg.Pos(),
					"telemetry %s name %s must be a constant from %s (keys.go), not %s",
					fn.Name(), exprString(arg), TelemetryPath, describe(pass, arg))
			}
			return true
		})
	}
	return nil
}

// isRegistryKey accepts a reference to a telemetry-package constant, or
// fmt.Sprintf of such a constant (the per-worker attribution pattern).
func isRegistryKey(pass *analysis.Pass, expr ast.Expr) bool {
	info := pass.Pkg.Info
	expr = ast.Unparen(expr)
	if analysis.IsConstOfPackage(info, expr, TelemetryPath) {
		return true
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn := analysis.CalleeFunc(info, call); analysis.IsPkgFunc(fn, "fmt", "Sprintf") {
		return analysis.IsConstOfPackage(info, call.Args[0], TelemetryPath)
	}
	return false
}

func describe(pass *analysis.Pass, expr ast.Expr) string {
	tv, ok := pass.Pkg.Info.Types[expr]
	if ok && tv.Value != nil {
		return fmt.Sprintf("the literal %s", tv.Value)
	}
	return "a computed value"
}

func exprString(expr ast.Expr) string {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		return fmt.Sprintf("%q", id.Name)
	}
	return "argument"
}
