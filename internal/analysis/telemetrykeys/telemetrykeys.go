// Package telemetrykeys rejects raw string literals as telemetry
// names: instrument names and trace event kinds passed to
// Registry.Counter/Timer/Histogram or Trace.Emit, span kinds passed to
// StartSpan (the package function or the Tracer method), structured-log
// event names passed to Logger.Log, and structured-log field names
// passed to the Field constructors (String, Int, Float, Bool, Dur) must
// all be constants declared in internal/telemetry (keys.go). PR 1
// scattered dotted keys as literals across six layers; the
// "fettoy.solve" trace kind next to the "fettoy.solves" counter shows
// how close typo and plural drift then sits to silently splitting a
// metric — and a drifting span kind or log field name splits a trace
// query the same way. With the registry central and literals banned,
// drift is a compile^W lint failure.
//
// Dynamic per-worker keys remain expressible as
// fmt.Sprintf(telemetry.KeySweepWorkerPointsFmt, w): Sprintf is
// accepted exactly when its format argument is itself a registry
// constant.
package telemetrykeys

import (
	"fmt"
	"go/ast"

	"cntfet/internal/analysis"
)

// TelemetryPath is the package whose constants are the key registry.
const TelemetryPath = "cntfet/internal/telemetry"

// keyMethodArg maps telemetry methods (with receiver) to the index of
// the argument naming an instrument, kind or event.
var keyMethodArg = map[string]int{
	"Counter":   0, // Registry.Counter(name)
	"Gauge":     0, // Registry.Gauge(name)
	"Timer":     0, // Registry.Timer(name)
	"Histogram": 0, // Registry.Histogram(name, bounds)
	"Emit":      0, // Trace.Emit(kind, ...)
	"StartSpan": 1, // Tracer.StartSpan(ctx, kind)
	"Log":       0, // Logger.Log(event, fields...)
}

// keyFuncArg is the same for package-level functions: the span entry
// point and the structured-log field constructors.
var keyFuncArg = map[string]int{
	"StartSpan": 1, // StartSpan(ctx, kind)
	"String":    0, // String(key, v)
	"Int":       0,
	"Float":     0,
	"Bool":      0,
	"Dur":       0,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "telemetrykeys",
	Doc: "telemetry instrument names, span kinds and log field names must be " +
		"constants declared in internal/telemetry/keys.go, not string literals",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg.Path == TelemetryPath {
		// The registry package itself only declares the keys; its tests
		// (excluded from analysis anyway) mint ad-hoc names on purpose.
		return nil
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != TelemetryPath {
				return true
			}
			var idx int
			if fn.Signature().Recv() != nil {
				idx, ok = keyMethodArg[fn.Name()]
			} else {
				idx, ok = keyFuncArg[fn.Name()]
			}
			if !ok || len(call.Args) <= idx {
				return true
			}
			arg := call.Args[idx]
			if !isRegistryKey(pass, arg) {
				pass.Reportf(arg.Pos(),
					"telemetry %s name %s must be a constant from %s (keys.go), not %s",
					fn.Name(), exprString(arg), TelemetryPath, describe(pass, arg))
			}
			return true
		})
	}
	return nil
}

// isRegistryKey accepts a reference to a telemetry-package constant, or
// fmt.Sprintf of such a constant (the per-worker attribution pattern).
func isRegistryKey(pass *analysis.Pass, expr ast.Expr) bool {
	info := pass.Pkg.Info
	expr = ast.Unparen(expr)
	if analysis.IsConstOfPackage(info, expr, TelemetryPath) {
		return true
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn := analysis.CalleeFunc(info, call); analysis.IsPkgFunc(fn, "fmt", "Sprintf") {
		return analysis.IsConstOfPackage(info, call.Args[0], TelemetryPath)
	}
	return false
}

func describe(pass *analysis.Pass, expr ast.Expr) string {
	tv, ok := pass.Pkg.Info.Types[expr]
	if ok && tv.Value != nil {
		return fmt.Sprintf("the literal %s", tv.Value)
	}
	return "a computed value"
}

func exprString(expr ast.Expr) string {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		return fmt.Sprintf("%q", id.Name)
	}
	return "argument"
}
