package telemetrykeys_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/telemetrykeys"
)

func TestTelemetryKeys(t *testing.T) {
	analysistest.Run(t, "testdata", telemetrykeys.Analyzer, "a")
}
