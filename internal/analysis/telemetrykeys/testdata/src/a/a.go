// Package a exercises the telemetry key discipline: instrument and
// trace names must come from the central keys.go registry.
package a

import (
	"fmt"

	"cntfet/internal/telemetry"
)

// localKey is a constant, but of the wrong package: only constants
// declared in internal/telemetry count as registered keys.
const localKey = "a.local"

func bad(reg *telemetry.Registry, tr *telemetry.Trace, worker int) {
	reg.Counter("a.solves").Inc()                         // want `must be a constant`
	reg.Timer("a.time")                                   // want `must be a constant`
	reg.Histogram("a.hist", nil)                          // want `must be a constant`
	tr.Emit("a.event", 0)                                 // want `must be a constant`
	reg.Counter(localKey).Inc()                           // want `must be a constant`
	reg.Counter(fmt.Sprintf("a.worker.%d", worker)).Inc() // want `must be a constant`
}

func good(reg *telemetry.Registry, tr *telemetry.Trace, worker int) {
	reg.Counter(telemetry.KeySweepPoints).Inc()
	reg.Timer(telemetry.KeyFettoySolveTime)
	reg.Histogram(telemetry.KeyFettoySolveIters, nil)
	tr.Emit(telemetry.KindFettoySolve, 0)
	reg.Counter(fmt.Sprintf(telemetry.KeySweepWorkerPointsFmt, worker)).Inc()
}
