// Package a exercises the telemetry key discipline: instrument and
// trace names must come from the central keys.go registry.
package a

import (
	"context"
	"fmt"
	"time"

	"cntfet/internal/telemetry"
)

// localKey is a constant, but of the wrong package: only constants
// declared in internal/telemetry count as registered keys.
const localKey = "a.local"

func bad(reg *telemetry.Registry, tr *telemetry.Trace, worker int) {
	reg.Counter("a.solves").Inc()                         // want `must be a constant`
	reg.Timer("a.time")                                   // want `must be a constant`
	reg.Histogram("a.hist", nil)                          // want `must be a constant`
	tr.Emit("a.event", 0)                                 // want `must be a constant`
	reg.Counter(localKey).Inc()                           // want `must be a constant`
	reg.Counter(fmt.Sprintf("a.worker.%d", worker)).Inc() // want `must be a constant`
}

func good(reg *telemetry.Registry, tr *telemetry.Trace, worker int) {
	reg.Counter(telemetry.KeySweepPoints).Inc()
	reg.Timer(telemetry.KeyFettoySolveTime)
	reg.Histogram(telemetry.KeyFettoySolveIters, nil)
	tr.Emit(telemetry.KindFettoySolve, 0)
	reg.Counter(fmt.Sprintf(telemetry.KeySweepWorkerPointsFmt, worker)).Inc()
}

func badSpans(ctx context.Context, spanner *telemetry.Tracer, lg *telemetry.Logger) {
	_, sp := telemetry.StartSpan(ctx, "a.span") // want `must be a constant`
	_, _ = spanner.StartSpan(ctx, "a.span")     // want `must be a constant`
	sp.Set(
		telemetry.String("a.field", "v"),    // want `must be a constant`
		telemetry.Int("a.iters", 1),         // want `must be a constant`
		telemetry.Float("a.vg", 0.5),        // want `must be a constant`
		telemetry.Bool("a.hit", true),       // want `must be a constant`
		telemetry.Dur("a.dur", time.Second), // want `must be a constant`
	)
	lg.Log("a.event") // want `must be a constant`
	sp.End()
}

func goodSpans(ctx context.Context, spanner *telemetry.Tracer, lg *telemetry.Logger) {
	ctx, sp := telemetry.StartSpan(ctx, telemetry.SpanEngineJob)
	_, sp2 := spanner.StartSpan(ctx, telemetry.SpanSweepChunk)
	sp.Set(
		telemetry.String(telemetry.AttrModelKey, "k"),
		telemetry.Int(telemetry.AttrPoints, 1),
		telemetry.Float(telemetry.AttrVG, 0.5),
		telemetry.Bool(telemetry.AttrCacheHit, true),
		telemetry.Dur(telemetry.FieldDurNS, time.Second),
	)
	lg.Log(telemetry.LogEventJob, telemetry.String(telemetry.FieldTrace, sp.TraceID()))
	sp2.End()
	sp.End()
}
