package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the framework: a lightweight
// intra-package callgraph over the declared functions and methods of
// one package, plus a per-function fact store analyzers use to memoize
// verdicts while propagating them along call edges. Both are built
// from the syntax and type information the loader already produced —
// no extra passes over the go tool, no x/tools dependency.
//
// The graph is deliberately conservative and cheap:
//
//   - Nodes are the package's own *types.Func declarations (functions
//     and methods with bodies). Imported functions are edge targets
//     only insofar as analyzers resolve them per call site; the graph
//     does not model them.
//   - An edge A -> B exists when A's body (including any function
//     literals nested in it) mentions B — a direct call, a method
//     call resolved statically, or a bare function/method value
//     reference (callbacks count: a function passed somewhere may be
//     called there). Closures attribute to their enclosing
//     declaration, so reachability through a worker FuncLit is the
//     enclosing scheduler's reachability.
//   - Dynamic calls (interface methods, func-typed values) have no
//     edge; analyzers that need soundness there must treat them as
//     unknowns at the call site (see zeroalloc's dynamic-call rule).
type CallGraph struct {
	pkg   *Package
	nodes map[*types.Func]*FuncNode
	facts map[*types.Func]map[string]any
}

// FuncNode is one declared function or method of the package.
type FuncNode struct {
	// Fn is the type-checker object; Decl its syntax (always non-nil,
	// with a non-nil body).
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Calls are the same-package functions this one mentions, deduped,
	// in source order of first mention.
	Calls []*types.Func
}

// CallGraph returns the package's callgraph, built on first use and
// cached.
func (pkg *Package) CallGraph() *CallGraph {
	if pkg.callgraph != nil {
		return pkg.callgraph
	}
	cg := &CallGraph{
		pkg:   pkg,
		nodes: map[*types.Func]*FuncNode{},
		facts: map[*types.Func]map[string]any{},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Fn: fn, Decl: fd}
			seen := map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				callee, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok || callee.Pkg() != pkg.Types || seen[callee] {
					return true
				}
				seen[callee] = true
				node.Calls = append(node.Calls, callee)
				return true
			})
			cg.nodes[fn] = node
		}
	}
	pkg.callgraph = cg
	return cg
}

// Node returns the graph node of fn, or nil for functions the package
// does not declare (imports, interface methods, body-less decls).
func (cg *CallGraph) Node(fn *types.Func) *FuncNode { return cg.nodes[fn] }

// Nodes returns every declared function, sorted by source position so
// iteration order is deterministic.
func (cg *CallGraph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(cg.nodes))
	for _, n := range cg.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// FuncOf resolves a declaration back to its object — the inverse of
// Node(fn).Decl.
func (cg *CallGraph) FuncOf(decl *ast.FuncDecl) *types.Func {
	fn, _ := cg.pkg.Info.Defs[decl.Name].(*types.Func)
	return fn
}

// Reachable returns the transitive closure of the given roots along
// call edges, roots included.
func (cg *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fn == nil || seen[fn] {
			continue
		}
		seen[fn] = true
		if node := cg.nodes[fn]; node != nil {
			stack = append(stack, node.Calls...)
		}
	}
	return seen
}

// ReachableFromExported returns every function reachable from the
// package's exported functions and methods (plus main and init, which
// are entry points in their packages) — the set whose behaviour is
// observable across the package boundary.
func (cg *CallGraph) ReachableFromExported() map[*types.Func]bool {
	var roots []*types.Func
	for fn := range cg.nodes {
		if ast.IsExported(fn.Name()) || fn.Name() == "main" || fn.Name() == "init" {
			roots = append(roots, fn)
		}
	}
	return cg.Reachable(roots...)
}

// SetFact records an analyzer-scoped fact about fn. Keys should be
// prefixed with the analyzer name; facts live as long as the package.
func (cg *CallGraph) SetFact(fn *types.Func, key string, v any) {
	m := cg.facts[fn]
	if m == nil {
		m = map[string]any{}
		cg.facts[fn] = m
	}
	m[key] = v
}

// Fact retrieves a fact recorded with SetFact.
func (cg *CallGraph) Fact(fn *types.Func, key string) (any, bool) {
	v, ok := cg.facts[fn][key]
	return v, ok
}
