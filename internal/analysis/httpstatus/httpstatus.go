// Package httpstatus keeps the error taxonomy and the HTTP boundary
// in sync — the one invariant in this module no single package can
// see. The engine declares its error classes as wrapped sentinels
// (ErrInvalidRequest, ErrCanceled, ErrNumerical); the server folds
// them to status codes in one switch. Both halves compile fine when
// they drift: a new sentinel with no mapping arm surfaces as a bare
// 500, and a mapping arm probing an unmarked error is dead taxonomy
// nobody maintains.
//
// The contract is spelled with two directives:
//
//	//taxonomy:class      on a package-level error sentinel
//	//taxonomy:statusmap  on a function that folds errors to codes
//
// and checked module-wide, in both directions: every marked class
// must be tested (errors.Is) inside some statusmap function, and
// every module-local sentinel a statusmap function tests must be
// marked. When the loaded package set contains no statusmap function
// at all — e.g. linting internal/engine on its own — the analyzer
// stays silent rather than demand a mapping it cannot see.
package httpstatus

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cntfet/internal/analysis"
)

// Directives recognised by the analyzer.
const (
	ClassDirective     = "//taxonomy:class"
	StatusMapDirective = "//taxonomy:statusmap"
)

// Analyzer implements the check. It is module-phase only: the classes
// and the mapping live in different packages by design.
var Analyzer = &analysis.Analyzer{
	Name: "httpstatus",
	Doc: "every //taxonomy:class error sentinel must have an errors.Is " +
		"arm in a //taxonomy:statusmap function, and every module-local " +
		"sentinel such a function tests must be marked //taxonomy:class",
	RunModule: runModule,
}

// class is one marked sentinel: where it was declared, and its
// cross-package identity (package path + name — object identity does
// not survive the source/export-data boundary).
type class struct {
	pkg  *analysis.Package
	pos  token.Pos
	qual string
	name string
}

func runModule(mp *analysis.ModulePass) error {
	local := map[string]bool{} // package paths in the loaded set
	for _, pkg := range mp.Pkgs {
		local[pkg.Path] = true
	}

	var classes []class
	type probe struct {
		pkg  *analysis.Package
		pos  token.Pos
		qual string
		name string
	}
	var probes []probe // every errors.Is(_, X) inside a statusmap func
	statusmaps := 0

	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || !marked(specDoc(d, vs), ClassDirective) {
							continue
						}
						for _, name := range vs.Names {
							classes = append(classes, class{
								pkg:  pkg,
								pos:  name.Pos(),
								qual: pkg.Path + "." + name.Name,
								name: name.Name,
							})
						}
					}
				case *ast.FuncDecl:
					if !marked(d.Doc, StatusMapDirective) {
						continue
					}
					statusmaps++
					ast.Inspect(d.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok || len(call.Args) != 2 {
							return true
						}
						fn := analysis.CalleeFunc(pkg.Info, call)
						if !analysis.IsPkgFunc(fn, "errors", "Is") {
							return true
						}
						v := sentinelVar(pkg.Info, call.Args[1])
						if v == nil || v.Pkg() == nil {
							return true
						}
						probes = append(probes, probe{
							pkg:  pkg,
							pos:  call.Args[1].Pos(),
							qual: v.Pkg().Path() + "." + v.Name(),
							name: v.Name(),
						})
						return true
					})
				}
			}
		}
	}

	if statusmaps == 0 {
		// No boundary in sight: nothing to reconcile against.
		return nil
	}

	probed := map[string]bool{}
	for _, p := range probes {
		probed[p.qual] = true
	}
	for _, c := range classes {
		if !probed[c.qual] {
			mp.Reportf(c.pkg, c.pos, "taxonomy class %s has no errors.Is arm in any "+
				"//taxonomy:statusmap function: it will surface as a bare 500", c.name)
		}
	}

	markedQual := map[string]bool{}
	for _, c := range classes {
		markedQual[c.qual] = true
	}
	for _, p := range probes {
		pkgPath := p.qual[:strings.LastIndex(p.qual, ".")]
		if !local[pkgPath] {
			continue // stdlib or out-of-set sentinels are not ours to mark
		}
		if !markedQual[p.qual] {
			mp.Reportf(p.pkg, p.pos, "status mapping tests %s, which is not marked "+
				"//taxonomy:class: mark the sentinel so the class list stays the "+
				"single source of truth", p.name)
		}
	}
	return nil
}

// specDoc resolves the doc comment of one value spec: the spec's own
// doc inside a grouped declaration, the GenDecl doc otherwise.
func specDoc(d *ast.GenDecl, vs *ast.ValueSpec) *ast.CommentGroup {
	if vs.Doc != nil {
		return vs.Doc
	}
	if len(d.Specs) == 1 {
		return d.Doc
	}
	return nil
}

// marked reports whether the comment group carries the directive.
func marked(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// sentinelVar resolves an errors.Is target expression to the
// package-level variable it names, or nil.
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}
