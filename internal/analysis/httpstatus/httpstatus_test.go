package httpstatus_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/httpstatus"
)

// TestHTTPStatus loads both sides of the contract together: the
// taxonomy package and the boundary package, with drift planted in
// each direction.
func TestHTTPStatus(t *testing.T) {
	diags := analysistest.RunModule(t, "testdata", httpstatus.Analyzer, "a", "b")
	if len(diags) != 2 {
		t.Errorf("diagnostics = %d, want 2 (one per drift direction)", len(diags))
	}
}

// TestHTTPStatusNoBoundary checks the half-module guard: classes with
// no statusmap function in sight are not findings.
func TestHTTPStatusNoBoundary(t *testing.T) {
	diags := analysistest.RunModule(t, "testdata", httpstatus.Analyzer, "c")
	if len(diags) != 0 {
		t.Errorf("diagnostics = %d, want 0 when no statusmap is loaded", len(diags))
	}
}
