// Package c has classes but no boundary in the loaded set: the
// analyzer must stay silent rather than demand a mapping it cannot
// see (this is internal/engine linted on its own).
package c

import "errors"

// ErrAlone is marked, unmapped, and not a finding here.
//
//taxonomy:class
var ErrAlone = errors.New("c: alone")
