// Package b plays the server: it folds package a's taxonomy to
// status codes.
package b

import (
	"context"
	"errors"

	"a"
)

// StatusOf maps an error to an HTTP status.
//
//taxonomy:statusmap
func StatusOf(err error) int {
	switch {
	case errors.Is(err, a.ErrBadInput):
		return 400
	case errors.Is(err, a.ErrNumerical):
		return 422
	case errors.Is(err, a.ErrUnmarked): // want `not marked //taxonomy:class`
		return 409
	case errors.Is(err, context.Canceled): // out-of-set sentinel: not ours to mark
		return 499
	}
	return 500
}
