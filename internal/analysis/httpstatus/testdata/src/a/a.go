// Package a plays the engine: it declares the error taxonomy.
package a

import "errors"

// ErrBadInput rejects malformed requests.
//
//taxonomy:class
var ErrBadInput = errors.New("a: bad input")

// ErrNumerical reports solver non-convergence.
//
//taxonomy:class
var ErrNumerical = errors.New("a: numerical")

// ErrForgotten is marked but never mapped: the drift this analyzer
// exists to catch.
//
//taxonomy:class
var ErrForgotten = errors.New("a: forgotten") // want `taxonomy class ErrForgotten has no errors.Is arm`

// ErrUnmarked is mapped but not marked: the reverse drift.
var ErrUnmarked = errors.New("a: unmarked")
