package analysis_test

import (
	"go/ast"
	"testing"

	"cntfet/internal/analysis"
)

// funcReporter flags every function declaration — enough surface to
// exercise loading, reporting and the //lint:allow placements.
var funcReporter = &analysis.Analyzer{
	Name: "funcreport",
	Doc:  "reports every function declaration (test helper)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestAllowSuppression(t *testing.T) {
	pkg, err := analysis.NewLoader("").LoadDir("testdata/src/b", "b")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{funcReporter}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"func reported", "func wrongName"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostics = %q, want %q", got, want)
		}
	}
}
