package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader resolves packages with the go command and type-checks
// them with the standard library alone: sources are parsed with
// go/parser, imports are satisfied from compiler export data located
// via "go list -export" (compiled on demand into the build cache).
// This trades the x/tools go/packages dependency — unavailable here —
// for two well-understood subprocess calls.

// Loader loads and type-checks packages for analysis. It caches export
// data lookups, so one Loader should be reused across packages (and is
// safe for sequential use only).
type Loader struct {
	// Dir is the directory go commands run in; it must sit inside the
	// module. Empty means the current directory.
	Dir string

	fset *token.FileSet

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.ImporterFrom
	// src holds packages this loader already checked from source, keyed
	// by import path. Fixture packages register here (LoadDir), so one
	// fixture can import a sibling loaded before it — the go tool knows
	// nothing about paths under testdata.
	src map[string]*types.Package
}

// NewLoader returns a loader rooted at dir (empty: current directory).
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		src:     map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// Import implements types.Importer, preferring source-checked sibling
// packages over export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom with the same preference.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	p := l.src[path]
	l.mu.Unlock()
	if p != nil {
		return p, nil
	}
	return l.imp.ImportFrom(path, dir, mode)
}

// listedPackage is the subset of go list -json output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
}

// golist runs "go list" with the given arguments and decodes the JSON
// package stream.
func (l *Loader) golist(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// lookup feeds the gc importer: it maps an import path to a reader of
// that package's export data, asking the go command (once per path) to
// produce the file when the map has no answer yet.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
		cmd.Dir = l.Dir
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// prewarm bulk-resolves export data for the patterns' full dependency
// cone in one go command, so per-import lookups become map hits.
func (l *Loader) prewarm(patterns []string) {
	pkgs, err := l.golist(append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return // best effort; lookup falls back to per-path resolution
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// Load resolves the patterns ("./...", import paths) to packages and
// type-checks each from source. Test files are excluded by
// construction (go list GoFiles): the conventions the analyzers encode
// bind library and command code, while tests legitimately compare
// exact floats, use context.Background and mint ad-hoc telemetry keys.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.golist(append([]string{"-json=Dir,ImportPath,Name,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l.prewarm(patterns)
	var out []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads every non-test .go file of one directory as a single
// package with the given import path — the analysistest entry point
// for fixtures, which live under testdata where the go tool does not
// look.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	pkg, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.src[path] = pkg.Types
	l.mu.Unlock()
	return pkg, nil
}

// check parses and type-checks one package's files.
func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	pkg.buildAllow()
	return pkg, nil
}
