// Package a is the zeroalloc fixture: annotated kernels reject
// allocating constructs and dirty helpers; unannotated code is free
// to allocate.
package a

import "time"

// Sum is annotated and clean: arithmetic, control flow, time.Now and
// calls to clean same-package helpers are all fine.
//
//perf:zeroalloc
func Sum(xs []float64) float64 {
	t0 := time.Now()
	s := 0.0
	for _, x := range xs {
		s += scale(x)
	}
	return s + time.Since(t0).Seconds()
}

// scale is a clean helper: Sum may call it.
func scale(x float64) float64 { return 2 * x }

// Grow allocates directly through a builtin.
//
//perf:zeroalloc
func Grow(xs []int) []int {
	return append(xs, 1) // want `builtin append may allocate`
}

// Closure builds a func value (reported once; its innards are not
// separately walked) and then calls it dynamically.
//
//perf:zeroalloc
func Closure(xs []int) int {
	f := func() int { return len(xs) } // want `closure literal may allocate`
	return f()                         // want `dynamic call cannot be verified`
}

// Literals covers the composite-literal shapes.
//
//perf:zeroalloc
func Literals() int {
	xs := []int{1, 2}       // want `slice literal may allocate`
	m := map[int]int{1: 2}  // want `map literal may allocate`
	p := &point{x: 1, y: 2} // want `&composite literal may allocate`
	v := point{x: 3, y: 4}  // plain struct literal stays on the stack
	return xs[0] + m[1] + p.x + v.y
}

type point struct{ x, y int }

// Strings covers concatenation and the copying conversions.
//
//perf:zeroalloc
func Strings(a, b string) int {
	c := a + b      // want `string concatenation may allocate`
	bs := []byte(a) // want `string/slice conversion may allocate`
	s := string(bs) // want `string/slice conversion may allocate`
	return len(c) + len(s)
}

// Spawn launches a goroutine: a new stack is an allocation.
//
//perf:zeroalloc
func Spawn(done chan struct{}) {
	go close(done) // want `go statement may allocate`
}

// Timer calls a banned time constructor; time.Now above is fine.
//
//perf:zeroalloc
func Timer() {
	<-time.After(time.Millisecond) // want `time.After call may allocate`
}

// Boxed passes a concrete value into an interface parameter and
// converts one explicitly.
//
//perf:zeroalloc
func Boxed(x int) {
	sink(x)    // want `interface boxing of a non-pointer value`
	_ = any(x) // want `interface boxing of a non-pointer value`
	sink(&x)   // a pointer fits the interface word: no box
	sink(nil)  // nil boxes nothing
}

// sink is a clean helper with an interface parameter.
func sink(v any) { _ = v }

// Emitter dispatches through an interface method: dynamic, so
// unverifiable.
//
//perf:zeroalloc
func Emitter(s Sink, x int) {
	_ = s.Emit(x) // want `dynamic call cannot be verified`
}

// Sink mirrors the engine's row sink shape.
type Sink interface{ Emit(x int) error }

// Kernel calls a helper that allocates: the violation propagates up
// the callgraph and is reported at the call site.
//
//perf:zeroalloc
func Kernel(xs []float64) []float64 {
	return double(xs) // want `calls double, which may allocate`
}

// Deep shows the propagation is transitive through clean middlemen.
//
//perf:zeroalloc
func Deep(xs []float64) []float64 {
	return viaDouble(xs) // want `calls viaDouble, which may allocate`
}

// viaDouble is itself construct-free but calls an allocating helper.
func viaDouble(xs []float64) []float64 { return double(xs) }

// double allocates; it is not annotated, so the constructs are only
// witnesses, not diagnostics.
func double(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 2 * x
	}
	return out
}

// Allowed documents its one cold-path allocation.
//
//perf:zeroalloc
func Allowed(xs []int) []int {
	if cap(xs) == 0 {
		//lint:allow zeroalloc cold resize path, hit once per process
		return make([]int, 0, 64)
	}
	return xs[:0]
}

// free is unannotated: it may allocate all it likes.
func free() []int {
	return append([]int{}, 1, 2, 3)
}

var _ = free
