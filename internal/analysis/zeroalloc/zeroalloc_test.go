package zeroalloc_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/zeroalloc"
)

func TestZeroalloc(t *testing.T) {
	analysistest.Run(t, "testdata", zeroalloc.Analyzer, "a")
}
