// Package zeroalloc machine-checks the allocation budget PR 7 bought:
// the serving row kernels and the hot emit path run at
// testing.AllocsPerRun == 0, and that figure is guarded by alloc
// tests — but only on the grids the tests happen to sweep. This
// analyzer guards the property structurally: a function annotated
//
//	//perf:zeroalloc
//
// in its doc comment must not contain allocating constructs, and —
// because a kernel is only as clean as its helpers — must not call a
// same-package function that (transitively) contains one. The
// construct list is deliberately conservative:
//
//   - function literals (closures may capture and escape),
//   - the append/make/new builtins,
//   - slice and map composite literals, and &T{...},
//   - go statements,
//   - string concatenation and string<->[]byte/[]rune conversions,
//   - any fmt call, and the timer-allocating time constructors
//     (NewTimer, NewTicker, After, AfterFunc, Tick),
//   - interface boxing: passing or converting a concrete non-pointer
//     value into an interface,
//   - dynamic calls (func values, interface methods), which the
//     intra-package callgraph cannot see through.
//
// Cross-package static calls are trusted (their packages own their
// budgets) except the fmt/time set above. Several of these constructs
// are conditionally safe — a non-escaping closure is stack-allocated,
// a cold error path may allocate freely — so the escape hatch
// matters: //lint:allow zeroalloc <reason> on the construct's line
// documents why the kernel's AllocsPerRun guard stays at zero anyway.
// The alloc tests remain the ground truth; this analyzer makes the
// review conversation happen before the benchmark regresses.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cntfet/internal/analysis"
)

// Directive marks a function whose body must stay allocation-free.
const Directive = "//perf:zeroalloc"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc: "functions annotated //perf:zeroalloc must not allocate: no " +
		"closures, append/make/new, slice/map literals, fmt or timer " +
		"calls, interface boxing, or calls to helpers that do",
	Run: run,
}

// witness is the first allocating construct found in a function: what
// it is and where.
type witness struct {
	desc string
	pos  token.Pos
}

type checker struct {
	pass *analysis.Pass
	cg   *analysis.CallGraph
	// direct holds each declared function's first own construct;
	// trans adds propagation through same-package calls. state breaks
	// recursion cycles (0 unvisited, 1 visiting, 2 done).
	direct map[*types.Func]*witness
	trans  map[*types.Func]*witness
	state  map[*types.Func]int
}

func run(pass *analysis.Pass) error {
	cg := pass.Pkg.CallGraph()
	c := &checker{
		pass:   pass,
		cg:     cg,
		direct: map[*types.Func]*witness{},
		trans:  map[*types.Func]*witness{},
		state:  map[*types.Func]int{},
	}
	var annotated []*analysis.FuncNode
	for _, node := range cg.Nodes() {
		if isAnnotated(node.Decl) {
			annotated = append(annotated, node)
		}
		c.direct[node.Fn] = firstConstruct(pass.Pkg, node.Decl.Body)
	}
	for _, node := range annotated {
		c.checkAnnotated(node)
	}
	return nil
}

// isAnnotated reports whether the declaration's doc comment carries
// the //perf:zeroalloc directive.
func isAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, com := range decl.Doc.List {
		if strings.HasPrefix(com.Text, Directive) {
			return true
		}
	}
	return false
}

// checkAnnotated reports every allocating construct and every
// unverifiable or transitively-allocating call in one annotated
// function.
func (c *checker) checkAnnotated(node *analysis.FuncNode) {
	pass := c.pass
	name := node.Fn.Name()
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if w := describeConstruct(pass.Pkg.Info, n); w != nil {
			pass.Reportf(w.pos, "//perf:zeroalloc %s: %s may allocate "+
				"(//lint:allow zeroalloc with the reason it cannot, or hoist it)",
				name, w.desc)
			_, isLit := n.(*ast.FuncLit)
			return !isLit // a reported closure's innards add nothing
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch kind, callee := classifyCall(pass.Pkg, call); kind {
		case callDynamic:
			pass.Reportf(call.Pos(), "//perf:zeroalloc %s: dynamic call cannot be "+
				"verified allocation-free (//lint:allow zeroalloc with the reason "+
				"the callee stays within the budget)", name)
		case callSamePkg:
			if w := c.dirtyOf(callee); w != nil {
				pass.Reportf(call.Pos(), "//perf:zeroalloc %s: calls %s, which may "+
					"allocate (%s at %s)", name, callee.Name(), w.desc,
					pass.Fset().Position(w.pos))
			}
		}
		return true
	})
}

// dirtyOf returns the first allocating construct reachable from fn
// through same-package calls, or nil when fn is (conservatively)
// clean. Cycles are broken optimistically: a recursive function is as
// clean as its non-recursive constructs.
func (c *checker) dirtyOf(fn *types.Func) *witness {
	switch c.state[fn] {
	case 2:
		return c.trans[fn]
	case 1:
		return nil // visiting: break the cycle
	}
	node := c.cg.Node(fn)
	if node == nil {
		return nil // no body in this package: trust it
	}
	c.state[fn] = 1
	w := c.direct[fn]
	if w == nil {
		for _, callee := range node.Calls {
			if callee == fn {
				continue
			}
			if cw := c.dirtyOf(callee); cw != nil {
				w = cw
				break
			}
		}
	}
	c.state[fn] = 2
	c.trans[fn] = w
	return w
}

// firstConstruct returns the first allocating construct of a body —
// own constructs, banned cross-package calls, and dynamic calls all
// count; same-package calls do not (dirtyOf follows those edges).
func firstConstruct(pkg *analysis.Package, body *ast.BlockStmt) *witness {
	var found *witness
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if w := describeConstruct(pkg.Info, n); w != nil {
			found = w
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if kind, _ := classifyCall(pkg, call); kind == callDynamic {
				found = &witness{desc: "dynamic call", pos: call.Pos()}
				return false
			}
		}
		return true
	})
	return found
}

type callKind int

const (
	callNone    callKind = iota // not a call the propagation cares about
	callSamePkg                 // static same-package call: follow the edge
	callDynamic                 // func value or interface method: unverifiable
)

// classifyCall sorts a call for the propagation: same-package static
// calls are followed, dynamic calls are unverifiable, everything else
// (conversions, builtins, trusted imports) is handled by
// describeConstruct or ignored.
func classifyCall(pkg *analysis.Package, call *ast.CallExpr) (callKind, *types.Func) {
	info := pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return callNone, nil // conversion, not a call
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return callNone, nil // append/make/new are constructs, len/cap free
		case *types.Func:
			return staticKind(pkg, obj)
		case *types.Var:
			return callDynamic, nil // func-typed variable or parameter
		}
		return callNone, nil
	case *ast.SelectorExpr:
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return staticKind(pkg, obj)
		case *types.Var:
			return callDynamic, nil // func-typed field
		}
		return callDynamic, nil
	}
	return callDynamic, nil // call of an arbitrary expression
}

// staticKind resolves a named callee: interface methods are dynamic
// dispatch, same-package functions propagate, imports are trusted
// (banned imports are caught by describeConstruct).
func staticKind(pkg *analysis.Package, fn *types.Func) (callKind, *types.Func) {
	if recv := fn.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return callDynamic, nil
	}
	if fn.Pkg() == pkg.Types {
		return callSamePkg, fn
	}
	return callNone, nil
}

// describeConstruct reports whether n is, by itself, an allocating
// construct, with a one-phrase description.
func describeConstruct(info *types.Info, n ast.Node) *witness {
	switch n := n.(type) {
	case *ast.FuncLit:
		return &witness{desc: "closure literal", pos: n.Pos()}
	case *ast.GoStmt:
		return &witness{desc: "go statement", pos: n.Pos()}
	case *ast.CompositeLit:
		switch underlying(typeOf(info, n)).(type) {
		case *types.Slice:
			return &witness{desc: "slice literal", pos: n.Pos()}
		case *types.Map:
			return &witness{desc: "map literal", pos: n.Pos()}
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				return &witness{desc: "&composite literal", pos: n.Pos()}
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(typeOf(info, n.X)) {
			return &witness{desc: "string concatenation", pos: n.OpPos}
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(typeOf(info, n.Lhs[0])) {
			return &witness{desc: "string concatenation", pos: n.TokPos}
		}
	case *ast.CallExpr:
		return describeCall(info, n)
	}
	return nil
}

// describeCall covers the call-shaped constructs: allocating builtins,
// banned imports, boxing conversions and boxing arguments.
func describeCall(info *types.Info, call *ast.CallExpr) *witness {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				return &witness{desc: "builtin " + b.Name(), pos: call.Pos()}
			}
			return nil
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return describeConversion(info, call, tv.Type)
	}
	fn := analysis.CalleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			return &witness{desc: "fmt." + fn.Name() + " call", pos: call.Pos()}
		case "time":
			switch fn.Name() {
			case "NewTimer", "NewTicker", "After", "AfterFunc", "Tick":
				return &witness{desc: "time." + fn.Name() + " call", pos: call.Pos()}
			}
		}
	}
	// Boxing through arguments: a concrete non-pointer value crossing
	// into an interface parameter allocates its box.
	if sig, ok := underlying(typeOf(info, call.Fun)).(*types.Signature); ok && !call.Ellipsis.IsValid() {
		for i, arg := range call.Args {
			pt := paramType(sig, i)
			if pt == nil || !types.IsInterface(pt) {
				continue
			}
			if boxes(typeOf(info, arg)) {
				return &witness{desc: "interface boxing of a non-pointer value", pos: arg.Pos()}
			}
		}
	}
	return nil
}

// describeConversion flags T(x) where T is an interface and x a
// concrete non-pointer, and the string<->byte/rune-slice copies.
func describeConversion(info *types.Info, call *ast.CallExpr, target types.Type) *witness {
	if len(call.Args) != 1 {
		return nil
	}
	src := typeOf(info, call.Args[0])
	if types.IsInterface(target) && boxes(src) {
		return &witness{desc: "interface boxing of a non-pointer value", pos: call.Pos()}
	}
	if (isString(target) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(target) && isString(src)) {
		return &witness{desc: "string/slice conversion", pos: call.Pos()}
	}
	return nil
}

// boxes reports whether converting a value of type t into an interface
// allocates: concrete non-pointer kinds do; pointers, channels and
// funcs (word-sized references), interfaces and untyped nil do not.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct, *types.Array, *types.Slice, *types.Map:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func underlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type
}

// paramType resolves the i-th argument's parameter type, expanding the
// variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().Underlying().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}
