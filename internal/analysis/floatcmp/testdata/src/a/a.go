// Package a exercises the floating-point comparison rule.
package a

import "math"

type opts struct{ Tol float64 }

func cmp(a, b float64, xs []float64) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != 0 { // want `floating-point != comparison`
		return false
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return len(xs) == 0
}

func defaults(o opts) opts {
	if o.Tol == 0 { //lint:allow floatcmp zero value selects the default
		o.Tol = 1e-9
	}
	return o
}

func folded() bool {
	const half = 0.5
	return half == 0.25 // both operands constant: decided at compile time
}
