// Package floatcmp flags == and != between floating-point operands.
// The warm-start continuation of PR 2 threads a NaN sentinel through
// IDSFrom/SolveVSCFrom — and NaN compares unequal to everything,
// including itself, so an equality test against the sentinel is a
// silent always-false bug; math.IsNaN is the only correct probe.
// Beyond the sentinel, exact float equality is occasionally legitimate
// (zero-value option defaults, division guards against the exact
// datum, closed-form discriminant branches) but each such site should
// say so: rewrite with math.IsNaN or an epsilon, or annotate the line
// with //lint:allow floatcmp and a reason.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"cntfet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "== and != on floating-point operands: use math.IsNaN for NaN " +
		"sentinels, an epsilon for value comparison, or annotate " +
		"//lint:allow floatcmp for documented exact-equality idioms",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := info.Types[be.X], info.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant fold: decided at compile time
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison: use math.IsNaN for the NaN "+
					"sentinel, compare within an epsilon, or annotate "+
					"//lint:allow floatcmp with the reason exact equality is intended",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
