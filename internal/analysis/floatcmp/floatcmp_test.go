package floatcmp_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "testdata", floatcmp.Analyzer, "a")
}
