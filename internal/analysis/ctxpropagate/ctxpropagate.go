// Package ctxpropagate guards the end-to-end context discipline PR 3
// introduced with engine.Run: cancellation must thread from the
// request surface down to the quadrature loops, never being silently
// re-rooted along the way. Two rules:
//
//  1. context.Background() and context.TODO() are banned in library
//     (non-main, non-test) code. Commands own their root context;
//     libraries receive one. Documented compatibility shims — the
//     netlist Deck.Run wrapper, the root package's context-free
//     convenience API, the charge table's context-free lookup path —
//     carry an explicit //lint:allow ctxpropagate annotation, which
//     keeps every re-rooting site enumerable by grep.
//
//  2. A function that declares a context.Context parameter must use
//     it. An ignored ctx parameter is the classic shape of a lost
//     cancellation: the signature promises propagation the body does
//     not deliver (name the parameter _ to opt out explicitly).
package ctxpropagate

import (
	"go/ast"
	"go/types"

	"cntfet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc: "library code must thread the caller's context: no " +
		"context.Background/TODO outside package main, no ignored " +
		"context.Context parameters",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	info := pkg.Info
	for _, f := range pkg.Files {
		// Rule 1: re-rooting calls in library packages.
		if pkg.Name != "main" {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeFunc(info, call)
				if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
					pass.Reportf(call.Pos(),
						"context.%s in library code: thread the caller's context instead "+
							"(annotate //lint:allow ctxpropagate on documented compatibility shims)",
						fn.Name())
				}
				return true
			})
		}

		// Rule 2: declared-but-unused context parameters.
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fd := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fd.Type, fd.Body
			case *ast.FuncLit:
				ftype, body = fd.Type, fd.Body
			default:
				return true
			}
			if body == nil || ftype.Params == nil {
				return true
			}
			for _, field := range ftype.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					obj := info.Defs[name]
					if obj == nil || !isContextType(obj.Type()) {
						continue
					}
					if !usesObject(info, body, obj) {
						pass.Reportf(name.Pos(),
							"context parameter %s is never used: propagate it to "+
								"context-aware callees or name it _", name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesObject reports whether any identifier inside body resolves to obj.
func usesObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
