// Package a exercises the context propagation rules: no root contexts
// in library code, and declared context parameters must be used.
package a

import "context"

func uses(ctx context.Context) error {
	return work(ctx)
}

func ignores(ctx context.Context) int { // want `context parameter ctx is never used`
	return 0
}

// optedOut declares it deliberately ignores cancellation by naming the
// parameter _.
func optedOut(_ context.Context) {}

func roots() {
	_ = context.Background() // want `context.Background in library code`
	_ = context.TODO()       // want `context.TODO in library code`
}

func shim() error {
	return work(context.Background()) //lint:allow ctxpropagate documented compatibility shim
}

func work(ctx context.Context) error { return ctx.Err() }

func literals() {
	f := func(ctx context.Context) error { // want `context parameter ctx is never used`
		return nil
	}
	_ = f
}
