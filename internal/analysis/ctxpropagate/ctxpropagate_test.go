package ctxpropagate_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/ctxpropagate"
)

func TestCtxPropagate(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpropagate.Analyzer, "a")
}
