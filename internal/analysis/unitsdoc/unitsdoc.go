// Package unitsdoc keeps the paper's eq. (7) quantities unambiguous at
// the API boundary: exported functions of the device-physics packages
// (the root cntfet package, internal/fettoy, internal/core) that take
// float64 voltage, energy or temperature parameters must state the
// unit — V, eV, K — in their doc comment. The self-consistent voltage
// equation mixes all three scales (terminal voltages in volts, Fermi
// levels and subband minima in electronvolts, temperature in kelvin);
// a caller guessing wrong is off by q/kT, the least debuggable class
// of physics bug.
package unitsdoc

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cntfet/internal/analysis"
)

// TargetPackages lists the import paths the check applies to. Tests
// may add fixture paths.
var TargetPackages = map[string]bool{
	"cntfet":                 true,
	"cntfet/internal/fettoy": true,
	"cntfet/internal/core":   true,
}

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "unitsdoc",
	Doc: "exported functions of the physics packages taking float64 " +
		"voltage/energy/temperature parameters must state units " +
		"(V, eV, K) in their doc comment",
	Run: run,
}

// quantity is one recognised physical-parameter class.
type quantity struct {
	unit string
	// mention matches a doc comment that states the unit.
	mention *regexp.Regexp
}

var (
	voltage     = &quantity{"V", regexp.MustCompile(`\bV\b|[vV]olts?\b`)}
	energy      = &quantity{"eV", regexp.MustCompile(`\beV\b|electron-?volts?\b`)}
	temperature = &quantity{"K", regexp.MustCompile(`\bK\b|[kK]elvin\b`)}
)

// paramClass maps lower-cased parameter names to the quantity they
// denote in this codebase's vocabulary. Ambiguous names (t: time or
// temperature; step) are deliberately absent — the check trades recall
// for zero false positives.
var paramClass = map[string]*quantity{
	// Terminal and internal voltages.
	"v": voltage, "vg": voltage, "vd": voltage, "vs": voltage,
	"vds": voltage, "vgs": voltage, "vsc": voltage, "vdd": voltage,
	"vin": voltage, "vout": voltage, "voltage": voltage,
	// Energies on the eV axis (Fermi levels, subband minima, the u
	// axis of the state-density integral).
	"u": energy, "e": energy, "ef": energy, "def": energy,
	"eps": energy, "emin": energy, "energy": energy,
	// Temperatures.
	"temp": temperature, "temperature": temperature, "kelvin": temperature,
}

func run(pass *analysis.Pass) error {
	if !TargetPackages[pass.Pkg.Path] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			doc := ""
			if fd.Doc != nil {
				doc = fd.Doc.Text()
			}
			for _, field := range fd.Type.Params.List {
				if !isFloat64ish(info, field.Type) {
					continue
				}
				for _, name := range field.Names {
					q, ok := paramClass[strings.ToLower(name.Name)]
					if !ok {
						continue
					}
					if !q.mention.MatchString(doc) {
						pass.Reportf(name.Pos(),
							"exported %s takes %s parameter %q but its doc comment "+
								"does not state the unit (%s)",
							fd.Name.Name, quantityName(q), name.Name, q.unit)
					}
				}
			}
		}
	}
	return nil
}

// isFloat64ish accepts float64 parameters and []float64 grids.
func isFloat64ish(info *types.Info, expr ast.Expr) bool {
	t := info.Types[expr].Type
	if t == nil {
		return false
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func quantityName(q *quantity) string {
	switch q {
	case voltage:
		return "voltage"
	case energy:
		return "energy"
	default:
		return "temperature"
	}
}
