package unitsdoc_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/unitsdoc"
)

func TestUnitsDoc(t *testing.T) {
	unitsdoc.TargetPackages["a"] = true
	defer delete(unitsdoc.TargetPackages, "a")
	analysistest.Run(t, "testdata", unitsdoc.Analyzer, "a")
}
