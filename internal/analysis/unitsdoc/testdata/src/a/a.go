// Package a exercises the unit-documentation rule for exported
// physics entry points.
package a

// Documented mixes scales and says so: vg is the gate voltage in
// volts (V), ef the Fermi level in electronvolts (eV), and temp the
// lattice temperature in kelvin (K).
func Documented(vg, ef, temp float64) float64 { return vg + ef + temp }

// Undocumented names physical parameters without stating their units.
func Undocumented(
	vg float64, // want `voltage parameter "vg"`
	temp float64, // want `temperature parameter "temp"`
) float64 {
	return vg + temp
}

// unexported functions are internal plumbing and out of scope.
func unexported(vds float64) float64 { return vds }

// Grids documents a []float64 sweep axis: the vds grid is in
// volts (V).
func Grids(vds []float64, n int) int { return len(vds) + n }

// Unclassified parameter names (t, x, step) are out of scope.
func Unclassified(t, x float64) float64 { return t * x }
