// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against "// want" comments, mirroring the
// x/tools package of the same name on the subset this module needs.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ and are plain Go
// files the go tool never builds (testdata is ignored), so they are
// free to violate the invariants on purpose. A line expecting a
// diagnostic carries a trailing comment:
//
//	telemetry.Default().Counter("oops").Inc() // want `telemetry key`
//
// where the backquoted text is a regular expression that must match a
// diagnostic reported on that line. One want comment may carry several
// backquoted patterns (`a` `b`) when a line expects several
// diagnostics. Lines without a want comment must produce no
// diagnostics.
package analysistest

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cntfet/internal/analysis"
)

var (
	wantRE = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)")
	patRE  = regexp.MustCompile("`([^`]*)`")
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, failing t on any mismatch between reported and expected
// diagnostics. It returns the diagnostics for optional further checks.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	loader := analysis.NewLoader("")
	var all []analysis.Diagnostic
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, name, err)
		}
		check(t, []*analysis.Package{pkg}, diags)
		all = append(all, diags...)
	}
	return all
}

// RunModule loads every fixture package with one loader — in order,
// so a later fixture may import an earlier sibling by its package
// name — and applies the analyzer to the combined set in a single
// analysis.Run. This is the entry point for module-phase analyzers,
// whose diagnostics only exist when both sides of a cross-package
// contract are loaded together.
func RunModule(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	loader := analysis.NewLoader("")
	var loaded []*analysis.Package
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		loaded = append(loaded, pkg)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, loaded)
	if err != nil {
		t.Fatalf("run %s on %v: %v", a.Name, pkgs, err)
	}
	check(t, loaded, diags)
	return diags
}

// check compares diagnostics against the fixtures' want comments.
func check(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					k := key{pos.Filename, pos.Line}
					for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
						wants[k] = append(wants[k], pm[1])
					}
				}
			}
		}
	}
	matched := map[key][]bool{}
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ws, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", fmtPos(d.Pos), d.Message)
			continue
		}
		found := false
		for i, w := range ws {
			if matched[k][i] {
				continue
			}
			if regexp.MustCompile(w).MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("diagnostic at %s matches no want pattern: %s", fmtPos(d.Pos), d.Message)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
			}
		}
	}
}

func fmtPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", strings.TrimPrefix(p.Filename, "./"), p.Line, p.Column)
}

// RunWithFixes runs the analyzer like Run, then applies the suggested
// fixes its diagnostics carry and compares every rewritten file
// against the sibling golden file "<file>.golden". A fixed file with
// no golden is an error — the golden IS the assertion that -fix
// produces exactly this output — and so is a golden that doesn't
// match. The rewritten contents are returned for further checks;
// nothing on disk is modified.
func RunWithFixes(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) map[string][]byte {
	t.Helper()
	diags := Run(t, testdata, a, pkgs...)
	fixed, err := analysis.ApplyFixes(diags)
	if err != nil {
		t.Fatalf("apply fixes: %v", err)
	}
	for file, got := range fixed {
		want, err := os.ReadFile(file + ".golden")
		if err != nil {
			t.Errorf("%s: fixes applied but no golden file: %v", file, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fixed output differs from %s.golden:\n-- got --\n%s\n-- want --\n%s",
				file, file, got, want)
		}
	}
	return fixed
}
