// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against "// want" comments, mirroring the
// x/tools package of the same name on the subset this module needs.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ and are plain Go
// files the go tool never builds (testdata is ignored), so they are
// free to violate the invariants on purpose. A line expecting a
// diagnostic carries a trailing comment:
//
//	telemetry.Default().Counter("oops").Inc() // want `telemetry key`
//
// where the backquoted text is a regular expression that must match a
// diagnostic reported on that line. Lines without a want comment must
// produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cntfet/internal/analysis"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run loads each fixture package under testdata/src and applies the
// analyzer, failing t on any mismatch between reported and expected
// diagnostics. It returns the diagnostics for optional further checks.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	loader := analysis.NewLoader("")
	var all []analysis.Diagnostic
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("load fixture %s: %v", dir, err)
		}
		diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, name, err)
		}
		check(t, pkg, diags)
		all = append(all, diags...)
	}
	return all
}

// check compares diagnostics against the fixture's want comments.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], m[1])
			}
		}
	}
	matched := map[key][]bool{}
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ws, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", fmtPos(d.Pos), d.Message)
			continue
		}
		found := false
		for i, w := range ws {
			if matched[k][i] {
				continue
			}
			if regexp.MustCompile(w).MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("diagnostic at %s matches no want pattern: %s", fmtPos(d.Pos), d.Message)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
			}
		}
	}
}

func fmtPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", strings.TrimPrefix(p.Filename, "./"), p.Line, p.Column)
}
