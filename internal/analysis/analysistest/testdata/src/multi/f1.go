// Package multi is the harness self-test fixture: findings spread
// over two files, one line carrying two expected diagnostics, and a
// mechanical rename fix with a golden.
package multi

// Bad trips both toy rules on one line.
func Bad() int {
	bad := 42  // want `ident bad` `magic 42`
	return bad // want `ident bad`
}
