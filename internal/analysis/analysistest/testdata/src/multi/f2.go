package multi

// Also keeps findings coming from a second file of the same package.
func Also() int {
	bad := 7   // want `ident bad`
	return bad // want `ident bad`
}

// Clean produces no diagnostics.
func Clean() int { return 7 }
