// The harness testing itself: a toy analyzer with known findings and
// fixes drives Run and RunWithFixes over a two-file fixture, pinning
// the behaviours the real analyzer tests lean on — want matching
// across files, several expected diagnostics on one line, and the
// golden-file round trip of suggested fixes.
package analysistest_test

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"

	"cntfet/internal/analysis"
	"cntfet/internal/analysis/analysistest"
)

// toy flags every identifier named "bad" (with a rename-to-good fix)
// and every integer literal 42 (no fix) — cheap, deterministic
// findings that can share a line.
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "flags idents named bad (fix: rename to good) and the literal 42",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if n.Name == "bad" {
						fix := []analysis.Edit{pass.Edit(n.Pos(), n.End(), "good")}
						pass.ReportfFix(n.Pos(), fix, "ident bad")
					}
				case *ast.BasicLit:
					if n.Kind == token.INT && n.Value == "42" {
						pass.Reportf(n.Pos(), "magic 42")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestMultiFileWants runs the toy analyzer over the two-file fixture:
// every want across both files must be matched, including the line
// that expects two diagnostics at once.
func TestMultiFileWants(t *testing.T) {
	diags := analysistest.Run(t, "testdata", toy, "multi")
	if len(diags) != 5 {
		t.Errorf("diagnostics = %d, want 5 (4 idents + 1 literal)", len(diags))
	}
	files := map[string]bool{}
	for _, d := range diags {
		files[d.Pos.Filename] = true
	}
	if len(files) != 2 {
		t.Errorf("diagnostics span %d file(s), want 2", len(files))
	}
}

// TestFixGoldenRoundTrip applies the rename fixes and compares both
// rewritten files against their goldens.
func TestFixGoldenRoundTrip(t *testing.T) {
	fixed := analysistest.RunWithFixes(t, "testdata", toy, "multi")
	if len(fixed) != 2 {
		t.Fatalf("fixed files = %d, want 2", len(fixed))
	}
	for file, src := range fixed {
		s := string(src)
		// Want comments still say "ident bad"; only code idents rename.
		if strings.Contains(s, "return bad") {
			t.Errorf("%s: rename fix left an ident behind", file)
		}
		if !strings.Contains(s, "return good") {
			t.Errorf("%s: rename fix produced no good ident", file)
		}
	}
}
