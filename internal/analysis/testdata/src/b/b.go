// Package b is the framework's own fixture: functions suppressed via
// each //lint:allow placement, and one left reported.
package b

func reported() {}

//lint:allow funcreport suppressed by the line above
func lineAbove() {}

func sameLine() {} //lint:allow funcreport suppressed on the same line

//lint:allow othercheck a different analyzer's allowance does not apply
func wrongName() {}
