// Package a is the sinkcontract fixture: Emit call sites that drop
// or half-handle the closed-sink signal trigger, as do goroutines
// that feed channels with no cancellation escape.
package a

import (
	"context"
	"errors"
)

// ErrSinkClosed mirrors the engine sentinel.
var ErrSinkClosed = errors.New("a: sink closed")

// Sink mirrors the engine row sink.
type Sink interface{ Emit(x int) error }

// Discard drops the error on the floor.
func Discard(s Sink) {
	s.Emit(1) // want `result of Sink.Emit discarded`
}

// Blank discards explicitly; no better.
func Blank(s Sink) {
	_ = s.Emit(1) // want `result of Sink.Emit discarded`
}

// Unhandled captures the error but never consults the sentinel:
// cancellation and real failures take the same branch.
func Unhandled(s Sink) error {
	if err := s.Emit(1); err != nil { // want `without consulting ErrSinkClosed`
		return err
	}
	return nil
}

// Handled engages with the protocol.
func Handled(s Sink) error {
	if err := s.Emit(1); err != nil {
		if errors.Is(err, ErrSinkClosed) {
			return nil
		}
		return err
	}
	return nil
}

// Propagate returns the error verbatim: the caller classifies.
func Propagate(s Sink) error {
	return s.Emit(1)
}

// LeakySend blocks forever once the consumer stops reading.
func LeakySend(ch chan int) {
	go func() { // want `goroutine writes to a sink/channel with no ctx.Done\(\) escape`
		ch <- 1
	}()
}

// GuardedSend dies with the job.
func GuardedSend(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// AllowedSend documents its drain guarantee instead.
func AllowedSend(ch chan int) {
	//lint:allow goroutine the caller drains ch before returning
	go func() {
		ch <- 1
	}()
}

// LaunchNamed is flagged through the callgraph: the send lives in the
// named callee.
func LaunchNamed(ch chan int) {
	go pump(ch) // want `goroutine writes to a sink/channel with no ctx.Done\(\) escape`
}

func pump(ch chan int) { ch <- 2 }

// LaunchGuardedNamed is clean: the guard also lives in the callee.
func LaunchGuardedNamed(ctx context.Context, ch chan int) {
	go guardedPump(ctx, ch)
}

func guardedPump(ctx context.Context, ch chan int) {
	select {
	case ch <- 3:
	case <-ctx.Done():
	}
}

// LaunchEmit is flagged on the emit-callback convention.
func LaunchEmit(emit func(int) error) {
	go func() { // want `goroutine writes to a sink/channel with no ctx.Done\(\) escape`
		_ = emit(4)
	}()
}

// Compute is a quiet goroutine: no sends, no emits, no diagnostic.
func Compute(xs []int) {
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		_ = s
	}()
}
