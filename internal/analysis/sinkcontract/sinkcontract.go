// Package sinkcontract checks the two ways the streaming row path
// loses rows silently.
//
// Rule 1 — Sink.Emit errors are part of the cancellation protocol. A
// closed sink returns ErrSinkClosed, which classifies as ErrCanceled;
// discarding the error (or handling it without ever consulting
// ErrSinkClosed) turns a half-delivered stream into one that looks
// complete. Call sites of Emit on a Sink interface must capture the
// error, and the capturing function must mention ErrSinkClosed (or
// return the error verbatim for a caller to classify).
//
// Rule 2 — goroutines that feed sinks or channels must die with the
// job. A goroutine whose (transitively reachable, same-package) body
// sends on a channel or calls an emit-like function, with no
// <-ctx.Done() receive anywhere in that body set, blocks forever once
// the consumer stops reading: the classic canceled-job leak. The
// diagnostic accepts //lint:allow goroutine <reason> — a shorter
// alias than the analyzer name, because the annotation is the common
// resolution: plenty of goroutines are drained by a sync.WaitGroup or
// a buffered channel the caller owns, and the reason documents which.
// The suggested fix scaffolds exactly that annotation with a TODO
// reason, so -fix turns each finding into a review conversation
// rather than a silent pass.
package sinkcontract

import (
	"go/ast"
	"go/token"
	"go/types"

	"cntfet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sinkcontract",
	Doc: "Sink.Emit call sites must handle ErrSinkClosed; goroutines " +
		"that feed sinks or channels need a ctx.Done() escape or a " +
		"//lint:allow goroutine annotation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, node := range pass.Pkg.CallGraph().Nodes() {
		checkEmitCalls(pass, node.Decl)
		checkGoroutines(pass, node.Decl)
	}
	return nil
}

// checkEmitCalls enforces rule 1 over one declared function.
func checkEmitCalls(pass *analysis.Pass, decl *ast.FuncDecl) {
	info := pass.Pkg.Info
	mentions := mentionsErrSinkClosed(decl.Body)
	// Sort every Sink.Emit call by how its result is consumed; calls
	// not in any of these sets are "used some other way" and get the
	// mention requirement.
	discarded := map[*ast.CallExpr]bool{}
	returned := map[*ast.CallExpr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call := sinkEmitCall(info, st.X); call != nil {
				discarded[call] = true
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call := sinkEmitCall(info, st.Rhs[0])
			if call == nil {
				return true
			}
			if allBlank(st.Lhs) {
				discarded[call] = true
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if call := sinkEmitCall(info, res); call != nil {
					returned[call] = true
				}
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		call := sinkEmitCall(info, expr)
		if call == nil || call != n {
			return true
		}
		switch {
		case discarded[call]:
			pass.Reportf(call.Pos(), "result of Sink.Emit discarded: a closed sink "+
				"returns ErrSinkClosed and the rows after it are silently lost")
		case returned[call]:
			// Verbatim propagation: the caller classifies.
		case !mentions:
			pass.Reportf(call.Pos(), "Sink.Emit error handled without consulting "+
				"ErrSinkClosed: cancellation and real failures take the same branch")
		}
		return true
	})
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// mentionsErrSinkClosed reports whether the body references the
// sentinel anywhere (errors.Is, wrapping, a comparison — any mention
// counts as engaging with the protocol).
func mentionsErrSinkClosed(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "ErrSinkClosed" {
			found = true
		}
		return !found
	})
	return found
}

// sinkEmitCall returns e as a call of method Emit on a value whose
// static type is an interface named Sink, or nil.
func sinkEmitCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Sink" {
		return nil
	}
	if !types.IsInterface(named) {
		return nil
	}
	return call
}

// checkGoroutines enforces rule 2 over one declared function.
func checkGoroutines(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		bodies := launchedBodies(pass.Pkg, g.Call)
		if len(bodies) == 0 {
			return true
		}
		if !writesSinkOrChannel(pass.Pkg.Info, bodies) || hasDoneGuard(pass.Pkg.Info, bodies) {
			return true
		}
		fix := allowScaffold(pass, g)
		pass.ReportfAllow("goroutine", g.Pos(), fix, "goroutine writes to a "+
			"sink/channel with no ctx.Done() escape: a canceled job leaks it "+
			"(select on ctx.Done(), or //lint:allow goroutine <reason>)")
		return true
	})
}

// launchedBodies collects the goroutine's body plus every
// same-package function body reachable from it — the region rule 2
// scans for sends and guards.
func launchedBodies(pkg *analysis.Package, call *ast.CallExpr) []*ast.BlockStmt {
	cg := pkg.CallGraph()
	info := pkg.Info
	var bodies []*ast.BlockStmt
	seen := map[*ast.BlockStmt]bool{}
	seenFn := map[*types.Func]bool{}
	var addFn func(fn *types.Func)
	var addBody func(b *ast.BlockStmt)
	addFn = func(fn *types.Func) {
		if fn == nil || seenFn[fn] {
			return
		}
		seenFn[fn] = true
		if node := cg.Node(fn); node != nil {
			addBody(node.Decl.Body)
		}
	}
	addBody = func(b *ast.BlockStmt) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		bodies = append(bodies, b)
		ast.Inspect(b, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if fn, ok := info.Uses[id].(*types.Func); ok && fn.Pkg() == pkg.Types {
					addFn(fn)
				}
			}
			return true
		})
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		addBody(lit.Body)
	} else {
		addFn(analysis.CalleeFunc(info, call))
	}
	return bodies
}

// writesSinkOrChannel reports whether the body set sends on a channel
// or makes an emit-like call: Emit on a Sink, or a call through a
// func value named emit (the row-emitter callback convention).
func writesSinkOrChannel(info *types.Info, bodies []*ast.BlockStmt) bool {
	found := false
	for _, b := range bodies {
		ast.Inspect(b, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				found = true
			case *ast.CallExpr:
				if sinkEmitCall(info, n) != nil || emitFuncCall(info, n) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// emitFuncCall reports a call through a func-typed variable or field
// named "emit" or "Emit".
func emitFuncCall(info *types.Info, call *ast.CallExpr) bool {
	var name string
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name, obj = fun.Name, info.Uses[fun]
	case *ast.SelectorExpr:
		name, obj = fun.Sel.Name, info.Uses[fun.Sel]
	default:
		return false
	}
	if name != "emit" && name != "Emit" {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Type() == nil {
		return false
	}
	_, isFunc := v.Type().Underlying().(*types.Signature)
	return isFunc
}

// hasDoneGuard reports whether the body set receives from the Done
// channel of a context.Context anywhere.
func hasDoneGuard(info *types.Info, bodies []*ast.BlockStmt) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			u, ok := n.(*ast.UnaryExpr)
			if !ok || u.Op != token.ARROW {
				return true
			}
			call, ok := ast.Unparen(u.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if isContext(info.Types[sel.X].Type) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// allowScaffold builds the suggested fix for rule 2: the allow
// annotation, with a TODO reason, inserted on its own line above the
// go statement at the same indentation.
func allowScaffold(pass *analysis.Pass, g *ast.GoStmt) []analysis.Edit {
	pos := pass.Fset().Position(g.Pos())
	lineStart := g.Pos() - token.Pos(pos.Column-1)
	indent := ""
	for i := 1; i < pos.Column; i++ {
		indent += "\t"
	}
	text := indent + "//lint:allow goroutine TODO: document why this goroutine needs no ctx.Done() path\n"
	return []analysis.Edit{pass.Edit(lineStart, lineStart, text)}
}
