package sinkcontract_test

import (
	"strings"
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/sinkcontract"
)

func TestSinkcontract(t *testing.T) {
	diags := analysistest.Run(t, "testdata", sinkcontract.Analyzer, "a")
	// Every goroutine finding carries the allow-annotation scaffold.
	for _, d := range diags {
		if strings.Contains(d.Message, "goroutine") && len(d.Fix) == 0 {
			t.Errorf("%s: goroutine diagnostic without the allow scaffold fix", d.Pos)
		}
	}
}

// TestSinkcontractFix round-trips the scaffold insertion against the
// golden file.
func TestSinkcontractFix(t *testing.T) {
	fixed := analysistest.RunWithFixes(t, "testdata", sinkcontract.Analyzer, "a")
	for file, src := range fixed {
		if !strings.Contains(string(src), "//lint:allow goroutine TODO:") {
			t.Errorf("%s: fix did not insert the allow scaffold", file)
		}
	}
}
