// Package atomicfield guards the atomic-publish patterns the batched
// engine relies on (the ChargeTable's atomic.Pointer publication, the
// model's local work counters): a struct field that participates in
// sync/atomic anywhere must be accessed atomically everywhere. Two
// complementary rules:
//
//  1. Legacy function-style atomics: a field whose address is passed
//     to atomic.AddInt64/LoadUint32/... is atomic-only; any plain
//     read, write or increment of the same field elsewhere in the
//     package is a race waiting for the right interleaving.
//
//  2. Typed atomics: a field of type atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], ... must only be touched through its
//     methods or its address. Copying or reassigning the value
//     (s.done = atomic.Bool{}, x := s.done) smuggles a non-atomic
//     store or load past the type's API and invalidates pending
//     publications.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cntfet/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be " +
		"accessed atomically everywhere (no mixed plain access, no " +
		"copying typed atomic values)",
	Run: run,
}

const atomicPath = "sync/atomic"

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info

	// Pass A: collect fields used with function-style atomics, and
	// remember the &x.f argument nodes so they are not re-flagged.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[ast.Expr]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != atomicPath || fn.Signature().Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(info, un.X); fv != nil {
					atomicFields[fv] = true
					sanctioned[ast.Unparen(un.X)] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := fieldVar(info, sel)
			if fv == nil {
				return true
			}
			// Rule 1: plain access to a function-atomic field.
			if atomicFields[fv] && !sanctioned[ast.Expr(sel)] {
				pass.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this "+
						"package; this plain access races with it", fv.Name())
				return true
			}
			// Rule 2: value use of a typed atomic field.
			if isTypedAtomic(fv.Type()) && !methodOrAddress(parents, sel) {
				pass.Reportf(sel.Pos(),
					"field %s has atomic type %s: do not copy or reassign it, "+
						"use its methods", fv.Name(), typeName(fv.Type()))
			}
			return true
		})
	}
	return nil
}

// fieldVar resolves expr to the struct field it selects, or nil.
func fieldVar(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// isTypedAtomic reports whether t is a named type from sync/atomic
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == atomicPath
}

func typeName(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// parentMap records each node's parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// methodOrAddress reports whether sel (a typed-atomic field selector)
// appears in a sanctioned position: as the receiver of a method call
// (s.done.Store(true)), under an address operator (&s.done), or merely
// as the spine of a deeper selection.
func methodOrAddress(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	parent := parents[sel]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// s.done.Store: sel is p.X, and p names a method of the atomic
		// type; any deeper field selection through an atomic value is
		// impossible (atomic types export no fields).
		return p.X == sel || parentIsSelectorSpine(parents, sel)
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

// parentIsSelectorSpine covers nested selections like a.b.c where the
// atomic field is an intermediate hop — not expressible for sync/atomic
// types (no exported fields), but kept for completeness.
func parentIsSelectorSpine(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	p, ok := parents[sel].(*ast.SelectorExpr)
	return ok && p.X == sel
}
