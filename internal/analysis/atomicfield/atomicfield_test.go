package atomicfield_test

import (
	"testing"

	"cntfet/internal/analysis/analysistest"
	"cntfet/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "a")
}
