// Package a exercises the mixed-atomic-access rules.
package a

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
	done  atomic.Bool
}

func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
	c.done.Store(true)
	c.total++ // plain-only field: never touched by sync/atomic
}

func (c *counters) read() (int64, bool) {
	plain := c.hits // want `plain access races`
	cp := c.done    // want `do not copy`
	_ = cp
	p := &c.done
	return plain + c.total, p.Load()
}
