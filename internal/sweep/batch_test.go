package sweep

import (
	"context"
	"errors"
	"math"
	"testing"

	"cntfet/internal/core"
	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// TestFamilyBatchBitForBitPiecewise pins the batched path against the
// serial one for both paper models: IDSBatch runs the same closed-form
// solve per point, so the curves must be identical to the last bit.
func TestFamilyBatchBitForBitPiecewise(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	vgs := PaperGates()
	vds := Grid()
	for name, build := range map[string]func(*fettoy.Model) (*core.Model, error){
		"model1": core.Model1,
		"model2": core.Model2,
	} {
		m, err := build(ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		serial, err := Family(context.Background(), m, vgs, vds)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := FamilyBatch(context.Background(), m, vgs, vds)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			for j := range serial[i].IDS {
				if serial[i].IDS[j] != batched[i].IDS[j] {
					t.Fatalf("%s curve %d point %d: serial %g != batch %g",
						name, i, j, serial[i].IDS[j], batched[i].IDS[j])
				}
			}
		}
	}
}

// TestFamilyBatchReferenceModel checks the warm-started reference path:
// continuation lands on the same roots as independent cold solves
// (Newton converges to 1e-12, so 1e-9 relative is generous).
func TestFamilyBatchReferenceModel(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	vgs := []float64{0.3, 0.6}
	vds := []float64{0, 0.15, 0.3, 0.45, 0.6}
	serial, err := Family(context.Background(), ref, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := FamilyBatch(context.Background(), ref, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i].IDS {
			a, b := serial[i].IDS[j], batched[i].IDS[j]
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("curve %d point %d: %g vs %g", i, j, a, b)
			}
		}
	}
}

// TestFamilyBatchFallsBackToSerial checks that a model without an
// IDSBatch method still sweeps through the plain interface.
func TestFamilyBatchFallsBackToSerial(t *testing.T) {
	fam, err := FamilyBatch(context.Background(), linearModel(2), []float64{0.5}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if fam[0].IDS[1] != 0.2 {
		t.Fatalf("IDS = %v", fam[0].IDS)
	}
}

func TestFamilyBatchPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	if _, err := FamilyBatch(context.Background(), fake{err: sentinel}, []float64{0.1}, []float64{0.2}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

// TestFamilyParallelMatchesLegacy pins the chunked scheduler against
// the point-per-task one on the reference model with a table attached —
// the configuration the benchmark quotes.
func TestFamilyParallelMatchesLegacy(t *testing.T) {
	dev := fettoy.Default()
	refA, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	refB.EnableTable(fettoy.TableOptions{})
	vgs := PaperGates()
	vds := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	legacy, err := FamilyParallelLegacy(refA, vgs, vds, 4)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := FamilyParallel(context.Background(), refB, vgs, vds, 4)
	if err != nil {
		t.Fatal(err)
	}
	rms, err := CompareFamilies(chunked, legacy)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range rms {
		if e > 1e-3 {
			t.Fatalf("gate %d: tabulated chunked sweep off by %g%% RMS", i, e)
		}
	}
}

// errEvery fails on selected points, to exercise partial-failure
// accounting.
type errEvery struct {
	n int // every n-th VDS index errors (by value match)
}

func (e errEvery) IDS(b fettoy.Bias) (float64, error) {
	if int(math.Round(b.VD*10))%e.n == 0 {
		return 0, errors.New("bad point")
	}
	return b.VG * b.VD, nil
}

// TestFamilyParallelCountsAllErrors checks the satellite requirement:
// every failed point lands in sweep.errors — not just the first — and
// with the telemetry gate off.
func TestFamilyParallelCountsAllErrors(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Default()
	for name, run := range map[string]func(m device.Solver, vgs, vds []float64, workers int) ([]Curve, error){
		"chunked": func(m device.Solver, vgs, vds []float64, workers int) ([]Curve, error) {
			return FamilyParallel(context.Background(), m, vgs, vds, workers)
		},
		"legacy": FamilyParallelLegacy,
	} {
		base := reg.Snapshot().Counters
		vds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} // 0.2, 0.4, 0.6 fail
		_, err := run(errEvery{n: 2}, []float64{1, 2}, vds, 3)
		if err == nil {
			t.Fatalf("%s: errors swallowed", name)
		}
		snap := reg.Snapshot().Counters
		if got := snap["sweep.errors"] - base["sweep.errors"]; got != 6 {
			t.Fatalf("%s: sweep.errors advanced by %d, want 6", name, got)
		}
		if got := snap["sweep.points"] - base["sweep.points"]; got != 6 {
			t.Fatalf("%s: sweep.points advanced by %d, want 6 successes", name, got)
		}
	}
}

// TestFamilyParallelBatchedChunksBitForBit pins the parallel
// scheduler's batched-chunk path for the piecewise models: each chunk
// goes through the same zero-alloc row kernel the batch path uses, and
// the closed-form solve has no cross-point iteration state, so the
// curves must match the serial sweep to the last bit — for any worker
// count, including oversubscription.
func TestFamilyParallelBatchedChunksBitForBit(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	vgs := PaperGates()
	vds := Grid()
	for name, build := range map[string]func(*fettoy.Model) (*core.Model, error){
		"model1": core.Model1,
		"model2": core.Model2,
	} {
		m, err := build(ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := device.Solver(m).(device.BatchSolver); !ok {
			t.Fatalf("%s: model lost its BatchSolver capability", name)
		}
		serial, err := Family(context.Background(), m, vgs, vds)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			par, err := FamilyParallel(context.Background(), m, vgs, vds, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				for j := range serial[i].IDS {
					if serial[i].IDS[j] != par[i].IDS[j] {
						t.Fatalf("%s workers=%d curve %d point %d: serial %g != parallel %g",
							name, workers, i, j, serial[i].IDS[j], par[i].IDS[j])
					}
				}
			}
		}
	}
}
