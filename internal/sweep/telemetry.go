package sweep

import (
	"context"
	"fmt"

	"cntfet/internal/telemetry"
)

// countPoints is the single recording path for per-sweep point
// accounting, shared by the serial, batched, chunked-parallel and
// legacy schedulers. Totals (sweep.points, sweep.errors) are recorded
// unconditionally — partial failures must never be silent — while the
// per-worker attribution counter stays behind the telemetry gate.
// worker < 0 means the caller has no worker identity (serial and
// batched paths).
func countPoints(reg *telemetry.Registry, gateOn bool, worker int, points, errs int64) {
	if points != 0 {
		reg.Counter(telemetry.KeySweepPoints).Add(points)
	}
	if errs != 0 {
		reg.Counter(telemetry.KeySweepErrors).Add(errs)
	}
	if gateOn && worker >= 0 && points != 0 {
		reg.Counter(fmt.Sprintf(telemetry.KeySweepWorkerPointsFmt, worker)).Add(points)
	}
}

// canceledErr wraps the context's error so engine-level callers can
// classify the failure as a user abort (errors.Is against
// context.Canceled / context.DeadlineExceeded keeps working) rather
// than a numerical one.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("sweep: canceled: %w", context.Cause(ctx))
}

// ctxDone returns the context's done channel, tolerating a nil context
// (treated as non-cancellable, like context.Background()).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
