package sweep

import (
	"context"
	"fmt"

	"cntfet/internal/telemetry"
)

// countPoints is the single recording path for per-sweep point
// accounting, shared by the serial, batched, chunked-parallel and
// legacy schedulers. Totals (sweep.points, sweep.errors) are recorded
// unconditionally — partial failures must never be silent — while the
// per-worker attribution counter stays behind the telemetry gate.
// worker < 0 means the caller has no worker identity (serial and
// batched paths).
func countPoints(reg *telemetry.Registry, gateOn bool, worker int, points, errs int64) {
	if points != 0 {
		reg.Counter(telemetry.KeySweepPoints).Add(points)
	}
	if errs != 0 {
		reg.Counter(telemetry.KeySweepErrors).Add(errs)
	}
	if gateOn && worker >= 0 && points != 0 {
		reg.Counter(fmt.Sprintf(telemetry.KeySweepWorkerPointsFmt, worker)).Add(points)
	}
}

// endChunkSpan finishes one parallel-sweep chunk span with its worker
// attribution. points is the number of bias points the chunk actually
// completed (a canceled chunk reports the prefix it finished). A nil
// span — tracing off — makes this free.
func endChunkSpan(sp *telemetry.Span, worker int, vg float64, points int64) {
	if sp == nil {
		return
	}
	sp.Set(
		telemetry.Int(telemetry.AttrWorker, int64(worker)),
		telemetry.Float(telemetry.AttrVG, vg),
		telemetry.Int(telemetry.AttrPoints, points),
	)
	sp.End()
}

// canceledErr wraps the context's error so engine-level callers can
// classify the failure as a user abort (errors.Is against
// context.Canceled / context.DeadlineExceeded keeps working) rather
// than a numerical one.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("sweep: canceled: %w", context.Cause(ctx))
}

// ctxDone returns the context's done channel, tolerating a nil context
// (treated as non-cancellable, like context.Background()).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}
