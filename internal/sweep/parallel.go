package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// FamilyParallel evaluates a curve family with worker goroutines using
// chunked row scheduling: tasks are [lo, hi) index blocks of one VDS
// row, drained from a buffered channel, so the per-point cost is the
// solve itself rather than a channel hand-off. When the model exposes
// device.BatchSolver each worker hands whole chunks to the row kernel
// (the zero-alloc closed-form kernel for the piecewise family, the
// warm-started table Newton for the reference model) using a
// per-worker scratch buffer; otherwise points run one by one with
// warm-start continuation when the model supports it (see
// device.WarmStarter). Both library models are safe for concurrent use
// after construction. workers <= 0 selects GOMAXPROCS.
//
// Cancellation is honoured per point on the per-point path and per
// chunk on the batched path (a chunk is at most one VDS row): when ctx
// is canceled the workers stop promptly, every goroutine is joined
// before return, and the error wraps the context's cause so callers
// can tell user abort from numerical failure. Counters stay consistent
// — sweep.points counts exactly the points that completed before the
// abort.
//
// Numerical errors do not abort the sweep: the first one (in
// scheduling order of discovery) is returned after all workers drain,
// and every failed point counts into the sweep.errors telemetry
// counter regardless of the telemetry gate, so partial failures are
// never silent.
//
// This is the default serving scheduler (engine Auto with the default
// Workers == 0 resolves here): batched chunks amortise the scheduling
// overhead that used to make the piecewise models prefer the serial
// paths, and the reference model parallelises its ~1 µs tabulated (or
// ~100 µs quadrature) points across cores.
func FamilyParallel(ctx context.Context, m device.Solver, vgs, vds []float64, workers int) ([]Curve, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := newFamily(vgs, vds)

	// Chunking heuristic: aim for ~4 chunks per worker across the whole
	// grid, so the tail imbalance when workers finish out of step stays
	// around a quarter of one worker's share, while the channel still
	// sees ~4 sends per worker instead of one per point. Two bounds
	// temper the target: chunks never span rows (a row is the
	// warm-start continuation unit), and never shrink below 8 points
	// (continuation needs runs of neighbouring points to pay off).
	span := (len(vgs)*len(vds) + 4*workers - 1) / (4 * workers)
	if span < 8 {
		span = 8
	}
	if span > len(vds) {
		span = len(vds)
	}
	if span < 1 {
		span = 1
	}

	type chunk struct{ gi, lo, hi int }
	nchunks := 0
	if span > 0 {
		perRow := (len(vds) + span - 1) / span
		nchunks = perRow * len(vgs)
	}
	tasks := make(chan chunk, nchunks)
	for gi := range vgs {
		for lo := 0; lo < len(vds); lo += span {
			hi := lo + span
			if hi > len(vds) {
				hi = len(vds)
			}
			tasks <- chunk{gi, lo, hi}
		}
	}
	close(tasks)

	// First-error capture without a per-point mutex: the winning worker
	// records once, later errors only bump the shared counter.
	var firstErr error
	var errOnce sync.Once

	ws, warm := m.(device.WarmStarter)
	bs, batch := m.(device.BatchSolver)
	done := ctxDone(ctx)
	on := telemetry.On()
	reg := telemetry.Default()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var points, errs int64
			// Per-worker bias scratch for the batched chunk path: one
			// allocation per worker for the whole sweep, sized to the
			// largest chunk. Lazy so non-batch models pay nothing.
			var biasBuf []fettoy.Bias
			if on {
				defer reg.Timer(fmt.Sprintf(telemetry.KeySweepWorkerTimeFmt, w)).Start()()
			}
			defer func() { countPoints(reg, on, w, points, errs) }()
		drain:
			for ck := range tasks {
				// One span per chunk — the scheduler's work unit — keeps
				// tracing cost off the per-point path while still showing
				// which worker ran which run of points. Nil (free) while
				// tracing is off.
				_, sp := telemetry.StartSpan(ctx, telemetry.SpanSweepChunk)
				chunkPoints := points
				if batch {
					// Batched chunk path: hand the whole [lo, hi) run to
					// the model's row kernel (zero-alloc closed form for
					// the piecewise family, warm-started table Newton for
					// the reference). Cancellation is honoured per chunk
					// here — a chunk is at most one VDS row, the same
					// granularity FamilyBatch uses.
					select {
					case <-done:
						endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
						break drain
					default:
					}
					if biasBuf == nil {
						biasBuf = make([]fettoy.Bias, span)
					}
					n := ck.hi - ck.lo
					for vi := ck.lo; vi < ck.hi; vi++ {
						biasBuf[vi-ck.lo] = fettoy.Bias{VG: vgs[ck.gi], VD: vds[vi]}
					}
					if err := bs.IDSBatch(biasBuf[:n], out[ck.gi].IDS[ck.lo:ck.hi]); err == nil {
						points += int64(n)
						endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
						continue
					}
					// The batch failed somewhere in the run: fall through
					// to the per-point loop, which redoes the chunk to
					// attribute the failing point exactly and keep the
					// healthy neighbours — batch errors stay as non-silent
					// and non-aborting as per-point ones.
				}
				guess := math.NaN()
				for vi := ck.lo; vi < ck.hi; vi++ {
					select {
					case <-done:
						// The tasks channel is pre-filled and closed, so
						// abandoning the range leaves no blocked sender.
						endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
						break drain
					default:
					}
					b := fettoy.Bias{VG: vgs[ck.gi], VD: vds[vi]}
					var ids float64
					var err error
					if warm {
						ids, guess, err = ws.IDSFrom(b, guess)
					} else {
						ids, err = m.IDS(b)
					}
					if err != nil {
						errs++
						errOnce.Do(func() {
							firstErr = fmt.Errorf("sweep: VG=%g VDS=%g: %w", b.VG, b.VD, err)
						})
						guess = math.NaN()
						continue
					}
					points++
					out[ck.gi].IDS[vi] = ids
				}
				endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
			}
		}(w)
	}
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return nil, canceledErr(ctx)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// FamilyParallelLegacy is the pre-chunking scheduler: one bias point
// per task, no warm starts, no cancellation. It exists only as the
// "before" half of the cntbench -sweepbench comparison and the
// scheduling benchmarks — new code must call FamilyParallel, which is
// both faster and context-aware.
func FamilyParallelLegacy(m device.Solver, vgs, vds []float64, workers int) ([]Curve, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := newFamily(vgs, vds)

	type task struct{ gi, vi int }
	tasks := make(chan task, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	on := telemetry.On()
	reg := telemetry.Default()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var points, errs int64
			if on {
				defer reg.Timer(fmt.Sprintf(telemetry.KeySweepWorkerTimeFmt, w)).Start()()
			}
			defer func() { countPoints(reg, on, w, points, errs) }()
			for tk := range tasks {
				ids, err := m.IDS(fettoy.Bias{VG: vgs[tk.gi], VD: vds[tk.vi]})
				if err != nil {
					errs++
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: VG=%g VDS=%g: %w", vgs[tk.gi], vds[tk.vi], err)
					}
					mu.Unlock()
					continue
				}
				points++
				out[tk.gi].IDS[tk.vi] = ids
			}
		}(w)
	}
	for gi := range vgs {
		for vi := range vds {
			tasks <- task{gi, vi}
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// newFamily allocates the result curves for a vgs x vds grid.
func newFamily(vgs, vds []float64) []Curve {
	out := make([]Curve, len(vgs))
	for i, vg := range vgs {
		out[i] = Curve{
			VG:  vg,
			VDS: append([]float64(nil), vds...),
			IDS: make([]float64, len(vds)),
		}
	}
	return out
}
