package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// FamilyParallel evaluates a curve family with worker goroutines using
// chunked row scheduling: tasks are [lo, hi) index blocks of one VDS
// row, drained from a buffered channel, so the per-point cost is the
// solve itself rather than a channel hand-off. When the model exposes
// device.BatchSolver each worker hands whole chunks to the row kernel
// (the zero-alloc closed-form kernel for the piecewise family, the
// warm-started table Newton for the reference model) using a
// per-worker scratch buffer; otherwise points run one by one with
// warm-start continuation when the model supports it (see
// device.WarmStarter). Both library models are safe for concurrent use
// after construction. workers <= 0 selects GOMAXPROCS.
//
// Cancellation is honoured per point on the per-point path and per
// chunk on the batched path (a chunk is at most one VDS row): when ctx
// is canceled the workers stop promptly, every goroutine is joined
// before return, and the error wraps the context's cause so callers
// can tell user abort from numerical failure. Counters stay consistent
// — sweep.points counts exactly the points that completed before the
// abort.
//
// Numerical errors do not abort the sweep: the first one (in
// scheduling order of discovery) is returned after all workers drain,
// and every failed point counts into the sweep.errors telemetry
// counter regardless of the telemetry gate, so partial failures are
// never silent.
//
// This is the default serving scheduler (engine Auto with the default
// Workers == 0 resolves here): batched chunks amortise the scheduling
// overhead that used to make the piecewise models prefer the serial
// paths, and the reference model parallelises its ~1 µs tabulated (or
// ~100 µs quadrature) points across cores.
// It is the collecting wrapper over FamilyParallelTo, which emits
// rows in gate order as they complete.
func FamilyParallel(ctx context.Context, m device.Solver, vgs, vds []float64, workers int) ([]Curve, error) {
	out := make([]Curve, 0, len(vgs))
	if err := FamilyParallelTo(ctx, m, vgs, vds, workers, func(_ int, c Curve) error {
		out = append(out, c)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// FamilyParallelLegacy is the pre-chunking scheduler: one bias point
// per task, no warm starts, no cancellation. It exists only as the
// "before" half of the cntbench -sweepbench comparison and the
// scheduling benchmarks — new code must call FamilyParallel, which is
// both faster and context-aware.
func FamilyParallelLegacy(m device.Solver, vgs, vds []float64, workers int) ([]Curve, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := newFamily(vgs, vds)

	type task struct{ gi, vi int }
	tasks := make(chan task, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	on := telemetry.On()
	reg := telemetry.Default()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var points, errs int64
			if on {
				defer reg.Timer(fmt.Sprintf(telemetry.KeySweepWorkerTimeFmt, w)).Start()()
			}
			defer func() { countPoints(reg, on, w, points, errs) }()
			for tk := range tasks {
				ids, err := m.IDS(fettoy.Bias{VG: vgs[tk.gi], VD: vds[tk.vi]})
				if err != nil {
					errs++
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: VG=%g VDS=%g: %w", vgs[tk.gi], vds[tk.vi], err)
					}
					mu.Unlock()
					continue
				}
				points++
				out[tk.gi].IDS[tk.vi] = ids
			}
		}(w)
	}
	for gi := range vgs {
		for vi := range vds {
			tasks <- task{gi, vi}
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// newFamily allocates the result curves for a vgs x vds grid.
func newFamily(vgs, vds []float64) []Curve {
	out := make([]Curve, len(vgs))
	for i, vg := range vgs {
		out[i] = Curve{
			VG:  vg,
			VDS: append([]float64(nil), vds...),
			IDS: make([]float64, len(vds)),
		}
	}
	return out
}
