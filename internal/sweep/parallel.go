package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// FamilyParallel evaluates a curve family with worker goroutines, one
// bias point per task. Both library models are safe for concurrent use
// after construction (the reference model's diagnostic counters are
// atomic). workers <= 0 selects GOMAXPROCS.
//
// Use this for the reference model, where one operating point costs
// ~100 µs of quadrature; for the piecewise models the per-point cost
// (~0.2 µs) is below scheduling overhead and the serial Family is
// usually faster.
func FamilyParallel(m CurrentSource, vgs, vds []float64, workers int) ([]Curve, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Curve, len(vgs))
	for i, vg := range vgs {
		out[i] = Curve{
			VG:  vg,
			VDS: append([]float64(nil), vds...),
			IDS: make([]float64, len(vds)),
		}
	}

	type task struct{ gi, vi int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	// Per-worker instruments live under sweep.worker.<i>; points/sec
	// per worker is the counter over the timer. Handles are resolved
	// before the workers start so the hot loop only counts locally.
	on := telemetry.On()
	reg := telemetry.Default()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			points, errs := 0, 0
			if on {
				defer reg.Timer(fmt.Sprintf("sweep.worker.%d.time", w)).Start()()
			}
			for tk := range tasks {
				ids, err := m.IDS(fettoy.Bias{VG: vgs[tk.gi], VD: vds[tk.vi]})
				if err != nil {
					errs++
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: VG=%g VDS=%g: %w", vgs[tk.gi], vds[tk.vi], err)
					}
					mu.Unlock()
					continue
				}
				points++
				out[tk.gi].IDS[tk.vi] = ids
			}
			if on {
				reg.Counter(fmt.Sprintf("sweep.worker.%d.points", w)).Add(int64(points))
				reg.Counter("sweep.points").Add(int64(points))
				reg.Counter("sweep.errors").Add(int64(errs))
			}
		}(w)
	}
	for gi := range vgs {
		for vi := range vds {
			tasks <- task{gi, vi}
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
