package sweep

import (
	"context"
	"errors"
	"math"
	"testing"

	"cntfet/internal/fettoy"
)

// fake is a deterministic current source for metric tests.
type fake struct {
	f   func(fettoy.Bias) float64
	err error
}

func (f fake) IDS(b fettoy.Bias) (float64, error) {
	if f.err != nil {
		return 0, f.err
	}
	return f.f(b), nil
}

func linearModel(gain float64) fake {
	return fake{f: func(b fettoy.Bias) float64 { return gain * b.VG * b.VD }}
}

func TestTraceShape(t *testing.T) {
	c, err := Trace(linearModel(1), 0.5, []float64{0, 0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if c.VG != 0.5 || len(c.IDS) != 3 {
		t.Fatalf("curve = %+v", c)
	}
	if c.IDS[2] != 0.1 {
		t.Fatalf("IDS[2] = %g", c.IDS[2])
	}
}

func TestTracePropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	if _, err := Trace(fake{err: sentinel}, 0.5, []float64{0.1}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceCopiesGrid(t *testing.T) {
	grid := []float64{0, 0.1}
	c, _ := Trace(linearModel(1), 0.3, grid)
	grid[0] = 99
	if c.VDS[0] == 99 {
		t.Fatal("Trace aliases the caller's grid")
	}
}

func TestFamilyOrder(t *testing.T) {
	fam, err := Family(context.Background(), linearModel(1), []float64{0.1, 0.2}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 2 || fam[0].VG != 0.1 || fam[1].VG != 0.2 {
		t.Fatalf("family = %+v", fam)
	}
}

func TestGridsMatchPaper(t *testing.T) {
	g := Grid()
	if len(g) != 61 || g[0] != 0 || g[60] != 0.6 {
		t.Fatalf("VDS grid %v", g[:2])
	}
	pg := PaperGates()
	if len(pg) != 7 || pg[0] != 0.3 || pg[6] != 0.6 {
		t.Fatalf("paper gates %v", pg)
	}
	tg := TableGates()
	if len(tg) != 6 || math.Abs(tg[1]-0.2) > 1e-12 {
		t.Fatalf("table gates %v", tg)
	}
}

func TestRMSPercentExactValues(t *testing.T) {
	ref := Curve{IDS: []float64{1, 1, 1, 1}}
	model := Curve{IDS: []float64{1.1, 0.9, 1.1, 0.9}}
	got, err := RMSPercent(model, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("rms%% = %g, want 10", got)
	}
}

func TestRMSPercentIdenticalIsZero(t *testing.T) {
	c := Curve{IDS: []float64{1, 2, 3}}
	if got, _ := RMSPercent(c, c); got != 0 {
		t.Fatalf("rms%% = %g", got)
	}
}

func TestRMSPercentErrors(t *testing.T) {
	if _, err := RMSPercent(Curve{IDS: []float64{1}}, Curve{IDS: []float64{1, 2}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RMSPercent(Curve{}, Curve{}); err == nil {
		t.Fatal("empty curves accepted")
	}
	if _, err := RMSPercent(Curve{IDS: []float64{0}}, Curve{IDS: []float64{0}}); err == nil {
		t.Fatal("zero-mean reference accepted")
	}
}

func TestCompareFamilies(t *testing.T) {
	ref, _ := Family(context.Background(), linearModel(1), []float64{0.2, 0.4}, []float64{0.1, 0.2})
	model, _ := Family(context.Background(), linearModel(1.05), []float64{0.2, 0.4}, []float64{0.1, 0.2})
	errs, err := CompareFamilies(model, ref)
	if err != nil {
		t.Fatal(err)
	}
	// Each model point is 1.05x its reference, so the deviation is
	// 5% pointwise; against a curve [x, 2x] the metric evaluates to
	// 100·sqrt(mean((0.05·I)²))/mean(I) = 5·sqrt(2.5)/1.5.
	want := 5 * math.Sqrt(2.5) / 1.5
	for i, e := range errs {
		if math.Abs(e-want) > 1e-9 {
			t.Fatalf("errs[%d] = %g, want %g", i, e, want)
		}
	}
}

func TestCompareFamiliesMismatch(t *testing.T) {
	a, _ := Family(context.Background(), linearModel(1), []float64{0.2}, []float64{0.1})
	b, _ := Family(context.Background(), linearModel(1), []float64{0.3}, []float64{0.1})
	if _, err := CompareFamilies(a, b); err == nil {
		t.Fatal("gate mismatch accepted")
	}
	if _, err := CompareFamilies(a, nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestMaxCurrent(t *testing.T) {
	fam := []Curve{{IDS: []float64{1, 5}}, {IDS: []float64{3}}}
	if MaxCurrent(fam) != 5 {
		t.Fatal("MaxCurrent broken")
	}
	if MaxCurrent(nil) != 0 {
		t.Fatal("empty family should give 0")
	}
}

// Integration: the real models drive through the same interface.
func TestSweepDrivesRealModels(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	fam, err := Family(context.Background(), ref, []float64{0.4}, []float64{0, 0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if fam[0].IDS[2] <= fam[0].IDS[1] || fam[0].IDS[0] != 0 {
		t.Fatalf("reference sweep shape wrong: %v", fam[0].IDS)
	}
}

func TestFamilyParallelMatchesSerial(t *testing.T) {
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	vgs := []float64{0.3, 0.5}
	vds := []float64{0, 0.2, 0.4, 0.6}
	serial, err := Family(context.Background(), ref, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FamilyParallel(context.Background(), ref, vgs, vds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		for j := range serial[i].IDS {
			a, b := serial[i].IDS[j], parallel[i].IDS[j]
			if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
				t.Fatalf("curve %d point %d: %g vs %g", i, j, a, b)
			}
		}
	}
}

func TestFamilyParallelPropagatesError(t *testing.T) {
	sentinel := errors.New("device exploded")
	_, err := FamilyParallel(context.Background(), fake{err: sentinel}, []float64{0.1}, []float64{0.2}, 2)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestFamilyParallelDefaultWorkers(t *testing.T) {
	fam, err := FamilyParallel(context.Background(), linearModel(1), []float64{0.2}, []float64{0.1, 0.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fam[0].IDS[1] != 0.06 {
		t.Fatalf("IDS = %v", fam[0].IDS)
	}
}
