package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// This file holds the emitting cores of the family sweep schedulers.
// Each scheduler computes exactly what its buffered counterpart
// computes — Family, FamilyBatch and FamilyParallel are thin
// collecting wrappers over these — but hands completed rows to an
// emit callback as they finish instead of accumulating the whole
// grid. Rows are always delivered in gate order (index gi into vgs),
// even from the out-of-order parallel scheduler, so a streaming
// consumer sees the same sequence the buffered result would contain.
//
// Ownership of the emitted Curve (its VDS and IDS slices) transfers
// to the callback; the scheduler does not touch the row again. A
// non-nil error from emit aborts the sweep promptly and is returned
// unchanged (not wrapped), so callers can classify a failing sink —
// typically a disconnected client — distinctly from a failing solve.

// FamilyTo is the serial scheduler behind Family: one Trace per gate
// voltage, rows emitted in order as each completes. Cancellation is
// honoured between rows.
func FamilyTo(ctx context.Context, m device.Solver, vgs, vds []float64, emit func(gi int, c Curve) error) error {
	done := ctxDone(ctx)
	for gi, vg := range vgs {
		select {
		case <-done:
			return canceledErr(ctx)
		default:
		}
		c, err := Trace(m, vg, vds)
		if err != nil {
			return err
		}
		if err := emit(gi, c); err != nil {
			return err
		}
	}
	return nil
}

// FamilyBatchTo is the batched scheduler behind FamilyBatch: each VDS
// row goes through the model's optional device.BatchSolver capability
// (falling back to FamilyTo when absent) and is emitted as soon as its
// row kernel returns. Rows are allocated one at a time, so a consumer
// that does not retain them keeps the scheduler's footprint at one row
// regardless of grid size. Cancellation is honoured between rows.
// sweep.points counts exactly the rows that completed before an abort.
func FamilyBatchTo(ctx context.Context, m device.Solver, vgs, vds []float64, emit func(gi int, c Curve) error) error {
	bm, ok := m.(device.BatchSolver)
	if !ok {
		return FamilyTo(ctx, m, vgs, vds, emit)
	}
	bias := make([]fettoy.Bias, len(vds))
	done := ctxDone(ctx)
	var points int64
	defer func() { countPoints(telemetry.Default(), false, -1, points, 0) }()
	for gi, vg := range vgs {
		select {
		case <-done:
			return canceledErr(ctx)
		default:
		}
		for j, vd := range vds {
			bias[j] = fettoy.Bias{VG: vg, VD: vd}
		}
		c := Curve{VG: vg, VDS: append([]float64(nil), vds...), IDS: make([]float64, len(vds))}
		// One span per VDS row — the batched path's scheduling unit —
		// so a traced job shows where its row time went. Nil (free)
		// while tracing is off.
		_, sp := telemetry.StartSpan(ctx, telemetry.SpanSweepRow)
		err := bm.IDSBatch(bias, c.IDS)
		sp.Set(
			telemetry.Float(telemetry.AttrVG, vg),
			telemetry.Int(telemetry.AttrPoints, int64(len(vds))),
		)
		if err != nil {
			sp.Set(telemetry.String(telemetry.AttrError, err.Error()))
			sp.End()
			return fmt.Errorf("sweep: VG=%g: %w", vg, err)
		}
		sp.End()
		points += int64(len(vds))
		if err := emit(gi, c); err != nil {
			return err
		}
	}
	return nil
}

// rowEmitter serialises in-order row delivery out of the parallel
// scheduler's out-of-order chunk completion. Workers report finished
// chunks; when every point of the frontier row (the lowest unemitted
// gate index) has been attempted, the row is emitted under the mutex —
// which doubles as backpressure: while one worker is blocked writing a
// row to a slow consumer, the others keep solving, but no further rows
// leave. Emitted slots are cleared so a streaming consumer that drops
// rows after use keeps only the not-yet-complete tail of the grid
// resident. A row containing numerical errors halts emission (the
// sweep is going to fail; a consumer must not see rows past the first
// bad one) without stopping the workers, which still drain to count
// every failure.
type rowEmitter struct {
	mu        sync.Mutex
	remaining []int // points not yet attempted, per row
	bad       []bool
	out       []Curve
	next      int // frontier: first row not yet emitted
	emit      func(gi int, c Curve) error
	failed    error // first emit error; sticky
	stopped   bool  // a bad row reached the frontier
}

func newRowEmitter(out []Curve, rowLen int, emit func(gi int, c Curve) error) *rowEmitter {
	e := &rowEmitter{
		remaining: make([]int, len(out)),
		bad:       make([]bool, len(out)),
		out:       out,
		emit:      emit,
	}
	for i := range e.remaining {
		e.remaining[i] = rowLen
	}
	return e
}

// complete records n attempted points (successes and failures alike)
// against row gi, advances the emission frontier, and returns the
// first emit error so the calling worker can abandon the task queue.
// It sits on the per-chunk hot path, so it is held to the kernel
// allocation budget (the emit callback itself is the caller's).
//
//perf:zeroalloc
func (e *rowEmitter) complete(gi, n, errs int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if errs > 0 {
		e.bad[gi] = true
	}
	e.remaining[gi] -= n
	if e.failed != nil {
		return e.failed
	}
	for !e.stopped && e.next < len(e.out) && e.remaining[e.next] == 0 {
		if e.bad[e.next] {
			e.stopped = true
			break
		}
		//lint:allow zeroalloc the emit callback's allocation budget belongs to its owner, not this scheduler
		if err := e.emit(e.next, e.out[e.next]); err != nil {
			e.failed = err
			return err
		}
		e.out[e.next] = Curve{}
		e.next++
	}
	return nil
}

func (e *rowEmitter) err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failed
}

// FamilyParallelTo is the chunked parallel scheduler behind
// FamilyParallel — identical worker pool, chunking heuristic, batched
// chunk kernel and warm-start fallback (see FamilyParallel for the
// scheduling rationale) — with ordered row emission layered on top via
// rowEmitter. Cancellation, first-error and telemetry semantics match
// FamilyParallel exactly; an emit error additionally stops every
// worker at its next chunk boundary and is returned unchanged unless
// the context was also canceled, which takes precedence.
func FamilyParallelTo(ctx context.Context, m device.Solver, vgs, vds []float64, workers int, emit func(gi int, c Curve) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := newFamily(vgs, vds)

	// Chunking heuristic: see FamilyParallel. Chunks never span rows,
	// so a row's completion is observable at chunk granularity.
	span := (len(vgs)*len(vds) + 4*workers - 1) / (4 * workers)
	if span < 8 {
		span = 8
	}
	if span > len(vds) {
		span = len(vds)
	}
	if span < 1 {
		span = 1
	}

	type chunk struct{ gi, lo, hi int }
	nchunks := 0
	if span > 0 {
		perRow := (len(vds) + span - 1) / span
		nchunks = perRow * len(vgs)
	}
	tasks := make(chan chunk, nchunks)
	for gi := range vgs {
		for lo := 0; lo < len(vds); lo += span {
			hi := lo + span
			if hi > len(vds) {
				hi = len(vds)
			}
			tasks <- chunk{gi, lo, hi}
		}
	}
	close(tasks)

	// First-error capture without a per-point mutex: the winning worker
	// records once, later errors only bump the shared counter.
	var firstErr error
	var errOnce sync.Once

	em := newRowEmitter(out, len(vds), emit)

	ws, warm := m.(device.WarmStarter)
	bs, batch := m.(device.BatchSolver)
	done := ctxDone(ctx)
	on := telemetry.On()
	reg := telemetry.Default()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow goroutine cancellation is honoured per chunk through the captured done channel (ctxDone(ctx) above)
		go func(w int) {
			defer wg.Done()
			var points, errs int64
			// Per-worker bias scratch for the batched chunk path: one
			// allocation per worker for the whole sweep, sized to the
			// largest chunk. Lazy so non-batch models pay nothing.
			var biasBuf []fettoy.Bias
			if on {
				defer reg.Timer(fmt.Sprintf(telemetry.KeySweepWorkerTimeFmt, w)).Start()()
			}
			defer func() { countPoints(reg, on, w, points, errs) }()
		drain:
			for ck := range tasks {
				// One span per chunk — the scheduler's work unit — keeps
				// tracing cost off the per-point path while still showing
				// which worker ran which run of points. Nil (free) while
				// tracing is off.
				_, sp := telemetry.StartSpan(ctx, telemetry.SpanSweepChunk)
				chunkPoints, chunkErrs := points, errs
				if batch {
					// Batched chunk path: hand the whole [lo, hi) run to
					// the model's row kernel (zero-alloc closed form for
					// the piecewise family, warm-started table Newton for
					// the reference). Cancellation is honoured per chunk
					// here — a chunk is at most one VDS row, the same
					// granularity FamilyBatch uses.
					select {
					case <-done:
						endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
						break drain
					default:
					}
					if biasBuf == nil {
						biasBuf = make([]fettoy.Bias, span)
					}
					n := ck.hi - ck.lo
					for vi := ck.lo; vi < ck.hi; vi++ {
						biasBuf[vi-ck.lo] = fettoy.Bias{VG: vgs[ck.gi], VD: vds[vi]}
					}
					if err := bs.IDSBatch(biasBuf[:n], out[ck.gi].IDS[ck.lo:ck.hi]); err == nil {
						points += int64(n)
						endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
						if em.complete(ck.gi, n, 0) != nil {
							break drain
						}
						continue
					}
					// The batch failed somewhere in the run: fall through
					// to the per-point loop, which redoes the chunk to
					// attribute the failing point exactly and keep the
					// healthy neighbours — batch errors stay as non-silent
					// and non-aborting as per-point ones.
				}
				guess := math.NaN()
				for vi := ck.lo; vi < ck.hi; vi++ {
					select {
					case <-done:
						// The tasks channel is pre-filled and closed, so
						// abandoning the range leaves no blocked sender.
						endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
						break drain
					default:
					}
					b := fettoy.Bias{VG: vgs[ck.gi], VD: vds[vi]}
					var ids float64
					var err error
					if warm {
						ids, guess, err = ws.IDSFrom(b, guess)
					} else {
						ids, err = m.IDS(b)
					}
					if err != nil {
						errs++
						errOnce.Do(func() {
							firstErr = fmt.Errorf("sweep: VG=%g VDS=%g: %w", b.VG, b.VD, err)
						})
						guess = math.NaN()
						continue
					}
					points++
					out[ck.gi].IDS[vi] = ids
				}
				endChunkSpan(sp, w, vgs[ck.gi], points-chunkPoints)
				attempted := int(points - chunkPoints + errs - chunkErrs)
				if em.complete(ck.gi, attempted, int(errs-chunkErrs)) != nil {
					break drain
				}
			}
		}(w)
	}
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return canceledErr(ctx)
	}
	if err := em.err(); err != nil {
		return err
	}
	return firstErr
}
