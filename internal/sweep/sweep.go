// Package sweep runs bias sweeps over transistor models and computes
// the paper's comparison metrics: families of IDS(VDS) curves at
// stepped gate voltages (figures 6-11) and the per-curve "average RMS
// error" grids of tables II-V.
package sweep

import (
	"context"
	"fmt"
	"math"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/units"
)

// Curve is one IDS(VDS) sweep at a fixed gate voltage.
type Curve struct {
	VG  float64
	VDS []float64
	IDS []float64
}

// Trace evaluates one curve on the given drain-voltage grid. Models
// are anything satisfying the core capability of internal/device; the
// higher-level family sweeps upgrade to the optional warm-start and
// batch capabilities by type assertion.
func Trace(m device.Solver, vg float64, vds []float64) (Curve, error) {
	c := Curve{VG: vg, VDS: append([]float64(nil), vds...), IDS: make([]float64, len(vds))}
	for i, vd := range vds {
		ids, err := m.IDS(fettoy.Bias{VG: vg, VD: vd})
		if err != nil {
			return Curve{}, fmt.Errorf("sweep: VG=%g VDS=%g: %w", vg, vd, err)
		}
		c.IDS[i] = ids
	}
	return c, nil
}

// Family evaluates one curve per gate voltage on a shared VDS grid.
// Cancellation is honoured between rows: a canceled context returns an
// error wrapping context.Canceled (or the cancel cause) and no curves.
// It is the collecting wrapper over FamilyTo.
func Family(ctx context.Context, m device.Solver, vgs, vds []float64) ([]Curve, error) {
	out := make([]Curve, 0, len(vgs))
	if err := FamilyTo(ctx, m, vgs, vds, func(_ int, c Curve) error {
		out = append(out, c)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Grid returns the paper's standard VDS grid: 0 to 0.6 V in 61 steps.
func Grid() []float64 { return units.Linspace(0, 0.6, 61) }

// PaperGates returns the gate voltages of figures 6 and 7:
// 0.3 to 0.6 V in 0.05 V steps.
func PaperGates() []float64 { return units.Linspace(0.3, 0.6, 7) }

// TableGates returns the gate voltages of tables II-IV:
// 0.1 to 0.6 V in 0.1 V steps.
func TableGates() []float64 { return units.Linspace(0.1, 0.6, 6) }

// RMSPercent computes the paper's per-curve error metric between a
// model curve and a reference curve sharing the same grid:
// 100·sqrt(mean((I_m − I_r)²)) / mean(I_r).
func RMSPercent(model, ref Curve) (float64, error) {
	if len(model.IDS) != len(ref.IDS) {
		return 0, fmt.Errorf("sweep: curve lengths differ (%d vs %d)", len(model.IDS), len(ref.IDS))
	}
	if len(ref.IDS) == 0 {
		return 0, fmt.Errorf("sweep: empty curves")
	}
	var sum, mean float64
	for i := range ref.IDS {
		d := model.IDS[i] - ref.IDS[i]
		sum += d * d
		mean += ref.IDS[i]
	}
	n := float64(len(ref.IDS))
	mean /= n
	if mean <= 0 {
		return 0, fmt.Errorf("sweep: reference curve mean %g not positive", mean)
	}
	return 100 * math.Sqrt(sum/n) / mean, nil
}

// CompareFamilies returns the RMS percent error per gate voltage for a
// model family against a reference family (the body of tables II-IV).
func CompareFamilies(model, ref []Curve) ([]float64, error) {
	if len(model) != len(ref) {
		return nil, fmt.Errorf("sweep: family sizes differ (%d vs %d)", len(model), len(ref))
	}
	out := make([]float64, len(ref))
	for i := range ref {
		if model[i].VG != ref[i].VG { //lint:allow floatcmp families must share the exact VG grid
			return nil, fmt.Errorf("sweep: gate mismatch at %d: %g vs %g", i, model[i].VG, ref[i].VG)
		}
		e, err := RMSPercent(model[i], ref[i])
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// MaxCurrent returns the largest current in a family, used to scale
// plots.
func MaxCurrent(fam []Curve) float64 {
	mx := 0.0
	for _, c := range fam {
		for _, i := range c.IDS {
			if i > mx {
				mx = i
			}
		}
	}
	return mx
}
