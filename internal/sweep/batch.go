package sweep

import (
	"fmt"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// WarmStarter is implemented by models whose solve benefits from a
// neighbouring solution: IDSFrom starts the solve at guess (NaN means
// cold) and returns the solved VSC for the caller to thread into the
// next point. The reference model warm-starts its Newton iteration;
// the piecewise models satisfy the interface trivially (the closed
// form has no iteration state, so the guess is ignored).
type WarmStarter interface {
	IDSFrom(b fettoy.Bias, guess float64) (ids, vsc float64, err error)
}

// BatchCurrentSource is implemented by models that can evaluate many
// bias points in one call, amortising per-call overhead (interface
// dispatch, error wrapping, telemetry gating) across the batch. out
// must be at least as long as bias.
type BatchCurrentSource interface {
	IDSBatch(bias []fettoy.Bias, out []float64) error
}

// FamilyBatch evaluates one curve per gate voltage like Family, but
// routes each VDS row through IDSBatch when the model supports it —
// the fast path for the piecewise models, whose ~0.2 µs closed-form
// solve is otherwise comparable to the per-call plumbing around it,
// and for the tabulated reference model, which warm-starts along the
// row. Models without a batch path fall back to Family unchanged.
func FamilyBatch(m CurrentSource, vgs, vds []float64) ([]Curve, error) {
	bm, ok := m.(BatchCurrentSource)
	if !ok {
		return Family(m, vgs, vds)
	}
	out := newFamily(vgs, vds)
	bias := make([]fettoy.Bias, len(vds))
	for i, vg := range vgs {
		for j, vd := range vds {
			bias[j] = fettoy.Bias{VG: vg, VD: vd}
		}
		if err := bm.IDSBatch(bias, out[i].IDS); err != nil {
			return nil, fmt.Errorf("sweep: VG=%g: %w", vg, err)
		}
	}
	telemetry.Default().Counter("sweep.points").Add(int64(len(vgs) * len(vds)))
	return out, nil
}
