package sweep

import (
	"context"
	"fmt"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// FamilyBatch evaluates one curve per gate voltage like Family, but
// routes each VDS row through the model's optional device.BatchSolver
// capability when present — the fast path for the piecewise models,
// whose ~0.2 µs closed-form solve is otherwise comparable to the
// per-call plumbing around it, and for the tabulated reference model,
// which warm-starts along the row. Models without a batch path fall
// back to Family unchanged. Cancellation is honoured between rows.
func FamilyBatch(ctx context.Context, m device.Solver, vgs, vds []float64) ([]Curve, error) {
	bm, ok := m.(device.BatchSolver)
	if !ok {
		return Family(ctx, m, vgs, vds)
	}
	out := newFamily(vgs, vds)
	bias := make([]fettoy.Bias, len(vds))
	done := ctxDone(ctx)
	for i, vg := range vgs {
		select {
		case <-done:
			return nil, canceledErr(ctx)
		default:
		}
		for j, vd := range vds {
			bias[j] = fettoy.Bias{VG: vg, VD: vd}
		}
		// One span per VDS row — the batched path's scheduling unit —
		// so a traced job shows where its row time went. Nil (free)
		// while tracing is off.
		_, sp := telemetry.StartSpan(ctx, telemetry.SpanSweepRow)
		err := bm.IDSBatch(bias, out[i].IDS)
		sp.Set(
			telemetry.Float(telemetry.AttrVG, vg),
			telemetry.Int(telemetry.AttrPoints, int64(len(vds))),
		)
		if err != nil {
			sp.Set(telemetry.String(telemetry.AttrError, err.Error()))
			sp.End()
			return nil, fmt.Errorf("sweep: VG=%g: %w", vg, err)
		}
		sp.End()
	}
	countPoints(telemetry.Default(), false, -1, int64(len(vgs)*len(vds)), 0)
	return out, nil
}
