package sweep

import (
	"context"

	"cntfet/internal/device"
)

// FamilyBatch evaluates one curve per gate voltage like Family, but
// routes each VDS row through the model's optional device.BatchSolver
// capability when present — the fast path for the piecewise models,
// whose ~0.2 µs closed-form solve is otherwise comparable to the
// per-call plumbing around it, and for the tabulated reference model,
// which warm-starts along the row. Models without a batch path fall
// back to Family unchanged. Cancellation is honoured between rows.
// It is the collecting wrapper over FamilyBatchTo.
func FamilyBatch(ctx context.Context, m device.Solver, vgs, vds []float64) ([]Curve, error) {
	out := make([]Curve, 0, len(vgs))
	if err := FamilyBatchTo(ctx, m, vgs, vds, func(_ int, c Curve) error {
		out = append(out, c)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
