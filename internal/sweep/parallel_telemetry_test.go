package sweep

import (
	"context"
	"fmt"
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// noisySource is a trivially fast model that itself hammers shared
// registry instruments from every worker, so this test exercises the
// registry under the real FamilyParallel concurrency pattern. Run with
// -race (the Makefile check target does).
type noisySource struct{}

func (noisySource) IDS(b fettoy.Bias) (float64, error) {
	telemetry.Default().Counter("test.noisy.ids").Inc()
	telemetry.Default().Timer("test.noisy.time").Observe(1)
	telemetry.Default().Histogram("test.noisy.vg", []float64{0.2, 0.4}).Observe(b.VG)
	return b.VG * b.VD, nil
}

func TestFamilyParallelHammersTelemetry(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	reg := telemetry.Default()
	base := reg.Snapshot().Counters

	const nvg, nvd, workers = 20, 50, 8
	vgs := make([]float64, nvg)
	for i := range vgs {
		vgs[i] = float64(i) * 0.03
	}
	vds := make([]float64, nvd)
	for i := range vds {
		vds[i] = float64(i) * 0.01
	}

	out, err := FamilyParallel(context.Background(), noisySource{}, vgs, vds, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != nvg {
		t.Fatalf("got %d curves, want %d", len(out), nvg)
	}

	s := reg.Snapshot().Counters
	total := int64(nvg * nvd)
	if got := s["test.noisy.ids"] - base["test.noisy.ids"]; got != total {
		t.Fatalf("model-side counter = %d, want %d", got, total)
	}
	if got := s["sweep.points"] - base["sweep.points"]; got != total {
		t.Fatalf("sweep.points = %d, want %d", got, total)
	}
	// Per-worker points must partition the total.
	var perWorker int64
	for w := 0; w < workers; w++ {
		perWorker += s[fmt.Sprintf("sweep.worker.%d.points", w)] -
			base[fmt.Sprintf("sweep.worker.%d.points", w)]
	}
	if perWorker != total {
		t.Fatalf("per-worker points sum to %d, want %d", perWorker, total)
	}
	if got := s["sweep.errors"] - base["sweep.errors"]; got != 0 {
		t.Fatalf("sweep.errors = %d, want 0", got)
	}
}
