package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"cntfet/internal/fettoy"
)

// batchFake is a deterministic device.BatchSolver for emitter tests.
// slowVG injects latency into rows at that gate voltage so the
// parallel scheduler completes rows out of order.
type batchFake struct {
	gain   float64
	slowVG float64
}

func (f batchFake) IDS(b fettoy.Bias) (float64, error) {
	if b.VG == f.slowVG { //lint:allow floatcmp test fixture keyed on exact grid values
		time.Sleep(2 * time.Millisecond)
	}
	return f.gain * b.VG * b.VD, nil
}

func (f batchFake) IDSBatch(bias []fettoy.Bias, out []float64) error {
	for i, b := range bias {
		ids, err := f.IDS(b)
		if err != nil {
			return err
		}
		out[i] = ids
	}
	return nil
}

// vgFail errors on every point of one gate row.
type vgFail struct {
	badVG float64
}

func (m vgFail) IDS(b fettoy.Bias) (float64, error) {
	if b.VG == m.badVG { //lint:allow floatcmp test fixture keyed on exact grid values
		return 0, errors.New("bad row")
	}
	return b.VG * b.VD, nil
}

func grids(ng, nd int) (vgs, vds []float64) {
	vgs = make([]float64, ng)
	for i := range vgs {
		vgs[i] = 0.1 + 0.05*float64(i)
	}
	vds = make([]float64, nd)
	for i := range vds {
		vds[i] = 0.01 * float64(i)
	}
	return vgs, vds
}

func sameFamily(t *testing.T, got, want []Curve) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("family sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].VG != want[i].VG { //lint:allow floatcmp bit-for-bit equivalence is the contract
			t.Fatalf("row %d: VG %g vs %g", i, got[i].VG, want[i].VG)
		}
		for j := range want[i].IDS {
			if got[i].IDS[j] != want[i].IDS[j] { //lint:allow floatcmp bit-for-bit equivalence is the contract
				t.Fatalf("row %d point %d: %g vs %g", i, j, got[i].IDS[j], want[i].IDS[j])
			}
		}
	}
}

// TestFamilyBatchToEmitsRowsIncrementally checks that the batched
// scheduler delivers one row per gate, in order, before the call
// returns — the property the streaming server is built on.
func TestFamilyBatchToEmitsRowsIncrementally(t *testing.T) {
	vgs, vds := grids(5, 12)
	want, err := Family(context.Background(), linearModel(3), vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	var gis []int
	var rows []Curve
	err = FamilyBatchTo(context.Background(), batchFake{gain: 3}, vgs, vds, func(gi int, c Curve) error {
		gis = append(gis, gi)
		rows = append(rows, c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, gi := range gis {
		if gi != i {
			t.Fatalf("emit order %v, want 0..%d", gis, len(vgs)-1)
		}
	}
	sameFamily(t, rows, want)
}

// TestFamilyParallelToOrderedDelivery checks the tentpole invariant:
// the parallel scheduler completes chunks out of order (the first row
// is artificially slow), yet rows are emitted in gate order and the
// assembled family is bit-identical to the serial sweep.
func TestFamilyParallelToOrderedDelivery(t *testing.T) {
	vgs, vds := grids(7, 33)
	want, err := Family(context.Background(), linearModel(2), vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 9} {
		var gis []int
		var rows []Curve
		err := FamilyParallelTo(context.Background(), batchFake{gain: 2, slowVG: vgs[0]}, vgs, vds, workers, func(gi int, c Curve) error {
			gis = append(gis, gi)
			rows = append(rows, c)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, gi := range gis {
			if gi != i {
				t.Fatalf("workers=%d: emit order %v, want in-order", workers, gis)
			}
		}
		sameFamily(t, rows, want)
	}
}

// TestEmitErrorAborts checks that a failing sink aborts each scheduler
// promptly and surfaces the sink's error unchanged.
func TestEmitErrorAborts(t *testing.T) {
	sentinel := errors.New("sink full")
	vgs, vds := grids(6, 20)
	for name, run := range map[string]func(emit func(int, Curve) error) error{
		"serial": func(emit func(int, Curve) error) error {
			return FamilyTo(context.Background(), linearModel(1), vgs, vds, emit)
		},
		"batch": func(emit func(int, Curve) error) error {
			return FamilyBatchTo(context.Background(), batchFake{gain: 1}, vgs, vds, emit)
		},
		"parallel": func(emit func(int, Curve) error) error {
			return FamilyParallelTo(context.Background(), batchFake{gain: 1}, vgs, vds, 4, emit)
		},
	} {
		seen := 0
		err := run(func(gi int, c Curve) error {
			if gi >= 2 {
				return sentinel
			}
			seen++
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: error = %v, want sink sentinel", name, err)
		}
		if seen != 2 {
			t.Fatalf("%s: %d rows delivered before abort, want 2", name, seen)
		}
	}
}

// TestParallelEmitHaltsAtBadRow checks that a numerically failing row
// stops emission at the failure frontier — a streaming consumer never
// sees rows past the first bad one — while the sweep still returns
// the underlying error.
func TestParallelEmitHaltsAtBadRow(t *testing.T) {
	vgs, vds := grids(5, 16)
	var gis []int
	err := FamilyParallelTo(context.Background(), vgFail{badVG: vgs[1]}, vgs, vds, 3, func(gi int, c Curve) error {
		gis = append(gis, gi)
		return nil
	})
	if err == nil {
		t.Fatal("numerical failure swallowed")
	}
	for _, gi := range gis {
		if gi >= 1 {
			t.Fatalf("row %d emitted past the failing row; order %v", gi, gis)
		}
	}
}

// TestFamilyWrappersUnchanged pins the buffered entry points against
// the serial reference now that they are collecting wrappers.
func TestFamilyWrappersUnchanged(t *testing.T) {
	vgs, vds := grids(4, 25)
	want, err := Family(context.Background(), linearModel(5), vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FamilyBatch(context.Background(), batchFake{gain: 5}, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	sameFamily(t, got, want)
	got, err = FamilyParallel(context.Background(), batchFake{gain: 5}, vgs, vds, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameFamily(t, got, want)
}
