package sweep

import (
	"context"
	"errors"
	"testing"

	"cntfet/internal/fettoy"
	"cntfet/internal/telemetry"
)

// cancelAfterRow is a batch solver that cancels its own context while
// evaluating the first row, so the per-row cancellation check in
// FamilyBatch fires deterministically before the second row.
type cancelAfterRow struct {
	cancel context.CancelFunc
	rows   int
}

func (c *cancelAfterRow) IDS(b fettoy.Bias) (float64, error) { return b.VG * b.VD, nil }

func (c *cancelAfterRow) IDSBatch(bias []fettoy.Bias, out []float64) error {
	c.rows++
	for i, b := range bias {
		out[i] = b.VG * b.VD
	}
	c.cancel()
	return nil
}

func TestFamilyBatchCancelBetweenRows(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := &cancelAfterRow{cancel: cancel}
	_, err := FamilyBatch(ctx, m, []float64{0.1, 0.2, 0.3}, []float64{0, 0.3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if m.rows != 1 {
		t.Fatalf("evaluated %d rows after cancellation, want 1", m.rows)
	}
}

// cancelSelf is a plain solver that cancels its context on the n-th
// point, for the serial and parallel per-point checks.
type cancelSelf struct {
	cancel context.CancelFunc
	after  int
	calls  int
}

func (c *cancelSelf) IDS(b fettoy.Bias) (float64, error) {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return b.VG * b.VD, nil
}

func TestFamilySerialCancelBetweenRows(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := &cancelSelf{cancel: cancel, after: 2} // cancels inside row 1
	_, err := Family(ctx, m, []float64{0.1, 0.2, 0.3}, []float64{0, 0.3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if m.calls > 2 {
		t.Fatalf("evaluated %d points after cancellation, want the current row only", m.calls)
	}
}

// TestFamilyParallelCancelCountsConsistently: after a mid-sweep
// cancellation, sweep.points must equal the successful evaluations
// that actually ran — the deferred per-worker flush must not lose or
// double-count abandoned work.
func TestFamilyParallelCancelCountsConsistently(t *testing.T) {
	telemetry.Disable()
	reg := telemetry.Default()
	base := reg.Snapshot().Counters

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Single worker makes the evaluation count deterministic: the one
	// worker cancels on its 3rd point, then abandons the rest.
	m := &cancelSelf{cancel: cancel, after: 3}
	_, err := FamilyParallel(ctx, m, []float64{0.1, 0.2}, []float64{0, 0.2, 0.4, 0.6}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	snap := reg.Snapshot().Counters
	got := snap["sweep.points"] - base["sweep.points"]
	if got != int64(m.calls) {
		t.Fatalf("sweep.points advanced by %d, but %d solves ran", got, m.calls)
	}
	if m.calls >= 8 {
		t.Fatal("cancellation did not abandon the remaining points")
	}
}
