package fettoy

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"cntfet/internal/bandstruct"
	"cntfet/internal/fermi"
	"cntfet/internal/quad"
	"cntfet/internal/rootfind"
	"cntfet/internal/telemetry"
	"cntfet/internal/units"
)

// metrics holds the pre-resolved telemetry handles of the reference
// model. The instruments live in the process-wide registry (stable
// across Reset), so every Model shares them; per-model deltas come
// from construction-time baselines (see Counters). Recording is
// unconditional: one quadrature integral costs ~10 µs, so a handful of
// atomic adds are far below noise, and diagnostics stay live even with
// the telemetry gate off.
var metrics = struct {
	integralEvals   *telemetry.Counter
	quadPoints      *telemetry.Counter
	newtonIters     *telemetry.Counter
	bracketFailures *telemetry.Counter
	solves          *telemetry.Counter
	solveTime       *telemetry.Timer
	solveIters      *telemetry.Histogram
	tableBuilds     *telemetry.Counter
	tableNodes      *telemetry.Counter
	tableHits       *telemetry.Counter
	tableMisses     *telemetry.Counter
	snapshotLoads   *telemetry.Counter
	snapshotSaves   *telemetry.Counter
}{
	integralEvals:   telemetry.Default().Counter(telemetry.KeyFettoyIntegralEvals),
	quadPoints:      telemetry.Default().Counter(telemetry.KeyFettoyQuadPoints),
	newtonIters:     telemetry.Default().Counter(telemetry.KeyFettoyNewtonIters),
	bracketFailures: telemetry.Default().Counter(telemetry.KeyFettoyBracketFailures),
	solves:          telemetry.Default().Counter(telemetry.KeyFettoySolves),
	solveTime:       telemetry.Default().Timer(telemetry.KeyFettoySolveTime),
	solveIters:      telemetry.Default().Histogram(telemetry.KeyFettoySolveIters, []float64{2, 4, 8, 16, 32, 64}),
	tableBuilds:     telemetry.Default().Counter(telemetry.KeyFettoyTableBuilds),
	tableNodes:      telemetry.Default().Counter(telemetry.KeyFettoyTableNodes),
	tableHits:       telemetry.Default().Counter(telemetry.KeyFettoyTableHits),
	tableMisses:     telemetry.Default().Counter(telemetry.KeyFettoyTableMisses),
	snapshotLoads:   telemetry.Default().Counter(telemetry.KeyFettoyTableSnapshotLoads),
	snapshotSaves:   telemetry.Default().Counter(telemetry.KeyFettoyTableSnapshotSaves),
}

// Model is the theoretical (FETToy-equivalent) ballistic CNT transistor.
// It is safe for concurrent use after construction.
type Model struct {
	dev    Device
	bands  []bandstruct.Subband // minima relative to the first subband edge
	e1     float64              // first subband minimum from mid-gap, eV
	kT     float64              // eV
	csigma float64              // F/m
	n0     float64              // equilibrium density, states/m

	// quadTol is the absolute quadrature tolerance on the states/m
	// scale of one integral.
	quadTol float64

	// localIntegrals/localNewton are this model's own work counters,
	// kept alongside the shared registry instruments so Counters stays
	// exact when several models solve concurrently.
	localIntegrals atomic.Int64
	localNewton    atomic.Int64

	// table, when set (before any concurrent use, like trace), serves
	// SolveVSC's state-density evaluations by interpolation.
	table *ChargeTable

	// trace, when set (before any concurrent use), receives the
	// per-iteration residual trajectory of every VSC solve.
	trace *telemetry.Trace
}

// New validates the device and precomputes the equilibrium density N0.
func New(dev Device) (*Model, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		dev:     dev,
		bands:   dev.Bands(),
		e1:      dev.E1(),
		kT:      dev.KT(),
		csigma:  dev.CSigma(),
		quadTol: 1e-8 * bandstruct.D0(),
	}
	m.n0 = m.N(dev.EF)
	return m, nil
}

// SetTrace attaches a solve trace: every SolveVSC records its
// per-iteration residual trajectory as "fettoy.newton" events and a
// "fettoy.solve" summary event. Set it before sharing the model across
// goroutines; a nil trace (the default) is free.
func (m *Model) SetTrace(tr *telemetry.Trace) { m.trace = tr }

// Device returns the parameter set the model was built from.
func (m *Model) Device() Device { return m.dev }

// N0 returns the equilibrium electron density in states/m (paper
// eq. 4).
func (m *Model) N0() float64 { return m.n0 }

// Counters reports how many state-density integrals and Newton
// iterations this model has performed since construction — the cost the
// piecewise approximation removes. The counts are local atomics, so
// they stay exact when several models solve concurrently; the shared
// "fettoy.*" registry instruments accumulate the same events
// process-wide.
func (m *Model) Counters() (integrals, newtonIters int) {
	return int(m.localIntegrals.Load()), int(m.localNewton.Load())
}

// tailIntegral integrates a Fermi-weighted tail integrand over
// [start, ∞). When the Fermi level u sits above start, the integrand's
// only structure — the kT-wide Fermi window around ε = u — lies inside
// the semi-infinite panel, where adaptive sampling can step straight
// over it (the -∂f/∂ε integrand of NPrime is a near-δ spike there).
// Splitting at the window and integrating the finite part with adaptive
// Simpson pins the peak; beyond u + 25kT the Fermi factors are < 2e-11
// and the transform handles the remainder.
func (m *Model) tailIntegral(g func(float64) float64, start, u float64) float64 {
	from := start
	total := 0.0
	if u > start {
		hi := u + 25*m.kT
		window, _ := quad.Simpson(g, start, hi, m.quadTol, 30)
		total += window
		from = hi
	}
	tail, _ := quad.SemiInfinite(g, from, m.quadTol)
	return total + tail
}

// N evaluates the full state-density integral
//
//	N(U) = Σ_p ∫ D_p(ε) f(ε-U) dε   [states/m]
//
// with ε measured from the first subband edge and U the effective Fermi
// level on the same axis (paper eqs. 2-4 evaluate this at USF, UDF and
// EF). The van Hove edge of each subband is integrated with the exact
// sqrt substitution; the Fermi tail with a semi-infinite transform.
// u is in electronvolts (eV).
func (m *Model) N(u float64) float64 {
	metrics.integralEvals.Inc()
	m.localIntegrals.Add(1)
	total := 0.0
	points := 0
	for _, b := range m.bands {
		ep := b.EMin + m.e1         // minimum from mid-gap
		eps0 := b.EMin              // minimum on the ε axis
		w := math.Max(10*m.kT, 0.1) // singular-panel width, eV
		deg := float64(b.Degeneracy) / 2 * bandstruct.D0()

		// Edge panel: D_p(ε)f = [deg·(ε+E1)·f/(sqrt(ε+E1+Ep))] / sqrt(ε-εp).
		g := func(eps float64) float64 {
			points++
			x := eps + m.e1
			return deg * x * fermi.F(eps-u, m.kT) / math.Sqrt(x+ep)
		}
		edge, err := quad.SqrtSingularUpper(g, eps0, eps0+w, m.quadTol)
		if err != nil {
			// Depth exhaustion leaves the best estimate; the tail
			// below still completes the integral.
			_ = err
		}
		// Smooth tail, split at the Fermi window when it lies inside.
		tail := m.tailIntegral(func(eps float64) float64 {
			points++
			x := eps + m.e1
			return deg * x / math.Sqrt(x*x-ep*ep) * fermi.F(eps-u, m.kT)
		}, eps0+w, u)
		total += edge + tail
	}
	metrics.quadPoints.Add(int64(points))
	return total
}

// NPrime evaluates dN/dU >= 0 (states/m per eV), the quantum
// capacitance integrand, with the same singular/tail splitting as N.
func (m *Model) NPrime(u float64) float64 {
	metrics.integralEvals.Inc()
	m.localIntegrals.Add(1)
	total := 0.0
	points := 0
	for _, b := range m.bands {
		ep := b.EMin + m.e1
		eps0 := b.EMin
		w := math.Max(10*m.kT, 0.1)
		deg := float64(b.Degeneracy) / 2 * bandstruct.D0()

		g := func(eps float64) float64 {
			points++
			x := eps + m.e1
			return deg * x * -fermi.DF(eps-u, m.kT) / math.Sqrt(x+ep)
		}
		edge, _ := quad.SqrtSingularUpper(g, eps0, eps0+w, m.quadTol)
		tail := m.tailIntegral(func(eps float64) float64 {
			points++
			x := eps + m.e1
			return deg * x / math.Sqrt(x*x-ep*ep) * -fermi.DF(eps-u, m.kT)
		}, eps0+w, u)
		total += edge + tail
	}
	metrics.quadPoints.Add(int64(points))
	return total
}

// NS returns the density of positive-velocity states filled by the
// source at self-consistent voltage vsc in volts (V) (paper eq. 2):
// ½·N(EF - vsc).
func (m *Model) NS(vsc float64) float64 { return 0.5 * m.N(m.dev.EF-vsc) }

// ND returns the density of negative-velocity states filled by the
// drain (paper eq. 3): ½·N(EF - vsc - vds). vsc and vds are in
// volts (V).
func (m *Model) ND(vsc, vds float64) float64 { return 0.5 * m.N(m.dev.EF-vsc-vds) }

// QS returns the source-side mobile charge q(NS - N0/2) in C/m at
// self-consistent voltage vsc in volts (V) (paper eq. 10) — the
// quantity the piecewise models approximate.
func (m *Model) QS(vsc float64) float64 {
	return units.Q * (m.NS(vsc) - 0.5*m.n0)
}

// QD returns the drain-side mobile charge q(ND - N0/2) in C/m (paper
// eq. 11); vsc and vds are in volts (V).
func (m *Model) QD(vsc, vds float64) float64 {
	return units.Q * (m.ND(vsc, vds) - 0.5*m.n0)
}

// Bias is one operating point; source is the reference terminal.
type Bias struct {
	VG, VD, VS float64
}

// SolveStats reports the work one SolveVSC call performed.
type SolveStats struct {
	Iterations int
	FuncEvals  int
}

// SolveVSC solves the self-consistent voltage equation (paper eq. 7,
// with the corrected charge sign — see DESIGN.md):
//
//	VSC + (αG·VG + αD·VD + αS·VS) − q·(NS + ND − N0)/CΣ = 0
//
// by safeguarded Newton–Raphson with the analytic quantum-capacitance
// derivative. This is the expensive step the paper's closed-form
// technique eliminates. With an attached ChargeTable (EnableTable) the
// Newton iterations interpolate the tabulated state density instead of
// re-integrating it.
func (m *Model) SolveVSC(b Bias) (float64, SolveStats, error) {
	return m.solveVSCAt(b, 0, false)
}

// SolveVSCFrom is SolveVSC warm-started from a neighbouring solution —
// the continuation a bias sweep exploits: consecutive points along a
// VDS row start from the previous root instead of re-bracketing around
// the zero-charge estimate. A NaN guess degrades to the cold start.
func (m *Model) SolveVSCFrom(b Bias, guess float64) (float64, SolveStats, error) {
	return m.solveVSCAt(b, guess, !math.IsNaN(guess))
}

func (m *Model) solveVSCAt(b Bias, guess float64, warm bool) (float64, SolveStats, error) {
	alphaS := 1 - m.dev.AlphaG - m.dev.AlphaD
	ul := m.dev.AlphaG*b.VG + m.dev.AlphaD*b.VD + alphaS*b.VS
	vds := b.VD - b.VS
	qcs := units.Q / m.csigma

	metrics.solves.Inc()
	if telemetry.On() {
		defer metrics.solveTime.Start()()
	}

	if t := m.table; t != nil {
		if v, st, ok := m.solveVSCTable(t, b, ul, vds, qcs, guess, warm); ok {
			return v, st, nil
		}
		// A lookup left the tabulated range (or the bracket search
		// failed inside it): redo the point on exact quadrature.
	}
	return m.solveVSCQuad(b, ul, vds, qcs, guess, warm)
}

// solveVSCQuad is the exact-quadrature solve: safeguarded Newton on
// the direct state-density integrals. It records the quadrature-side
// work counters itself but leaves solve counting and timing to its
// callers (solveVSCAt per point, IDSBatch once per row).
func (m *Model) solveVSCQuad(b Bias, ul, vds, qcs, guess float64, warm bool) (float64, SolveStats, error) {
	g := func(v float64) float64 {
		ns := 0.5 * m.N(m.dev.EF-v)
		nd := 0.5 * m.N(m.dev.EF-v-vds)
		return v + ul - qcs*(ns+nd-m.n0)
	}
	dg := func(v float64) float64 {
		return 1 + 0.5*qcs*(m.NPrime(m.dev.EF-v)+m.NPrime(m.dev.EF-v-vds))
	}

	// The zero-charge solution -UL is the natural cold start; a warm
	// start brackets tightly around the neighbouring root instead (g is
	// strictly increasing, so ExpandBracket recovers from a bad guess).
	x0, half := -ul, 0.5
	if warm {
		x0, half = guess, 0.05
	}
	lo, hi, err := rootfind.ExpandBracket(g, x0-half, x0+half, 40)
	if err != nil {
		metrics.bracketFailures.Inc()
		return 0, SolveStats{}, fmt.Errorf("fettoy: no bracket for VSC at %+v: %w", b, err)
	}
	opt := rootfind.Options{XTol: 1e-12, MaxIter: 100}
	if m.trace.Enabled() {
		opt.OnIter = func(iter int, v, fv float64) {
			m.trace.Emit(telemetry.KindFettoyNewton, 0, "iter", iter, "v", v, "residual", fv, "vg", b.VG, "vd", b.VD)
		}
	}
	res, err := rootfind.Newton(g, dg, x0, lo, hi, opt)
	if err != nil {
		return 0, SolveStats{}, fmt.Errorf("fettoy: VSC solve failed at %+v: %w", b, err)
	}
	metrics.newtonIters.Add(int64(res.Iterations))
	m.localNewton.Add(int64(res.Iterations))
	metrics.solveIters.Observe(float64(res.Iterations))
	if m.trace.Enabled() {
		m.trace.Emit(telemetry.KindFettoySolve, 0,
			"vg", b.VG, "vd", b.VD, "vs", b.VS, "vsc", res.Root,
			"iters", res.Iterations, "fevals", res.FuncEvals)
	}
	return res.Root, SolveStats{Iterations: res.Iterations, FuncEvals: res.FuncEvals}, nil
}

// solveVSCTable is the tabulated twin of the quadrature solve; it
// wraps tableNewton with the per-point metric flush the single-solve
// path wants (the batch kernel accumulates across the row instead).
func (m *Model) solveVSCTable(t *ChargeTable, b Bias, ul, vds, qcs, guess float64, warm bool) (float64, SolveStats, bool) {
	root, st, hits, ok := m.tableNewton(t, b, ul, vds, qcs, guess, warm)
	metrics.tableHits.Add(hits)
	if !ok {
		metrics.tableMisses.Inc()
		return 0, st, false
	}
	metrics.newtonIters.Add(int64(st.Iterations))
	m.localNewton.Add(int64(st.Iterations))
	metrics.solveIters.Observe(float64(st.Iterations))
	return root, st, true
}

// tableNewton is the tabulated Newton iteration itself: the same
// safeguarded scheme as the quadrature solve, with N and N' served
// together by one Hermite lookup per terminal. It is allocation-free
// (the closures below never escape), touches no shared telemetry —
// lookup hits are returned for the caller to flush — and reports
// ok=false, leaving the caller to fall back to quadrature, whenever a
// lookup lands outside the grid or the bracket search fails.
func (m *Model) tableNewton(t *ChargeTable, b Bias, ul, vds, qcs, guess float64, warm bool) (float64, SolveStats, int64, bool) {
	hits := int64(0)
	// eval returns the residual and its derivative at v from two table
	// lookups (source and drain effective Fermi levels).
	eval := func(v float64) (gv, dgv float64, ok bool) {
		ns, nps, ok := t.eval(m.dev.EF - v)
		if !ok {
			return 0, 0, false
		}
		nd, npd, ok := t.eval(m.dev.EF - v - vds)
		if !ok {
			return 0, 0, false
		}
		hits += 2
		gv = v + ul - qcs*(0.5*(ns+nd)-m.n0)
		dgv = 1 + 0.5*qcs*(nps+npd)
		return gv, dgv, true
	}
	st := SolveStats{}
	x0, half := -ul, 0.5
	if warm {
		x0, half = guess, 0.05
	}
	lo, hi := x0-half, x0+half
	glo, _, ok := eval(lo)
	if !ok {
		return 0, st, hits, false
	}
	ghi, _, ok := eval(hi)
	if !ok {
		return 0, st, hits, false
	}
	st.FuncEvals = 2
	for grow := 0; glo*ghi > 0; grow++ {
		if grow == 40 {
			return 0, st, hits, false
		}
		w := hi - lo
		lo -= w
		hi += w
		if glo, _, ok = eval(lo); !ok {
			return 0, st, hits, false
		}
		if ghi, _, ok = eval(hi); !ok {
			return 0, st, hits, false
		}
		st.FuncEvals += 2
	}

	x := x0
	if x < lo || x > hi {
		x = 0.5 * (lo + hi)
	}
	traceOn := m.trace.Enabled()
	for iter := 1; iter <= 100; iter++ {
		st.Iterations = iter
		gx, dgx, ok := eval(x)
		if !ok {
			return 0, st, hits, false
		}
		st.FuncEvals++
		if traceOn {
			m.trace.Emit(telemetry.KindFettoyNewton, 0, "iter", iter, "v", x, "residual", gx, "vg", b.VG, "vd", b.VD)
		}
		root, done := x, gx == 0 //lint:allow floatcmp residual exactly zero is an exact root
		if !done {
			// Maintain the bracket, then take the Newton step with a
			// bisection safeguard (mirrors rootfind.Newton).
			if glo*gx < 0 {
				hi = x
			} else {
				lo, glo = x, gx
			}
			next := 0.5 * (lo + hi)
			if dgx != 0 { //lint:allow floatcmp exact-zero derivative guard before the Newton step
				if n := x - gx/dgx; n > lo && n < hi {
					next = n
				}
			}
			if math.Abs(next-x) < 1e-12 {
				root, done = next, true
			}
			x = next
		}
		if done {
			if traceOn {
				m.trace.Emit(telemetry.KindFettoySolve, 0,
					"vg", b.VG, "vd", b.VD, "vs", b.VS, "vsc", root,
					"iters", st.Iterations, "fevals", st.FuncEvals)
			}
			return root, st, hits, true
		}
	}
	return 0, st, hits, false
}

// CurrentAtVSC evaluates the ballistic drain current (paper eqs. 12-14)
// given an already-solved self-consistent voltage vsc in volts (V).
func (m *Model) CurrentAtVSC(vsc float64, b Bias) float64 {
	vds := b.VD - b.VS
	usf := m.dev.EF - vsc
	udf := usf - vds
	i0 := 2 * units.Q * units.KB * m.dev.T / (math.Pi * units.HBar) * m.dev.TransmissionOrBallistic()
	sum := 0.0
	for _, band := range m.bands {
		d := float64(band.Degeneracy) / 2
		sum += d * (fermi.F0((usf-band.EMin)/m.kT) - fermi.F0((udf-band.EMin)/m.kT))
	}
	return i0 * sum
}

// IDS solves the operating point and returns the drain-source current
// in amperes.
func (m *Model) IDS(b Bias) (float64, error) {
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		return 0, err
	}
	return m.CurrentAtVSC(vsc, b), nil
}

// IDSFrom solves with a warm-start guess (NaN = cold start) and returns
// both the current and the solved VSC, so a sweep can thread each
// solution into the next point of its row. It implements the sweep
// package's warm-start interface.
func (m *Model) IDSFrom(b Bias, guess float64) (ids, vsc float64, err error) {
	vsc, _, err = m.solveVSCAt(b, guess, !math.IsNaN(guess))
	if err != nil {
		return 0, 0, err
	}
	return m.CurrentAtVSC(vsc, b), vsc, nil
}

// IDSBatch evaluates one current per bias into out (which must be at
// least as long as bias), threading warm-start continuation through the
// batch: each solve starts from its predecessor's root, so a VDS row
// costs a fraction of len(bias) independent cold solves. It implements
// the sweep package's batch interface.
//
// With a charge table attached the row runs as a zero-alloc kernel
// (testing.AllocsPerRun == 0, telemetry on or off): the one-time
// tabulation is hoisted ahead of the row, every point drives the
// tabulated Newton core directly, per-solve timing uses explicit
// time.Now/Observe pairs instead of the closure-allocating timer
// helper, and the work counters accumulate locally with one atomic
// flush after the row. Points whose lookups leave the tabulated range
// fall back to exact quadrature individually, exactly like the
// per-point path; counter totals match it either way.
//
//perf:zeroalloc
func (m *Model) IDSBatch(bias []Bias, out []float64) error {
	t := m.table
	if t == nil || m.trace.Enabled() {
		// No table to amortise (or per-iteration tracing wants the
		// fully instrumented path): plain warm-started row.
		guess := math.NaN()
		for i, b := range bias {
			//lint:allow zeroalloc the no-table path is the fully instrumented one; only the table path below is the zero-alloc kernel
			ids, vsc, err := m.IDSFrom(b, guess)
			if err != nil {
				return err
			}
			out[i] = ids
			guess = vsc
		}
		return nil
	}

	//lint:allow zeroalloc one-time table build, amortised over every subsequent row
	t.tab() // pay the one-time build before the row, not inside point 0
	alphaS := 1 - m.dev.AlphaG - m.dev.AlphaD
	qcs := units.Q / m.csigma
	on := telemetry.On()
	var solves, iters, hits, misses int64
	//lint:allow zeroalloc flush never escapes: it stays a stack closure (the alloc test covers telemetry on and off)
	flush := func() {
		metrics.solves.Add(solves)
		metrics.tableHits.Add(hits)
		if misses != 0 {
			metrics.tableMisses.Add(misses)
		}
		if iters != 0 {
			metrics.newtonIters.Add(iters)
			m.localNewton.Add(iters)
		}
	}
	guess, warm := math.NaN(), false
	for i, b := range bias {
		ul := m.dev.AlphaG*b.VG + m.dev.AlphaD*b.VD + alphaS*b.VS
		vds := b.VD - b.VS
		var t0 time.Time
		if on {
			t0 = time.Now()
		}
		solves++
		//lint:allow zeroalloc tableNewton's closures never escape (see its doc; the alloc test covers this path)
		root, st, nhits, ok := m.tableNewton(t, b, ul, vds, qcs, guess, warm)
		hits += nhits
		if !ok {
			// This point left the grid (or the bracket search failed):
			// redo it on exact quadrature, which records its own
			// quadrature-side counters.
			misses++
			var err error
			//lint:allow zeroalloc cold off-grid fallback to exact quadrature, per miss, not per point
			if root, st, err = m.solveVSCQuad(b, ul, vds, qcs, guess, warm); err != nil {
				//lint:allow zeroalloc flush is the local stack closure above
				flush()
				return err
			}
		} else {
			iters += int64(st.Iterations)
			metrics.solveIters.Observe(float64(st.Iterations))
		}
		if on {
			metrics.solveTime.Observe(time.Since(t0))
		}
		out[i] = m.CurrentAtVSC(root, b)
		guess, warm = root, true
	}
	//lint:allow zeroalloc flush is the local stack closure above
	flush()
	return nil
}

// OperatingPoint bundles the solved internal state for one bias.
type OperatingPoint struct {
	Bias Bias
	// VSC is the self-consistent voltage in volts.
	VSC float64
	// IDS is the drain-source current in amperes.
	IDS float64
	// QS, QD are the terminal mobile charges in C/m.
	QS, QD float64
	// Stats reports the solver work.
	Stats SolveStats
}

// Solve computes the full operating point at bias b.
func (m *Model) Solve(b Bias) (OperatingPoint, error) {
	vsc, st, err := m.SolveVSC(b)
	if err != nil {
		return OperatingPoint{}, err
	}
	vds := b.VD - b.VS
	return OperatingPoint{
		Bias:  b,
		VSC:   vsc,
		IDS:   m.CurrentAtVSC(vsc, b),
		QS:    m.QS(vsc),
		QD:    m.QD(vsc, vds),
		Stats: st,
	}, nil
}

// CQS returns the theoretical source-side nonlinear capacitance
// dQS/dVSC in F/m at self-consistent voltage vsc in volts (V) (the
// figure-1 equivalent-circuit element): from QS = q(N(EF-VSC)/2 -
// N0/2), dQS/dVSC = -q·N'(USF)/2.
func (m *Model) CQS(vsc float64) float64 {
	return -0.5 * units.Q * m.NPrime(m.dev.EF-vsc)
}

// CQD returns the theoretical drain-side nonlinear capacitance
// dQD/dVSC in F/m; vsc and vds are in volts (V).
func (m *Model) CQD(vsc, vds float64) float64 {
	return -0.5 * units.Q * m.NPrime(m.dev.EF-vsc-vds)
}
