package fettoy

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"cntfet/internal/telemetry"
)

// TableOptions tunes a ChargeTable. The zero value selects defaults
// suitable for terminal voltages up to about ±1 V around the device's
// operating region.
type TableOptions struct {
	// UMin, UMax bound the tabulated effective-Fermi-level range on the
	// u axis the state-density integral N(u) is evaluated on (u = EF -
	// VSC for the source term, shifted by -VDS for the drain term).
	// Both zero selects [EF - 1.3, EF + 1.4], which covers the paper's
	// 0..0.6 V bias grids including the cold-start bracket probes (the
	// initial bracket reaches u = EF + UL + 0.5 ≤ EF + 1.05 on those
	// grids). Lookups outside the range fall back to direct quadrature
	// and count as misses.
	UMin, UMax float64
	// RelTol is the interpolation accuracy bound: the grid is refined
	// until the cubic Hermite midpoint error on each interval is below
	// RelTol·(|N| + 1e-9·scale), where scale is the largest tabulated
	// density. Zero selects 1e-6, comfortably below the <0.1 % IDS
	// agreement target.
	RelTol float64
	// InitIntervals is the uniform starting grid resolution before
	// adaptive refinement. Zero selects 64.
	InitIntervals int
	// MaxNodes caps grid growth during refinement. Zero selects 8192.
	MaxNodes int
}

func (o TableOptions) withDefaults(ef float64) TableOptions {
	if o.UMin == 0 && o.UMax == 0 { //lint:allow floatcmp both exactly zero selects the default range
		o.UMin, o.UMax = ef-1.3, ef+1.4
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.InitIntervals <= 0 {
		o.InitIntervals = 64
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 8192
	}
	return o
}

// tableData is the immutable, atomically published result of one build:
// node positions with the exact N and N' values at each node. Between
// nodes the table interpolates with the C¹ cubic Hermite spline those
// values define.
type tableData struct {
	u, n, np []float64
	scale    float64 // max tabulated |N|, the error-bound reference
}

// ChargeTable tabulates the state-density integral N(u) — the cost the
// reference model pays at every Newton iteration — once per (device, T,
// EF) and serves later evaluations by cubic Hermite interpolation. The
// grid is adaptive: intervals are split until the interpolation error
// at the midpoint is within the configured accuracy bound, so the node
// count tracks kT (colder devices need finer grids near the band edge).
//
// A ChargeTable is safe for concurrent use: the first lookup triggers
// one build (later lookups block until it is published), and the
// published grid is immutable afterwards. A build canceled through
// BuildContext leaves the table unbuilt — the next lookup or build
// simply retries. The table never invalidates — it is keyed to its
// Model, whose device parameters are fixed at construction; a new
// device, temperature or Fermi level means a new Model and therefore a
// new table.
//
// Work is observable through the fettoy.table.* telemetry counters:
// builds and nodes record construction cost, hits and misses record
// how lookups split between interpolation and the direct-quadrature
// fallback.
type ChargeTable struct {
	m   *Model
	opt TableOptions
	// mu serialises builds; data publishes the immutable result. A
	// mutex (not sync.Once) so a canceled build can be retried.
	mu   sync.Mutex
	data atomic.Pointer[tableData]
}

// NewChargeTable prepares a table over the model's state density. The
// build is lazy: the first lookup (from any goroutine) pays for it.
func NewChargeTable(m *Model, opt TableOptions) *ChargeTable {
	return &ChargeTable{m: m, opt: opt.withDefaults(m.dev.EF)}
}

// EnableTable attaches a charge table to the model and routes every
// subsequent SolveVSC through it: Newton iterations evaluate the
// tabulated N and N' instead of re-integrating the density of states.
// Lookups outside the tabulated range fall back to direct quadrature,
// so accuracy degrades to the error bound, never to garbage. Call it
// before sharing the model across goroutines, like SetTrace; the
// returned table can be inspected or pre-built with Build.
func (m *Model) EnableTable(opt TableOptions) *ChargeTable {
	t := NewChargeTable(m, opt)
	m.table = t
	return t
}

// Table returns the attached charge table, or nil when solves run on
// direct quadrature.
func (m *Model) Table() *ChargeTable { return m.table }

// Build forces table construction now instead of on first lookup, so
// callers can keep the one-time quadrature cost out of timed regions.
func (t *ChargeTable) Build() { t.tab() }

// BuildContext is Build under a cancellable context: the adaptive
// refinement checks ctx between quadrature evaluations (each costs
// ~10 µs, so cancellation lands promptly) and returns an error
// wrapping the context's cause when aborted. A canceled build leaves
// the table unbuilt; retrying later — with this method, Build, or a
// plain lookup — starts over.
func (t *ChargeTable) BuildContext(ctx context.Context) error {
	_, err := t.tabCtx(ctx)
	return err
}

// BuildContext implements the optional device.ContextBuilder
// capability on the model itself: it pre-builds the attached charge
// table, if any, under the caller's context. Models running on direct
// quadrature have nothing to build.
func (m *Model) BuildContext(ctx context.Context) error {
	if m.table == nil {
		return nil
	}
	return m.table.BuildContext(ctx)
}

// Nodes returns the adaptive grid size (building the table if needed).
func (t *ChargeTable) Nodes() int { return len(t.tab().u) }

// Range returns the tabulated u interval.
func (t *ChargeTable) Range() (umin, umax float64) { return t.opt.UMin, t.opt.UMax }

// At returns the interpolated state density and its derivative at u
// (on the normalised energy axis, in eV), falling back to the exact
// integrals outside the tabulated range.
func (t *ChargeTable) At(u float64) (n, nprime float64) {
	n, nprime, ok := t.eval(u)
	if ok {
		metrics.tableHits.Inc()
		return n, nprime
	}
	metrics.tableMisses.Inc()
	return t.m.N(u), t.m.NPrime(u)
}

// tab returns the built grid, building it on first use. Lookups carry
// no context, so the implicit build is non-cancellable by design.
func (t *ChargeTable) tab() *tableData {
	d, _ := t.tabCtx(context.Background()) //lint:allow ctxpropagate lookups carry no context; implicit build is non-cancellable by design
	return d
}

// tabCtx returns the built grid, building it under ctx if needed. The
// double-checked atomic keeps the hot lookup path lock-free once the
// grid is published.
func (t *ChargeTable) tabCtx(ctx context.Context) (*tableData, error) {
	if d := t.data.Load(); d != nil {
		return d, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if d := t.data.Load(); d != nil {
		return d, nil
	}
	// The one-time tabulation is exactly the kind of hidden cost spans
	// exist for: under the sweep service it shows up as a child of the
	// job that happened to arrive first.
	ctx, span := telemetry.StartSpan(ctx, telemetry.SpanFettoyTableBuild)
	d, err := t.build(ctx)
	if err != nil {
		span.Set(telemetry.String(telemetry.AttrError, err.Error()))
		span.End()
		return nil, err
	}
	span.Set(telemetry.Int(telemetry.AttrTableNodes, int64(len(d.u))))
	span.End()
	t.data.Store(d)
	metrics.tableBuilds.Inc()
	metrics.tableNodes.Add(int64(len(d.u)))
	return d, nil
}

// eval is the allocation-free lookup the solver hot path uses: the
// Hermite value and derivative at u, or ok=false outside the grid.
func (t *ChargeTable) eval(u float64) (n, nprime float64, ok bool) {
	d := t.tab()
	xs := d.u
	if u < xs[0] || u > xs[len(xs)-1] {
		return 0, 0, false
	}
	i := sort.SearchFloat64s(xs, u)
	if i == 0 {
		return d.n[0], d.np[0], true
	}
	u0, u1 := xs[i-1], xs[i]
	h := u1 - u0
	tt := (u - u0) / h
	n0, n1 := d.n[i-1], d.n[i]
	m0, m1 := d.np[i-1]*h, d.np[i]*h
	t2 := tt * tt
	t3 := t2 * tt
	n = n0*(2*t3-3*t2+1) + m0*(t3-2*t2+tt) + n1*(-2*t3+3*t2) + m1*(t3-t2)
	nprime = (n0*(6*t2-6*tt) + m0*(3*t2-4*tt+1) + n1*(6*tt-6*t2) + m1*(3*t2-2*tt)) / h
	return n, nprime, true
}

// build samples the exact integrals on a uniform grid, then bisects any
// interval whose Hermite midpoint error exceeds the accuracy bound.
// Refinement recursion is bounded both by depth (12 halvings of the
// initial spacing) and by the MaxNodes budget. ctx is checked before
// every exact-integral evaluation (the unit of real work).
func (t *ChargeTable) build(ctx context.Context) (*tableData, error) {
	opt := t.opt
	m := t.m
	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	type node struct{ u, n, np float64 }
	at := func(u float64) node { return node{u, m.N(u), m.NPrime(u)} }

	init := make([]node, opt.InitIntervals+1)
	scale := 0.0
	for i := range init {
		if canceled() {
			return nil, fmt.Errorf("fettoy: table build canceled: %w", context.Cause(ctx))
		}
		u := opt.UMin + (opt.UMax-opt.UMin)*float64(i)/float64(opt.InitIntervals)
		init[i] = at(u)
		if a := math.Abs(init[i].n); a > scale {
			scale = a
		}
	}
	floor := 1e-9 * scale

	out := make([]node, 0, 4*len(init))
	budget := opt.MaxNodes - len(init)
	var refine func(a, b node, depth int)
	refine = func(a, b node, depth int) {
		if depth <= 0 || budget <= 0 || canceled() {
			return
		}
		um := 0.5 * (a.u + b.u)
		nm := m.N(um)
		// Hermite prediction at the midpoint (t = 1/2).
		h := b.u - a.u
		m0, m1 := a.np*h, b.np*h
		pred := 0.5*(a.n+b.n) + 0.125*(m0-m1)
		if math.Abs(pred-nm) <= opt.RelTol*(math.Abs(nm)+floor) {
			// The midpoint alone under-detects asymmetric error (the
			// exponential tail at low T peaks off-centre); confirm with
			// the quarter point before accepting the interval.
			uq := a.u + 0.25*h
			nq := m.N(uq)
			predQ := 0.84375*a.n + 0.140625*m0 + 0.15625*b.n - 0.046875*m1
			if math.Abs(predQ-nq) <= opt.RelTol*(math.Abs(nq)+floor) {
				return
			}
		}
		mid := node{um, nm, m.NPrime(um)}
		budget--
		refine(a, mid, depth-1)
		out = append(out, mid)
		refine(mid, b, depth-1)
	}
	for i := 0; i+1 < len(init); i++ {
		out = append(out, init[i])
		refine(init[i], init[i+1], 12)
	}
	out = append(out, init[len(init)-1])
	if canceled() {
		return nil, fmt.Errorf("fettoy: table build canceled: %w", context.Cause(ctx))
	}

	d := &tableData{
		u:     make([]float64, len(out)),
		n:     make([]float64, len(out)),
		np:    make([]float64, len(out)),
		scale: scale,
	}
	for i, nd := range out {
		d.u[i] = nd.u
		d.n[i] = nd.n
		d.np[i] = nd.np
	}
	return d, nil
}
