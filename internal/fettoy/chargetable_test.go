package fettoy

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"cntfet/internal/telemetry"
)

// TestBuildContextCancelAndRetry: a canceled build must return an
// error wrapping the context's cause, leave the table unbuilt, and a
// later build (or lookup) must start over and succeed — the
// mutex-plus-atomic publication this depends on is why the table does
// not use sync.Once.
func TestBuildContextCancelAndRetry(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	tab := m.EnableTable(TableOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tab.BuildContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	// Model-level ContextBuilder surfaces the same failure.
	if err := m.BuildContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("model BuildContext: want context.Canceled, got %v", err)
	}
	// Retry under a live context succeeds and publishes a real grid.
	if err := tab.BuildContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := tab.Nodes(); n < 65 {
		t.Fatalf("retried build produced %d nodes", n)
	}
	// A model without a table has nothing to build, even canceled.
	plain, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.BuildContext(ctx); err != nil {
		t.Fatalf("table-less BuildContext: %v", err)
	}
}

// TestChargeTableAccuracyAcrossDevices sweeps the interpolated state
// density against the exact integrals over the operating-condition
// envelope the sweep engine is used in: cold (sharper band edge, finer
// grid needed), nominal and hot devices at three Fermi levels. The
// default RelTol of 1e-6 must hold with margin at every (T, EF).
func TestChargeTableAccuracyAcrossDevices(t *testing.T) {
	for _, temp := range []float64{150, 300, 450} {
		for _, ef := range []float64{-0.5, -0.32, 0} {
			d := Default()
			d.T = temp
			d.EF = ef
			m, err := New(d)
			if err != nil {
				t.Fatal(err)
			}
			tbl := m.EnableTable(TableOptions{})
			umin, umax := tbl.Range()
			// The table's error bound is relative to |N| with an absolute
			// floor of 1e-9 of the largest tabulated density — measure
			// against the same yardstick (deep below the band N underflows
			// towards 1e-50 states/m, where a pure relative error is
			// meaningless and irrelevant: that charge cannot move a solve).
			floor := 1e-9 * m.N(umax)
			// Same idea for N': it only steers Newton through the quantum
			// capacitance term qcs·N' (qcs ~ 1e-10 V·m/states), so errors
			// far below its peak magnitude are invisible to the solver.
			floorP := 1e-6 * m.NPrime(umax)
			const samples = 400
			worst := 0.0
			for i := 0; i <= samples; i++ {
				// Offset from the node lattice so midpoints (the worst
				// case for Hermite interpolation) are exercised too.
				u := umin + (umax-umin)*(float64(i)+0.37)/(samples+1)
				got, gotP := tbl.At(u)
				want := m.N(u)
				wantP := m.NPrime(u)
				relN := math.Abs(got-want) / (math.Abs(want) + floor)
				if relN > worst {
					worst = relN
				}
				if relN > 1e-5 {
					t.Fatalf("T=%gK EF=%g: N(%g) table %g vs exact %g (rel %g)",
						temp, ef, u, got, want, relN)
				}
				// The derivative converges one order slower than the
				// value; 1e-3 relative (plus the scaled floor for the
				// exponentially dead region below the band) is still far
				// inside the solver's needs.
				if math.Abs(gotP-wantP) > 1e-3*math.Abs(wantP)+floorP {
					t.Fatalf("T=%gK EF=%g: N'(%g) table %g vs exact %g",
						temp, ef, u, gotP, wantP)
				}
			}
			t.Logf("T=%gK EF=%g: %d nodes, worst rel N error %.3g", temp, ef, tbl.Nodes(), worst)
		}
	}
}

// TestChargeTableOutOfRangeFallsBack checks the miss path: lookups
// outside the grid must return the exact quadrature values.
func TestChargeTableOutOfRangeFallsBack(t *testing.T) {
	m := newDefault(t)
	tbl := NewChargeTable(m, TableOptions{})
	umin, umax := tbl.Range()
	for _, u := range []float64{umin - 0.5, umax + 0.5} {
		n, np := tbl.At(u)
		if n != m.N(u) || np != m.NPrime(u) {
			t.Fatalf("out-of-range At(%g) = (%g,%g), want exact (%g,%g)",
				u, n, np, m.N(u), m.NPrime(u))
		}
	}
}

// TestChargeTableRespectsExplicitOptions checks the option plumbing:
// a custom range is honoured and MaxNodes caps refinement.
func TestChargeTableRespectsExplicitOptions(t *testing.T) {
	m := newDefault(t)
	tbl := NewChargeTable(m, TableOptions{UMin: -0.5, UMax: 0.25, InitIntervals: 16, MaxNodes: 40})
	if umin, umax := tbl.Range(); umin != -0.5 || umax != 0.25 {
		t.Fatalf("range (%g,%g)", umin, umax)
	}
	if n := tbl.Nodes(); n > 40 {
		t.Fatalf("MaxNodes=40 but grid has %d nodes", n)
	}
}

// TestChargeTableConcurrentBuild is the -race hammer: many goroutines
// race to trigger the lazy build while looking up scattered points.
// Every goroutine must observe the same fully built grid (identical
// values at identical arguments) with no data race.
func TestChargeTableConcurrentBuild(t *testing.T) {
	m := newDefault(t)
	tbl := NewChargeTable(m, TableOptions{})
	umin, umax := tbl.Range()
	const workers = 16
	probe := make([]float64, 64)
	for i := range probe {
		probe[i] = umin + (umax-umin)*float64(i)/float64(len(probe)-1)
	}
	refN := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix of paths under race: first calls contend on the lazy
			// build, the rest are hot lookups.
			vals := make([]float64, len(probe))
			for rep := 0; rep < 50; rep++ {
				for i, u := range probe {
					n, _ := tbl.At(u)
					vals[i] = n
				}
			}
			refN[w] = vals
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range probe {
			if refN[w][i] != refN[0][i] {
				t.Fatalf("worker %d saw N(%g)=%g, worker 0 saw %g",
					w, probe[i], refN[w][i], refN[0][i])
			}
		}
	}
	if tbl.Nodes() == 0 {
		t.Fatal("no grid built")
	}
}

// TestWarmStartMatchesColdStart checks continuation correctness on both
// solve paths: starting Newton from the neighbouring root must converge
// to the same VSC as the cold bracket around -UL.
func TestWarmStartMatchesColdStart(t *testing.T) {
	for _, tabulated := range []bool{false, true} {
		m := newDefault(t)
		if tabulated {
			m.EnableTable(TableOptions{})
		}
		for _, vg := range []float64{0.2, 0.45, 0.6} {
			guess := math.NaN()
			for vd := 0.0; vd <= 0.6+1e-12; vd += 0.05 {
				b := Bias{VG: vg, VD: vd}
				cold, _, err := m.SolveVSC(b)
				if err != nil {
					t.Fatalf("cold %+v: %v", b, err)
				}
				warm, _, err := m.SolveVSCFrom(b, guess)
				if err != nil {
					t.Fatalf("warm %+v: %v", b, err)
				}
				if math.Abs(warm-cold) > 1e-9 {
					t.Fatalf("tabulated=%v %+v: warm VSC %g vs cold %g", tabulated, b, warm, cold)
				}
				guess = warm
			}
		}
	}
}

// TestWarmStartNaNGuessIsCold checks the sentinel: SolveVSCFrom with a
// NaN guess must behave exactly like SolveVSC.
func TestWarmStartNaNGuessIsCold(t *testing.T) {
	m := newDefault(t)
	b := Bias{VG: 0.5, VD: 0.3}
	cold, stCold, err := m.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	nan, stNaN, err := m.SolveVSCFrom(b, math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if nan != cold || stNaN != stCold {
		t.Fatalf("NaN guess diverged from cold start: %g/%+v vs %g/%+v", nan, stNaN, cold, stCold)
	}
}

// TestWarmStartRecoversFromBadGuess checks the safeguard: a guess far
// from the root (the bracket must expand across it) still converges.
func TestWarmStartRecoversFromBadGuess(t *testing.T) {
	for _, tabulated := range []bool{false, true} {
		m := newDefault(t)
		if tabulated {
			m.EnableTable(TableOptions{})
		}
		b := Bias{VG: 0.6, VD: 0.6}
		cold, _, err := m.SolveVSC(b)
		if err != nil {
			t.Fatal(err)
		}
		warm, _, err := m.SolveVSCFrom(b, cold+0.4)
		if err != nil {
			t.Fatalf("tabulated=%v: %v", tabulated, err)
		}
		if math.Abs(warm-cold) > 1e-9 {
			t.Fatalf("tabulated=%v: bad guess converged to %g, want %g", tabulated, warm, cold)
		}
	}
}

// TestTableSolveMatchesDirect checks the headline accuracy bar: IDS
// through the tabulated solve path agrees with direct quadrature to
// well below the 0.1 % target across the paper's bias grid.
func TestTableSolveMatchesDirect(t *testing.T) {
	direct := newDefault(t)
	tabbed := newDefault(t)
	tabbed.EnableTable(TableOptions{})
	for _, vg := range []float64{0.1, 0.35, 0.6} {
		for _, vd := range []float64{0, 0.15, 0.3, 0.45, 0.6} {
			b := Bias{VG: vg, VD: vd}
			iDirect, err := direct.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			iTable, err := tabbed.IDS(b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(iTable-iDirect) > 1e-5*math.Abs(iDirect)+1e-18 {
				t.Fatalf("%+v: table IDS %g vs direct %g", b, iTable, iDirect)
			}
		}
	}
}

// TestIDSBatchThreadsContinuation checks the batch path end to end: one
// IDSBatch row must reproduce per-point IDS calls bit-for-bit cheaper —
// the warm-started solves land on the same roots.
func TestIDSBatchThreadsContinuation(t *testing.T) {
	m := newDefault(t)
	m.EnableTable(TableOptions{})
	const n = 25
	bias := make([]Bias, n)
	for i := range bias {
		bias[i] = Bias{VG: 0.55, VD: 0.6 * float64(i) / (n - 1)}
	}
	out := make([]float64, n)
	if err := m.IDSBatch(bias, out); err != nil {
		t.Fatal(err)
	}
	for i, b := range bias {
		want, err := m.IDS(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out[i]-want) > 1e-9*math.Abs(want)+1e-18 {
			t.Fatalf("point %d %+v: batch %g vs point solve %g", i, b, out[i], want)
		}
	}
}

// TestCountersExactUnderConcurrency pins the per-model attribution
// satellite: with G goroutines solving the same point K times on one
// model, Counters must report exactly G·K times the single-solve work
// (warm-started identical solves do identical work).
func TestCountersExactUnderConcurrency(t *testing.T) {
	m := newDefault(t)
	b := Bias{VG: 0.5, VD: 0.3}
	// Calibrate one solve's work on a fresh identical model.
	cal := newDefault(t)
	calI0, calN0 := cal.Counters()
	if _, _, err := cal.SolveVSC(b); err != nil {
		t.Fatal(err)
	}
	calI1, calN1 := cal.Counters()
	perI, perN := calI1-calI0, calN1-calN0
	if perI == 0 || perN == 0 {
		t.Fatalf("calibration solve did no work: %d integrals, %d iters", perI, perN)
	}

	i0, n0 := m.Counters()
	const workers, reps = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				if _, _, err := m.SolveVSC(b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	i1, n1 := m.Counters()
	if got, want := i1-i0, workers*reps*perI; got != want {
		t.Fatalf("integral count %d, want exactly %d", got, want)
	}
	if got, want := n1-n0, workers*reps*perN; got != want {
		t.Fatalf("newton count %d, want exactly %d", got, want)
	}
}

// TestTableLookupZeroAlloc pins the hot-path allocation budget: a
// tabulated warm solve must not allocate (the closures in solveVSCTable
// must not escape). Skipped under -race, whose instrumentation
// allocates.
func TestTableLookupZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := newDefault(t)
	tbl := m.EnableTable(TableOptions{})
	tbl.Build()
	b := Bias{VG: 0.5, VD: 0.3}
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, err := m.SolveVSCFrom(b, vsc); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("tabulated warm solve allocates %.1f objects per call", avg)
	}
	// The raw lookup is allocation-free too.
	if avg := testing.AllocsPerRun(200, func() {
		tbl.At(-0.1)
	}); avg != 0 {
		t.Fatalf("table lookup allocates %.1f objects per call", avg)
	}
}

// TestIDSBatchTableZeroAlloc pins the table-backed batch kernel's
// allocation budget: one warm VDS row through IDSBatch must not
// allocate, telemetry off and on (the kernel hoists the tabulation,
// times solves with explicit time.Now/Observe pairs instead of the
// closure-allocating timer helper, and flushes locally-accumulated
// counters once). Skipped under -race, whose instrumentation
// allocates.
func TestIDSBatchTableZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	m := newDefault(t)
	tbl := m.EnableTable(TableOptions{})
	tbl.Build()
	bias := make([]Bias, 61)
	out := make([]float64, len(bias))
	for i := range bias {
		bias[i] = Bias{VG: 0.5, VD: 0.6 * float64(i) / float64(len(bias)-1)}
	}
	for _, gate := range []bool{false, true} {
		if gate {
			telemetry.Enable()
		} else {
			telemetry.Disable()
		}
		if avg := testing.AllocsPerRun(100, func() {
			if err := m.IDSBatch(bias, out); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("telemetry=%v: IDSBatch allocates %.1f objects per row", gate, avg)
		}
	}
	telemetry.Disable()
}
