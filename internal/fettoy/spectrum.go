package fettoy

import (
	"math"

	"cntfet/internal/fermi"
	"cntfet/internal/units"
)

// CurrentSpectrum evaluates the energy-resolved drain current density
// dI/dε in A/eV at energy ε (eV above the first subband edge at the
// top of the barrier) for an already-solved self-consistent voltage.
// It is the Landauer integrand behind eq. 12:
//
//	dI/dε = (2q²/πħ)·Σ_p d_p·θ(ε − ε_p)·[f(ε − USF) − f(ε − UDF)]
//
// so that ∫₀^∞ dI/dε dε = IDS exactly (the F0 closed form is this
// integral done analytically). vsc is in volts (V); eps is the energy
// ε above the first subband edge, in eV. Useful for inspecting where in energy
// the current flows — the spectrum peaks between the source and drain
// Fermi levels and decays with the thermal tails.
func (m *Model) CurrentSpectrum(vsc float64, b Bias, eps float64) float64 {
	vds := b.VD - b.VS
	usf := m.dev.EF - vsc
	udf := usf - vds
	k := 2 * units.Q * units.Q / (math.Pi * units.HBar) * m.dev.TransmissionOrBallistic()
	s := 0.0
	for _, band := range m.bands {
		if eps < band.EMin {
			continue
		}
		d := float64(band.Degeneracy) / 2
		s += d * (fermi.F(eps-usf, m.kT) - fermi.F(eps-udf, m.kT))
	}
	return k * s
}

// SpectrumSeries samples the current spectrum on an energy grid for
// one solved bias point, returning the grid and dI/dε values.
func (m *Model) SpectrumSeries(b Bias, epsMax float64, points int) (eps, didE []float64, err error) {
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		return nil, nil, err
	}
	if points < 2 {
		points = 200
	}
	eps = units.Linspace(0, epsMax, points)
	didE = make([]float64, len(eps))
	for i, e := range eps {
		didE[i] = m.CurrentSpectrum(vsc, b, e)
	}
	return eps, didE, nil
}
