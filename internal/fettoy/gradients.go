package fettoy

import (
	"math"

	"cntfet/internal/fermi"
	"cntfet/internal/units"
)

// Conductances solves the operating point and returns the drain
// current together with the analytic small-signal parameters
// gm = ∂IDS/∂VG and gds = ∂IDS/∂VD (source held fixed).
//
// The derivatives come from implicit differentiation of the
// self-consistent equation F(VSC; VG, VD) = 0 rather than finite
// differences: with D = ∂F/∂VSC (one plus the normalised quantum
// capacitance, always positive),
//
//	dVSC/dVG = -αG / D
//	dVSC/dVD = -(αD + q·N'(UDF)/(2CΣ)) / D
//
// and the chain rule through IDS(VSC, VDS). For the reference model
// this costs two extra N' integrals instead of two extra full
// Newton-Raphson solves, which is what a circuit simulator's Jacobian
// assembly needs at every iteration.
func (m *Model) Conductances(b Bias) (ids, gm, gds float64, err error) {
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		return 0, 0, 0, err
	}
	vds := b.VD - b.VS
	usf := m.dev.EF - vsc
	udf := usf - vds

	// ∂F/∂VSC and the bias partials of F.
	qcs := units.Q / m.csigma
	npS := m.NPrime(usf)
	npD := m.NPrime(udf)
	d := 1 + 0.5*qcs*(npS+npD)
	dVdVG := -m.dev.AlphaG / d
	dVdVD := -(m.dev.AlphaD + 0.5*qcs*npD) / d

	// Current partials at fixed bias.
	ids = m.CurrentAtVSC(vsc, b)
	i0 := 2 * units.Q * units.KB * m.dev.T / (math.Pi * units.HBar) * m.dev.TransmissionOrBallistic()
	var dIdV, dIdVD float64
	for _, band := range m.bands {
		deg := float64(band.Degeneracy) / 2
		occS := fermi.DF0((usf - band.EMin) / m.kT)
		occD := fermi.DF0((udf - band.EMin) / m.kT)
		// ∂IDS/∂VSC: both USF and UDF move with -VSC.
		dIdV += deg * (-occS + occD)
		// ∂IDS/∂VD at fixed VSC: only UDF moves, with -VD, on the
		// negated F0 term.
		dIdVD += deg * occD
	}
	dIdV *= i0 / m.kT
	dIdVD *= i0 / m.kT

	gm = dIdV * dVdVG
	gds = dIdV*dVdVD + dIdVD
	return ids, gm, gds, nil
}
