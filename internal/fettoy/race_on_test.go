//go:build race

package fettoy

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions only hold without instrumentation.
const raceEnabled = true
