package fettoy

import (
	"bytes"
	"strings"
	"testing"

	"cntfet/internal/telemetry"
)

// smallTable keeps snapshot tests fast: a coarse grid builds in well
// under a millisecond.
func smallTableOptions() TableOptions {
	return TableOptions{RelTol: 1e-4, InitIntervals: 16, MaxNodes: 256}
}

func builtTable(t *testing.T, dev Device) *ChargeTable {
	t.Helper()
	m, err := New(dev)
	if err != nil {
		t.Fatal(err)
	}
	tab := m.EnableTable(smallTableOptions())
	tab.Build()
	return tab
}

// TestSnapshotRoundTrip is the core warm-start contract: a grid
// written and read back is bit-identical, the load moves
// snapshot_loads but NOT table.builds, and lookups through the loaded
// table match the built one exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	src := builtTable(t, Default())
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	dst := m2.EnableTable(smallTableOptions())

	reg := telemetry.Default()
	base := reg.Snapshot().Counters
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot().Counters
	if d := snap[telemetry.KeyFettoyTableBuilds] - base[telemetry.KeyFettoyTableBuilds]; d != 0 {
		t.Fatalf("loading a snapshot counted %d table builds, want 0", d)
	}
	if d := snap[telemetry.KeyFettoyTableSnapshotLoads] - base[telemetry.KeyFettoyTableSnapshotLoads]; d != 1 {
		t.Fatalf("snapshot_loads moved by %d, want 1", d)
	}

	a, b := src.data.Load(), dst.data.Load()
	if b == nil {
		t.Fatal("loaded table still unbuilt")
	}
	if len(a.u) != len(b.u) || a.scale != b.scale { //lint:allow floatcmp snapshot round-trip must be bit-exact
		t.Fatalf("grid shape differs: %d/%g vs %d/%g", len(a.u), a.scale, len(b.u), b.scale)
	}
	for i := range a.u {
		if a.u[i] != b.u[i] || a.n[i] != b.n[i] || a.np[i] != b.np[i] { //lint:allow floatcmp snapshot round-trip must be bit-exact
			t.Fatalf("node %d differs after round trip", i)
		}
	}
	for _, u := range []float64{-0.4, 0, 0.13, 0.4} {
		an, anp := src.At(u)
		bn, bnp := dst.At(u)
		if an != bn || anp != bnp { //lint:allow floatcmp identical grids must interpolate identically
			t.Fatalf("lookup at u=%g differs: (%g,%g) vs (%g,%g)", u, an, anp, bn, bnp)
		}
	}
}

// TestSnapshotInfo checks the header-only reader.
func TestSnapshotInfo(t *testing.T) {
	src := builtTable(t, Default())
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSnapshotInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Device != Default() { //lint:allow floatcmp snapshot must preserve the device bit-exactly
		t.Fatalf("device drifted through the snapshot: %+v", info.Device)
	}
	if info.Nodes != src.Nodes() || info.Nodes < 17 {
		t.Fatalf("info.Nodes = %d, table has %d", info.Nodes, src.Nodes())
	}
}

// TestSnapshotRejectsCorruption flips one payload byte and expects
// the checksum to catch it.
func TestSnapshotRejectsCorruption(t *testing.T) {
	src := builtTable(t, Default())
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x40
	if _, err := ReadSnapshotInfo(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt snapshot accepted: %v", err)
	}
}

// TestSnapshotRejectsWrongIdentity checks that a snapshot built for a
// different device (or different table options) cannot be published
// into this table.
func TestSnapshotRejectsWrongIdentity(t *testing.T) {
	src := builtTable(t, Default())
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	hot := Default()
	hot.T = 400
	m, err := New(hot)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableTable(smallTableOptions()).ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot for a 300 K device loaded into a 400 K table")
	}

	m2, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	opt := smallTableOptions()
	opt.RelTol = 1e-5
	if err := m2.EnableTable(opt).ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot with different RelTol accepted")
	}
}

// TestSnapshotEdgeCases covers the remaining refusals: writing an
// unbuilt table, loading over a built one, truncation, bad magic.
func TestSnapshotEdgeCases(t *testing.T) {
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	empty := m.EnableTable(smallTableOptions())
	if err := empty.WriteSnapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("unbuilt table serialized")
	}

	src := builtTable(t, Default())
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := src.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot loaded over an already-built table")
	}
	if _, err := ReadSnapshotInfo(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	bad := append([]byte("NOTATBLE"), buf.Bytes()[8:]...)
	if _, err := ReadSnapshotInfo(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}
