package fettoy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Charge-table snapshots: a versioned binary serialization of one
// built adaptive grid, so a replica can warm-start from disk instead
// of re-tabulating the state-density integral on cold start (the
// internal/core/serialize.go JSON export of fitted models is the
// precedent; this format is binary because the payload is three
// float64 arrays, not a handful of coefficients).
//
// Layout, all little-endian:
//
//	offset  size  field
//	0       8     magic "CNTTABv1"
//	8       ...   snapshotHeader (fixed-size struct, binary.Write)
//	...     8*n   u nodes (float64 × Nodes)
//	...     8*n   N values
//	...     8*n   N' values
//	...     4     CRC-32 (IEEE) of everything above
//
// The header pins the full identity of the table — every Device
// parameter and every TableOption — and ReadSnapshot refuses a
// snapshot whose identity differs from the receiving table's, so a
// stale file can degrade a replica to a rebuild but never to wrong
// physics. The version lives in the magic: an incompatible layout
// gets a new magic, and old readers reject it outright.

// snapshotMagic identifies format version 1.
const snapshotMagic = "CNTTABv1"

// snapshotHeader is the fixed-size identity-and-shape block. All
// fields are exported for encoding/binary; the struct itself stays
// private to the package.
type snapshotHeader struct {
	// Device identity.
	Diameter     float64
	Tox          float64
	Kappa        float64
	Geometry     int32
	EF           float64
	T            float64
	AlphaG       float64
	AlphaD       float64
	Subbands     int32
	Transmission float64
	// Table options (post-defaulting, as the table runs with them).
	UMin          float64
	UMax          float64
	RelTol        float64
	InitIntervals int32
	MaxNodes      int32
	// Grid shape.
	Scale float64
	Nodes uint32
}

func headerOf(dev Device, opt TableOptions) snapshotHeader {
	return snapshotHeader{
		Diameter:     dev.Diameter,
		Tox:          dev.Tox,
		Kappa:        dev.Kappa,
		Geometry:     int32(dev.Geometry),
		EF:           dev.EF,
		T:            dev.T,
		AlphaG:       dev.AlphaG,
		AlphaD:       dev.AlphaD,
		Subbands:     int32(dev.Subbands),
		Transmission: dev.Transmission,

		UMin:          opt.UMin,
		UMax:          opt.UMax,
		RelTol:        opt.RelTol,
		InitIntervals: int32(opt.InitIntervals),
		MaxNodes:      int32(opt.MaxNodes),
	}
}

// identity is the comparable (device, options) part of a header —
// Scale and Nodes describe the payload, not the key.
func (h snapshotHeader) identity() snapshotHeader {
	h.Scale, h.Nodes = 0, 0
	return h
}

// SnapshotInfo summarises a snapshot file without needing a matching
// table: the device and options it was built for and the grid size.
// cntexport prints it; the server logs it on warm start.
type SnapshotInfo struct {
	Device  Device
	Options TableOptions
	Nodes   int
	Scale   float64
}

func (h snapshotHeader) info() SnapshotInfo {
	return SnapshotInfo{
		Device: Device{
			Diameter:     h.Diameter,
			Tox:          h.Tox,
			Kappa:        h.Kappa,
			Geometry:     GateGeometry(h.Geometry),
			EF:           h.EF,
			T:            h.T,
			AlphaG:       h.AlphaG,
			AlphaD:       h.AlphaD,
			Subbands:     int(h.Subbands),
			Transmission: h.Transmission,
		},
		Options: TableOptions{
			UMin:          h.UMin,
			UMax:          h.UMax,
			RelTol:        h.RelTol,
			InitIntervals: int(h.InitIntervals),
			MaxNodes:      int(h.MaxNodes),
		},
		Nodes: int(h.Nodes),
		Scale: h.Scale,
	}
}

// WriteSnapshot serializes the built grid to w. The table must have
// been built (or loaded) first: snapshotting is an explicit export
// step, and implicitly paying a multi-millisecond tabulation inside a
// serializer would hide the cost the snapshot exists to avoid.
func (t *ChargeTable) WriteSnapshot(w io.Writer) error {
	d := t.data.Load()
	if d == nil {
		return fmt.Errorf("fettoy: snapshot: table not built")
	}
	crc := crc32.NewIEEE()
	tw := io.MultiWriter(w, crc)
	if _, err := io.WriteString(tw, snapshotMagic); err != nil {
		return fmt.Errorf("fettoy: snapshot: %w", err)
	}
	h := headerOf(t.m.dev, t.opt)
	h.Scale = d.scale
	h.Nodes = uint32(len(d.u))
	for _, v := range []any{h, d.u, d.n, d.np} {
		if err := binary.Write(tw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("fettoy: snapshot: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("fettoy: snapshot: %w", err)
	}
	metrics.snapshotSaves.Inc()
	return nil
}

// readSnapshot parses and checksums one snapshot stream.
func readSnapshot(r io.Reader) (snapshotHeader, *tableData, error) {
	var h snapshotHeader
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(tr, magic); err != nil {
		return h, nil, fmt.Errorf("fettoy: snapshot: %w", err)
	}
	if string(magic) != snapshotMagic {
		return h, nil, fmt.Errorf("fettoy: snapshot: bad magic %q (want %q)", magic, snapshotMagic)
	}
	if err := binary.Read(tr, binary.LittleEndian, &h); err != nil {
		return h, nil, fmt.Errorf("fettoy: snapshot: header: %w", err)
	}
	// An absurd node count means a truncated or corrupt header; fail
	// before allocating gigabytes on its say-so.
	if h.Nodes == 0 || h.Nodes > 1<<24 {
		return h, nil, fmt.Errorf("fettoy: snapshot: implausible node count %d", h.Nodes)
	}
	d := &tableData{
		u:     make([]float64, h.Nodes),
		n:     make([]float64, h.Nodes),
		np:    make([]float64, h.Nodes),
		scale: h.Scale,
	}
	for _, arr := range [][]float64{d.u, d.n, d.np} {
		if err := binary.Read(tr, binary.LittleEndian, arr); err != nil {
			return h, nil, fmt.Errorf("fettoy: snapshot: grid: %w", err)
		}
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return h, nil, fmt.Errorf("fettoy: snapshot: checksum: %w", err)
	}
	if got != want {
		return h, nil, fmt.Errorf("fettoy: snapshot: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	for i := 0; i < int(h.Nodes); i++ {
		if i > 0 && !(d.u[i] > d.u[i-1]) {
			return h, nil, fmt.Errorf("fettoy: snapshot: u grid not increasing at node %d", i)
		}
		if math.IsNaN(d.n[i]) || math.IsNaN(d.np[i]) {
			return h, nil, fmt.Errorf("fettoy: snapshot: NaN at node %d", i)
		}
	}
	return h, d, nil
}

// ReadSnapshotInfo parses a snapshot's header (and verifies the whole
// stream's checksum) without publishing it anywhere.
func ReadSnapshotInfo(r io.Reader) (SnapshotInfo, error) {
	h, _, err := readSnapshot(r)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return h.info(), nil
}

// ReadSnapshot publishes a deserialized grid into the table, skipping
// the adaptive build entirely — fettoy.table.builds does not move, so
// a warm-started replica is observably distinct from one that
// re-tabulated (fettoy.table.snapshot_loads moves instead). The
// snapshot must carry exactly this table's device parameters and
// options; any mismatch is an error and leaves the table unchanged,
// ready for an ordinary build.
func (t *ChargeTable) ReadSnapshot(r io.Reader) error {
	h, d, err := readSnapshot(r)
	if err != nil {
		return err
	}
	want := headerOf(t.m.dev, t.opt)
	if h.identity() != want.identity() { //lint:allow floatcmp snapshot identity must match the table bit-exactly; close-but-different parameters are different physics
		return fmt.Errorf("fettoy: snapshot: identity mismatch: file %+v vs table %+v", h.identity(), want.identity())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.data.Load() != nil {
		return fmt.Errorf("fettoy: snapshot: table already built")
	}
	t.data.Store(d)
	metrics.snapshotLoads.Inc()
	return nil
}
