package fettoy

import (
	"math"
	"testing"

	"cntfet/internal/bandstruct"
	"cntfet/internal/units"
)

func newDefault(t *testing.T) *Model {
	t.Helper()
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeviceValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Device{}
	for _, mut := range []func(*Device){
		func(d *Device) { d.Diameter = 0 },
		func(d *Device) { d.Tox = -1 },
		func(d *Device) { d.Kappa = 0 },
		func(d *Device) { d.T = 0 },
		func(d *Device) { d.AlphaG = 0 },
		func(d *Device) { d.AlphaG = 1.2 },
		func(d *Device) { d.AlphaD = -0.1 },
		func(d *Device) { d.AlphaG, d.AlphaD = 0.9, 0.2 },
		func(d *Device) { d.Subbands = 0 },
		func(d *Device) { d.Geometry = GateGeometry(9) },
	} {
		d := Default()
		mut(&d)
		bad = append(bad, d)
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, d)
		}
		if _, err := New(d); err == nil {
			t.Errorf("New accepted mutation %d", i)
		}
	}
}

func TestDeviceCapacitanceSplit(t *testing.T) {
	d := Default()
	cg, cs, cd, ct := d.CG(), d.CS(), d.CD(), d.CSigma()
	if !units.CloseRel(cg+cs+cd, ct, 1e-12) {
		t.Fatalf("capacitances do not sum: %g+%g+%g != %g", cg, cs, cd, ct)
	}
	if !units.CloseRel(cg/ct, d.AlphaG, 1e-12) || !units.CloseRel(cd/ct, d.AlphaD, 1e-12) {
		t.Fatal("alpha ratios broken")
	}
	// FETToy's nominal high-k thin coaxial oxide (1.5 nm ZrO2): CG is
	// order 1e-9 F/m.
	if cg < 3e-10 || cg > 3e-9 {
		t.Fatalf("CG = %g F/m, implausible", cg)
	}
}

func TestDeviceBandsRelativeToFirstEdge(t *testing.T) {
	d := Default()
	d.Subbands = 3
	b := d.Bands()
	if b[0].EMin != 0 {
		t.Fatalf("first subband offset = %g, want 0", b[0].EMin)
	}
	if !(b[1].EMin > 0 && b[2].EMin > b[1].EMin) {
		t.Fatalf("ladder not ascending: %+v", b)
	}
}

func TestGeometryString(t *testing.T) {
	if Coaxial.String() != "coaxial" || Planar.String() != "planar" {
		t.Fatal("geometry names")
	}
	if GateGeometry(7).String() == "" {
		t.Fatal("unknown geometry should still render")
	}
}

func TestNDeepBelowBandIsTiny(t *testing.T) {
	m := newDefault(t)
	n := m.N(-1.0) // Fermi level 1 eV below the edge
	if n < 0 || n > 1 {
		t.Fatalf("N(-1eV) = %g states/m, want ~0", n)
	}
}

func TestNMonotoneIncreasing(t *testing.T) {
	m := newDefault(t)
	prev := -1.0
	for _, u := range []float64{-0.5, -0.3, -0.1, 0, 0.1, 0.3, 0.5} {
		n := m.N(u)
		if n <= prev {
			t.Fatalf("N not increasing at U=%g: %g <= %g", u, n, prev)
		}
		prev = n
	}
}

func TestNDegenerateLimitMatchesStatesBelow(t *testing.T) {
	// At low temperature the Fermi function is a step, so
	// N(U) → StatesBelow(U+E1) exactly (first subband only).
	d := Default()
	d.T = 30 // low T sharpens the step
	m, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	u := 0.5
	got := m.N(u)
	want := bandstruct.StatesBelow(u+d.E1(), bandstruct.Ladder(d.Diameter, 1))
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("degenerate N = %g, zero-T closed form %g", got, want)
	}
}

func TestNPrimeMatchesFiniteDifference(t *testing.T) {
	m := newDefault(t)
	h := 1e-5
	for _, u := range []float64{-0.2, -0.05, 0.05, 0.2, 0.4} {
		fd := (m.N(u+h) - m.N(u-h)) / (2 * h)
		an := m.NPrime(u)
		if math.Abs(fd-an) > 2e-3*math.Abs(an)+1 {
			t.Fatalf("NPrime(%g) = %g, fd %g", u, an, fd)
		}
	}
}

func TestQSDecreasesWithVSCAndVanishes(t *testing.T) {
	m := newDefault(t)
	prev := math.Inf(1)
	for _, v := range []float64{-0.5, -0.3, -0.1, 0, 0.1} {
		q := m.QS(v)
		if q > prev+1e-18 {
			t.Fatalf("QS not decreasing at VSC=%g", v)
		}
		prev = q
	}
	// Far above EF/q the source charge approaches -q·N0/2 (the
	// filled-state term dies, leaving the equilibrium offset).
	limit := -units.Q * m.N0() / 2
	if got := m.QS(1.0); math.Abs(got-limit) > 1e-3*math.Abs(limit)+1e-18 {
		t.Fatalf("QS(+1V) = %g, want %g", got, limit)
	}
}

func TestQSMagnitudeMatchesPaperAxis(t *testing.T) {
	// Figures 2-5: QS ~ 1e-11..1e-10 C/m for VSC in [-0.5, 0] at the
	// paper's EF = -0.32 eV.
	m := newDefault(t)
	q := m.QS(-0.5)
	if q < 1e-11 || q > 5e-10 {
		t.Fatalf("QS(-0.5) = %g C/m, outside the paper's axis scale", q)
	}
}

func TestSolveVSCResidualIsZero(t *testing.T) {
	m := newDefault(t)
	for _, b := range []Bias{
		{VG: 0.3, VD: 0.1}, {VG: 0.6, VD: 0.6}, {VG: 0.1, VD: 0.4}, {VG: 0.45, VD: 0.25},
	} {
		vsc, st, err := m.SolveVSC(b)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		alphaS := 1 - m.dev.AlphaG - m.dev.AlphaD
		ul := m.dev.AlphaG*b.VG + m.dev.AlphaD*b.VD + alphaS*b.VS
		res := vsc + ul - units.Q/m.csigma*(m.NS(vsc)+m.ND(vsc, b.VD-b.VS)-m.n0)
		if math.Abs(res) > 1e-9 {
			t.Fatalf("%+v: residual %g after %d iters", b, res, st.Iterations)
		}
	}
}

func TestSolveVSCChargeFeedbackRaisesVSC(t *testing.T) {
	// With charge, VSC must sit above the zero-charge value -UL
	// (negative feedback pushes the band back up).
	m := newDefault(t)
	b := Bias{VG: 0.6, VD: 0.3}
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	ul := m.dev.AlphaG*b.VG + m.dev.AlphaD*b.VD
	if !(vsc > -ul && vsc < 0) {
		t.Fatalf("VSC = %g, want in (-%g, 0)", vsc, ul)
	}
}

func TestIDSZeroAtZeroVDS(t *testing.T) {
	m := newDefault(t)
	i, err := m.IDS(Bias{VG: 0.5, VD: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i) > 1e-15 {
		t.Fatalf("IDS(VDS=0) = %g", i)
	}
}

func TestIDSMicroampScaleAtPaperBias(t *testing.T) {
	// Figure 6: IDS(VG=0.6, VDS=0.6) ≈ 8.5e-6 A. Device parameters are
	// not identical to the paper's (they are unpublished), so accept
	// the right order of magnitude.
	m := newDefault(t)
	i, err := m.IDS(Bias{VG: 0.6, VD: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if i < 1e-6 || i > 5e-5 {
		t.Fatalf("IDS = %g A, want microamp scale", i)
	}
}

func TestIDSMonotoneInVG(t *testing.T) {
	m := newDefault(t)
	prev := -1.0
	for _, vg := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		i, err := m.IDS(Bias{VG: vg, VD: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if i <= prev {
			t.Fatalf("IDS not increasing at VG=%g: %g <= %g", vg, i, prev)
		}
		prev = i
	}
}

func TestIDSSaturatesInVDS(t *testing.T) {
	m := newDefault(t)
	var last, secondLast float64
	for _, vd := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		i, err := m.IDS(Bias{VG: 0.5, VD: vd})
		if err != nil {
			t.Fatal(err)
		}
		if i < last {
			t.Fatalf("IDS decreasing with VDS at %g", vd)
		}
		secondLast, last = last, i
	}
	// Saturation: the last increment is a small fraction of the level.
	if (last-secondLast)/last > 0.10 {
		t.Fatalf("no saturation: last step %g of %g", last-secondLast, last)
	}
}

func TestSolveReturnsConsistentOperatingPoint(t *testing.T) {
	m := newDefault(t)
	b := Bias{VG: 0.5, VD: 0.4}
	op, err := m.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := m.IDS(b)
	if err != nil {
		t.Fatal(err)
	}
	if !units.CloseRel(op.IDS, ids, 1e-9) {
		t.Fatalf("Solve IDS %g vs IDS %g", op.IDS, ids)
	}
	if op.QS < op.QD {
		t.Fatalf("source charge %g below drain charge %g at positive VDS", op.QS, op.QD)
	}
	if op.Stats.Iterations == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestCountersAccumulate(t *testing.T) {
	m := newDefault(t)
	i0, n0 := m.Counters()
	if _, err := m.IDS(Bias{VG: 0.4, VD: 0.2}); err != nil {
		t.Fatal(err)
	}
	i1, n1 := m.Counters()
	if i1 <= i0 || n1 <= n0 {
		t.Fatalf("counters did not advance: %d->%d, %d->%d", i0, i1, n0, n1)
	}
}

func TestMultiSubbandAddsCurrent(t *testing.T) {
	d1 := Default()
	m1, _ := New(d1)
	d3 := Default()
	d3.Subbands = 3
	m3, err := New(d3)
	if err != nil {
		t.Fatal(err)
	}
	b := Bias{VG: 0.6, VD: 0.6}
	// At a fixed VSC the extra subbands can only add current. (The
	// self-consistent totals may differ either way, because the extra
	// charge also pushes VSC up.)
	vsc := -0.3
	if i3, i1 := m3.CurrentAtVSC(vsc, b), m1.CurrentAtVSC(vsc, b); i3 < i1 {
		t.Fatalf("3-subband current %g below 1-subband %g at fixed VSC", i3, i1)
	}
	// And the extra subbands add mobile charge at fixed VSC.
	if q3, q1 := m3.QS(vsc), m1.QS(vsc); q3 < q1 {
		t.Fatalf("3-subband charge %g below 1-subband %g", q3, q1)
	}
	// The self-consistent solve still works.
	if _, err := m3.IDS(b); err != nil {
		t.Fatal(err)
	}
}

func TestJaveyDeviceSolves(t *testing.T) {
	m, err := New(Javey())
	if err != nil {
		t.Fatal(err)
	}
	i, err := m.IDS(Bias{VG: 0.6, VD: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 10 peaks near 1e-5 A at VG=0.6, VDS=0.4.
	if i < 1e-7 || i > 1e-4 {
		t.Fatalf("Javey IDS = %g A", i)
	}
}

func TestConductancesMatchFiniteDifferences(t *testing.T) {
	m := newDefault(t)
	h := 1e-6
	for _, b := range []Bias{
		{VG: 0.3, VD: 0.2}, {VG: 0.5, VD: 0.05}, {VG: 0.6, VD: 0.5}, {VG: 0.15, VD: 0.4},
	} {
		ids, gm, gds, err := m.Conductances(b)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		direct, err := m.IDS(b)
		if err != nil {
			t.Fatal(err)
		}
		if !units.CloseRel(ids, direct, 1e-9) {
			t.Fatalf("%+v: Conductances IDS %g vs IDS %g", b, ids, direct)
		}
		iGp, _ := m.IDS(Bias{VG: b.VG + h, VD: b.VD})
		iGm, _ := m.IDS(Bias{VG: b.VG - h, VD: b.VD})
		iDp, _ := m.IDS(Bias{VG: b.VG, VD: b.VD + h})
		iDm, _ := m.IDS(Bias{VG: b.VG, VD: b.VD - h})
		fdGm := (iGp - iGm) / (2 * h)
		fdGds := (iDp - iDm) / (2 * h)
		if math.Abs(gm-fdGm) > 2e-3*math.Abs(fdGm)+1e-12 {
			t.Fatalf("%+v: gm analytic %g vs fd %g", b, gm, fdGm)
		}
		if math.Abs(gds-fdGds) > 2e-3*math.Abs(fdGds)+1e-12 {
			t.Fatalf("%+v: gds analytic %g vs fd %g", b, gds, fdGds)
		}
	}
}

func TestConductancesSigns(t *testing.T) {
	m := newDefault(t)
	_, gm, gds, err := m.Conductances(Bias{VG: 0.5, VD: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if gm <= 0 {
		t.Fatalf("gm = %g, want positive for an n-type device", gm)
	}
	if gds <= 0 {
		t.Fatalf("gds = %g, want positive", gds)
	}
}

func TestCurrentSpectrumIntegratesToIDS(t *testing.T) {
	// ∫ dI/dε dε must equal the closed-form F0 current: the spectrum
	// is the Landauer integrand of eq. 12.
	m := newDefault(t)
	b := Bias{VG: 0.55, VD: 0.4}
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	want := m.CurrentAtVSC(vsc, b)
	// Trapezoid over a grid wide enough for the tails.
	n := 4000
	upper := 1.5
	h := upper / float64(n)
	sum := 0.5 * (m.CurrentSpectrum(vsc, b, 0) + m.CurrentSpectrum(vsc, b, upper))
	for i := 1; i < n; i++ {
		sum += m.CurrentSpectrum(vsc, b, float64(i)*h)
	}
	got := sum * h
	if math.Abs(got-want)/want > 1e-4 {
		t.Fatalf("∫spectrum = %g, IDS = %g", got, want)
	}
}

func TestCurrentSpectrumWindowShape(t *testing.T) {
	// The spectrum must be non-negative for positive VDS and peak
	// between the drain and source Fermi levels.
	m := newDefault(t)
	b := Bias{VG: 0.6, VD: 0.3}
	vsc, _, err := m.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	usf := m.Device().EF - vsc
	peak, peakEps := 0.0, 0.0
	for e := 0.0; e < 1.0; e += 0.002 {
		s := m.CurrentSpectrum(vsc, b, e)
		if s < -1e-20 {
			t.Fatalf("negative spectrum %g at ε=%g", s, e)
		}
		if s > peak {
			peak, peakEps = s, e
		}
	}
	if peak == 0 {
		t.Fatal("empty spectrum")
	}
	// For an on-state bias the window is [UDF, USF]; the peak must sit
	// below USF + a few kT.
	if peakEps > usf+5*m.Device().KT() {
		t.Fatalf("spectrum peak at %g eV, above the source window edge %g", peakEps, usf)
	}
}

func TestSpectrumSeries(t *testing.T) {
	m := newDefault(t)
	eps, s, err := m.SpectrumSeries(Bias{VG: 0.5, VD: 0.3}, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != len(s) || len(eps) != 200 {
		t.Fatalf("series lengths %d/%d", len(eps), len(s))
	}
}

func TestTransmissionScalesCurrent(t *testing.T) {
	// The simplest non-ballistic correction (the paper's future work):
	// the Landauer current scales by T while the charge balance — and
	// therefore VSC — is untouched.
	dBal := Default()
	dScat := Default()
	dScat.Transmission = 0.5
	mb, err := New(dBal)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := New(dScat)
	if err != nil {
		t.Fatal(err)
	}
	b := Bias{VG: 0.5, VD: 0.4}
	vb, _, err := mb.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	vs, _, err := ms.SolveVSC(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vb-vs) > 1e-9 {
		t.Fatalf("VSC changed with transmission: %g vs %g", vb, vs)
	}
	ib, _ := mb.IDS(b)
	is, _ := ms.IDS(b)
	if math.Abs(is-0.5*ib) > 1e-9*ib {
		t.Fatalf("T=0.5 current %g, want half of %g", is, ib)
	}
	// Conductances scale identically.
	_, gmB, gdsB, err := mb.Conductances(b)
	if err != nil {
		t.Fatal(err)
	}
	_, gmS, gdsS, err := ms.Conductances(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gmS-0.5*gmB) > 1e-6*gmB || math.Abs(gdsS-0.5*gdsB) > 1e-6*math.Abs(gdsB) {
		t.Fatalf("conductances not scaled: gm %g/%g gds %g/%g", gmS, gmB, gdsS, gdsB)
	}
}

func TestTransmissionValidation(t *testing.T) {
	d := Default()
	d.Transmission = -0.1
	if err := d.Validate(); err == nil {
		t.Fatal("negative transmission accepted")
	}
	d.Transmission = 1.5
	if err := d.Validate(); err == nil {
		t.Fatal("transmission above 1 accepted")
	}
	d.Transmission = 0 // zero value = ballistic
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.TransmissionOrBallistic() != 1 {
		t.Fatal("zero value should resolve to ballistic")
	}
}
