// Package fettoy is a from-scratch Go implementation of the theoretical
// ballistic CNT transistor model of Rahman, Guo, Datta and Lundstrom
// ("Theory of ballistic nanotransistors", IEEE TED 2003), the theory the
// FETToy reference script implements and the paper benchmarks against.
//
// It is deliberately the *slow, exact* path: source/drain state
// densities come from numerical integration of the nanotube density of
// states against the Fermi distribution, and the self-consistent
// voltage equation is solved by safeguarded Newton–Raphson, evaluating
// those integrals at every iteration. The piecewise model in
// internal/core exists to replace exactly this cost.
//
// Unit conventions: terminal voltages in volts, energies in eV,
// temperatures in kelvin, charge densities in C/m of tube, capacitances
// in F/m, currents in amperes.
package fettoy

import (
	"errors"
	"fmt"

	"cntfet/internal/bandstruct"
	"cntfet/internal/units"
)

// GateGeometry selects the electrostatic model for the insulator
// capacitance.
type GateGeometry int

const (
	// Coaxial is a wrap-around gate (FETToy's geometry).
	Coaxial GateGeometry = iota
	// Planar is a tube over a conducting plane (back-gated devices,
	// e.g. the Javey 2005 experimental transistor).
	Planar
)

func (g GateGeometry) String() string {
	switch g {
	case Coaxial:
		return "coaxial"
	case Planar:
		return "planar"
	default:
		return fmt.Sprintf("GateGeometry(%d)", int(g))
	}
}

// Device collects the physical parameters of one ballistic CNT FET.
type Device struct {
	// Diameter is the tube diameter in metres.
	Diameter float64
	// Tox is the gate insulator thickness in metres.
	Tox float64
	// Kappa is the insulator relative permittivity.
	Kappa float64
	// Geometry selects the gate electrostatics.
	Geometry GateGeometry
	// EF is the source Fermi level in eV measured from the first
	// conduction subband edge (negative below the band).
	EF float64
	// T is the lattice temperature in kelvin.
	T float64
	// AlphaG and AlphaD are the gate and drain control parameters
	// CG/CΣ and CD/CΣ (FETToy's alphag, alphad).
	AlphaG, AlphaD float64
	// Subbands is how many conduction subbands participate in charge
	// and current; the paper (like most compact models) uses 1.
	Subbands int
	// Transmission is the channel transmission coefficient in (0, 1]:
	// the simplest non-ballistic correction (Lundstrom backscattering,
	// T = λ/(λ+ℓ)), scaling the Landauer current while leaving the
	// top-of-barrier charge balance untouched. The paper's models are
	// ballistic (T = 1) and name this extension as future work; the
	// zero value means 1.
	Transmission float64
}

// TransmissionOrBallistic resolves the transmission coefficient,
// mapping the zero value to ballistic transport.
func (d Device) TransmissionOrBallistic() float64 {
	if d.Transmission == 0 { //lint:allow floatcmp zero value maps to ballistic transport
		return 1
	}
	return d.Transmission
}

// Default returns the device used throughout the paper's figures 2-9:
// FETToy's nominal ballistic CNFET (Rahman et al. 2003) — a 1 nm tube
// under a coaxial 1.5 nm ZrO2 gate (κ = 25) — with the paper's
// EF = -0.32 eV at T = 300 K. The strong gate makes CΣ large relative
// to the quantum capacitance, which is what lets even the three-piece
// charge approximation track the theory at percent level.
func Default() Device {
	return Device{
		Diameter: 1e-9,
		Tox:      1.5e-9,
		Kappa:    25,
		Geometry: Coaxial,
		EF:       -0.32,
		T:        units.Room,
		AlphaG:   0.88,
		AlphaD:   0.035,
		Subbands: 1,
	}
}

// Javey returns the experimental device of section VI (Javey et al.,
// Nano Letters 2005): K-doped n-type tube, back gate, d = 1.6 nm,
// tox = 50 nm, EF = -0.05 eV, measured at 300 K.
func Javey() Device {
	d := Default()
	d.Diameter = 1.6e-9
	d.Tox = 50e-9
	d.Kappa = 3.9 // SiO2 back-gate, not the nominal device's ZrO2
	d.Geometry = Planar
	d.EF = -0.05
	return d
}

// Validate reports the first problem with the parameter set, or nil.
func (d Device) Validate() error {
	switch {
	case d.Diameter <= 0:
		return errors.New("fettoy: diameter must be positive")
	case d.Tox <= 0:
		return errors.New("fettoy: oxide thickness must be positive")
	case d.Kappa <= 0:
		return errors.New("fettoy: dielectric constant must be positive")
	case d.T <= 0:
		return errors.New("fettoy: temperature must be positive")
	case d.AlphaG <= 0 || d.AlphaG > 1:
		return fmt.Errorf("fettoy: alphaG = %g outside (0,1]", d.AlphaG)
	case d.AlphaD < 0 || d.AlphaD >= 1:
		return fmt.Errorf("fettoy: alphaD = %g outside [0,1)", d.AlphaD)
	case d.AlphaG+d.AlphaD > 1:
		return fmt.Errorf("fettoy: alphaG+alphaD = %g exceeds 1", d.AlphaG+d.AlphaD)
	case d.Subbands < 1:
		return errors.New("fettoy: at least one subband required")
	case d.Transmission < 0 || d.Transmission > 1:
		return fmt.Errorf("fettoy: transmission %g outside (0,1]", d.Transmission)
	case d.Geometry != Coaxial && d.Geometry != Planar:
		return fmt.Errorf("fettoy: unknown geometry %d", d.Geometry)
	}
	return nil
}

// CG returns the insulator (gate) capacitance per unit length in F/m.
func (d Device) CG() float64 {
	if d.Geometry == Planar {
		return bandstruct.PlanarGateCapacitance(d.Diameter, d.Tox, d.Kappa)
	}
	return bandstruct.CoaxialGateCapacitance(d.Diameter, d.Tox, d.Kappa)
}

// CSigma returns the total terminal capacitance CΣ = CG/αG in F/m.
func (d Device) CSigma() float64 { return d.CG() / d.AlphaG }

// CD returns the drain capacitance αD·CΣ in F/m.
func (d Device) CD() float64 { return d.AlphaD * d.CSigma() }

// CS returns the source capacitance CΣ-CG-CD in F/m.
func (d Device) CS() float64 { return d.CSigma() - d.CG() - d.CD() }

// KT returns the thermal energy in eV.
func (d Device) KT() float64 { return units.KT(d.T) }

// Bands returns the conduction subband ladder participating in
// transport, with minima in eV measured from the *first* subband edge
// (the first entry is always 0).
func (d Device) Bands() []bandstruct.Subband {
	raw := bandstruct.Ladder(d.Diameter, d.Subbands)
	e1 := raw[0].EMin
	out := make([]bandstruct.Subband, len(raw))
	for i, b := range raw {
		out[i] = bandstruct.Subband{EMin: b.EMin - e1, Degeneracy: b.Degeneracy}
	}
	return out
}

// E1 returns the first subband minimum in eV from mid-gap (half the
// band gap).
func (d Device) E1() float64 { return bandstruct.HalfGap(d.Diameter) }
