package logic

import (
	"fmt"
	"math"
	"testing"

	"cntfet/internal/circuit"
	"cntfet/internal/core"
	"cntfet/internal/fettoy"
)

var sharedModel *core.Model

func model(t *testing.T) *core.Model {
	t.Helper()
	if sharedModel != nil {
		return sharedModel
	}
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	sharedModel = m
	return m
}

func lib(t *testing.T) *Library {
	return &Library{Model: model(t), VDD: 0.6, LoadCap: 2e-15}
}

func TestLibraryValidate(t *testing.T) {
	if err := (&Library{}).Validate(); err == nil {
		t.Fatal("empty library accepted")
	}
	if err := (&Library{Model: model(t), VDD: -1}).Validate(); err == nil {
		t.Fatal("negative VDD accepted")
	}
	if err := (&Library{Model: model(t), VDD: 0.6, LoadCap: -1}).Validate(); err == nil {
		t.Fatal("negative load accepted")
	}
	if err := lib(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInverterVTCMetrics(t *testing.T) {
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	c.MustAdd(&circuit.VSource{Label: "VIN", P: "in", N: circuit.Ground, Wave: circuit.DC(0)})
	if err := l.Inverter(c, "inv", "in", "out"); err != nil {
		t.Fatal(err)
	}
	m, err := MeasureVTC(c, "VIN", "out", l.VDD, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if m.VOH < 0.57 || m.VOL > 0.03 {
		t.Fatalf("rails: VOH=%g VOL=%g", m.VOH, m.VOL)
	}
	// Symmetric complementary pair: VM near VDD/2.
	if math.Abs(m.VM-0.3) > 0.06 {
		t.Fatalf("VM = %g", m.VM)
	}
	if m.Gain < 5 {
		t.Fatalf("gain = %g", m.Gain)
	}
	if m.NML <= 0 || m.NMH <= 0 {
		t.Fatalf("noise margins NML=%g NMH=%g", m.NML, m.NMH)
	}
	if m.NML+m.NMH > l.VDD {
		t.Fatalf("margins exceed the supply: %g + %g", m.NML, m.NMH)
	}
}

func gateTruth(t *testing.T, build func(l *Library, c *circuit.Circuit) error, va, vb float64) float64 {
	t.Helper()
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	c.MustAdd(&circuit.VSource{Label: "VA", P: "a", N: circuit.Ground, Wave: circuit.DC(va)})
	c.MustAdd(&circuit.VSource{Label: "VB", P: "b", N: circuit.Ground, Wave: circuit.DC(vb)})
	if err := build(l, c); err != nil {
		t.Fatal(err)
	}
	sol, err := c.OperatingPoint(circuit.DCOptions{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Voltage("out")
}

func TestNAND2TruthTable(t *testing.T) {
	build := func(l *Library, c *circuit.Circuit) error { return l.NAND2(c, "g", "a", "b", "out") }
	cases := []struct {
		a, b float64
		high bool
	}{
		{0, 0, true}, {0, 0.6, true}, {0.6, 0, true}, {0.6, 0.6, false},
	}
	for _, tc := range cases {
		out := gateTruth(t, build, tc.a, tc.b)
		if tc.high && out < 0.5 || !tc.high && out > 0.1 {
			t.Fatalf("NAND(%g,%g) = %g", tc.a, tc.b, out)
		}
	}
}

func TestNOR2TruthTable(t *testing.T) {
	build := func(l *Library, c *circuit.Circuit) error { return l.NOR2(c, "g", "a", "b", "out") }
	cases := []struct {
		a, b float64
		high bool
	}{
		{0, 0, true}, {0, 0.6, false}, {0.6, 0, false}, {0.6, 0.6, false},
	}
	for _, tc := range cases {
		out := gateTruth(t, build, tc.a, tc.b)
		if tc.high && out < 0.5 || !tc.high && out > 0.1 {
			t.Fatalf("NOR(%g,%g) = %g", tc.a, tc.b, out)
		}
	}
}

func TestChainDelayAccumulates(t *testing.T) {
	// A 4-stage chain: the signal at the final output lags the first
	// stage output; per-stage delay is positive and finite.
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	c.MustAdd(&circuit.VSource{Label: "VIN", P: "in", N: circuit.Ground,
		Wave: circuit.Pulse{V1: 0, V2: 0.6, Delay: 0, Rise: 10e-12, Width: 3e-9, Fall: 10e-12, Period: 1}})
	outs, err := l.Chain(c, "ch", "in", 4)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := c.Transient(circuit.TranOptions{Step: 5e-12, Stop: 2.5e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Even stage count: output follows input polarity.
	tpHL1, _ := PropagationDelay(sols, "in", outs[0], l.VDD)
	tp4 := delayToRise(t, sols, "in", outs[3], l.VDD)
	if tpHL1 <= 0 {
		t.Fatalf("first-stage delay %g", tpHL1)
	}
	if tp4 < 2.5*tpHL1 {
		t.Fatalf("4-stage delay %g not accumulating over stage delay %g", tp4, tpHL1)
	}
}

// delayToRise measures input-rise to output-rise (for even chains).
func delayToRise(t *testing.T, sols []*circuit.Solution, in, out string, vdd float64) float64 {
	t.Helper()
	ts := make([]float64, len(sols))
	vi := make([]float64, len(sols))
	vo := make([]float64, len(sols))
	for i, s := range sols {
		ts[i] = s.Time
		vi[i] = s.Voltage(in)
		vo[i] = s.Voltage(out)
	}
	tin := crossing(ts, vi, vdd/2, true)
	tout := crossing(ts, vo, vdd/2, true)
	return tout - tin
}

func TestChainValidation(t *testing.T) {
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Chain(c, "ch", "in", 0); err == nil {
		t.Fatal("zero-stage chain accepted")
	}
}

func TestRingOscillatorFrequencyScalesWithStages(t *testing.T) {
	run := func(stages int) float64 {
		l := lib(t)
		c := circuit.New()
		if err := l.Supply(c, "VDD"); err != nil {
			t.Fatal(err)
		}
		nodes, err := l.RingOscillator(c, "ring", stages)
		if err != nil {
			t.Fatal(err)
		}
		sols, err := c.Transient(circuit.TranOptions{Step: 5e-12, Stop: 6e-9, DC: circuit.DCOptions{MaxIter: 300}})
		if err != nil {
			t.Fatal(err)
		}
		f, err := OscillationFrequency(sols, nodes[0], l.VDD, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f3 := run(3)
	f5 := run(5)
	if f3 <= 0 || f5 <= 0 {
		t.Fatalf("frequencies %g %g", f3, f5)
	}
	// f = 1/(2·N·tp): the 5-stage ring must be slower, roughly by 3/5.
	ratio := f5 / f3
	if ratio > 0.85 || ratio < 0.35 {
		t.Fatalf("f5/f3 = %g, want near 0.6", ratio)
	}
}

func TestRingOscillatorValidation(t *testing.T) {
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RingOscillator(c, "r", 4); err == nil {
		t.Fatal("even ring accepted")
	}
	if _, err := l.RingOscillator(c, "r", 1); err == nil {
		t.Fatal("single-stage ring accepted")
	}
}

func TestOscillationFrequencyNeedsCrossings(t *testing.T) {
	// A DC circuit never crosses: the estimator must say so.
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	c.MustAdd(&circuit.VSource{Label: "VIN", P: "in", N: circuit.Ground, Wave: circuit.DC(0)})
	if err := l.Inverter(c, "inv", "in", "out"); err != nil {
		t.Fatal(err)
	}
	sols, err := c.Transient(circuit.TranOptions{Step: 1e-11, Stop: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OscillationFrequency(sols, "out", l.VDD, 0); err == nil {
		t.Fatal("static node reported as oscillating")
	}
}

func TestSwitchingEnergyScale(t *testing.T) {
	// One full output transition pair of an inverter with load C at
	// supply V draws roughly C·VDD² from the rail (plus short-circuit
	// and device charging overhead): check the order of magnitude.
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	c.MustAdd(&circuit.VSource{Label: "VIN", P: "in", N: circuit.Ground,
		Wave: circuit.Pulse{V1: 0, V2: 0.6, Delay: 0.2e-9, Rise: 10e-12, Width: 1.5e-9, Fall: 10e-12, Period: 1}})
	if err := l.Inverter(c, "inv", "in", "out"); err != nil {
		t.Fatal(err)
	}
	sols, err := c.Transient(circuit.TranOptions{Step: 5e-12, Stop: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	e := SwitchingEnergy(sols, "VDD", l.VDD)
	cv2 := l.LoadCap * l.VDD * l.VDD
	if e < 0.5*cv2 || e > 20*cv2 {
		t.Fatalf("switching energy %g J vs CV² %g J", e, cv2)
	}
	if SwitchingEnergy(nil, "VDD", 0.6) != 0 {
		t.Fatal("degenerate input")
	}
}

func TestXOR2TruthTable(t *testing.T) {
	build := func(l *Library, c *circuit.Circuit) error { return l.XOR2(c, "g", "a", "b", "out") }
	cases := []struct {
		a, b float64
		high bool
	}{
		{0, 0, false}, {0, 0.6, true}, {0.6, 0, true}, {0.6, 0.6, false},
	}
	for _, tc := range cases {
		out := gateTruth(t, build, tc.a, tc.b)
		if tc.high && out < 0.5 || !tc.high && out > 0.1 {
			t.Fatalf("XOR(%g,%g) = %g", tc.a, tc.b, out)
		}
	}
}

func TestFullAdderTruthTable(t *testing.T) {
	// 36 transistors per operating point, 8 input combinations: the
	// "complex circuits from large numbers of CNT devices" workload.
	l := lib(t)
	l.LoadCap = 0 // pure DC study
	hi, lo := 0.6, 0.0
	level := func(x bool) float64 {
		if x {
			return hi
		}
		return lo
	}
	for mask := 0; mask < 8; mask++ {
		a, b, cin := mask&1 != 0, mask&2 != 0, mask&4 != 0
		c := circuit.New()
		if err := l.Supply(c, "VDD"); err != nil {
			t.Fatal(err)
		}
		c.MustAdd(&circuit.VSource{Label: "VA", P: "a", N: circuit.Ground, Wave: circuit.DC(level(a))})
		c.MustAdd(&circuit.VSource{Label: "VB", P: "b", N: circuit.Ground, Wave: circuit.DC(level(b))})
		c.MustAdd(&circuit.VSource{Label: "VC", P: "cin", N: circuit.Ground, Wave: circuit.DC(level(cin))})
		if err := l.FullAdder(c, "fa", "a", "b", "cin", "sum", "cout"); err != nil {
			t.Fatal(err)
		}
		sol, err := c.OperatingPoint(circuit.DCOptions{MaxIter: 400})
		if err != nil {
			t.Fatalf("inputs %v%v%v: %v", a, b, cin, err)
		}
		n := 0
		if a {
			n++
		}
		if b {
			n++
		}
		if cin {
			n++
		}
		wantSum := n%2 == 1
		wantCout := n >= 2
		vs, vc := sol.Voltage("sum"), sol.Voltage("cout")
		if wantSum && vs < 0.45 || !wantSum && vs > 0.15 {
			t.Fatalf("inputs %v%v%v: sum = %g, want high=%v", a, b, cin, vs, wantSum)
		}
		if wantCout && vc < 0.45 || !wantCout && vc > 0.15 {
			t.Fatalf("inputs %v%v%v: cout = %g, want high=%v", a, b, cin, vc, wantCout)
		}
	}
}

func TestRippleCarryAdder4Bit(t *testing.T) {
	// A 4-bit adder: 176 transistors per operating point. Check a few
	// arithmetic identities end to end.
	l := lib(t)
	l.LoadCap = 0
	add := func(x, y, carryIn int) (int, int) {
		c := circuit.New()
		if err := l.Supply(c, "VDD"); err != nil {
			t.Fatal(err)
		}
		var aN, bN []string
		for i := 0; i < 4; i++ {
			aN = append(aN, fmt.Sprintf("a%d", i))
			bN = append(bN, fmt.Sprintf("b%d", i))
			va, vb := 0.0, 0.0
			if x>>i&1 == 1 {
				va = l.VDD
			}
			if y>>i&1 == 1 {
				vb = l.VDD
			}
			c.MustAdd(&circuit.VSource{Label: "VA" + aN[i], P: aN[i], N: circuit.Ground, Wave: circuit.DC(va)})
			c.MustAdd(&circuit.VSource{Label: "VB" + bN[i], P: bN[i], N: circuit.Ground, Wave: circuit.DC(vb)})
		}
		vc := 0.0
		if carryIn == 1 {
			vc = l.VDD
		}
		c.MustAdd(&circuit.VSource{Label: "VCIN", P: "cin", N: circuit.Ground, Wave: circuit.DC(vc)})
		sum, cout, err := l.RippleCarryAdder(c, "add", aN, bN, "cin")
		if err != nil {
			t.Fatal(err)
		}
		sol, err := c.OperatingPoint(circuit.DCOptions{MaxIter: 400})
		if err != nil {
			t.Fatalf("%d+%d+%d: %v", x, y, carryIn, err)
		}
		got := 0
		for i, s := range sum {
			if sol.Voltage(s) > 0.3 {
				got |= 1 << i
			}
		}
		co := 0
		if sol.Voltage(cout) > 0.3 {
			co = 1
		}
		return got, co
	}
	cases := []struct{ x, y, cin int }{
		{0, 0, 0}, {5, 3, 0}, {15, 1, 0}, {9, 6, 1}, {15, 15, 1},
	}
	for _, tc := range cases {
		got, co := add(tc.x, tc.y, tc.cin)
		want := tc.x + tc.y + tc.cin
		if got != want&0xF || co != want>>4 {
			t.Fatalf("%d+%d+%d: got %d carry %d, want %d carry %d",
				tc.x, tc.y, tc.cin, got, co, want&0xF, want>>4)
		}
	}
}

func TestRippleCarryAdderValidation(t *testing.T) {
	l := lib(t)
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.RippleCarryAdder(c, "x", []string{"a"}, nil, "cin"); err == nil {
		t.Fatal("mismatched widths accepted")
	}
}

func TestSRAMCellHoldsBothStates(t *testing.T) {
	// Keep the library's load capacitance: the storage nodes need
	// state for the transient to latch (with no capacitance every
	// Newton solve re-converges to the metastable midpoint).
	l := lib(t)
	for _, qHigh := range []bool{true, false} {
		c := circuit.New()
		if err := l.Supply(c, "VDD"); err != nil {
			t.Fatal(err)
		}
		// Word line low (cell isolated), bit lines precharged high.
		c.MustAdd(&circuit.VSource{Label: "VWL", P: "wl", N: circuit.Ground, Wave: circuit.DC(0)})
		c.MustAdd(&circuit.VSource{Label: "VBL", P: "bl", N: circuit.Ground, Wave: circuit.DC(0.6)})
		c.MustAdd(&circuit.VSource{Label: "VBLB", P: "blb", N: circuit.Ground, Wave: circuit.DC(0.6)})
		if err := l.SRAMCell(c, "cell", "q", "qb", "bl", "blb", "wl"); err != nil {
			t.Fatal(err)
		}
		// Nudge the cell into the wanted state with a brief current
		// kick, then check it latches after the kick ends.
		target := "q"
		if !qHigh {
			target = "qb"
		}
		c.MustAdd(&circuit.ISource{Label: "IK", P: target, N: circuit.Ground,
			Wave: circuit.Pulse{V1: 0, V2: 5e-6, Rise: 1e-12, Width: 0.3e-9, Fall: 1e-12, Period: 1}})
		sols, err := c.Transient(circuit.TranOptions{Step: 10e-12, Stop: 2e-9, DC: circuit.DCOptions{MaxIter: 300}})
		if err != nil {
			t.Fatal(err)
		}
		last := sols[len(sols)-1]
		vq, vqb := last.Voltage("q"), last.Voltage("qb")
		if qHigh && (vq < 0.5 || vqb > 0.1) {
			t.Fatalf("cell did not hold 1: q=%g qb=%g", vq, vqb)
		}
		if !qHigh && (vqb < 0.5 || vq > 0.1) {
			t.Fatalf("cell did not hold 0: q=%g qb=%g", vq, vqb)
		}
	}
}

func TestHoldSNMPositiveAndBounded(t *testing.T) {
	l := lib(t)
	l.LoadCap = 0
	snm, err := l.HoldSNM(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy complementary pair at VDD=0.6 V: SNM positive and
	// below VDD/2 by construction.
	if snm < 0.05 || snm > 0.3 {
		t.Fatalf("hold SNM = %g V", snm)
	}
	// Degrading the gate (weak transmission) must not raise the SNM
	// above the ideal value materially; mainly this checks the knob
	// plumbs through the metric.
	dev := fettoy.Default()
	dev.Transmission = 0.4
	ref, err := fettoy.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	weakModel, err := core.Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	weak := &Library{Model: weakModel, VDD: 0.6}
	snmWeak, err := weak.HoldSNM(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if snmWeak <= 0 {
		t.Fatalf("weak-device SNM = %g", snmWeak)
	}
}
