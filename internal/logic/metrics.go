package logic

import (
	"fmt"
	"math"

	"cntfet/internal/circuit"
)

// VTCMetrics are the static figures of merit read off a voltage
// transfer characteristic.
type VTCMetrics struct {
	// VOH, VOL are the output levels at the sweep ends.
	VOH, VOL float64
	// VM is the switching threshold (VOUT crossing VDD/2).
	VM float64
	// Gain is the peak |dVOUT/dVIN|.
	Gain float64
	// VIL, VIH are the unity-gain input points; NML = VIL - VOL and
	// NMH = VOH - VIH are the noise margins.
	VIL, VIH, NML, NMH float64
}

// MeasureVTC sweeps the named input source and reads the static
// metrics at the given output node.
func MeasureVTC(c *circuit.Circuit, inSource, outNode string, vdd, step float64) (VTCMetrics, error) {
	pts, err := c.DCSweep(inSource, 0, vdd, step, circuit.DCOptions{MaxIter: 300})
	if err != nil {
		return VTCMetrics{}, err
	}
	vin := make([]float64, len(pts))
	vout := make([]float64, len(pts))
	for i, p := range pts {
		vin[i] = p.Value
		vout[i] = p.Solution.Voltage(outNode)
	}
	m := VTCMetrics{VOH: vout[0], VOL: vout[len(vout)-1]}
	m.VM = crossing(vin, vout, vdd/2, false)

	// Slope scan for gain and unity-gain points.
	haveVIL := false
	for i := 1; i < len(vout); i++ {
		slope := (vout[i] - vout[i-1]) / (vin[i] - vin[i-1])
		if a := math.Abs(slope); a > m.Gain {
			m.Gain = a
		}
		if !haveVIL && slope <= -1 {
			m.VIL = vin[i-1]
			haveVIL = true
		}
		if haveVIL && slope > -1 && m.VIH == 0 { //lint:allow floatcmp zero VIH is the not-yet-found sentinel
			m.VIH = vin[i]
		}
	}
	if m.VIH == 0 { //lint:allow floatcmp zero VIH is the not-yet-found sentinel
		m.VIH = vdd
	}
	m.NML = m.VIL - m.VOL
	m.NMH = m.VOH - m.VIH
	return m, nil
}

// crossing interpolates the x where y crosses level; rising selects
// the first upward crossing, otherwise the first downward one.
func crossing(x, y []float64, level float64, rising bool) float64 {
	for i := 1; i < len(y); i++ {
		up := y[i-1] < level && y[i] >= level
		down := y[i-1] > level && y[i] <= level
		if (rising && up) || (!rising && down) {
			f := (level - y[i-1]) / (y[i] - y[i-1])
			return x[i-1] + f*(x[i]-x[i-1])
		}
	}
	return math.NaN()
}

// PropagationDelay measures the 50%-to-50% delays between an input and
// an output waveform from a transient run: tpHL is input-rise to
// output-fall, tpLH input-fall to output-rise. Missing edges return
// NaN.
func PropagationDelay(sols []*circuit.Solution, inNode, outNode string, vdd float64) (tpHL, tpLH float64) {
	ts := make([]float64, len(sols))
	vi := make([]float64, len(sols))
	vo := make([]float64, len(sols))
	for i, s := range sols {
		ts[i] = s.Time
		vi[i] = s.Voltage(inNode)
		vo[i] = s.Voltage(outNode)
	}
	mid := vdd / 2
	inRise := crossing(ts, vi, mid, true)
	outFall := crossing(ts, vo, mid, false)
	inFall := crossing(ts, vi, mid, false)
	outRise := crossing(ts, vo, mid, true)
	return outFall - inRise, outRise - inFall
}

// OscillationFrequency estimates the fundamental frequency of a node
// from its mid-rail crossings after a settling time. It needs at least
// three crossings; fewer return an error.
func OscillationFrequency(sols []*circuit.Solution, node string, vdd, settle float64) (float64, error) {
	mid := vdd / 2
	var crossings []float64
	for i := 1; i < len(sols); i++ {
		if sols[i].Time < settle {
			continue
		}
		v0, v1 := sols[i-1].Voltage(node), sols[i].Voltage(node)
		if v0 < mid && v1 >= mid { // rising crossings only: one per period
			f := (mid - v0) / (v1 - v0)
			crossings = append(crossings, sols[i-1].Time+f*(sols[i].Time-sols[i-1].Time))
		}
	}
	if len(crossings) < 3 {
		return 0, fmt.Errorf("logic: only %d rising crossings after settle; not oscillating", len(crossings))
	}
	// Average period over the observed cycles.
	period := (crossings[len(crossings)-1] - crossings[0]) / float64(len(crossings)-1)
	return 1 / period, nil
}

// SwitchingEnergy integrates the supply charge delivered over a
// transient run and returns E = VDD·∫i_vdd dt in joules (positive for
// energy drawn from the rail). For a single output transition of a
// static gate this is approximately C_load·VDD² plus short-circuit
// losses — the dynamic-power figure of merit.
func SwitchingEnergy(sols []*circuit.Solution, vddSource string, vdd float64) float64 {
	if len(sols) < 2 {
		return 0
	}
	charge := 0.0
	for i := 1; i < len(sols); i++ {
		dt := sols[i].Time - sols[i-1].Time
		// Branch current convention: current flows out of the + node
		// through the external circuit, so the delivered current is
		// the negated branch current.
		i0 := -sols[i-1].BranchCurrent(vddSource)
		i1 := -sols[i].BranchCurrent(vddSource)
		charge += 0.5 * (i0 + i1) * dt
	}
	return vdd * charge
}

// HoldSNM measures the hold static noise margin of a cross-coupled
// inverter pair built from this library: the side of the largest
// square that fits between the two butterfly lobes, computed from the
// inverter VTC by the standard 45°-rotation construction. Larger is
// more robust; a bistable cell requires SNM > 0.
func (l *Library) HoldSNM(step float64) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if step <= 0 {
		step = 0.01
	}
	// One inverter VTC; symmetry gives the mirrored curve.
	c := circuit.New()
	if err := l.Supply(c, "VDD"); err != nil {
		return 0, err
	}
	if err := c.Add(&circuit.VSource{Label: "VIN", P: "in", N: circuit.Ground, Wave: circuit.DC(0)}); err != nil {
		return 0, err
	}
	if err := l.Inverter(c, "inv", "in", "out"); err != nil {
		return 0, err
	}
	pts, err := c.DCSweep("VIN", 0, l.VDD, step, circuit.DCOptions{MaxIter: 300})
	if err != nil {
		return 0, err
	}
	vin := make([]float64, len(pts))
	vout := make([]float64, len(pts))
	for i, p := range pts {
		vin[i] = p.Value
		vout[i] = p.Solution.Voltage("out")
	}
	// In rotated coordinates u = (x+y)/√2, v = (y-x)/√2 the SNM square
	// of lobe 1 has side √2·max over u of [v_fwd(u) - v_mirr(u)]
	// ... equivalently: for each point of the forward curve, the
	// diagonal separation to the mirrored curve. Sample the forward
	// curve and interpolate the mirrored one (x=vout, y=vin).
	mirrored := func(x float64) float64 {
		// Mirrored curve: y such that x = VTC(y); VTC is monotone
		// decreasing, so invert by scanning.
		for i := 1; i < len(vout); i++ {
			if (vout[i-1]-x)*(vout[i]-x) <= 0 {
				f := 0.5
				if vout[i] != vout[i-1] { //lint:allow floatcmp guards dividing by an exactly flat plateau
					f = (x - vout[i-1]) / (vout[i] - vout[i-1])
				}
				return vin[i-1] + f*(vin[i]-vin[i-1])
			}
		}
		if x > vout[0] {
			return vin[0]
		}
		return vin[len(vin)-1]
	}
	best := 0.0
	for i := range vin {
		// Diagonal gap between forward point (vin, vout) and the
		// mirrored curve along the -45° direction.
		d := (vout[i] - mirrored(vin[i])) / 2
		if d > best {
			best = d
		}
	}
	// The inscribed square side equals the max diagonal half-gap times
	// √2... using the simplified estimator common in hand analysis:
	// SNM ≈ max diagonal separation / √2.
	return best * math.Sqrt2, nil
}
