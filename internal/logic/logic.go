// Package logic builds static complementary logic gates out of CNT
// transistors and measures their figures of merit. The paper closes by
// pointing at "practical logic circuit structures based on CNT
// devices" as the purpose of a fast circuit-level model; this package
// is that purpose made executable: gate netlist builders (inverter,
// NAND2, NOR2, inverter chains, ring oscillators) plus static and
// dynamic metrology (VTC metrics, propagation delay, oscillation
// frequency).
//
// Gates use the standard complementary topology with the n-type
// ballistic model and its mirrored p-type (electrically symmetric
// tubes, the usual CNFET-logic assumption).
package logic

import (
	"fmt"

	"cntfet/internal/circuit"
	"cntfet/internal/device"
)

// Library carries the shared parameters of a gate family.
type Library struct {
	// Model is the transistor model both polarities use.
	Model device.Solver
	// VDD is the supply voltage in volts.
	VDD float64
	// LoadCap is the capacitance attached to every gate output in
	// farads (wire + fan-in proxy); zero means none.
	LoadCap float64
	// Tubes is the per-device parallel-tube count (0 = 1).
	Tubes int
}

// Validate reports the first problem with the library parameters.
func (l *Library) Validate() error {
	if l.Model == nil {
		return fmt.Errorf("logic: library needs a transistor model")
	}
	if l.VDD <= 0 {
		return fmt.Errorf("logic: VDD = %g must be positive", l.VDD)
	}
	if l.LoadCap < 0 {
		return fmt.Errorf("logic: negative load capacitance")
	}
	return nil
}

// Supply adds the VDD rail source to a circuit (idempotent per name).
func (l *Library) Supply(c *circuit.Circuit, name string) error {
	if err := l.Validate(); err != nil {
		return err
	}
	return c.Add(&circuit.VSource{Label: name, P: "vdd", N: circuit.Ground, Wave: circuit.DC(l.VDD)})
}

func (l *Library) fet(label, d, g, s string, pol circuit.Polarity) *circuit.CNTFET {
	return &circuit.CNTFET{Label: label, D: d, G: g, S: s, Model: l.Model, Pol: pol, Tubes: l.Tubes}
}

func (l *Library) load(c *circuit.Circuit, name, out string) error {
	if l.LoadCap <= 0 {
		return nil
	}
	return c.Add(&circuit.Capacitor{Label: name + "_cl", A: out, B: circuit.Ground, Farads: l.LoadCap})
}

// Inverter adds a complementary inverter named name from in to out.
func (l *Library) Inverter(c *circuit.Circuit, name, in, out string) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if err := c.Add(l.fet(name+"_p", out, in, "vdd", circuit.PType)); err != nil {
		return err
	}
	if err := c.Add(l.fet(name+"_n", out, in, circuit.Ground, circuit.NType)); err != nil {
		return err
	}
	return l.load(c, name, out)
}

// NAND2 adds a two-input NAND gate: parallel p-pull-up, series
// n-pull-down.
func (l *Library) NAND2(c *circuit.Circuit, name, a, b, out string) error {
	if err := l.Validate(); err != nil {
		return err
	}
	mid := name + "_mid"
	for _, el := range []*circuit.CNTFET{
		l.fet(name+"_pa", out, a, "vdd", circuit.PType),
		l.fet(name+"_pb", out, b, "vdd", circuit.PType),
		l.fet(name+"_na", out, a, mid, circuit.NType),
		l.fet(name+"_nb", mid, b, circuit.Ground, circuit.NType),
	} {
		if err := c.Add(el); err != nil {
			return err
		}
	}
	return l.load(c, name, out)
}

// NOR2 adds a two-input NOR gate: series p-pull-up, parallel
// n-pull-down.
func (l *Library) NOR2(c *circuit.Circuit, name, a, b, out string) error {
	if err := l.Validate(); err != nil {
		return err
	}
	mid := name + "_mid"
	for _, el := range []*circuit.CNTFET{
		l.fet(name+"_pa", mid, a, "vdd", circuit.PType),
		l.fet(name+"_pb", out, b, mid, circuit.PType),
		l.fet(name+"_na", out, a, circuit.Ground, circuit.NType),
		l.fet(name+"_nb", out, b, circuit.Ground, circuit.NType),
	} {
		if err := c.Add(el); err != nil {
			return err
		}
	}
	return l.load(c, name, out)
}

// Chain adds n inverters in series from in; it returns the output node
// names of every stage (the last entry is the chain output).
func (l *Library) Chain(c *circuit.Circuit, name, in string, n int) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("logic: chain needs at least one stage")
	}
	outs := make([]string, n)
	prev := in
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("%s_%d", name, i+1)
		if err := l.Inverter(c, fmt.Sprintf("%s_inv%d", name, i+1), prev, out); err != nil {
			return nil, err
		}
		outs[i] = out
		prev = out
	}
	return outs, nil
}

// RingOscillator adds an odd-stage inverter ring plus a start-up
// current kick on the first node, returning the ring node names.
func (l *Library) RingOscillator(c *circuit.Circuit, name string, stages int) ([]string, error) {
	if stages < 3 || stages%2 == 0 {
		return nil, fmt.Errorf("logic: ring needs an odd stage count >= 3, got %d", stages)
	}
	nodes := make([]string, stages)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("%s_n%d", name, i+1)
	}
	for i := range nodes {
		in := nodes[i]
		out := nodes[(i+1)%stages]
		if err := l.Inverter(c, fmt.Sprintf("%s_inv%d", name, i+1), in, out); err != nil {
			return nil, err
		}
	}
	kick := &circuit.ISource{Label: name + "_kick", P: nodes[0], N: circuit.Ground,
		Wave: circuit.Pulse{V1: 0, V2: 2e-6, Rise: 1e-12, Width: 50e-12, Fall: 1e-12, Period: 1}}
	if err := c.Add(kick); err != nil {
		return nil, err
	}
	return nodes, nil
}

// XOR2 adds a two-input XOR built from four NAND gates
// (the classic construction: X = A⊼(A⊼B), Y = B⊼(A⊼B), OUT = X⊼Y).
func (l *Library) XOR2(c *circuit.Circuit, name, a, b, out string) error {
	ab := name + "_ab"
	x := name + "_x"
	y := name + "_y"
	if err := l.NAND2(c, name+"_g1", a, b, ab); err != nil {
		return err
	}
	if err := l.NAND2(c, name+"_g2", a, ab, x); err != nil {
		return err
	}
	if err := l.NAND2(c, name+"_g3", b, ab, y); err != nil {
		return err
	}
	return l.NAND2(c, name+"_g4", x, y, out)
}

// FullAdder adds a 1-bit full adder (sum, carry-out) built from two
// XORs and the standard NAND carry tree — 11 NAND gates, 44
// transistors, a realistic "large numbers of such devices" workload
// for the fast model.
func (l *Library) FullAdder(c *circuit.Circuit, name, a, b, cin, sum, cout string) error {
	axb := name + "_axb"
	if err := l.XOR2(c, name+"_x1", a, b, axb); err != nil {
		return err
	}
	if err := l.XOR2(c, name+"_x2", axb, cin, sum); err != nil {
		return err
	}
	// cout = (a·b) + cin·(a⊕b) = NAND(NAND(a,b), NAND(cin, a⊕b)).
	n1 := name + "_n1"
	n2 := name + "_n2"
	if err := l.NAND2(c, name+"_g1", a, b, n1); err != nil {
		return err
	}
	if err := l.NAND2(c, name+"_g2", cin, axb, n2); err != nil {
		return err
	}
	return l.NAND2(c, name+"_g3", n1, n2, cout)
}

// RippleCarryAdder chains w full adders into a w-bit adder. Input
// nodes a[i], b[i] and cin must exist (driven externally); sum[i] and
// the final carry are returned as node names. At 44 transistors per
// bit this is the paper's "complex circuits built from large numbers
// of CNT devices" made concrete.
func (l *Library) RippleCarryAdder(c *circuit.Circuit, name string, a, b []string, cin string) (sum []string, cout string, err error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, "", fmt.Errorf("logic: adder needs equal non-empty operand widths (%d vs %d)", len(a), len(b))
	}
	carry := cin
	sum = make([]string, len(a))
	for i := range a {
		sum[i] = fmt.Sprintf("%s_s%d", name, i)
		next := fmt.Sprintf("%s_c%d", name, i+1)
		if err := l.FullAdder(c, fmt.Sprintf("%s_fa%d", name, i), a[i], b[i], carry, sum[i], next); err != nil {
			return nil, "", err
		}
		carry = next
	}
	return sum, carry, nil
}

// SRAMCell adds a 6T static memory cell: cross-coupled inverters at
// nodes q/qb plus n-type access transistors to the bit lines, gated by
// the word line. The canonical hold/read stability testbench for a
// logic family.
func (l *Library) SRAMCell(c *circuit.Circuit, name, q, qb, bl, blb, wl string) error {
	if err := l.Inverter(c, name+"_i1", q, qb); err != nil {
		return err
	}
	if err := l.Inverter(c, name+"_i2", qb, q); err != nil {
		return err
	}
	if err := c.Add(l.fet(name+"_ax1", bl, wl, q, circuit.NType)); err != nil {
		return err
	}
	return c.Add(l.fet(name+"_ax2", blb, wl, qb, circuit.NType))
}
