package circuit

import (
	"errors"
	"strings"
	"testing"

	"cntfet/internal/telemetry"
)

// hardCircuit builds a diode charging loop that cannot converge in one
// iteration from a zero start.
func hardCircuit(t *testing.T) *Circuit {
	t.Helper()
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "a", N: Ground, Wave: DC(5)})
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: "b", Ohms: 100})
	c.MustAdd(&Diode{Label: "D1", A: "b", B: Ground, Is: 1e-14})
	return c
}

func TestConvergenceErrorDiagnostics(t *testing.T) {
	c := hardCircuit(t)
	// A one-iteration budget cannot converge the diode's exponential
	// and gmin stepping cannot rescue it.
	_, err := c.OperatingPoint(DCOptions{MaxIter: 1, GminSteps: 1})
	if err == nil {
		t.Fatal("expected convergence failure")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("error does not unwrap to ErrNoConvergence: %v", err)
	}
	var cerr *ConvergenceError
	if !errors.As(err, &cerr) {
		t.Fatalf("error is not a *ConvergenceError: %v", err)
	}
	if cerr.Iterations != 1 || cerr.Residual <= 0 || cerr.WorstNode == "" {
		t.Fatalf("missing diagnostics: %+v", cerr)
	}
	msg := err.Error()
	for _, want := range []string{"1 iterations", "|dV|=", cerr.WorstNode} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error message %q missing %q", msg, want)
		}
	}
}

func TestUnknownNames(t *testing.T) {
	c := hardCircuit(t)
	ix := c.buildIndex()
	seen := map[string]bool{}
	for i := 0; i < ix.n; i++ {
		seen[ix.unknownName(i)] = true
	}
	for _, want := range []string{"a", "b", "I(V1)"} {
		if !seen[want] {
			t.Fatalf("unknown names missing %q: %v", want, seen)
		}
	}
}

func TestTransientTraceAndCounters(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.Default().Snapshot().Counters

	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground,
		Wave: Pulse{V1: 0, V2: 1, Delay: 1e-9, Rise: 1e-10, Fall: 1e-10, Width: 2e-9, Period: 4e-9}})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 1e3})
	c.MustAdd(&Capacitor{Label: "C1", A: "out", B: Ground, Farads: 1e-12})
	tr := telemetry.NewTrace(1024)
	c.SetTrace(tr)

	sols, err := c.Transient(TranOptions{Step: 1e-10, Stop: 4e-9})
	if err != nil {
		t.Fatal(err)
	}
	steps := len(sols) - 1 // the initial point is not a step

	s := telemetry.Default().Snapshot().Counters
	if got := s["circuit.tran.steps"] - base["circuit.tran.steps"]; got != int64(steps) {
		t.Fatalf("circuit.tran.steps = %d, want %d", got, steps)
	}
	if iters := s["circuit.tran.newton_iters"] - base["circuit.tran.newton_iters"]; iters < int64(steps) {
		t.Fatalf("newton iters %d below step count %d", iters, steps)
	}

	var stepEvents int
	for _, ev := range tr.Events() {
		if ev.Kind == "circuit.tran.step" {
			stepEvents++
			if ev.Fields["iters"] < 1 || ev.Fields["dt"] != 1e-10 {
				t.Fatalf("bad step event %+v", ev)
			}
		}
	}
	if stepEvents != steps {
		t.Fatalf("trace has %d step events, want %d", stepEvents, steps)
	}
}
