package circuit

import (
	"fmt"

	"cntfet/internal/telemetry"
)

// metrics holds the pre-resolved telemetry handles of the MNA engine.
// Newton iterations factor a dense LU each pass, so the per-iteration
// instrument cost is negligible; call sites still gate on
// telemetry.On() so an un-instrumented run leaves the registry
// untouched.
var metrics = struct {
	dcSolves        *telemetry.Counter
	dcNewtonIters   *telemetry.Counter
	dcGminSteps     *telemetry.Counter
	luSolves        *telemetry.Counter
	convergeFail    *telemetry.Counter
	tranSteps       *telemetry.Counter
	tranNewtonIters *telemetry.Counter
	tranRetries     *telemetry.Counter
	acSolves        *telemetry.Counter
	newtonIterHist  *telemetry.Histogram
}{
	dcSolves:        telemetry.Default().Counter(telemetry.KeyCircuitDCSolves),
	dcNewtonIters:   telemetry.Default().Counter(telemetry.KeyCircuitDCNewtonIters),
	dcGminSteps:     telemetry.Default().Counter(telemetry.KeyCircuitDCGminSteps),
	luSolves:        telemetry.Default().Counter(telemetry.KeyCircuitLUSolves),
	convergeFail:    telemetry.Default().Counter(telemetry.KeyCircuitConvergenceFailures),
	tranSteps:       telemetry.Default().Counter(telemetry.KeyCircuitTranSteps),
	tranNewtonIters: telemetry.Default().Counter(telemetry.KeyCircuitTranNewtonIters),
	tranRetries:     telemetry.Default().Counter(telemetry.KeyCircuitTranRetries),
	acSolves:        telemetry.Default().Counter(telemetry.KeyCircuitACSolves),
	newtonIterHist:  telemetry.Default().Histogram(telemetry.KeyCircuitNewtonItersPerSolve, []float64{2, 4, 8, 16, 32, 64}),
}

// ConvergenceError carries the diagnostic state of a failed Newton
// loop: how long it ran, how far it still was from the tolerance, and
// which unknown was worst. It unwraps to ErrNoConvergence so existing
// errors.Is checks keep working.
type ConvergenceError struct {
	// Analysis is "dc" or "tran".
	Analysis string
	// Iterations is how many Newton iterations ran before giving up.
	Iterations int
	// Residual is the last update norm ‖Δx‖∞ in volts (the convergence
	// measure the loop tests against VTol).
	Residual float64
	// WorstNode names the unknown with the largest update: a node name,
	// or "I(<element>)" for a branch current.
	WorstNode string
	// Gmin is the shunt conductance active during the failed loop (0
	// for the plain pass).
	Gmin float64
	// Time is the transient timepoint (0 for DC).
	Time float64
}

func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("circuit: %s analysis did not converge after %d iterations: |dV|=%g at %s (tolerance not met)",
		e.Analysis, e.Iterations, e.Residual, e.WorstNode)
	if e.Gmin > 0 {
		msg += fmt.Sprintf(" [gmin=%g]", e.Gmin)
	}
	if e.Time != 0 { //lint:allow floatcmp zero Time means DC, no timepoint to print
		msg += fmt.Sprintf(" [t=%g]", e.Time)
	}
	return msg
}

// Unwrap keeps errors.Is(err, ErrNoConvergence) true.
func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// unknownName returns the display name of MNA unknown i: the node
// name, or I(elem) for a branch-current row.
func (ix *indexer) unknownName(i int) string {
	for name, idx := range ix.node {
		if idx == i {
			return name
		}
	}
	// Every branch element in the library owns one row, so the first
	// branch row carries the element's name.
	for name, idx := range ix.branch {
		if i == idx {
			return "I(" + name + ")"
		}
	}
	return fmt.Sprintf("x[%d]", i)
}

// SetTrace attaches a solve trace to the circuit: every Newton solve
// and transient step emits structured events ("circuit.dc.solve",
// "circuit.tran.step", ...). A nil trace (the default) is free. Set it
// before running analyses.
func (c *Circuit) SetTrace(tr *telemetry.Trace) { c.trace = tr }

// Trace returns the attached solve trace, or nil.
func (c *Circuit) Trace() *telemetry.Trace { return c.trace }
