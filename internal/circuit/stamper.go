package circuit

import (
	"cntfet/internal/linalg"
)

// Stamper is the per-iteration assembly context handed to elements.
// It exposes the current Newton iterate, the previous-timestep solution
// (for companion models) and the integration context, and accumulates
// the conductance matrix and right-hand side.
type Stamper struct {
	ix   *indexer
	a    *linalg.Matrix
	rhs  []float64
	x    []float64 // current Newton iterate
	prev *Solution // previous accepted solution (transient) or nil

	// Time and Dt describe the transient step being assembled; Dt == 0
	// means a DC analysis. Trapezoidal selects the integration rule.
	Time, Dt    float64
	Trapezoidal bool
	// Gmin is the minimum conductance inserted by nonlinear elements
	// from their terminals to ground during gmin stepping.
	Gmin float64
}

func newStamper(ix *indexer) *Stamper {
	return &Stamper{
		ix:  ix,
		a:   linalg.NewMatrix(ix.n, ix.n),
		rhs: make([]float64, ix.n),
	}
}

func (s *Stamper) reset(x []float64) {
	s.a.Zero()
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	s.x = x
}

// V returns the node voltage at the current Newton iterate.
func (s *Stamper) V(node string) float64 {
	if node == Ground {
		return 0
	}
	i, ok := s.ix.node[node]
	if !ok || s.x == nil {
		return 0
	}
	return s.x[i]
}

// PrevV returns the node voltage of the previous accepted transient
// solution, or the current iterate during DC.
func (s *Stamper) PrevV(node string) float64 {
	if s.prev == nil {
		return s.V(node)
	}
	return s.prev.Voltage(node)
}

// nodeIndex returns the matrix index of a node, or -1 for ground.
func (s *Stamper) nodeIndex(node string) int {
	if node == Ground {
		return -1
	}
	i, ok := s.ix.node[node]
	if !ok {
		return -1
	}
	return i
}

// BranchIndex returns the first branch row of the named element.
func (s *Stamper) BranchIndex(elem string) int { return s.ix.branch[elem] }

// Conductance stamps a two-terminal conductance g between nodes a
// and b.
func (s *Stamper) Conductance(a, b string, g float64) {
	ia, ib := s.nodeIndex(a), s.nodeIndex(b)
	if ia >= 0 {
		s.a.Add(ia, ia, g)
	}
	if ib >= 0 {
		s.a.Add(ib, ib, g)
	}
	if ia >= 0 && ib >= 0 {
		s.a.Add(ia, ib, -g)
		s.a.Add(ib, ia, -g)
	}
}

// Transconductance stamps a current at (out+, out-) controlled by the
// voltage (in+, in-): i_out = g·v_in.
func (s *Stamper) Transconductance(outP, outN, inP, inN string, g float64) {
	op, on := s.nodeIndex(outP), s.nodeIndex(outN)
	ip, in := s.nodeIndex(inP), s.nodeIndex(inN)
	add := func(r, c int, v float64) {
		if r >= 0 && c >= 0 {
			s.a.Add(r, c, v)
		}
	}
	add(op, ip, g)
	add(op, in, -g)
	add(on, ip, -g)
	add(on, in, g)
}

// CurrentInto stamps a fixed current flowing *into* node a and out of
// node b.
func (s *Stamper) CurrentInto(a, b string, i float64) {
	if ia := s.nodeIndex(a); ia >= 0 {
		s.rhs[ia] += i
	}
	if ib := s.nodeIndex(b); ib >= 0 {
		s.rhs[ib] -= i
	}
}

// VoltageBranch stamps a voltage-source branch row: node p is held v
// above node n, with the branch current entering p. row is the branch
// index from BranchIndex.
func (s *Stamper) VoltageBranch(row int, p, n string, v float64) {
	ip, in := s.nodeIndex(p), s.nodeIndex(n)
	if ip >= 0 {
		s.a.Add(ip, row, 1)
		s.a.Add(row, ip, 1)
	}
	if in >= 0 {
		s.a.Add(in, row, -1)
		s.a.Add(row, in, -1)
	}
	s.rhs[row] += v
}

// GminLoad adds the stepping conductance from a node to ground; called
// by nonlinear elements so linear circuits stay exact.
func (s *Stamper) GminLoad(node string) {
	if s.Gmin > 0 {
		s.Conductance(node, Ground, s.Gmin)
	}
}
