package circuit

import (
	"fmt"
	"math"

	"cntfet/internal/telemetry"
)

// TranOptions configures a transient analysis.
type TranOptions struct {
	// Step is the fixed timestep (required, > 0).
	Step float64
	// Stop is the end time (required, > Step).
	Stop float64
	// Trapezoidal selects the trapezoidal rule instead of backward
	// Euler. BE is the robust default; trapezoidal is second-order but
	// can ring on ideal-switch stimuli.
	Trapezoidal bool
	// DC tunes the per-step Newton solves.
	DC DCOptions
}

// Transient runs a fixed-step transient from the DC operating point at
// t = 0 and returns the solution at every accepted timestep, including
// the initial point.
func (c *Circuit) Transient(opt TranOptions) ([]*Solution, error) {
	if opt.Step <= 0 || opt.Stop <= opt.Step {
		return nil, fmt.Errorf("circuit: bad transient window step=%g stop=%g", opt.Step, opt.Stop)
	}
	opt.DC.fill()

	// Initial condition: DC operating point with sources at t = 0.
	init, err := c.OperatingPoint(opt.DC)
	if err != nil {
		return nil, fmt.Errorf("circuit: transient initial point: %w", err)
	}
	ix := init.ix
	st := newStamper(ix)
	x := append([]float64(nil), init.x...)
	prev := init.Clone()
	out := []*Solution{init.Clone()}

	steps := int(opt.Stop/opt.Step + 0.5)
	for k := 1; k <= steps; k++ {
		t := float64(k) * opt.Step
		st.Time = t
		st.Dt = opt.Step
		st.Trapezoidal = opt.Trapezoidal
		st.prev = prev
		iters, err := c.newtonTran(st, x, opt.DC)
		if err != nil {
			return out, fmt.Errorf("circuit: transient step at t=%g: %w", t, err)
		}
		if telemetry.On() {
			metrics.tranSteps.Inc()
		}
		if c.trace.Enabled() {
			c.trace.Emit(telemetry.KindCircuitTranStep, t, "iters", iters, "dt", opt.Step)
		}
		now := &Solution{ix: ix, x: append([]float64(nil), x...), Time: t}
		// Roll trapezoidal capacitor state.
		if opt.Trapezoidal {
			for _, e := range c.elems {
				if cap, ok := e.(*Capacitor); ok {
					cap.prevCurrent = cap.Current(now, prev, opt.Step, true)
				}
			}
		}
		out = append(out, now)
		prev = now
	}
	return out, nil
}

// newtonTran is the per-step Newton loop; it differs from the DC loop
// only in that the stamper carries time/dt context, which reset()
// preserves. It returns the iteration count that reached convergence;
// on failure the error is a *ConvergenceError with the last residual
// and worst node.
func (c *Circuit) newtonTran(st *Stamper, x []float64, opt DCOptions) (int, error) {
	on := telemetry.On()
	time, dt, trap, prev := st.Time, st.Dt, st.Trapezoidal, st.prev
	worst, worstIx := 0.0, 0
	for iter := 0; iter < opt.MaxIter; iter++ {
		st.reset(x)
		st.Time, st.Dt, st.Trapezoidal, st.prev = time, dt, trap, prev
		for _, e := range c.elems {
			e.Stamp(st)
		}
		xNew, err := solveStamped(st)
		if on {
			metrics.luSolves.Inc()
			metrics.tranNewtonIters.Inc()
		}
		if err != nil {
			return iter, err
		}
		worst, worstIx = 0.0, 0
		for i := range x {
			d := xNew[i] - x[i]
			if d > opt.MaxStep {
				d = opt.MaxStep
			} else if d < -opt.MaxStep {
				d = -opt.MaxStep
			}
			x[i] += d
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst, worstIx = d, i
			}
		}
		if worst < opt.VTol {
			if on {
				metrics.newtonIterHist.Observe(float64(iter + 1))
			}
			return iter + 1, nil
		}
	}
	if on {
		metrics.convergeFail.Inc()
	}
	cerr := &ConvergenceError{
		Analysis:   "tran",
		Iterations: opt.MaxIter,
		Residual:   worst,
		WorstNode:  st.ix.unknownName(worstIx),
		Time:       time,
	}
	if c.trace.Enabled() {
		c.trace.Emit(telemetry.KindCircuitConvergenceFailure, time,
			"iters", cerr.Iterations, "worst_dv", worst, "dt", dt)
	}
	return opt.MaxIter, cerr
}

// TranAdaptiveOptions configures an adaptive-step transient analysis.
type TranAdaptiveOptions struct {
	// Stop is the end time (required).
	Stop float64
	// MinStep and MaxStep bound the step size. Zero values default to
	// Stop/1e6 and Stop/50.
	MinStep, MaxStep float64
	// Tol is the per-step local-truncation-error tolerance on node
	// voltages (default 1e-4 V).
	Tol float64
	// DC tunes the per-step Newton solves.
	DC DCOptions
}

// TransientAdaptive integrates with backward Euler under step-doubling
// error control: each accepted step compares one full step against two
// half steps; the difference estimates the local truncation error,
// shrinking the step when it exceeds Tol and growing it when it is
// comfortably below. Sharp stimulus edges therefore get small steps
// automatically while quiescent stretches take large ones.
func (c *Circuit) TransientAdaptive(opt TranAdaptiveOptions) ([]*Solution, error) {
	if opt.Stop <= 0 {
		return nil, fmt.Errorf("circuit: bad adaptive transient stop %g", opt.Stop)
	}
	if opt.MinStep <= 0 {
		opt.MinStep = opt.Stop / 1e6
	}
	if opt.MaxStep <= 0 {
		opt.MaxStep = opt.Stop / 50
	}
	if opt.MinStep > opt.MaxStep {
		return nil, fmt.Errorf("circuit: MinStep %g above MaxStep %g", opt.MinStep, opt.MaxStep)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-4
	}
	opt.DC.fill()

	init, err := c.OperatingPoint(opt.DC)
	if err != nil {
		return nil, fmt.Errorf("circuit: adaptive transient initial point: %w", err)
	}
	out := []*Solution{init.Clone()}
	prev := init.Clone()
	h := opt.MaxStep / 4

	for prev.Time < opt.Stop {
		if prev.Time+h > opt.Stop {
			h = opt.Stop - prev.Time
		}
		// The error estimator advances by half steps; once h/2
		// underflows the time axis the remaining interval is below
		// float resolution and the run is complete.
		if h <= 0 || prev.Time+h/2 == prev.Time { //lint:allow floatcmp detects exact h/2 underflow against the time axis
			break
		}
		full, err := c.stepBE(prev, h, opt.DC)
		if err != nil {
			return out, err
		}
		mid, err := c.stepBE(prev, h/2, opt.DC)
		if err != nil {
			return out, err
		}
		half, err := c.stepBE(mid, h/2, opt.DC)
		if err != nil {
			return out, err
		}
		// LTE estimate: BE is first order, so the two-half-step result
		// is twice as accurate; the difference bounds the error.
		lte := 0.0
		for i := range full.x {
			if d := math.Abs(full.x[i] - half.x[i]); d > lte {
				lte = d
			}
		}
		if lte > opt.Tol && h > opt.MinStep {
			if telemetry.On() {
				metrics.tranRetries.Inc()
			}
			if c.trace.Enabled() {
				c.trace.Emit(telemetry.KindCircuitTranRetry, prev.Time, "lte", lte, "dt", h)
			}
			h = math.Max(h/2, opt.MinStep)
			continue // retry the step
		}
		// Accept the more accurate half-step composition.
		if telemetry.On() {
			metrics.tranSteps.Inc()
		}
		if c.trace.Enabled() {
			c.trace.Emit(telemetry.KindCircuitTranStep, half.Time, "lte", lte, "dt", h)
		}
		out = append(out, half)
		prev = half
		if lte < opt.Tol/4 && h < opt.MaxStep {
			h = math.Min(h*1.5, opt.MaxStep)
		}
	}
	return out, nil
}

// stepBE advances one backward-Euler step of size dt from prev.
func (c *Circuit) stepBE(prev *Solution, dt float64, opt DCOptions) (*Solution, error) {
	ix := prev.ix
	st := newStamper(ix)
	st.Time = prev.Time + dt
	st.Dt = dt
	st.prev = prev
	x := append([]float64(nil), prev.x...)
	if _, err := c.newtonTran(st, x, opt); err != nil {
		return nil, fmt.Errorf("circuit: adaptive step at t=%g: %w", st.Time, err)
	}
	return &Solution{ix: ix, x: x, Time: prev.Time + dt}, nil
}
