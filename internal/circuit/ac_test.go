package circuit

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestACRCLowPass(t *testing.T) {
	// R = 1k, C = 1n: fc = 1/(2πRC) ≈ 159.15 kHz. At fc the magnitude
	// is 1/√2 and the phase -45°.
	c := New()
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DC(0)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 1e3})
	c.MustAdd(&Capacitor{Label: "C1", A: "out", B: Ground, Farads: 1e-9})
	fc := 1 / (2 * math.Pi * 1e3 * 1e-9)
	pts, err := c.AC("VIN", []float64{fc / 100, fc, fc * 100}, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := pts[0].Mag("out"); math.Abs(m-1) > 1e-3 {
		t.Fatalf("passband magnitude %g", m)
	}
	if m := pts[1].Mag("out"); math.Abs(m-1/math.Sqrt2) > 1e-3 {
		t.Fatalf("corner magnitude %g, want %g", m, 1/math.Sqrt2)
	}
	if ph := pts[1].PhaseDeg("out"); math.Abs(ph+45) > 0.5 {
		t.Fatalf("corner phase %g, want -45", ph)
	}
	// Two decades above the pole: -40 dB on a first-order filter is
	// -40... one decade is -20 dB; two decades ≈ 1/100.
	if m := pts[2].Mag("out"); m > 0.011 {
		t.Fatalf("stopband magnitude %g", m)
	}
}

func TestACDividerIsFrequencyFlat(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DC(5)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 3e3})
	c.MustAdd(&Resistor{Label: "R2", A: "out", B: Ground, Ohms: 1e3})
	pts, err := c.AC("VIN", []float64{1, 1e6, 1e12}, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.Abs(p.Mag("out")-0.25) > 1e-12 {
			t.Fatalf("divider AC gain %g at %g Hz", p.Mag("out"), p.Freq)
		}
	}
}

func TestACCommonSourceGainMatchesConductances(t *testing.T) {
	// Low-frequency gain of a resistively loaded common-source stage:
	// |A| = gm·(RL ∥ 1/gds), with gm/gds from the device model at the
	// operating point.
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	c.MustAdd(&VSource{Label: "VIN", P: "g", N: Ground, Wave: DC(0.45)})
	c.MustAdd(&Resistor{Label: "RL", A: "vdd", B: "d", Ohms: 30e3})
	fet := &CNTFET{Label: "M1", D: "d", G: "g", S: Ground, Model: model}
	c.MustAdd(fet)
	op, err := c.OperatingPoint(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, gm, gds, err := fet.conductances(op.Voltage("d"), op.Voltage("g"), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := gm / (1/30e3 + gds)
	pts, err := c.AC("VIN", []float64{1e3}, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := pts[0].Mag("d")
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("AC gain %g, gm/(GL+gds) = %g", got, want)
	}
	// Inverting stage: output phase 180°.
	if ph := math.Abs(pts[0].PhaseDeg("d")); math.Abs(ph-180) > 0.01 {
		t.Fatalf("phase %g, want ±180", ph)
	}
}

func TestACInverterBandwidthSetByLoad(t *testing.T) {
	// CNT inverter with load cap: the -3dB bandwidth must fall when
	// the load doubles.
	model := newFastModel(t)
	build := func(cl float64) *Circuit {
		c := New()
		c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
		c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DC(0.3)})
		c.MustAdd(&CNTFET{Label: "MP", D: "out", G: "in", S: "vdd", Model: model, Pol: PType})
		c.MustAdd(&CNTFET{Label: "MN", D: "out", G: "in", S: Ground, Model: model})
		c.MustAdd(&Capacitor{Label: "CL", A: "out", B: Ground, Farads: cl})
		return c
	}
	bw := func(c *Circuit) float64 {
		freqs, err := DecadeFrequencies(1e6, 1e13, 20)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := c.AC("VIN", freqs, DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dc := pts[0].Mag("out")
		for _, p := range pts {
			if p.Mag("out") < dc/math.Sqrt2 {
				return p.Freq
			}
		}
		return math.Inf(1)
	}
	b1 := bw(build(1e-15))
	b2 := bw(build(2e-15))
	if math.IsInf(b1, 0) || math.IsInf(b2, 0) {
		t.Fatalf("no rolloff found: %g %g", b1, b2)
	}
	ratio := b1 / b2
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("bandwidth ratio %g, want ≈2", ratio)
	}
}

func TestACErrors(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "a", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	if _, err := c.AC("nope", []float64{1}, DCOptions{}); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := c.AC("V1", []float64{-1}, DCOptions{}); err == nil {
		t.Fatal("negative frequency accepted")
	}
}

func TestDecadeFrequencies(t *testing.T) {
	f, err := DecadeFrequencies(1, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 1 || math.Abs(f[len(f)-1]-1000) > 1e-9 {
		t.Fatalf("range %g..%g", f[0], f[len(f)-1])
	}
	if len(f) != 31 {
		t.Fatalf("%d points", len(f))
	}
	if _, err := DecadeFrequencies(0, 10, 5); err == nil {
		t.Fatal("zero fstart accepted")
	}
	if _, err := DecadeFrequencies(10, 1, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestACISourceExcitation(t *testing.T) {
	c := New()
	c.MustAdd(&ISource{Label: "I1", P: "n", N: Ground, Wave: DC(0)})
	c.MustAdd(&Resistor{Label: "R1", A: "n", B: Ground, Ohms: 2e3})
	pts, err := c.AC("I1", []float64{100}, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := pts[0].Mag("n"); math.Abs(m-2e3) > 1e-6 {
		t.Fatalf("transimpedance %g, want 2000", m)
	}
}

func TestInductorDCShort(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(2)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "mid", Ohms: 1e3})
	c.MustAdd(&Inductor{Label: "L1", A: "mid", B: Ground, Henrys: 1e-6})
	sol, err := c.OperatingPoint(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage("mid"); math.Abs(v) > 1e-9 {
		t.Fatalf("inductor DC drop %g, want short", v)
	}
	if i := sol.BranchCurrent("L1"); math.Abs(i-2e-3) > 1e-9 {
		t.Fatalf("inductor current %g, want 2mA", i)
	}
}

func TestRLStepResponse(t *testing.T) {
	// I(t) = (V/R)(1 - e^{-tR/L}); τ = L/R = 1 µs.
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground,
		Wave: Pulse{V1: 0, V2: 1, Rise: 1e-9, Width: 1}})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "mid", Ohms: 1e3})
	c.MustAdd(&Inductor{Label: "L1", A: "mid", B: Ground, Henrys: 1e-3})
	sols, err := c.Transient(TranOptions{Step: 1e-8, Stop: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	var atTau float64
	for _, s := range sols {
		if s.Time >= 1e-6 {
			atTau = s.BranchCurrent("L1")
			break
		}
	}
	if math.Abs(atTau-0.632e-3) > 0.05e-3 {
		t.Fatalf("I(τ) = %g, want ≈0.632 mA", atTau)
	}
	last := sols[len(sols)-1].BranchCurrent("L1")
	if math.Abs(last-1e-3) > 0.02e-3 {
		t.Fatalf("I(5τ) = %g", last)
	}
}

func TestSeriesRLCResonance(t *testing.T) {
	// Series RLC driven across the resistor: the current (and hence
	// the resistor voltage) peaks at f0 = 1/(2π√(LC)).
	c := New()
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DC(0)})
	c.MustAdd(&Inductor{Label: "L1", A: "in", B: "a", Henrys: 1e-6})
	c.MustAdd(&Capacitor{Label: "C1", A: "a", B: "b", Farads: 1e-9})
	c.MustAdd(&Resistor{Label: "R1", A: "b", B: Ground, Ohms: 10})
	f0 := 1 / (2 * math.Pi * math.Sqrt(1e-6*1e-9))
	freqs := []float64{f0 / 10, f0 / 2, f0, f0 * 2, f0 * 10}
	pts, err := c.AC("VIN", freqs, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peak := pts[2].Mag("b")
	if math.Abs(peak-1) > 1e-3 {
		t.Fatalf("on-resonance transfer %g, want ~1", peak)
	}
	for i, p := range pts {
		if i != 2 && p.Mag("b") >= peak {
			t.Fatalf("off-resonance %g Hz transfer %g >= peak", p.Freq, p.Mag("b"))
		}
	}
}

func TestACDiodeSmallSignal(t *testing.T) {
	// Diode biased through a resistor: its AC small-signal conductance
	// at the operating point sets the attenuation g/(g+G).
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(5)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "d", Ohms: 1e3})
	c.MustAdd(&Diode{Label: "D1", A: "d", B: Ground, Is: 1e-14})
	op, err := c.OperatingPoint(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vt := 8.617333262e-5 * 300
	g := 1e-14 * math.Exp(op.Voltage("d")/vt) / vt
	want := (1 / 1e3) / (1/1e3 + g)
	pts, err := c.AC("V1", []float64{1e3}, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pts[0].Mag("d"); math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("diode AC attenuation %g, want %g", got, want)
	}
}

func TestACControlledSourcesAndBranchCurrent(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "VIN", P: "c", N: Ground, Wave: DC(0)})
	c.MustAdd(&Resistor{Label: "RC", A: "c", B: Ground, Ohms: 1e6})
	c.MustAdd(&VCVS{Label: "E1", P: "e", N: Ground, CP: "c", CN: Ground, Gain: 4})
	c.MustAdd(&Resistor{Label: "RE", A: "e", B: Ground, Ohms: 100})
	c.MustAdd(&VCCS{Label: "G1", P: "g", N: Ground, CP: "c", CN: Ground, Gain: 1e-3})
	c.MustAdd(&Resistor{Label: "RG", A: "g", B: Ground, Ohms: 1e3})
	pts, err := c.AC("VIN", []float64{1e4}, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if m := p.Mag("e"); math.Abs(m-4) > 1e-9 {
		t.Fatalf("VCVS AC gain %g", m)
	}
	if m := p.Mag("g"); math.Abs(m-1) > 1e-9 {
		t.Fatalf("VCCS AC transfer %g", m)
	}
	// The VCVS branch drives 40 mA into its 100Ω load.
	if i := cmplx.Abs(p.BranchCurrent("E1")); math.Abs(i-0.04) > 1e-9 {
		t.Fatalf("VCVS AC branch current %g", i)
	}
	if p.BranchCurrent("RG") != 0 {
		t.Fatal("non-branch element should read 0")
	}
}

func TestCircuitElementsAccessor(t *testing.T) {
	c := New()
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	c.MustAdd(&Resistor{Label: "R2", A: "a", B: Ground, Ohms: 2})
	els := c.Elements()
	if len(els) != 2 || els[0].Name() != "R1" || els[1].Name() != "R2" {
		t.Fatalf("Elements() = %v", els)
	}
}

func TestMustAddPanicsOnDuplicate(t *testing.T) {
	c := New()
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MustAdd(&Resistor{Label: "R1", A: "b", B: Ground, Ohms: 1})
}

func TestGminSteppingRescuesTightBudget(t *testing.T) {
	// Two stacked diodes from 10 V through 100Ω: plain Newton from
	// zero with a tiny iteration budget fails, but the gmin ladder
	// (each rung warm-starting the next) still lands the answer.
	build := func() *Circuit {
		c := New()
		c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(10)})
		c.MustAdd(&Resistor{Label: "R1", A: "in", B: "d1", Ohms: 100})
		c.MustAdd(&Diode{Label: "D1", A: "d1", B: "d2", Is: 1e-15})
		c.MustAdd(&Diode{Label: "D2", A: "d2", B: Ground, Is: 1e-15})
		return c
	}
	sol, err := build().OperatingPoint(DCOptions{MaxIter: 26})
	if err != nil {
		t.Fatalf("gmin stepping failed: %v", err)
	}
	v1, v2 := sol.Voltage("d1"), sol.Voltage("d2")
	if v1-v2 < 0.5 || v1-v2 > 1 || v2 < 0.5 || v2 > 1 {
		t.Fatalf("diode stack drops %g, %g", v1-v2, v2)
	}
}
